// E18 — ablations of the potential function's design constants (DESIGN.md
// "key design decisions").
//
//   (a) c_init: the paper sets the additional-potential load to 2n. The
//       restricted-chain argument needs 2 units per advancing step along a
//       row of length n, so anything below 2(n−1) should eventually break
//       Property 8 or drive a packet's C_p negative, while 2n is safe.
//       This bench measures exactly where the audit starts failing.
//   (b) Priority discipline: remove the restricted-packet preference and
//       count how often Lemma 19's guarantee (which *assumed* the
//       preference) is violated by otherwise-greedy policies.
//   (c) Matching discipline: sequential maximal vs maximum-cardinality
//       matching — effect on routing time and deflections.
#include "bench_common.hpp"

namespace hp::bench {
namespace {

void c_init_sweep() {
  print_header("E18a", "Ablation: additional-potential load c_init "
                       "(paper: 2n; n = 16 so 2n = 32)");
  TablePrinter table({"c_init", "P8_violations", "min_slack", "min_C",
                      "min_phi", "struct_viol"});
  net::Mesh mesh(2, 16);
  for (std::int64_t c_init : {4, 8, 16, 24, 30, 32, 48, 64}) {
    Rng rng(181818);
    auto problem = workload::saturated_random(mesh, 4, rng);
    auto policy = make_policy("restricted");
    sim::Engine engine(mesh, problem, *policy);
    core::PotentialTracker::Config config;
    config.c_init = c_init;
    config.d = 2;
    core::PotentialTracker potential(mesh, engine, config);
    engine.add_observer(&potential);
    const auto result = engine.run();
    HP_CHECK(result.completed, "ablation run did not complete");
    table.row()
        .add(c_init)
        .add(static_cast<std::uint64_t>(potential.property8_violations().size()))
        .add(potential.min_slack())
        .add(potential.min_c())
        .add(potential.min_phi())
        .add(static_cast<std::uint64_t>(potential.structure_violations().size()));
  }
  table.print(std::cout);
  std::cout << "(the routing itself is identical in every row — only the "
               "*analysis* changes. Small c_init lets C_p run negative "
               "(min_C < 0), voiding the 0 <= phi <= M premise of Theorem "
               "17; c_init = 2n = 32 is the smallest clean power-of-two)\n";
}

void preference_ablation() {
  print_header("E18b", "Ablation: drop the restricted-packet preference — "
                       "Property 8 violations per greedy policy");
  TablePrinter table({"policy", "steps", "P8_violations", "min_slack",
                      "def18_violations"});
  net::Mesh mesh(2, 16);
  for (const char* kind : {"restricted", "greedy-random", "furthest-first",
                           "closest-first", "perverse"}) {
    Rng rng(282828);
    auto problem = workload::saturated_random(mesh, 4, rng);
    auto policy = make_policy(kind);
    sim::Engine engine(mesh, problem, *policy);
    core::PotentialTracker::Config config;
    config.c_init = 32;
    config.d = 2;
    core::PotentialTracker potential(mesh, engine, config);
    core::RestrictedPreferenceChecker preference;
    engine.add_observer(&potential);
    engine.add_observer(&preference);
    const auto result = engine.run();
    HP_CHECK(result.completed, "preference ablation run did not complete");
    table.row()
        .add(kind)
        .add(result.steps)
        .add(static_cast<std::uint64_t>(potential.property8_violations().size()))
        .add(potential.min_slack())
        .add(static_cast<std::uint64_t>(preference.violations().size()));
  }
  table.print(std::cout);
  std::cout << "(Lemma 19 is proven only for preference-respecting "
               "algorithms; policies that trample restricted packets can "
               "violate the per-node guarantee — yet empirically still "
               "terminate fast, which is why the paper calls for better "
               "potential functions in Section 6)\n";
}

void matching_ablation() {
  print_header("E18c", "Ablation: sequential maximal vs maximum matching");
  TablePrinter table({"discipline", "workload", "steps", "deflections"});
  net::Mesh mesh(2, 16);
  for (const char* workload_kind : {"saturated", "hotspot"}) {
    Rng rng(383838);
    auto problem = std::string(workload_kind) == "saturated"
                       ? workload::saturated_random(mesh, 4, rng)
                       : workload::hotspot(mesh, 256, 1, rng);
    for (bool maximize : {false, true}) {
      routing::RestrictedPriorityPolicy::Params params;
      params.maximize_advancing = maximize;
      routing::RestrictedPriorityPolicy policy(params);
      const auto result = run(mesh, problem, policy);
      table.row()
          .add(maximize ? "maximum (Kuhn)" : "sequential maximal")
          .add(problem.name)
          .add(result.steps)
          .add(result.total_deflections);
    }
  }
  table.print(std::cout);
  std::cout << "(maximum matching advances more packets per step, trimming "
               "deflections; Section 5 requires it for the d-dim analysis, "
               "while the 2-D proof works with any maximal matching)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::c_init_sweep();
  hp::bench::preference_ablation();
  hp::bench::matching_ablation();
  return 0;
}
