// E10/E11/E13 — the §1 motivation experiments:
//   E10: load sensitivity — routing time vs k for greedy variants, the
//        Brassil–Cruz destination-order baseline and buffered
//        store-and-forward. Greedy adapts to the actual load.
//   E11: distance sensitivity — per-packet latency vs initial distance:
//        under greedy routing nearby packets arrive almost immediately;
//        structured/buffered routing makes them queue behind global
//        traffic.
//   E13: the Brassil–Cruz reference bound diam + P + 2(k−1).
#include "bench_common.hpp"
#include "routing/store_forward.hpp"

namespace hp::bench {
namespace {

void load_sensitivity() {
  print_header("E10", "Load sensitivity on a 16x16 mesh — time vs k");
  TablePrinter table({"k", "restricted", "greedy-random", "furthest-first",
                      "closest-first", "brassil-cruz", "store-forward"});
  net::Mesh mesh(2, 16);
  for (std::size_t k : {16u, 64u, 128u, 256u, 512u}) {
    Rng rng(k * 31 + 5);
    auto problem = workload::random_many_to_many(mesh, k, rng);
    auto row = table.row();
    row.add(static_cast<std::uint64_t>(k));
    for (const char* kind : {"restricted", "greedy-random", "furthest-first",
                             "closest-first", "brassil-cruz"}) {
      auto policy = make_policy(kind, &mesh);
      row.add(run(mesh, problem, *policy).steps);
    }
    const auto sf = routing::run_store_forward(mesh, problem);
    HP_CHECK(sf.completed, "store-and-forward did not complete");
    row.add(sf.steps);
  }
  table.print(std::cout);
  std::cout << "(every column grows with load; greedy hot-potato tracks "
               "the congestion-free optimum closely at low k)\n";
}

void distance_sensitivity() {
  print_header("E11", "Distance sensitivity under heavy load (16x16, "
                      "4 packets/node): mean latency by initial distance");
  net::Mesh mesh(2, 16);
  Rng rng(111222);
  auto problem = workload::saturated_random(mesh, 4, rng);

  auto policy = make_policy("restricted");
  sim::Engine engine(mesh, problem, *policy);
  const auto greedy_result = engine.run();
  HP_CHECK(greedy_result.completed, "greedy run did not complete");
  const auto greedy_profile = stats::profile_by_distance(greedy_result);

  const auto sf = routing::run_store_forward(mesh, problem);
  HP_CHECK(sf.completed, "store-and-forward did not complete");
  // Bucket the store-and-forward latencies by distance too.
  std::vector<RunningStat> sf_profile;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const auto d = static_cast<std::size_t>(sf.initial_distance[i]);
    if (sf_profile.size() <= d) sf_profile.resize(d + 1);
    sf_profile[d].add(static_cast<double>(sf.arrival[i]));
  }

  TablePrinter table({"init_dist", "greedy_mean", "greedy_stretch",
                      "store_forward_mean", "sf_stretch", "count"});
  const std::size_t buckets =
      std::min(greedy_profile.by_distance.size(), sf_profile.size());
  for (std::size_t d = 1; d < buckets; d += 3) {
    const auto& g = greedy_profile.by_distance[d];
    const auto& s = sf_profile[d];
    if (g.count() == 0) continue;
    table.row()
        .add(static_cast<std::uint64_t>(d))
        .add(g.mean(), 1)
        .add(g.mean() / static_cast<double>(d), 2)
        .add(s.mean(), 1)
        .add(s.mean() / static_cast<double>(d), 2)
        .add(static_cast<std::uint64_t>(g.count()));
  }
  table.print(std::cout);
  std::cout << "(greedy stretch stays near 1 for short distances — packets "
               "born close to their destination arrive almost immediately, "
               "the property §1 says structured algorithms lack)\n";
}

void brassil_cruz_bound() {
  print_header("E13", "Brassil–Cruz reference bound diam + P + 2(k-1) "
                      "(snake walk, P = n^2 - 1)");
  TablePrinter table({"n", "k", "steps", "bound", "bound/steps"});
  for (int n : {8, 16}) {
    net::Mesh mesh(2, n);
    const double walk = static_cast<double>(mesh.num_nodes()) - 1.0;
    for (std::size_t k :
         {static_cast<std::size_t>(n), static_cast<std::size_t>(n) * n / 4,
          static_cast<std::size_t>(n) * n}) {
      Rng rng(k * 7 + static_cast<std::uint64_t>(n));
      auto problem = workload::random_many_to_many(mesh, k, rng);
      auto policy = make_policy("brassil-cruz", &mesh);
      const auto result = run(mesh, problem, *policy);
      const double bound = core::brassil_cruz_bound(
          mesh.diameter(), walk, static_cast<double>(k));
      HP_CHECK(static_cast<double>(result.steps) <= bound,
               "Brassil–Cruz bound violated");
      table.row()
          .add(std::int64_t{n})
          .add(static_cast<std::uint64_t>(k))
          .add(result.steps)
          .add(bound, 0)
          .add(bound / static_cast<double>(result.steps), 1);
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::load_sensitivity();
  hp::bench::distance_sensitivity();
  hp::bench::brassil_cruz_bound();
  return 0;
}
