// Shared helpers for the experiment harnesses. Each bench binary prints the
// paper-style rows of one experiment from DESIGN.md's index (E1–E16).
#pragma once

#include <cmath>
#include <iostream>
#include <memory>
#include <string>

#include "core/bounds.hpp"
#include "core/checkers.hpp"
#include "core/potential.hpp"
#include "core/surface.hpp"
#include "routing/brassil_cruz.hpp"
#include "routing/ddim_priority.hpp"
#include "routing/greedy_variants.hpp"
#include "routing/perverse.hpp"
#include "routing/restricted_priority.hpp"
#include "routing/single_target.hpp"
#include "sim/engine.hpp"
#include "stats/recorder.hpp"
#include "topology/mesh.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace hp::bench {

inline std::unique_ptr<sim::RoutingPolicy> make_policy(
    const std::string& kind, const net::Network* network = nullptr) {
  using routing::RestrictedPriorityPolicy;
  if (kind == "restricted") {
    return std::make_unique<RestrictedPriorityPolicy>();
  }
  if (kind == "restricted/random") {
    RestrictedPriorityPolicy::Params params;
    params.tie_break = RestrictedPriorityPolicy::TieBreak::kRandom;
    params.deflect = routing::DeflectRule::kRandom;
    return std::make_unique<RestrictedPriorityPolicy>(params);
  }
  if (kind == "restricted/typeA") {
    RestrictedPriorityPolicy::Params params;
    params.tie_break = RestrictedPriorityPolicy::TieBreak::kTypeAFirst;
    return std::make_unique<RestrictedPriorityPolicy>(params);
  }
  if (kind == "restricted/maxadv") {
    RestrictedPriorityPolicy::Params params;
    params.maximize_advancing = true;
    return std::make_unique<RestrictedPriorityPolicy>(params);
  }
  if (kind == "ddim") return std::make_unique<routing::DdimPriorityPolicy>();
  if (kind == "greedy-random") {
    return std::make_unique<routing::GreedyRandomPolicy>();
  }
  if (kind == "furthest-first") {
    return std::make_unique<routing::FurthestFirstPolicy>();
  }
  if (kind == "closest-first") {
    return std::make_unique<routing::ClosestFirstPolicy>();
  }
  if (kind == "perverse") {
    return std::make_unique<routing::PerverseGreedyPolicy>();
  }
  if (kind == "brassil-cruz") {
    const auto* mesh = dynamic_cast<const net::Mesh*>(network);
    HP_REQUIRE(mesh != nullptr && mesh->dim() == 2,
               "brassil-cruz bench policy needs a 2-D mesh");
    return std::make_unique<routing::BrassilCruzPolicy>(
        routing::snake_rank(*mesh));
  }
  if (kind == "single-target") {
    return std::make_unique<routing::SingleTargetPolicy>();
  }
  HP_REQUIRE(false, "unknown bench policy: " + kind);
  return nullptr;
}

/// Runs one problem under one policy and returns the result; dies loudly on
/// livelock or timeout so a regression cannot masquerade as data.
inline sim::RunResult run(const net::Network& network,
                          const workload::Problem& problem,
                          sim::RoutingPolicy& policy,
                          std::uint64_t max_steps = 10'000'000,
                          std::uint64_t seed = 1) {
  sim::EngineConfig config;
  config.max_steps = max_steps;
  config.seed = seed;
  sim::Engine engine(network, problem, policy, config);
  auto result = engine.run();
  HP_CHECK(result.completed, "bench run did not complete: " + problem.name +
                                 " under " + policy.name() +
                                 (result.livelocked ? " (livelock)" : ""));
  return result;
}

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

}  // namespace hp::bench
