// E7 — the Section 5 generalization: on the d-dimensional n^d mesh the
// fewer-good-directions-first, max-advancing greedy class routes k packets
// within 4^{d+1−1/d} · d^{1−1/d} · k^{1/d} · n^{d−1} steps.
//
// Also reports the empirical Property 8 status of the generalized
// potential (same C_p rules with restricted = one good direction,
// c_init = 2n) — the paper omits the formal d-dim proof, so this is an
// honest measurement, not an assertion (see EXPERIMENTS.md).
#include "bench_common.hpp"

namespace hp::bench {
namespace {

void ddim_sweep() {
  print_header("E7a", "Section 5 bound sweep on d-dimensional meshes");
  TablePrinter table({"d", "n", "k", "steps", "bound", "bound/steps",
                      "deflections"});
  Rng rng(77007);
  struct Shape {
    int d, n;
  };
  for (Shape shape : {Shape{3, 4}, Shape{3, 8}, Shape{4, 4}}) {
    net::Mesh mesh(shape.d, shape.n);
    const auto nodes = mesh.num_nodes();
    for (std::size_t k : {nodes / 8, nodes / 2, nodes}) {
      if (k == 0) continue;
      auto problem = workload::random_many_to_many(mesh, k, rng);
      auto policy = make_policy("ddim");
      const auto result = run(mesh, problem, *policy);
      const double bound =
          core::ddim_bound(shape.d, shape.n, static_cast<double>(k));
      HP_CHECK(static_cast<double>(result.steps) <= bound,
               "Section 5 bound violated");
      table.row()
          .add(std::int64_t{shape.d})
          .add(std::int64_t{shape.n})
          .add(static_cast<std::uint64_t>(k))
          .add(result.steps)
          .add(bound, 0)
          .add(bound / static_cast<double>(result.steps), 1)
          .add(result.total_deflections);
    }
  }
  table.print(std::cout);
  std::cout << "(the d-dim bound deteriorates exponentially with d — the "
               "paper's open problem — while measured times barely move: "
               "higher dimensions route FASTER thanks to extra links)\n";
}

void ddim_vs_2d() {
  print_header("E7b", "Dimension helps in practice: same k on ~same node "
                      "count, d = 2 vs 3");
  TablePrinter table({"mesh", "k", "steps", "mean_latency"});
  Rng rng(123321);
  const std::size_t k = 256;
  {
    net::Mesh mesh(2, 16);  // 256 nodes
    auto problem = workload::random_many_to_many(mesh, k, rng);
    auto policy = make_policy("ddim");
    const auto result = run(mesh, problem, *policy);
    const auto summary = stats::summarize_latency(result);
    table.row().add(mesh.name()).add(static_cast<std::uint64_t>(k))
        .add(result.steps).add(summary.latency.mean(), 1);
  }
  {
    net::Mesh mesh(3, 6);  // 216 nodes
    auto problem = workload::random_many_to_many(mesh, k, rng);
    auto policy = make_policy("ddim");
    const auto result = run(mesh, problem, *policy);
    const auto summary = stats::summarize_latency(result);
    table.row().add(mesh.name()).add(static_cast<std::uint64_t>(k))
        .add(result.steps).add(summary.latency.mean(), 1);
  }
  table.print(std::cout);
}

void generalized_potential() {
  print_header("E7c", "Generalized potential (2-D rules lifted to d dims, "
                      "c_init = 2n): empirical Property 8 status over 10 "
                      "seeds per dimension");
  TablePrinter table({"d", "n", "min_slack", "P8_violations",
                      "viol_rate_per_node_step"});
  for (int d : {2, 3, 4, 5}) {
    const int n = d == 2 ? 16 : (d == 3 ? 6 : 3);
    net::Mesh mesh(d, n);
    std::int64_t min_slack = 0;
    std::size_t violations = 0;
    double node_steps = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      Rng rng(seed * 2027 + static_cast<std::uint64_t>(d));
      auto problem =
          workload::random_many_to_many(mesh, mesh.num_nodes(), rng);
      auto policy = make_policy("ddim");
      sim::Engine engine(mesh, problem, *policy);
      core::PotentialTracker::Config config;
      config.c_init = 2 * n;
      config.d = d;
      core::PotentialTracker potential(mesh, engine, config);
      engine.add_observer(&potential);
      const auto result = engine.run();
      HP_CHECK(result.completed, "generalized potential run did not complete");
      min_slack = std::min(min_slack, potential.min_slack());
      violations += potential.property8_violations().size();
      node_steps += static_cast<double>(result.total_advances +
                                        result.total_deflections);
    }
    table.row()
        .add(std::int64_t{d})
        .add(std::int64_t{n})
        .add(min_slack)
        .add(static_cast<std::uint64_t>(violations))
        .add(static_cast<double>(violations) / std::max(1.0, node_steps), 6);
  }
  table.print(std::cout);
  std::cout << "(d = 2 must be clean — that is Lemma 19. For d >= 3 the "
               "naive lift occasionally fails Property 8 (a deflected "
               "packet with 2..d-1 good directions is covered by advancers "
               "carrying no spare potential) — shallow (slack >= -2d) and "
               "rare, but real: exactly the gap that forces Section 5's "
               "heavier construction with M = 4^d n^{d-1}, whose details "
               "are only in [Hal]/[BHS].)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::ddim_sweep();
  hp::bench::ddim_vs_2d();
  hp::bench::generalized_potential();
  return 0;
}
