// E16 — engine micro-benchmarks (google-benchmark): simulation throughput
// in node-routing operations and full steps per second, plus the topology
// primitives the inner loop leans on. After the google-benchmark suite, a
// direct-measurement pass writes BENCH_engine.json with steps/sec,
// per-step ns, and peak in-flight for the headline configurations.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench_json.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

void BM_MeshDistance(benchmark::State& state) {
  net::Mesh mesh(2, 64);
  Rng rng(1);
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
  for (int i = 0; i < 1024; ++i) {
    pairs.emplace_back(static_cast<net::NodeId>(rng.uniform(mesh.num_nodes())),
                       static_cast<net::NodeId>(rng.uniform(mesh.num_nodes())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(mesh.distance(a, b));
  }
}
BENCHMARK(BM_MeshDistance);

void BM_GoodDirs(benchmark::State& state) {
  net::Mesh mesh(static_cast<int>(state.range(0)), 8);
  Rng rng(2);
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
  for (int i = 0; i < 1024; ++i) {
    pairs.emplace_back(static_cast<net::NodeId>(rng.uniform(mesh.num_nodes())),
                       static_cast<net::NodeId>(rng.uniform(mesh.num_nodes())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(mesh.good_dirs(a, b));
  }
}
BENCHMARK(BM_GoodDirs)->Arg(2)->Arg(3)->Arg(4);

void BM_EngineStep(benchmark::State& state) {
  // Cost of one synchronous step at saturation (4 packets per node) on an
  // n×n mesh; reported as packet-moves per second.
  const int n = static_cast<int>(state.range(0));
  net::Mesh mesh(2, n);
  std::uint64_t moves = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    auto problem = workload::saturated_random(mesh, 4, rng);
    routing::RestrictedPriorityPolicy policy;
    sim::Engine engine(mesh, problem, policy);
    state.ResumeTiming();
    while (engine.step()) {
      moves += engine.in_flight();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moves));
}
BENCHMARK(BM_EngineStep)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_FullRunPermutation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  net::Mesh mesh(2, n);
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(11);
    auto problem = workload::random_permutation(mesh, rng);
    routing::RestrictedPriorityPolicy policy;
    sim::Engine engine(mesh, problem, policy);
    state.ResumeTiming();
    auto result = engine.run();
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(BM_FullRunPermutation)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_HypercubeRun(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  net::Hypercube cube(m);
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(13);
    auto problem = workload::random_permutation(cube, rng);
    routing::RestrictedPriorityPolicy policy;
    sim::Engine engine(cube, problem, policy);
    state.ResumeTiming();
    auto result = engine.run();
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(BM_HypercubeRun)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

/// Observability attachment for a measured run: nothing (the regression
/// baseline), the metrics observer, or the trace observer. The _metrics /
/// _trace entries quantify the observer overhead, and bench_compare holds
/// all three to their committed baselines — the off-path one guards the
/// "untouched hot path" claim.
enum class ObsMode { kOff, kMetrics, kTrace };

const char* obs_suffix(ObsMode mode) {
  switch (mode) {
    case ObsMode::kMetrics:
      return "_metrics";
    case ObsMode::kTrace:
      return "_trace";
    default:
      return "";
  }
}

/// One timed batch run: a random permutation on the n×n mesh (k = n²
/// packets), drained to completion. Reports wall time, steps/sec, mean ns
/// per step, and the peak in-flight population.
void measure_permutation(bench::JsonReport& report, int n, int threads,
                         ObsMode mode = ObsMode::kOff) {
  net::Mesh mesh(2, n);
  Rng rng(11);
  auto problem = workload::random_permutation(mesh, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::EngineConfig config;
  config.num_threads = threads;
  config.archive_arrivals = false;
  sim::Engine engine(mesh, problem, policy, config);

  obs::MetricsRegistry registry;
  std::unique_ptr<obs::EngineMetrics> metrics;
  obs::TraceRing ring(std::size_t{1} << 16);
  std::unique_ptr<obs::TraceObserver> tracer;
  if (mode == ObsMode::kMetrics) {
    metrics = std::make_unique<obs::EngineMetrics>(registry);
    engine.add_observer(metrics.get());
  } else if (mode == ObsMode::kTrace) {
    tracer = std::make_unique<obs::TraceObserver>(ring);
    engine.add_observer(tracer.get());
  }

  std::size_t peak = engine.in_flight();
  std::uint64_t steps = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (engine.step()) {
    ++steps;
    peak = std::max(peak, engine.in_flight());
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(t1 - t0).count();

  report.add("permutation_n" + std::to_string(n) + "_t" +
                 std::to_string(threads) + obs_suffix(mode),
             {{"nodes", static_cast<double>(mesh.num_nodes())},
              {"packets", static_cast<double>(problem.size())},
              {"threads", static_cast<double>(threads)},
              {"steps", static_cast<double>(steps)},
              {"wall_ms", sec * 1e3},
              {"steps_per_sec", static_cast<double>(steps) / sec},
              {"per_step_ns", sec * 1e9 / static_cast<double>(steps)},
              {"peak_in_flight", static_cast<double>(peak)}});
}

/// One point of the n-scaling series (docs/SCALE.md): a short saturated
/// run on the side×side mesh under the default or lean memory profile.
/// Reports steps/sec plus bytes/node from Engine::memory_stats() —
/// bench_compare gates only steps_per_sec (bytes/node is capacity-exact
/// but documented in docs/SCALE.md rather than diff-gated).
void measure_scale(bench::JsonReport& report, int side,
                   sim::MemoryProfile profile, std::uint64_t steps) {
  net::Mesh mesh(2, side);
  Rng rng(17);
  auto problem = workload::saturated_random(mesh, 4, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::EngineConfig config;
  config.archive_arrivals = false;
  config.memory = profile;
  sim::Engine engine(mesh, problem, policy, config);

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = engine.run_for(steps);
  const auto t1 = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  const double executed = static_cast<double>(result.steps_executed);

  const sim::EngineMemoryStats stats = engine.memory_stats();
  const double nodes = static_cast<double>(mesh.num_nodes());
  report.add("scale_n" + std::to_string(side) +
                 (profile == sim::MemoryProfile::kLean ? "_lean" : "_default"),
             {{"nodes", nodes},
              {"packets", static_cast<double>(problem.size())},
              {"steps", executed},
              {"wall_ms", sec * 1e3},
              {"steps_per_sec", executed / sec},
              {"per_step_ns", sec * 1e9 / executed},
              {"bytes_per_node", static_cast<double>(stats.total()) / nodes},
              {"flight_bytes", static_cast<double>(stats.flight_bytes)},
              {"topology_bytes", static_cast<double>(stats.topology_bytes)}});
}

void write_engine_json() {
  bench::JsonReport report("hotpotato-bench-engine-v1");
  // Headline configuration for the flight-table refactor: n = 256 mesh,
  // k = n² permutation — big enough that per-step overhead dominates.
  // The t1/t2/t4/t8 series is the phase-pipeline scaling-efficiency
  // curve; CI asserts t4 ≥ t1 via bench_compare --scaling.
  measure_permutation(report, 256, 1);
  measure_permutation(report, 256, 2);
  measure_permutation(report, 256, 4);
  measure_permutation(report, 256, 8);
  measure_permutation(report, 64, 1);
  // Observer overhead: same n = 64 run with the metrics / trace observers
  // attached (the n = 64 off entry above is their baseline).
  measure_permutation(report, 64, 1, ObsMode::kMetrics);
  measure_permutation(report, 64, 1, ObsMode::kTrace);
  // n-scaling series (docs/SCALE.md): default vs lean memory profile at
  // growing node counts, a few saturated steps each so the series stays
  // CI-cheap. bytes/node must fall in lean mode at n ≥ 1024.
  measure_scale(report, 256, sim::MemoryProfile::kDefault, 12);
  measure_scale(report, 256, sim::MemoryProfile::kLean, 12);
  measure_scale(report, 512, sim::MemoryProfile::kDefault, 8);
  measure_scale(report, 512, sim::MemoryProfile::kLean, 8);
  measure_scale(report, 1024, sim::MemoryProfile::kDefault, 4);
  measure_scale(report, 1024, sim::MemoryProfile::kLean, 4);
  measure_scale(report, 2048, sim::MemoryProfile::kDefault, 2);
  measure_scale(report, 2048, sim::MemoryProfile::kLean, 2);
  report.write("BENCH_engine.json");
}

}  // namespace
}  // namespace hp

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  hp::write_engine_json();
  return 0;
}
