// E16 — engine micro-benchmarks (google-benchmark): simulation throughput
// in node-routing operations and full steps per second, plus the topology
// primitives the inner loop leans on. After the google-benchmark suite, a
// direct-measurement pass writes BENCH_engine.json with steps/sec,
// per-step ns, and peak in-flight for the headline configurations.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench_json.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

void BM_MeshDistance(benchmark::State& state) {
  net::Mesh mesh(2, 64);
  Rng rng(1);
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
  for (int i = 0; i < 1024; ++i) {
    pairs.emplace_back(static_cast<net::NodeId>(rng.uniform(mesh.num_nodes())),
                       static_cast<net::NodeId>(rng.uniform(mesh.num_nodes())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(mesh.distance(a, b));
  }
}
BENCHMARK(BM_MeshDistance);

void BM_GoodDirs(benchmark::State& state) {
  net::Mesh mesh(static_cast<int>(state.range(0)), 8);
  Rng rng(2);
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
  for (int i = 0; i < 1024; ++i) {
    pairs.emplace_back(static_cast<net::NodeId>(rng.uniform(mesh.num_nodes())),
                       static_cast<net::NodeId>(rng.uniform(mesh.num_nodes())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(mesh.good_dirs(a, b));
  }
}
BENCHMARK(BM_GoodDirs)->Arg(2)->Arg(3)->Arg(4);

void BM_EngineStep(benchmark::State& state) {
  // Cost of one synchronous step at saturation (4 packets per node) on an
  // n×n mesh; reported as packet-moves per second.
  const int n = static_cast<int>(state.range(0));
  net::Mesh mesh(2, n);
  std::uint64_t moves = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    auto problem = workload::saturated_random(mesh, 4, rng);
    routing::RestrictedPriorityPolicy policy;
    sim::Engine engine(mesh, problem, policy);
    state.ResumeTiming();
    while (engine.step()) {
      moves += engine.in_flight();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moves));
}
BENCHMARK(BM_EngineStep)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_FullRunPermutation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  net::Mesh mesh(2, n);
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(11);
    auto problem = workload::random_permutation(mesh, rng);
    routing::RestrictedPriorityPolicy policy;
    sim::Engine engine(mesh, problem, policy);
    state.ResumeTiming();
    auto result = engine.run();
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(BM_FullRunPermutation)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_HypercubeRun(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  net::Hypercube cube(m);
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(13);
    auto problem = workload::random_permutation(cube, rng);
    routing::RestrictedPriorityPolicy policy;
    sim::Engine engine(cube, problem, policy);
    state.ResumeTiming();
    auto result = engine.run();
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(BM_HypercubeRun)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

/// Observability attachment for a measured run: nothing (the regression
/// baseline), the metrics observer, or the trace observer. The _metrics /
/// _trace entries quantify the observer overhead, and bench_compare holds
/// all three to their committed baselines — the off-path one guards the
/// "untouched hot path" claim.
enum class ObsMode { kOff, kMetrics, kTrace };

const char* obs_suffix(ObsMode mode) {
  switch (mode) {
    case ObsMode::kMetrics:
      return "_metrics";
    case ObsMode::kTrace:
      return "_trace";
    default:
      return "";
  }
}

/// One timed batch run: a random permutation on the n×n mesh (k = n²
/// packets), drained to completion. Reports wall time, steps/sec, mean ns
/// per step, and the peak in-flight population.
void measure_permutation(bench::JsonReport& report, int n, int threads,
                         ObsMode mode = ObsMode::kOff) {
  net::Mesh mesh(2, n);
  Rng rng(11);
  auto problem = workload::random_permutation(mesh, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::EngineConfig config;
  config.num_threads = threads;
  config.archive_arrivals = false;
  sim::Engine engine(mesh, problem, policy, config);

  obs::MetricsRegistry registry;
  std::unique_ptr<obs::EngineMetrics> metrics;
  obs::TraceRing ring(std::size_t{1} << 16);
  std::unique_ptr<obs::TraceObserver> tracer;
  if (mode == ObsMode::kMetrics) {
    metrics = std::make_unique<obs::EngineMetrics>(registry);
    engine.add_observer(metrics.get());
  } else if (mode == ObsMode::kTrace) {
    tracer = std::make_unique<obs::TraceObserver>(ring);
    engine.add_observer(tracer.get());
  }

  std::size_t peak = engine.in_flight();
  std::uint64_t steps = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (engine.step()) {
    ++steps;
    peak = std::max(peak, engine.in_flight());
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(t1 - t0).count();

  report.add("permutation_n" + std::to_string(n) + "_t" +
                 std::to_string(threads) + obs_suffix(mode),
             {{"nodes", static_cast<double>(mesh.num_nodes())},
              {"packets", static_cast<double>(problem.size())},
              {"threads", static_cast<double>(threads)},
              {"steps", static_cast<double>(steps)},
              {"wall_ms", sec * 1e3},
              {"steps_per_sec", static_cast<double>(steps) / sec},
              {"per_step_ns", sec * 1e9 / static_cast<double>(steps)},
              {"peak_in_flight", static_cast<double>(peak)}});
}

void write_engine_json() {
  bench::JsonReport report("hotpotato-bench-engine-v1");
  // Headline configuration for the flight-table refactor: n = 256 mesh,
  // k = n² permutation — big enough that per-step overhead dominates.
  // The t1/t2/t4/t8 series is the phase-pipeline scaling-efficiency
  // curve; CI asserts t4 ≥ t1 via bench_compare --scaling.
  measure_permutation(report, 256, 1);
  measure_permutation(report, 256, 2);
  measure_permutation(report, 256, 4);
  measure_permutation(report, 256, 8);
  measure_permutation(report, 64, 1);
  // Observer overhead: same n = 64 run with the metrics / trace observers
  // attached (the n = 64 off entry above is their baseline).
  measure_permutation(report, 64, 1, ObsMode::kMetrics);
  measure_permutation(report, 64, 1, ObsMode::kTrace);
  report.write("BENCH_engine.json");
}

}  // namespace
}  // namespace hp

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  hp::write_engine_json();
  return 0;
}
