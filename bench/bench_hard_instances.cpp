// E19 — adversarial permutations (§6.1, [BCS]): how much slower than a
// random permutation can a hill-climbing search push the restricted-
// priority algorithm? [BCS] proves Ω(n²) worst cases exist; the search
// exhibits the average-vs-adversarial gap and produces stress instances.
#include "core/hard_instance.hpp"

#include "bench_common.hpp"

namespace hp::bench {
namespace {

void search_table() {
  print_header("E19", "Hard-permutation search (hill climbing, destination "
                      "swaps) vs random permutations");
  TablePrinter table({"n", "policy", "random_perm", "hardest_found",
                      "slowdown", "2n-2", "8n^2", "evals"});
  for (int n : {6, 8, 10}) {
    net::Mesh mesh(2, n);
    for (const char* kind : {"restricted", "furthest-first"}) {
      core::HardSearchConfig config;
      config.evaluations = 3000;
      config.restarts = 6;
      config.swaps_per_mutation = 2;
      config.seed = static_cast<std::uint64_t>(n) * 17 + 3;
      const auto result = core::search_hard_permutation(
          mesh, [&] { return make_policy(kind); }, config);
      table.row()
          .add(std::int64_t{n})
          .add(kind)
          .add(result.baseline_steps)
          .add(result.worst_steps)
          .add(static_cast<double>(result.worst_steps) /
                   static_cast<double>(result.baseline_steps),
               2)
          .add(std::int64_t{2 * n - 2})
          .add(core::remark_permutation_bound(n), 0)
          .add(static_cast<std::uint64_t>(result.evaluations));
    }
  }
  table.print(std::cout);
  std::cout << "(random permutations finish near the 2n-2 distance bound; "
               "the search pushes the same algorithms measurably higher — "
               "the direction of [BCS]'s Omega(n^2) adversarial "
               "construction, which shows the paper's analysis is tight "
               "for this class)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::search_table();
  return 0;
}
