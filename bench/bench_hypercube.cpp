// E14 — Hajek's hypercube bound [Haj]: fixed-priority greedy hot-potato
// routing on the 2^m-node hypercube evacuates k packets within 2k + m.
#include "bench_common.hpp"
#include "routing/hajek_hypercube.hpp"
#include "topology/hypercube.hpp"

namespace hp::bench {
namespace {

void hajek_sweep() {
  print_header("E14a", "Hajek bound 2k + m on the hypercube (random "
                       "many-to-many, worst of 5 seeds)");
  TablePrinter table({"m", "nodes", "k", "worst_steps", "bound(2k+m)",
                      "bound/steps"});
  for (int m : {4, 6, 8, 10}) {
    net::Hypercube cube(m);
    const auto nodes = cube.num_nodes();
    for (std::size_t k : {nodes / 4, nodes, 2 * nodes}) {
      if (k == 0) continue;
      std::uint64_t worst = 0;
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        Rng rng(seed * 997 + k);
        auto problem = workload::random_many_to_many(cube, k, rng);
        routing::HajekHypercubePolicy policy;
        const auto result = run(cube, problem, policy);
        worst = std::max(worst, result.steps);
      }
      const double bound = core::hajek_bound(static_cast<double>(k), m);
      HP_CHECK(static_cast<double>(worst) <= bound, "Hajek bound violated");
      table.row()
          .add(std::int64_t{m})
          .add(static_cast<std::uint64_t>(nodes))
          .add(static_cast<std::uint64_t>(k))
          .add(worst)
          .add(bound, 0)
          .add(bound / static_cast<double>(worst), 1);
    }
  }
  table.print(std::cout);
}

void permutations() {
  print_header("E14b", "Hypercube permutations (Borodin–Hopcroft setting): "
                       "greedy performs near the m lower bound");
  TablePrinter table({"m", "k=2^m", "steps", "lb(diam=m)", "steps/m"});
  for (int m : {4, 6, 8, 10}) {
    net::Hypercube cube(m);
    Rng rng(static_cast<std::uint64_t>(m) * 13);
    auto problem = workload::random_permutation(cube, rng);
    routing::HajekHypercubePolicy policy;
    const auto result = run(cube, problem, policy);
    table.row()
        .add(std::int64_t{m})
        .add(static_cast<std::uint64_t>(cube.num_nodes()))
        .add(result.steps)
        .add(std::int64_t{m})
        .add(static_cast<double>(result.steps) / m, 2);
  }
  table.print(std::cout);
  std::cout << "(\"experimentally the algorithm appears promising\" [BH]: "
               "random permutations finish within a small multiple of the "
               "diameter, far under 2k + m)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::hajek_sweep();
  hp::bench::permutations();
  return 0;
}
