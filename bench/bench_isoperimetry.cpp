// E5/E6 — the isoperimetric machinery:
//   E5: Claim 13 (surface ≥ 2d·V^{(d−1)/d}) over boxes, lines, crosses,
//       staircases and random blobs in d = 1..4, plus the equation (1)
//       projection bound.
//   E6: Lemma 14 measured during routing — F(t) vs (2d)^{1/d}·B(t)^{(d−1)/d}
//       on congested instances.
#include "core/isoperimetry.hpp"

#include "bench_common.hpp"

namespace hp::bench {
namespace {

void claim13_shapes() {
  print_header("E5a", "Claim 13 on canonical shapes: surface vs 2d*V^((d-1)/d)");
  TablePrinter table(
      {"d", "shape", "V", "surface", "bound", "surface/bound", "proj_lb"});
  auto emit = [&](int d, const std::string& name, const core::CellSet& set) {
    const double bound =
        core::claim13_bound(d, static_cast<double>(set.volume()));
    const auto surf = set.surface_area();
    HP_CHECK(static_cast<double>(surf) >= bound - 1e-9,
             "Claim 13 violated on " + name);
    table.row()
        .add(std::int64_t{d})
        .add(name)
        .add(static_cast<std::uint64_t>(set.volume()))
        .add(static_cast<std::uint64_t>(surf))
        .add(bound, 1)
        .add(static_cast<double>(surf) / bound, 3)
        .add(static_cast<std::uint64_t>(
            core::projection_surface_lower_bound(set)));
  };
  for (int d : {2, 3}) {
    std::vector<int> cube(static_cast<std::size_t>(d), 4);
    emit(d, "cube-4", core::make_box(cube));
    std::vector<int> slab(static_cast<std::size_t>(d), 2);
    slab[0] = 16;
    emit(d, "slab-16x2", core::make_box(slab));
    emit(d, "line-32", core::make_line(d, 0, 32));
    emit(d, "cross-8", core::make_cross(d, 8));
  }
  emit(2, "staircase-24", core::make_staircase(2, 24));
  table.print(std::cout);
  std::cout << "(cubes meet the bound with equality — they are the "
               "extremal shapes of the entropy argument)\n";
}

void claim13_blobs() {
  print_header("E5b", "Claim 13 on random connected blobs (min ratio over "
                      "50 blobs per cell)");
  TablePrinter table({"d", "V", "min surface/bound", "mean surface/bound"});
  for (int d : {1, 2, 3, 4}) {
    for (std::size_t volume : {8u, 64u, 256u}) {
      Rng rng(static_cast<std::uint64_t>(d) * 7 + volume);
      double min_ratio = 1e300, total = 0;
      const int trials = 50;
      for (int t = 0; t < trials; ++t) {
        auto blob = core::make_random_blob(d, volume, rng);
        const double ratio =
            static_cast<double>(blob.surface_area()) /
            core::claim13_bound(d, static_cast<double>(volume));
        HP_CHECK(ratio >= 1.0 - 1e-9, "Claim 13 violated by a blob");
        min_ratio = std::min(min_ratio, ratio);
        total += ratio;
      }
      table.row()
          .add(std::int64_t{d})
          .add(static_cast<std::uint64_t>(volume))
          .add(min_ratio, 3)
          .add(total / trials, 3);
    }
  }
  table.print(std::cout);
}

void lemma14_in_run() {
  print_header("E6", "Lemma 14 during routing: F(t) vs (2d)^(1/d)*B(t)^((d-1)/d)");
  TablePrinter table({"n", "workload", "steps", "max B(t)", "max F(t)",
                      "min F/bound", "violations"});
  for (int n : {8, 16, 32}) {
    net::Mesh mesh(2, n);
    Rng rng(6000 + static_cast<std::uint64_t>(n));
    std::vector<workload::Problem> problems;
    problems.push_back(workload::saturated_random(mesh, 4, rng));
    problems.push_back(workload::hotspot(
        mesh, static_cast<std::size_t>(n) * n, 1, rng));
    for (const auto& problem : problems) {
      auto policy = make_policy("restricted");
      sim::Engine engine(mesh, problem, *policy);
      core::SurfaceTracker surface(mesh);
      engine.add_observer(&surface);
      const auto result = engine.run();
      HP_CHECK(result.completed, "lemma14 run did not complete");
      std::int64_t max_b = 0, max_f = 0;
      for (auto b : surface.b_series()) max_b = std::max(max_b, b);
      for (auto f : surface.f_series()) max_f = std::max(max_f, f);
      const double min_ratio = surface.min_lemma14_ratio();
      table.row()
          .add(std::int64_t{n})
          .add(problem.name)
          .add(result.steps)
          .add(max_b)
          .add(max_f)
          .add(min_ratio > 1e299 ? -1.0 : min_ratio, 3)
          .add(static_cast<std::uint64_t>(surface.lemma14_violations().size()));
    }
  }
  // The d = 3 case of the same lemma, measured during routing.
  {
    net::Mesh mesh(3, 6);
    Rng rng(6333);
    auto problem = workload::saturated_random(mesh, 6, rng);
    auto policy = make_policy("ddim");
    sim::Engine engine(mesh, problem, *policy);
    core::SurfaceTracker surface(mesh);
    engine.add_observer(&surface);
    const auto result = engine.run();
    HP_CHECK(result.completed, "d=3 lemma14 run did not complete");
    std::int64_t max_b = 0, max_f = 0;
    for (auto b : surface.b_series()) max_b = std::max(max_b, b);
    for (auto f : surface.f_series()) max_f = std::max(max_f, f);
    table.row()
        .add(std::int64_t{6})
        .add("saturated-6 (d=3)")
        .add(result.steps)
        .add(max_b)
        .add(max_f)
        .add(surface.min_lemma14_ratio() > 1e299
                 ? -1.0
                 : surface.min_lemma14_ratio(),
             3)
        .add(static_cast<std::uint64_t>(surface.lemma14_violations().size()));
  }
  table.print(std::cout);
  std::cout << "(min F/bound >= 1 everywhere reproduces Lemma 14 — also in "
               "the d = 3 row; -1 means the run never had a bad node)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::claim13_shapes();
  hp::bench::claim13_blobs();
  hp::bench::lemma14_in_run();
  return 0;
}
