// Machine-readable benchmark output: a flat JSON document mapping entry
// names to numeric metrics, written next to the human-readable tables so
// CI and plotting scripts can track throughput without parsing stdout.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace hp::bench {

/// Accumulates named metric groups and writes them as one JSON object:
/// { "schema": ..., "entries": { name: { metric: value, ... }, ... } }
class JsonReport {
 public:
  explicit JsonReport(std::string schema) : schema_(std::move(schema)) {}

  void add(const std::string& name,
           std::vector<std::pair<std::string, double>> metrics) {
    entries_.emplace_back(name, std::move(metrics));
  }

  void write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return;
    }
    out << std::setprecision(12);
    out << "{\n  \"schema\": \"" << schema_ << "\",\n  \"entries\": {\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto& [name, metrics] = entries_[i];
      out << "    \"" << name << "\": {";
      for (std::size_t j = 0; j < metrics.size(); ++j) {
        out << "\"" << metrics[j].first << "\": " << metrics[j].second;
        if (j + 1 < metrics.size()) out << ", ";
      }
      out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "  }\n}\n";
    std::cout << "wrote " << path << " (" << entries_.size() << " entries)\n";
  }

 private:
  std::string schema_;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      entries_;
};

}  // namespace hp::bench
