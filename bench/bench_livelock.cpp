// E12 — livelock (Section 1.2): hot-potato routing without greediness
// livelocks trivially; adversarially perverse (but greedy) tie-breaking is
// probed by randomized search; the restricted-priority class never cycles
// (Theorem 20 guarantees termination).
#include "bench_common.hpp"

namespace hp::bench {
namespace {

void bounce_back_proof() {
  print_header("E12a", "Non-greedy hot-potato livelocks: bounce-back policy "
                       "on a single packet (proven configuration cycle)");
  net::Mesh mesh(2, 8);
  workload::Problem problem;
  problem.name = "one-packet";
  problem.packets.push_back({0, static_cast<net::NodeId>(mesh.num_nodes()) - 1});
  routing::BounceBackPolicy policy;
  sim::EngineConfig config;
  config.max_steps = 1000;
  sim::Engine engine(mesh, problem, policy, config);
  const auto result = engine.run();
  std::cout << "policy=" << policy.name()
            << " livelocked=" << (result.livelocked ? "yes" : "no")
            << " detected_after_steps=" << result.steps_executed << "\n";
  HP_CHECK(result.livelocked, "bounce-back failed to livelock?!");
}

void search_table() {
  print_header("E12b", "Livelock search over random small instances "
                       "(deterministic policies, repeated state = proof)");
  TablePrinter table({"network", "policy", "packets", "instances",
                      "livelocks"});
  struct Setup {
    const char* net;
    bool wrap;
    int side;
  };
  for (Setup setup : {Setup{"mesh-4", false, 4}, Setup{"torus-4", true, 4}}) {
    net::Mesh mesh(2, setup.side, setup.wrap);
    for (std::size_t packets : {4u, 8u, 12u}) {
      {
        routing::PerverseGreedyPolicy perverse;
        const auto result = routing::livelock_search(
            mesh, perverse, packets, /*instances=*/2000,
            /*max_steps=*/50'000, /*seed=*/packets);
        table.row()
            .add(setup.net)
            .add(perverse.name())
            .add(static_cast<std::uint64_t>(packets))
            .add(static_cast<std::uint64_t>(result.instances_tried))
            .add(static_cast<std::uint64_t>(result.livelocks_found));
      }
      {
        routing::RestrictedPriorityPolicy restricted;
        const auto result = routing::livelock_search(
            mesh, restricted, packets, /*instances=*/2000,
            /*max_steps=*/50'000, /*seed=*/packets + 1);
        HP_CHECK(result.livelocks_found == 0,
                 "restricted-priority livelocked — Theorem 20 refuted?!");
        table.row()
            .add(setup.net)
            .add(restricted.name())
            .add(static_cast<std::uint64_t>(packets))
            .add(static_cast<std::uint64_t>(result.instances_tried))
            .add(static_cast<std::uint64_t>(result.livelocks_found));
      }
    }
  }
  table.print(std::cout);
  std::cout
      << "(the paper cites [NS1],[Haj] for greedy livelock constructions; "
         "they rely on adversarial choices beyond a uniform local rule — "
         "any nonzero count above is a found instance, a zero for "
         "perverse-greedy is a negative search result, and zeros for "
         "restricted-priority reproduce the Theorem 20 guarantee)\n";
}

void bounce_everywhere() {
  print_header("E12c", "Bounce-back livelocks on virtually every instance");
  net::Mesh mesh(2, 4);
  routing::BounceBackPolicy policy;
  const auto result = routing::livelock_search(mesh, policy, 3, 500, 5'000, 9);
  std::cout << "instances=" << result.instances_tried
            << " livelocks=" << result.livelocks_found << " ("
            << 100.0 * static_cast<double>(result.livelocks_found) /
                   static_cast<double>(result.instances_tried)
            << "%)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::bounce_back_proof();
  hp::bench::search_table();
  hp::bench::bounce_everywhere();
  return 0;
}
