// E20 — Section 6's open problems, probed empirically:
//   (a) sparse requests: the paper calls its k-dependence suboptimal for
//       k ≪ n². We fit the measured growth exponent of T(k).
//   (b) small maximum distance: Section 6 conjectures a much better bound
//       when every packet starts close to its destination (the missing
//       piece is that deflections must not carry packets far away). We
//       measure T against d_max and against the later [BTS]/[BRS] bound
//       2(k−1) + d_max.
//   (c) permutation routing: "intuitively, permutation routing should
//       terminate faster than the single destination case" — measured
//       scaling of permutation time vs n against both 8n² and 2n−2.
#include "bench_common.hpp"

namespace hp::bench {
namespace {

void sparse_k() {
  print_header("E20a", "Sparse requests (k << n^2, n = 32): measured "
                       "growth vs the bound's sqrt(k)");
  TablePrinter table({"k", "mean_steps", "growth_vs_prev",
                      "sqrt_growth_would_be"});
  net::Mesh mesh(2, 32);
  double prev = 0;
  for (std::size_t k : {8u, 16u, 32u, 64u, 128u, 256u}) {
    double total = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      Rng rng(k * 131 + static_cast<std::uint64_t>(t));
      auto problem = workload::random_many_to_many(mesh, k, rng);
      auto policy = make_policy("restricted");
      total += static_cast<double>(run(mesh, problem, *policy).steps);
    }
    const double mean = total / trials;
    table.row()
        .add(static_cast<std::uint64_t>(k))
        .add(mean, 1)
        .add(prev > 0 ? mean / prev : 0.0, 2)
        .add(std::sqrt(2.0), 2);
    prev = mean;
  }
  table.print(std::cout);
  std::cout << "(measured growth per k-doubling is far below the bound's "
               "sqrt(2) = 1.41 at low load — routing time is dominated by "
               "the max distance, confirming the bound's k-dependence is "
               "pessimistic for sparse requests, as Section 6 suspects)\n";
}

void small_distance() {
  print_header("E20b", "Small maximum distance (n = 32, k = 256, all "
                       "origins within d_max of their destinations)");
  TablePrinter table({"d_max", "steps", "bts(2(k-1)+dmax)", "thm20",
                      "steps/d_max", "max_detour"});
  net::Mesh mesh(2, 32);
  for (int dmax : {2, 4, 8, 16, 32}) {
    Rng rng(static_cast<std::uint64_t>(dmax) * 11 + 2);
    // Local workload: each packet's destination is a random node within
    // L1 distance d_max of its origin.
    workload::Problem problem;
    problem.name = "local-d" + std::to_string(dmax);
    std::vector<int> used(mesh.num_nodes(), 0);
    while (problem.packets.size() < 256) {
      const auto src =
          static_cast<net::NodeId>(rng.uniform(mesh.num_nodes()));
      if (used[static_cast<std::size_t>(src)] >= mesh.degree(src)) continue;
      const auto dst =
          static_cast<net::NodeId>(rng.uniform(mesh.num_nodes()));
      if (mesh.distance(src, dst) > dmax || src == dst) continue;
      ++used[static_cast<std::size_t>(src)];
      problem.packets.push_back({src, dst});
    }
    auto policy = make_policy("restricted");
    const auto result = run(mesh, problem, *policy);
    // Largest per-packet latency overshoot beyond its own distance: how
    // far deflections actually carry packets (Section 6's missing lemma).
    std::uint64_t max_detour = 0;
    for (const auto& p : result.packets) {
      max_detour = std::max(
          max_detour, p.arrived_at - static_cast<std::uint64_t>(
                                         p.initial_distance));
    }
    table.row()
        .add(std::int64_t{dmax})
        .add(result.steps)
        .add(core::bts_bound(256.0, dmax), 0)
        .add(core::thm20_bound(32, 256.0), 0)
        .add(static_cast<double>(result.steps) / dmax, 2)
        .add(max_detour);
  }
  table.print(std::cout);
  std::cout << "(measured time scales with d_max, far under both bounds; "
               "max_detour stays small — empirically, deflections do NOT "
               "carry packets much beyond their neighborhoods, the fact "
               "Section 6 says would unlock a distance-local bound and "
               "which [BTS]/[BRS] later formalized as 2(k-1)+d_max)\n";
}

void permutation_scaling() {
  print_header("E20c", "Permutation routing scaling (worst of 10 random "
                       "permutations per n)");
  TablePrinter table({"n", "worst_steps", "2n-2", "worst/(2n-2)", "8n^2",
                      "exponent_vs_prev_n"});
  double prev_worst = 0;
  int prev_n = 0;
  for (int n : {8, 16, 32, 64}) {
    net::Mesh mesh(2, n);
    std::uint64_t worst = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      Rng rng(seed * 7 + static_cast<std::uint64_t>(n));
      auto problem = workload::random_permutation(mesh, rng);
      auto policy = make_policy("restricted");
      worst = std::max(worst, run(mesh, problem, *policy).steps);
    }
    double exponent = 0;
    if (prev_n > 0) {
      exponent = std::log(static_cast<double>(worst) / prev_worst) /
                 std::log(static_cast<double>(n) / prev_n);
    }
    table.row()
        .add(std::int64_t{n})
        .add(worst)
        .add(std::int64_t{2 * n - 2})
        .add(static_cast<double>(worst) / (2 * n - 2), 3)
        .add(core::remark_permutation_bound(n), 0)
        .add(exponent, 2);
    prev_worst = static_cast<double>(worst);
    prev_n = n;
  }
  table.print(std::cout);
  std::cout << "(the measured exponent is ~1: random permutations route in "
               "Theta(n) — the Section 6 open problem asked whether greedy "
               "permutation routing beats the general O(n^2) analysis; "
               "empirically it does by a full factor of n, as the post-"
               "paper O(n^1.5) result of [BRS]/[BRST] began to explain)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::sparse_k();
  hp::bench::small_distance();
  hp::bench::permutation_scaling();
  return 0;
}
