// E2 — the Remark after Theorem 20: a full permutation (k = n²) routes
// within 8n² via the parity split, and four packets per node within 16n².
// Also measures the classic adversarial permutations (transpose,
// bit-reversal, inversion) against the 2n−2 distance lower bound.
#include "bench_common.hpp"
#include "core/parity.hpp"

namespace hp::bench {
namespace {

void permutations() {
  print_header("E2a", "Permutations (k = n^2) vs the Remark's 8n^2 bound");
  TablePrinter table({"n", "workload", "steps", "bound(8n^2)",
                      "split_bound", "bound/steps", "lb(diam)", "steps/lb"});
  for (int n : {8, 16, 32}) {
    net::Mesh mesh(2, n);
    Rng rng(1000 + static_cast<std::uint64_t>(n));
    std::vector<workload::Problem> problems;
    problems.push_back(workload::random_permutation(mesh, rng));
    problems.push_back(workload::transpose(mesh));
    problems.push_back(workload::bit_reversal(mesh));
    problems.push_back(workload::inversion(mesh));
    for (const auto& problem : problems) {
      auto policy = make_policy("restricted");
      const auto result = run(mesh, problem, *policy);
      const double bound = core::remark_permutation_bound(n);
      HP_CHECK(static_cast<double>(result.steps) <= bound,
               "Remark bound violated");
      const int lb = problem.max_distance(mesh);
      table.row()
          .add(std::int64_t{n})
          .add(problem.name)
          .add(result.steps)
          .add(bound, 0)
          .add(core::parity_split_bound(mesh, problem), 0)
          .add(bound / static_cast<double>(result.steps), 1)
          .add(std::int64_t{lb})
          .add(static_cast<double>(result.steps) / lb, 2);
    }
  }
  table.print(std::cout);
}

void four_per_node() {
  print_header("E2b", "Four packets per node vs the Remark's 16n^2 bound");
  TablePrinter table({"n", "k", "steps", "bound(16n^2)", "bound/steps"});
  for (int n : {8, 16, 32}) {
    net::Mesh mesh(2, n);
    Rng rng(2000 + static_cast<std::uint64_t>(n));
    auto problem = workload::saturated_random(mesh, 4, rng);
    auto policy = make_policy("restricted");
    const auto result = run(mesh, problem, *policy);
    const double bound = core::remark_four_per_node_bound(n);
    HP_CHECK(static_cast<double>(result.steps) <= bound,
             "four-per-node Remark bound violated");
    table.row()
        .add(std::int64_t{n})
        .add(static_cast<std::uint64_t>(problem.size()))
        .add(result.steps)
        .add(bound, 0)
        .add(bound / static_cast<double>(result.steps), 1);
  }
  table.print(std::cout);
  std::cout << "(the Remark notes the 16n^2 case is within a factor 8 of "
               "the trivial lower bound; measured times sit far below)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::permutations();
  hp::bench::four_per_node();
  return 0;
}
