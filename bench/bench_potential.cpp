// E3/E4/E9 — the potential-function machinery audited on live runs:
//   E3: Property 8 / Lemma 19 per-node potential loss (min slack ≥ 0),
//   E4: Lemma 12 (two-step drop ≥ surface arcs) and Corollary 10,
//   E9: the §4.1 restricted Type A/B taxonomy over time (Figures 5/6) and
//       the C_p bookkeeping invariants (0 < φ ≤ M, C ≥ 2 in flight).
#include "bench_common.hpp"

namespace hp::bench {
namespace {

struct AuditedRun {
  sim::RunResult result;
  std::int64_t phi0 = 0;
  std::int64_t min_slack = 0;
  std::int64_t min_c = 0;
  std::int64_t max_phi = 0;
  std::size_t property8_violations = 0;
  std::size_t structure_violations = 0;
  std::size_t corollary10_violations = 0;
  std::size_t lemma12_violations = 0;
  std::size_t lemma14_violations = 0;
};

AuditedRun audited(const net::Mesh& mesh, const workload::Problem& problem) {
  auto policy = make_policy("restricted");
  sim::Engine engine(mesh, problem, *policy);
  core::PotentialTracker::Config config;
  config.c_init = 2 * mesh.side();
  config.d = mesh.dim();
  core::PotentialTracker potential(mesh, engine, config);
  core::SurfaceTracker surface(mesh);
  engine.add_observer(&potential);
  engine.add_observer(&surface);
  AuditedRun out;
  out.phi0 = potential.phi();
  out.result = engine.run();
  HP_CHECK(out.result.completed, "audited run did not complete");
  out.min_slack = potential.min_slack();
  out.min_c = potential.min_c();
  out.max_phi = potential.max_phi();
  out.property8_violations = potential.property8_violations().size();
  out.structure_violations = potential.structure_violations().size();
  out.corollary10_violations =
      core::check_corollary10(potential.phi_series(), surface.g_series())
          .size();
  out.lemma12_violations =
      core::check_lemma12(potential.phi_series(), surface.f_series()).size();
  out.lemma14_violations = surface.lemma14_violations().size();
  return out;
}

void property8_table() {
  print_header("E3", "Property 8 / Lemma 19 audit — per-node potential loss "
                     "at every step (restricted-priority, c_init = 2n)");
  TablePrinter table({"n", "workload", "k", "steps", "phi0", "kM(=4nk)",
                      "min_slack", "P8_viol", "struct_viol"});
  for (int n : {8, 16}) {
    net::Mesh mesh(2, n);
    Rng rng(3000 + static_cast<std::uint64_t>(n));
    std::vector<workload::Problem> problems;
    problems.push_back(workload::random_many_to_many(
        mesh, static_cast<std::size_t>(n) * n / 2, rng));
    problems.push_back(workload::random_permutation(mesh, rng));
    problems.push_back(workload::hotspot(
        mesh, static_cast<std::size_t>(n) * n / 2, 1, rng));
    problems.push_back(workload::corner_to_corner(mesh, rng));
    for (const auto& problem : problems) {
      const auto audit = audited(mesh, problem);
      table.row()
          .add(std::int64_t{n})
          .add(problem.name)
          .add(static_cast<std::uint64_t>(problem.size()))
          .add(audit.result.steps)
          .add(audit.phi0)
          .add(core::phi0_upper(static_cast<double>(problem.size()), 4.0 * n),
               0)
          .add(audit.min_slack)
          .add(static_cast<std::uint64_t>(audit.property8_violations))
          .add(static_cast<std::uint64_t>(audit.structure_violations));
    }
  }
  table.print(std::cout);
  std::cout << "(min_slack >= 0 and zero violations everywhere reproduce "
               "Lemma 19: the potential function satisfies Property 8)\n";
}

void lemma12_table() {
  print_header("E4", "Corollary 10 and Lemma 12 audit — global potential "
                     "drop vs good packets G(t) and surface arcs F(t)");
  TablePrinter table({"n", "workload", "steps", "cor10_viol", "lem12_viol",
                      "lem14_viol"});
  net::Mesh mesh(2, 16);
  Rng rng(4001);
  std::vector<workload::Problem> problems;
  problems.push_back(workload::random_permutation(mesh, rng));
  problems.push_back(workload::hotspot(mesh, 128, 1, rng));
  problems.push_back(workload::saturated_random(mesh, 4, rng));
  for (const auto& problem : problems) {
    const auto audit = audited(mesh, problem);
    table.row()
        .add(std::int64_t{16})
        .add(problem.name)
        .add(audit.result.steps)
        .add(static_cast<std::uint64_t>(audit.corollary10_violations))
        .add(static_cast<std::uint64_t>(audit.lemma12_violations))
        .add(static_cast<std::uint64_t>(audit.lemma14_violations));
  }
  table.print(std::cout);
}

void census_series() {
  print_header("E9", "Restricted packet taxonomy over time (Figure 5 "
                     "concept) and potential-rule invariants (Figure 6)");
  net::Mesh mesh(2, 16);
  Rng rng(9009);
  auto problem = workload::saturated_random(mesh, 4, rng);
  auto policy = make_policy("restricted");
  sim::Engine engine(mesh, problem, *policy);
  core::RestrictedCensus census;
  core::PotentialTracker::Config config;
  config.c_init = 2 * mesh.side();
  config.d = 2;
  core::PotentialTracker potential(mesh, engine, config);
  engine.add_observer(&census);
  engine.add_observer(&potential);
  const auto result = engine.run();
  HP_CHECK(result.completed, "census run did not complete");

  TablePrinter table({"t", "typeA", "typeB", "unrestricted", "advancing",
                      "deflected", "phi"});
  const auto& series = census.series();
  // Sample ~12 evenly spaced steps.
  const std::size_t stride = std::max<std::size_t>(1, series.size() / 12);
  for (std::size_t i = 0; i < series.size(); i += stride) {
    const auto& row = series[i];
    table.row()
        .add(row.step)
        .add(row.type_a)
        .add(row.type_b)
        .add(row.unrestricted)
        .add(row.advancing)
        .add(row.deflected)
        .add(potential.phi_series()[i]);
  }
  table.print(std::cout);
  std::cout << "per-packet potential invariants: min C_p in flight = "
            << potential.min_c() << " (analysis: >= 2), min phi_p = "
            << potential.min_phi() << " (> 0), max phi_p = "
            << potential.max_phi() << " <= M = " << 4 * mesh.side() << "\n";
  std::cout << "good-direction census (count of routed packet-steps by "
               "#good dirs):";
  for (std::size_t g = 0; g < census.good_dir_histogram().size(); ++g) {
    std::cout << "  " << g << "->" << census.good_dir_histogram()[g];
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::property8_table();
  hp::bench::lemma12_table();
  hp::bench::census_series();
  return 0;
}
