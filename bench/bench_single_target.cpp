// E15 — single-target routing ([BTS]): all k packets to one node on the
// 2-D mesh. The greedy single-target algorithm is claimed to match
// d_max + k; the absorption lower bound is max(d_max, ceil(k/in_degree)).
#include "bench_common.hpp"

namespace hp::bench {
namespace {

void single_target_sweep() {
  print_header("E15", "Single target on a 16x16 mesh: measured vs "
                      "d_max + k upper and absorption lower bound");
  TablePrinter table({"k", "target", "d_max", "steps", "ub(k+dmax)",
                      "lb(max(dmax,k/indeg))", "steps/lb"});
  net::Mesh mesh(2, 16);
  struct Target {
    const char* name;
    int x, y, in_degree;
  };
  for (Target t : {Target{"center", 8, 8, 4}, Target{"corner", 0, 0, 2}}) {
    net::Coord c;
    c.push_back(t.x);
    c.push_back(t.y);
    const net::NodeId target = mesh.node_at(c);
    for (std::size_t k : {16u, 64u, 256u, 512u}) {
      Rng rng(k * 3 + static_cast<std::uint64_t>(t.x));
      auto problem = workload::single_target(mesh, k, target, rng);
      auto policy = make_policy("single-target");
      const auto result = run(mesh, problem, *policy);
      const int dmax = problem.max_distance(mesh);
      const double ub = static_cast<double>(k) + dmax;
      const double lb = core::single_target_lower_bound(
          static_cast<double>(k), dmax, t.in_degree);
      HP_CHECK(static_cast<double>(result.steps) <= ub,
               "single-target k + d_max bound violated");
      table.row()
          .add(static_cast<std::uint64_t>(k))
          .add(t.name)
          .add(std::int64_t{dmax})
          .add(result.steps)
          .add(ub, 0)
          .add(lb, 0)
          .add(static_cast<double>(result.steps) / lb, 2);
    }
  }
  table.print(std::cout);
  std::cout << "(steps/lb near 1 reproduces the [BTS] finding that greedy "
               "single-target routing is essentially optimal: the "
               "destination's in-arcs stay saturated)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::single_target_sweep();
  return 0;
}
