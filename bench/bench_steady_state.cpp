// E17 — steady-state deflection routing under continuous Bernoulli
// arrivals: throughput, latency, blocking and deflection rate vs offered
// load, on the mesh and the torus (the Manhattan-Street-like optical
// setting of [Ma]/[GG] that motivates Section 1).
//
// Expected shape: throughput tracks the offered load until the network
// saturates, then flattens while latency and the deflection rate climb —
// the classic deflection-network load curve.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/metrics.hpp"
#include "sim/injection.hpp"
#include "stats/steady_state.hpp"
#include "stats/window.hpp"

namespace hp::bench {
namespace {

/// Long-horizon per-step cost: run > 10⁶ injected steps and report
/// steps/sec per window. With O(in-flight) step cost the curve is flat —
/// the windows do not slow down as the delivered-packet count grows into
/// the millions. Written to BENCH_steady_state.json.
void throughput_flatness() {
  print_header("E17c", "Per-step cost over 1.2M continuously-injected steps "
                       "(flat curve = O(in-flight) hot path)");
  net::Mesh mesh(2, 8);
  auto policy = make_policy("restricted");
  sim::EngineConfig config;
  config.seed = 9;
  config.detect_livelock = false;
  config.archive_arrivals = false;  // unbounded run: keep memory bounded
  sim::Engine engine(mesh, {}, *policy, config);
  sim::BernoulliInjector injector(0.2, 41);
  engine.set_injector(&injector);
  // Per-step occupancy per window: the steps/sec of a window is only
  // attributable if we know how much flight work each of its steps
  // carried (endpoint in_flight alone once hid a ~30% sag as an
  // occupancy excursion). The shared window observer tracks the post-move
  // in-flight count exactly as the local accumulator it replaced did.
  stats::WindowStats occupancy;
  engine.add_observer(&occupancy);

  constexpr std::uint64_t kWindow = 100'000;
  constexpr int kWindows = 12;
  JsonReport report("hotpotato-bench-steady-state-v1");
  TablePrinter table({"window", "steps", "delivered_total", "steps/sec",
                      "mean_in_flight", "peak_in_flight"});
  for (int w = 0; w < kWindows; ++w) {
    occupancy.begin_window();
    const auto t0 = std::chrono::steady_clock::now();
    engine.run_for(kWindow);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    const double sps = static_cast<double>(kWindow) / sec;
    table.row()
        .add(static_cast<std::int64_t>(w))
        .add(static_cast<double>(engine.now()), 0)
        .add(static_cast<double>(engine.delivered()), 0)
        .add(sps, 0)
        .add(occupancy.in_flight_after().mean(), 1)
        .add(static_cast<std::int64_t>(occupancy.peak_in_flight()));
    report.add("window_" + std::to_string(w),
               {{"steps_total", static_cast<double>(engine.now())},
                {"delivered_total", static_cast<double>(engine.delivered())},
                {"in_flight", static_cast<double>(engine.in_flight())},
                {"mean_in_flight", occupancy.in_flight_after().mean()},
                {"peak_in_flight",
                 static_cast<double>(occupancy.peak_in_flight())},
                {"steps_per_sec", sps}});
  }
  table.print(std::cout);
  report.write("BENCH_steady_state.json");
}

/// Observability demo: the same continuous-injection setting with a
/// MetricsRegistry attached, dumping the end-of-run snapshot. Kept apart
/// from throughput_flatness so the committed BENCH_steady_state.json
/// baseline keeps measuring the bare engine.
void steady_state_metrics_demo() {
  print_header("E17d", "Metrics snapshot of a 50k-step injected run "
                       "(obs::EngineMetrics, see docs/OBSERVABILITY.md)");
  net::Mesh mesh(2, 8);
  auto policy = make_policy("restricted");
  sim::EngineConfig config;
  config.seed = 9;
  config.detect_livelock = false;
  config.archive_arrivals = false;
  sim::Engine engine(mesh, {}, *policy, config);
  sim::BernoulliInjector injector(0.2, 41);
  engine.set_injector(&injector);

  obs::MetricsRegistry registry;
  obs::EngineMetrics metrics(registry);
  engine.add_observer(&metrics);
  engine.run_for(50'000);

  std::ostringstream csv;
  registry.write_csv(csv);
  std::cout << csv.str();
}

void load_curve(const net::Mesh& network) {
  print_header("E17", "Steady-state load curve on " + network.name() +
                          " (Bernoulli arrivals, warmup 300, measure 1500)");
  TablePrinter table({"rate", "admit_frac", "throughput", "mean_lat",
                      "p99_lat", "mean_in_flight", "defl/pkt"});
  for (double rate : {0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    auto policy = make_policy("restricted");
    const auto report = stats::measure_steady_state(
        network, *policy, rate, /*warmup=*/300, /*measure=*/1500,
        /*seed=*/static_cast<std::uint64_t>(rate * 1000));
    table.row()
        .add(rate, 2)
        .add(report.admit_fraction, 3)
        .add(report.throughput, 3)
        .add(report.mean_latency, 1)
        .add(report.p99_latency, 1)
        .add(report.mean_in_flight, 1)
        .add(report.deflections_per_delivered, 2);
  }
  table.print(std::cout);
}

void policy_comparison() {
  print_header("E17b", "Steady state at moderate load (rate 0.3, 16x16 "
                       "torus): policy comparison");
  TablePrinter table({"policy", "throughput", "mean_lat", "p99_lat",
                      "defl/pkt"});
  net::Mesh torus(2, 16, /*wrap=*/true);
  for (const char* kind :
       {"restricted", "greedy-random", "furthest-first", "closest-first"}) {
    auto policy = make_policy(kind);
    const auto report =
        stats::measure_steady_state(torus, *policy, 0.3, 300, 1200, 17);
    table.row()
        .add(kind)
        .add(report.throughput, 3)
        .add(report.mean_latency, 1)
        .add(report.p99_latency, 1)
        .add(report.deflections_per_delivered, 2);
  }
  table.print(std::cout);
  std::cout << "(restricted-priority and closest-first sustain the load; "
               "furthest-first starves packets near arrival and collapses "
               "under continuous injection — priority discipline matters "
               "far more in steady state than in batch routing)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::net::Mesh mesh(2, 16, /*wrap=*/false);
  hp::bench::load_curve(mesh);
  hp::net::Mesh torus(2, 16, /*wrap=*/true);
  hp::bench::load_curve(torus);
  hp::bench::policy_comparison();
  hp::bench::throughput_flatness();
  hp::bench::steady_state_metrics_demo();
  return 0;
}
