// E8 — Figures 3 & 4 brought to life: the time evolution of the bad-node
// volume B(t), its surface F(t) and the global potential Φ(t) on a
// congested corner-to-corner instance, plus ASCII snapshots of the
// congestion volume on the mesh.
#include "bench_common.hpp"
#include "sim/trace.hpp"

namespace hp::bench {
namespace {

void series() {
  print_header("E8a", "B(t), F(t), Phi(t) time series — corner-to-corner "
                      "congestion on a 16x16 mesh");
  net::Mesh mesh(2, 16);
  Rng rng(88088);
  auto problem = workload::corner_to_corner(mesh, rng);
  // Add a hotspot on top to force heavier bad volumes, respecting the
  // origin capacity already consumed by the corner workload.
  std::vector<int> used(mesh.num_nodes(), 0);
  for (const auto& spec : problem.packets) {
    ++used[static_cast<std::size_t>(spec.src)];
  }
  const net::NodeId spot = mesh.node_at([&] {
    net::Coord c;
    c.push_back(12);
    c.push_back(12);
    return c;
  }());
  std::size_t added = 0;
  while (added < 128) {
    const auto src = static_cast<net::NodeId>(rng.uniform(mesh.num_nodes()));
    if (used[static_cast<std::size_t>(src)] >= mesh.degree(src)) continue;
    ++used[static_cast<std::size_t>(src)];
    problem.packets.push_back({src, spot});
    ++added;
  }
  problem.validate(mesh);

  auto policy = make_policy("restricted");
  sim::Engine engine(mesh, problem, *policy);
  core::SurfaceTracker surface(mesh);
  core::PotentialTracker::Config config;
  config.c_init = 2 * mesh.side();
  config.d = 2;
  core::PotentialTracker potential(mesh, engine, config);
  engine.add_observer(&surface);
  engine.add_observer(&potential);
  const auto result = engine.run();
  HP_CHECK(result.completed, "surface series run did not complete");

  TablePrinter table({"t", "B(t)", "G(t)", "F(t)", "lem14_bound", "Phi(t)"});
  const auto& b = surface.b_series();
  const std::size_t stride = std::max<std::size_t>(1, b.size() / 16);
  for (std::size_t t = 0; t < b.size(); t += stride) {
    table.row()
        .add(static_cast<std::uint64_t>(t))
        .add(b[t])
        .add(surface.g_series()[t])
        .add(surface.f_series()[t])
        .add(core::lemma14_bound(2, static_cast<double>(b[t])), 1)
        .add(potential.phi_series()[t]);
  }
  table.print(std::cout);
  std::cout << "(F(t) >= lem14_bound at every congested step; Phi decreases "
               "monotonically to zero)\n";
}

void snapshots() {
  print_header("E8b", "Congestion snapshots (Figure 3/4 concept): packets "
                      "per node, [x] marks bad nodes (more than d = 2)");
  net::Mesh mesh(2, 12);
  Rng rng(404404);
  auto problem = workload::hotspot(mesh, 120, 1, rng);
  auto policy = make_policy("restricted");
  sim::Engine engine(mesh, problem, *policy);
  sim::TraceRecorder trace;
  engine.add_observer(&trace);
  const auto result = engine.run();
  HP_CHECK(result.completed, "snapshot run did not complete");
  const auto& snaps = trace.snapshots();
  for (std::size_t idx :
       {std::size_t{0}, snaps.size() / 4, snaps.size() / 2}) {
    if (idx < snaps.size()) {
      std::cout << sim::render_grid(mesh, snaps[idx]) << "\n";
    }
  }
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::series();
  hp::bench::snapshots();
  return 0;
}
