// E18 — saturation sweep: the load × workload × policy grid with
// closed-loop throughput probing (docs/SWEEPS.md).
//
// For every grid cell (policy × destination pattern × Pareto flow sizes
// on an 8×8 mesh) the driver first probes the maximum sustainable
// offered load with the sim::AdmissionController, then measures the
// throughput/latency curve across 0.1–1.0 of that saturation point. All
// metrics are virtual-time, so the committed BENCH_sweep.json
// regenerates deterministically and scripts/bench_compare.py gates it.
//
// Usage:
//   bench_sweep                      full grid -> BENCH_sweep.json
//   bench_sweep --cell restricted:transpose:1 --out cell.json
//   bench_sweep --list               print the grid cell ids
//
// scripts/sweep.py fans --cell jobs out in parallel and merges the
// per-cell JSON back into one artifact.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "stats/sweep.hpp"
#include "workload/traffic.hpp"

namespace hp::bench {
namespace {

constexpr int kMeshSide = 8;

const std::vector<std::string>& grid_policies() {
  static const std::vector<std::string> kPolicies = {"restricted",
                                                     "greedy-random"};
  return kPolicies;
}

const std::vector<std::string>& grid_patterns() {
  static const std::vector<std::string> kPatterns = {
      "uniform", "hotspot", "transpose", "bit-reversal"};
  return kPatterns;
}

struct Cell {
  std::string policy;
  std::string pattern;
  bool pareto = false;

  std::string id() const {
    return policy + ":" + pattern + ":" + (pareto ? "1" : "0");
  }
  /// Entry-name prefix: pattern names lose their hyphen so the grid axes
  /// stay visually separable in "policy_pattern_pN" keys.
  std::string key() const {
    std::string pat = pattern == "bit-reversal" ? "bitrev" : pattern;
    return policy + "_" + pat + (pareto ? "_p1" : "_p0");
  }
};

std::vector<Cell> full_grid() {
  std::vector<Cell> cells;
  for (const auto& policy : grid_policies()) {
    for (const auto& pattern : grid_patterns()) {
      for (bool pareto : {false, true}) {
        cells.push_back({policy, pattern, pareto});
      }
    }
  }
  return cells;
}

Cell parse_cell(const std::string& id) {
  const auto c1 = id.find(':');
  const auto c2 = id.rfind(':');
  HP_REQUIRE(c1 != std::string::npos && c2 != c1,
             "cell id must be POLICY:PATTERN:PARETO, got '" + id + "'");
  Cell cell;
  cell.policy = id.substr(0, c1);
  cell.pattern = id.substr(c1 + 1, c2 - c1 - 1);
  const std::string pareto = id.substr(c2 + 1);
  HP_REQUIRE(pareto == "0" || pareto == "1",
             "cell pareto flag must be 0 or 1, got '" + pareto + "'");
  cell.pareto = pareto == "1";
  // Validate both axes eagerly so a typo fails before any simulation.
  workload::pattern_from_name(cell.pattern);
  make_policy(cell.policy);
  return cell;
}

std::string load_suffix(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "load%03d",
                static_cast<int>(fraction * 100.0 + 0.5));
  return buf;
}

void run_cell(const Cell& cell, JsonReport& report) {
  net::Mesh mesh(2, kMeshSide);
  auto policy = make_policy(cell.policy);

  workload::TrafficConfig traffic;
  traffic.pattern = workload::pattern_from_name(cell.pattern);
  traffic.pareto = cell.pareto;

  stats::SweepConfig config;
  config.seed = 1;

  print_header("E18:" + cell.id(),
               "saturation probe + load curve on " + mesh.name());
  const auto result = stats::run_sweep_cell(mesh, *policy, traffic, config);

  const auto& probe = result.probe;
  report.add(cell.key() + "_saturation",
             {{"saturation_rate", probe.saturation_rate},
              {"throughput", probe.throughput_at_saturation},
              {"mean_latency", probe.latency_at_saturation},
              {"windows", static_cast<double>(probe.windows)},
              {"converged", probe.converged ? 1.0 : 0.0}});
  std::cout << "probe: saturation_rate=" << probe.saturation_rate
            << " windows=" << probe.windows
            << (probe.converged ? "" : " (NOT CONVERGED)") << "\n";

  TablePrinter table({"load", "rate", "throughput", "admit", "mean_lat",
                      "p99_lat", "peak_in_flight"});
  for (const auto& point : result.curve) {
    table.row()
        .add(point.load_fraction, 1)
        .add(point.offered_rate, 4)
        .add(point.throughput, 4)
        .add(point.admit_fraction, 3)
        .add(point.mean_latency, 1)
        .add(point.p99_latency, 1)
        .add(static_cast<std::int64_t>(point.peak_in_flight));
    report.add(
        cell.key() + "_" + load_suffix(point.load_fraction),
        {{"load_fraction", point.load_fraction},
         {"offered_rate", point.offered_rate},
         {"throughput", point.throughput},
         {"admit_fraction", point.admit_fraction},
         {"mean_latency", point.mean_latency},
         {"p99_latency", point.p99_latency},
         {"mean_population", point.mean_population},
         {"peak_in_flight", static_cast<double>(point.peak_in_flight)},
         {"delivered", static_cast<double>(point.delivered)}});
  }
  table.print(std::cout);
}

int sweep_main(const std::vector<std::string>& args) {
  std::string out = "BENCH_sweep.json";
  std::vector<Cell> cells;
  bool list_only = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const std::string& {
      HP_REQUIRE(i + 1 < args.size(), "missing value for " + arg);
      return args[++i];
    };
    if (arg == "--out") {
      out = value();
    } else if (arg == "--cell") {
      cells.push_back(parse_cell(value()));
    } else if (arg == "--list") {
      list_only = true;
    } else {
      std::cerr << "usage: bench_sweep [--out PATH] [--cell P:W:PARETO]... "
                   "[--list]\n";
      return arg == "--help" ? 0 : 2;
    }
  }
  if (cells.empty()) cells = full_grid();
  if (list_only) {
    for (const auto& cell : cells) std::cout << cell.id() << "\n";
    return 0;
  }
  JsonReport report("hotpotato-bench-sweep-v1");
  for (const auto& cell : cells) run_cell(cell, report);
  report.write(out);
  return 0;
}

}  // namespace
}  // namespace hp::bench

int main(int argc, char** argv) {
  try {
    return hp::bench::sweep_main({argv + 1, argv + argc});
  } catch (const hp::CheckError& e) {
    std::cerr << "bench_sweep: " << e.what() << "\n";
    return 2;
  }
}
