// E1 — Theorem 20: any greedy algorithm preferring restricted packets
// routes k packets on the n×n mesh within 8√2·n·√k steps.
//
// Sweeps n and k over random many-to-many loads and over the tie-break /
// deflection variants inside the class, reporting measured time against
// the bound. Expected shape: measured ≤ bound everywhere, with a large
// gap (the paper: greedy performs far better in simulation than its
// worst-case analysis), and √k-like growth under congestion.
#include "bench_common.hpp"

namespace hp::bench {
namespace {

void sweep_k() {
  print_header("E1a", "Theorem 20 bound sweep — time vs k (n fixed)");
  TablePrinter table({"n", "k", "policy", "steps", "bound(8sqrt2*n*sqrtk)",
                      "bound/steps", "deflections"});
  Rng rng(20240701);
  for (int n : {8, 16, 32}) {
    net::Mesh mesh(2, n);
    const std::size_t nn = static_cast<std::size_t>(n) * n;
    for (std::size_t k : {nn / 16, nn / 4, nn / 2, nn, 2 * nn}) {
      if (k == 0) continue;
      auto problem = workload::random_many_to_many(mesh, k, rng);
      for (const char* kind : {"restricted", "restricted/random"}) {
        auto policy = make_policy(kind);
        const auto result = run(mesh, problem, *policy);
        const double bound = core::thm20_bound(n, static_cast<double>(k));
        HP_CHECK(static_cast<double>(result.steps) <= bound,
                 "Theorem 20 bound violated!");
        table.row()
            .add(std::int64_t{n})
            .add(static_cast<std::uint64_t>(k))
            .add(kind)
            .add(result.steps)
            .add(bound, 0)
            .add(bound / static_cast<double>(result.steps), 1)
            .add(result.total_deflections);
      }
    }
  }
  table.print(std::cout);
}

void sweep_variants() {
  print_header("E1b",
               "Theorem 20 class variants — every tie-break/deflection "
               "stays under the same bound");
  TablePrinter table({"variant", "steps", "bound", "ok"});
  net::Mesh mesh(2, 16);
  Rng rng(42);
  auto problem = workload::random_many_to_many(mesh, 256, rng);
  const double bound = core::thm20_bound(16, 256.0);
  for (const char* kind :
       {"restricted", "restricted/random", "restricted/typeA",
        "restricted/maxadv"}) {
    auto policy = make_policy(kind);
    const auto result = run(mesh, problem, *policy);
    table.row()
        .add(kind)
        .add(result.steps)
        .add(bound, 0)
        .add(static_cast<double>(result.steps) <= bound ? "yes" : "NO");
  }
  table.print(std::cout);
}

void growth_shape() {
  print_header("E1c",
               "Growth shape — measured time vs sqrt(k) (fixed n = 32, "
               "mean of 3 seeds)");
  TablePrinter table({"k", "mean_steps", "steps/sqrt(k)", "bound/steps"});
  net::Mesh mesh(2, 32);
  for (std::size_t k : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    double total = 0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      Rng rng(seed * 101 + 7);
      auto problem = workload::random_many_to_many(mesh, k, rng);
      auto policy = make_policy("restricted");
      total += static_cast<double>(run(mesh, problem, *policy).steps);
    }
    const double mean = total / 3.0;
    const double bound = core::thm20_bound(32, static_cast<double>(k));
    table.row()
        .add(static_cast<std::uint64_t>(k))
        .add(mean, 1)
        .add(mean / std::sqrt(static_cast<double>(k)), 2)
        .add(bound / mean, 1);
  }
  table.print(std::cout);
  std::cout << "(steps/sqrt(k) should stay bounded as k grows if the √k "
               "shape of Theorem 20 is the right scaling under congestion)\n";
}

}  // namespace
}  // namespace hp::bench

int main() {
  hp::bench::sweep_k();
  hp::bench::sweep_variants();
  hp::bench::growth_shape();
  return 0;
}
