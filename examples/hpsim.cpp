// hpsim — command-line driver for the hotpotato library.
//
// Runs any topology × workload × policy combination, optionally with the
// full paper audit (Property 8, Definitions 6/18, Lemmas 12/14) attached
// and/or a per-step CSV time series on stdout.
//
// Examples:
//   hpsim --topology mesh --n 16 --workload permutation --policy restricted
//   hpsim --topology torus --n 32 --workload random --k 512 --audit
//   hpsim --topology hypercube --dim 8 --workload random --k 256
//         --policy id-priority
//   hpsim --topology mesh --n 16 --workload hotspot --k 200 --csv
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "core/bounds.hpp"
#include "core/checkers.hpp"
#include "core/potential.hpp"
#include "core/surface.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "routing/brassil_cruz.hpp"
#include "routing/ddim_priority.hpp"
#include "routing/greedy_variants.hpp"
#include "routing/perverse.hpp"
#include "routing/restricted_priority.hpp"
#include "routing/single_target.hpp"
#include "sim/admission.hpp"
#include "sim/checkpoint.hpp"
#include "sim/engine.hpp"
#include "sim/injection.hpp"
#include "stats/recorder.hpp"
#include "stats/steady_state.hpp"
#include "stats/sweep.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"
#include "workload/io.hpp"
#include "workload/traffic.hpp"

namespace {

struct Options {
  std::string topology = "mesh";
  int dim = 2;
  int n = 16;
  std::string workload = "permutation";
  std::size_t k = 0;  // 0 = workload default
  std::string policy = "restricted";
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 10'000'000;
  bool audit = false;
  bool csv = false;
  std::string save_path;  // write the generated instance here
  std::string load_path;  // route this instance instead of generating one
  double inject_rate = -1.0;       // >= 0 switches to steady-state mode
  std::uint64_t inject_steps = 2000;
  int threads = 1;
  std::string metrics_path;  // metrics snapshot (.csv => CSV, else JSON)
  std::string trace_path;    // Chrome trace_event JSON
  bool profile = false;      // wall-clock phase profile on stderr
  bool probe = false;        // closed-loop saturation probe
  bool sweep_cell = false;   // probe + offered-load curve (one sweep cell)
  bool pareto = false;       // heavy-tailed Pareto flow sizes
  std::string checkpoint_path;      // write an engine checkpoint here
  std::uint64_t checkpoint_at = 0;  // checkpoint after this step (0 = end)
  std::string restore_path;         // resume from this checkpoint
  bool fingerprint = false;         // print the end-of-run state fingerprint
  bool scale = false;               // memory-lean engine profile
};

void usage() {
  std::cout <<
      R"(usage: hpsim [options]
  --topology mesh|torus|hypercube   (default mesh)
  --dim D                           mesh dimension / hypercube bits (default 2)
  --n N                             mesh side length (default 16)
  --workload permutation|random|transpose|bit-reversal|inversion|
             single-target|hotspot|corner|saturated   (default permutation)
  --k K                             packet count for random/single-target/
                                    hotspot (default: one per node)
  --policy restricted|restricted-random|ddim|greedy-random|furthest-first|
           closest-first|id-priority|brassil-cruz|single-target|perverse
  --seed S                          RNG seed (default 1)
  --max-steps T                     step cap (default 10M)
  --audit                           attach the full paper audit
  --csv                             print the per-step series as CSV
  --save PATH                       save the generated instance as text
  --load PATH                       route a saved instance (overrides
                                    --workload/--k)
  --inject RATE                     steady-state mode: per-node Bernoulli
                                    arrivals instead of a batch workload
  --inject-steps T                  steady-state run length (default 2000,
                                    first 20% is warmup)
  --threads W                       routing-phase worker threads (default 1;
                                    results are identical for every W)
  --metrics PATH                    write the end-of-run metrics snapshot
                                    (CSV when PATH ends in .csv, else JSON);
                                    batch mode only
  --trace PATH                      write a Chrome trace_event JSON of the
                                    run (chrome://tracing / Perfetto);
                                    batch mode only
  --profile                         print the wall-clock engine phase
                                    profile on stderr; batch mode only
  --probe                           closed-loop saturation probe: --workload
                                    names a traffic pattern (uniform|hotspot|
                                    transpose|bit-reversal); prints the probe
                                    trajectory and the saturation point
  --sweep-cell                      one full sweep cell: the probe plus the
                                    0.1-1.0 offered-load curve
  --pareto                          heavy-tailed Pareto flow sizes for
                                    --probe/--sweep-cell traffic
  --checkpoint PATH                 write an engine checkpoint (at the step
                                    named by --checkpoint-at, else at the
                                    end of the run); batch mode only
  --checkpoint-at T                 checkpoint after step T, then keep
                                    running (requires --checkpoint)
  --restore PATH                    resume a checkpointed run; needs the
                                    same topology/policy/seed flags the
                                    checkpoint was written under; batch
                                    mode only, excludes --load/--save
  --fingerprint                     print the end-of-run engine state
                                    fingerprint (docs/SCALE.md)
  --scale                           memory-lean engine profile: no topology
                                    caches, 32-bit flight columns; results
                                    are bit-identical; batch mode only
  --help
)";
}

std::unique_ptr<hp::net::Network> make_network(const Options& opt) {
  if (opt.topology == "mesh") {
    return std::make_unique<hp::net::Mesh>(opt.dim, opt.n, false);
  }
  if (opt.topology == "torus") {
    return std::make_unique<hp::net::Mesh>(opt.dim, opt.n, true);
  }
  if (opt.topology == "hypercube") {
    return std::make_unique<hp::net::Hypercube>(opt.dim);
  }
  std::cerr << "unknown topology: " << opt.topology << "\n";
  return nullptr;
}

hp::workload::Problem make_workload(const Options& opt,
                                    const hp::net::Network& network,
                                    hp::Rng& rng) {
  const auto* mesh = dynamic_cast<const hp::net::Mesh*>(&network);
  const std::size_t k = opt.k > 0 ? opt.k : network.num_nodes();
  if (opt.workload == "permutation") {
    return hp::workload::random_permutation(network, rng);
  }
  if (opt.workload == "random") {
    return hp::workload::random_many_to_many(network, k, rng);
  }
  if (opt.workload == "transpose" && mesh) {
    return hp::workload::transpose(*mesh);
  }
  if (opt.workload == "bit-reversal" && mesh) {
    return hp::workload::bit_reversal(*mesh);
  }
  if (opt.workload == "inversion" && mesh) {
    return hp::workload::inversion(*mesh);
  }
  if (opt.workload == "single-target") {
    return hp::workload::single_target(
        network, k, static_cast<hp::net::NodeId>(network.num_nodes() / 2),
        rng);
  }
  if (opt.workload == "hotspot") {
    return hp::workload::hotspot(network, k, 1, rng);
  }
  if (opt.workload == "corner" && mesh) {
    return hp::workload::corner_to_corner(*mesh, rng);
  }
  if (opt.workload == "saturated") {
    return hp::workload::saturated_random(network, 4, rng);
  }
  throw hp::CheckError("workload '" + opt.workload +
                       "' unknown or unsupported on this topology");
}

std::unique_ptr<hp::sim::RoutingPolicy> make_policy(
    const Options& opt, const hp::net::Network& network) {
  using hp::routing::RestrictedPriorityPolicy;
  if (opt.policy == "restricted") {
    return std::make_unique<RestrictedPriorityPolicy>();
  }
  if (opt.policy == "restricted-random") {
    RestrictedPriorityPolicy::Params params;
    params.tie_break = RestrictedPriorityPolicy::TieBreak::kRandom;
    params.deflect = hp::routing::DeflectRule::kRandom;
    return std::make_unique<RestrictedPriorityPolicy>(params);
  }
  if (opt.policy == "ddim") {
    return std::make_unique<hp::routing::DdimPriorityPolicy>();
  }
  if (opt.policy == "greedy-random") {
    return std::make_unique<hp::routing::GreedyRandomPolicy>();
  }
  if (opt.policy == "furthest-first") {
    return std::make_unique<hp::routing::FurthestFirstPolicy>();
  }
  if (opt.policy == "closest-first") {
    return std::make_unique<hp::routing::ClosestFirstPolicy>();
  }
  if (opt.policy == "id-priority") {
    return std::make_unique<hp::routing::IdPriorityPolicy>();
  }
  if (opt.policy == "brassil-cruz") {
    const auto* mesh = dynamic_cast<const hp::net::Mesh*>(&network);
    if (mesh == nullptr || mesh->dim() != 2) {
      throw hp::CheckError("brassil-cruz needs a 2-D mesh/torus");
    }
    return std::make_unique<hp::routing::BrassilCruzPolicy>(
        hp::routing::snake_rank(*mesh));
  }
  if (opt.policy == "single-target") {
    return std::make_unique<hp::routing::SingleTargetPolicy>();
  }
  if (opt.policy == "perverse") {
    return std::make_unique<hp::routing::PerverseGreedyPolicy>();
  }
  throw hp::CheckError("unknown policy: " + opt.policy);
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw hp::CheckError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--topology") {
      opt.topology = value();
    } else if (arg == "--dim") {
      opt.dim = std::stoi(value());
    } else if (arg == "--n") {
      opt.n = std::stoi(value());
    } else if (arg == "--workload") {
      opt.workload = value();
    } else if (arg == "--k") {
      opt.k = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--policy") {
      opt.policy = value();
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else if (arg == "--max-steps") {
      opt.max_steps = std::stoull(value());
    } else if (arg == "--inject") {
      opt.inject_rate = std::stod(value());
    } else if (arg == "--inject-steps") {
      opt.inject_steps = std::stoull(value());
    } else if (arg == "--threads") {
      opt.threads = std::stoi(value());
    } else if (arg == "--save") {
      opt.save_path = value();
    } else if (arg == "--load") {
      opt.load_path = value();
    } else if (arg == "--metrics") {
      opt.metrics_path = value();
    } else if (arg == "--trace") {
      opt.trace_path = value();
    } else if (arg == "--profile") {
      opt.profile = true;
    } else if (arg == "--probe") {
      opt.probe = true;
    } else if (arg == "--sweep-cell") {
      opt.sweep_cell = true;
    } else if (arg == "--pareto") {
      opt.pareto = true;
    } else if (arg == "--checkpoint") {
      opt.checkpoint_path = value();
    } else if (arg == "--checkpoint-at") {
      opt.checkpoint_at = std::stoull(value());
    } else if (arg == "--restore") {
      opt.restore_path = value();
    } else if (arg == "--fingerprint") {
      opt.fingerprint = true;
    } else if (arg == "--scale") {
      opt.scale = true;
    } else if (arg == "--audit") {
      opt.audit = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return false;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return false;
    }
  }
  return true;
}

/// Saturation probe / sweep-cell modes: closed-loop admission control
/// against continuous patterned traffic (docs/SWEEPS.md). Returns the
/// process exit code; non-convergence is reported as 1 so scripts can
/// tell a dead cell from a probed one.
int run_sweep_mode(const Options& opt, const hp::net::Network& network) {
  auto policy = make_policy(opt, network);
  hp::workload::TrafficConfig traffic;
  traffic.pattern = hp::workload::pattern_from_name(opt.workload);
  traffic.pareto = opt.pareto;

  hp::stats::SweepConfig config;
  config.seed = opt.seed;
  config.num_threads = opt.threads;

  std::cout << "network         : " << network.name() << "\n"
            << "policy          : " << policy->name() << "\n"
            << "traffic         : "
            << hp::workload::pattern_name(traffic.pattern)
            << (traffic.pareto ? " + pareto flows" : " (unit flows)") << "\n";

  hp::sim::ProbeResult probe;
  hp::stats::SweepCellResult cell;
  if (opt.probe) {
    hp::sim::EngineConfig engine_config;
    engine_config.num_threads = opt.threads;
    hp::stats::EngineTrafficSystem system(network, *policy, traffic,
                                          opt.seed, engine_config);
    probe = hp::sim::AdmissionController(config.probe).probe(system);
  } else {
    cell = hp::stats::run_sweep_cell(network, *policy, traffic, config);
    probe = cell.probe;
  }

  hp::TablePrinter trajectory(
      {"window", "rate", "stable", "throughput", "admit", "lo", "hi"});
  for (const auto& step : probe.trajectory) {
    trajectory.row()
        .add(static_cast<std::int64_t>(step.window))
        .add(step.rate, 4)
        .add(step.stable ? "yes" : "no")
        .add(step.measurement.throughput, 4)
        .add(step.measurement.admit_fraction, 3)
        .add(step.lo, 4)
        .add(step.hi, 4);
  }
  trajectory.print(std::cout);
  std::cout << "converged       : " << (probe.converged ? "yes" : "NO")
            << " (" << probe.windows << " windows)\n"
            << "saturation rate : " << probe.saturation_rate
            << " packets per node per step\n"
            << "throughput      : " << probe.throughput_at_saturation << "\n"
            << "mean latency    : " << probe.latency_at_saturation << "\n";

  if (opt.sweep_cell && !cell.curve.empty()) {
    hp::TablePrinter curve({"load", "rate", "throughput", "admit",
                            "mean_lat", "p99_lat", "peak_in_flight"});
    for (const auto& point : cell.curve) {
      curve.row()
          .add(point.load_fraction, 1)
          .add(point.offered_rate, 4)
          .add(point.throughput, 4)
          .add(point.admit_fraction, 3)
          .add(point.mean_latency, 1)
          .add(point.p99_latency, 1)
          .add(static_cast<std::int64_t>(point.peak_in_flight));
    }
    curve.print(std::cout);
  }
  return probe.converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (!parse(argc, argv, opt)) return 2;

    if (opt.probe && opt.sweep_cell) {
      std::cerr << "error: --probe and --sweep-cell are mutually "
                   "exclusive (--sweep-cell already includes the probe)\n";
      return 2;
    }
    if (opt.pareto && !opt.probe && !opt.sweep_cell) {
      std::cerr << "error: --pareto only shapes --probe/--sweep-cell "
                   "traffic\n";
      return 2;
    }
    const bool checkpoint_flags = !opt.checkpoint_path.empty() ||
                                  !opt.restore_path.empty() ||
                                  opt.fingerprint;
    if ((opt.probe || opt.sweep_cell) &&
        (opt.inject_rate >= 0.0 || !opt.metrics_path.empty() ||
         !opt.trace_path.empty() || opt.profile || opt.csv || opt.audit ||
         !opt.save_path.empty() || !opt.load_path.empty() ||
         checkpoint_flags || opt.scale)) {
      std::cerr << "error: --probe/--sweep-cell cannot be combined with "
                   "--inject/--metrics/--trace/--profile/--csv/--audit/"
                   "--save/--load/--checkpoint/--restore/--fingerprint/"
                   "--scale\n";
      return 2;
    }
    if (opt.inject_rate >= 0.0 && (checkpoint_flags || opt.scale)) {
      std::cerr << "error: --checkpoint/--restore/--fingerprint/--scale are "
                   "batch-mode flags and cannot be combined with --inject\n";
      return 2;
    }
    if (opt.checkpoint_at > 0 && opt.checkpoint_path.empty()) {
      std::cerr << "error: --checkpoint-at needs --checkpoint\n";
      return 2;
    }
    if (!opt.restore_path.empty() &&
        (!opt.load_path.empty() || !opt.save_path.empty())) {
      std::cerr << "error: --restore resumes a checkpointed instance and "
                   "cannot be combined with --load/--save\n";
      return 2;
    }

    auto network = make_network(opt);
    if (!network) return 2;

    if (opt.probe || opt.sweep_cell) {
      return run_sweep_mode(opt, *network);
    }

    if (opt.inject_rate >= 0.0) {
      // Steady-state mode constructs its engine inside
      // measure_steady_state, so the observability flags have nothing to
      // attach to; reject the combination instead of silently ignoring it.
      if (!opt.metrics_path.empty() || !opt.trace_path.empty() ||
          opt.profile) {
        std::cerr << "error: --metrics/--trace/--profile are batch-mode "
                     "flags and cannot be combined with --inject\n";
        return 2;
      }
      // Steady-state mode: continuous Bernoulli arrivals, no batch.
      auto policy = make_policy(opt, *network);
      const std::uint64_t warmup = opt.inject_steps / 5;
      const auto report = hp::stats::measure_steady_state(
          *network, *policy, opt.inject_rate, warmup,
          opt.inject_steps - warmup, opt.seed);
      std::cout << "network         : " << network->name() << "\n"
                << "policy          : " << policy->name() << "\n"
                << "offered rate    : " << report.offered_rate
                << " per node per step\n"
                << "admit fraction  : " << report.admit_fraction << "\n"
                << "throughput      : " << report.throughput
                << " deliveries per node per step\n"
                << "mean latency    : " << report.mean_latency << "\n"
                << "p99 latency     : " << report.p99_latency << "\n"
                << "mean in flight  : " << report.mean_in_flight << "\n"
                << "deflections/pkt : " << report.deflections_per_delivered
                << "\n";
      return 0;
    }

    hp::Rng rng(opt.seed);
    hp::workload::Problem problem;
    if (opt.restore_path.empty()) {
      problem = opt.load_path.empty()
                    ? make_workload(opt, *network, rng)
                    : hp::workload::load_problem(opt.load_path);
      problem.validate(*network);
      if (!opt.save_path.empty()) {
        hp::workload::save_problem(opt.save_path, problem);
      }
    } else {
      // The restored packets come from the checkpoint, not a workload:
      // the engine must start empty for restore_checkpoint to accept it.
      problem.name = "restored";
    }
    auto policy = make_policy(opt, *network);

    hp::sim::EngineConfig config;
    config.max_steps = opt.max_steps;
    config.seed = opt.seed;
    config.num_threads = opt.threads;
    config.profile = opt.profile;
    if (opt.scale) config.memory = hp::sim::MemoryProfile::kLean;
    hp::sim::Engine engine(*network, problem, *policy, config);
    if (!opt.restore_path.empty()) {
      hp::sim::restore_checkpoint(engine, opt.restore_path);
    }

    // Optional instrumentation.
    const auto* mesh = dynamic_cast<const hp::net::Mesh*>(network.get());
    std::unique_ptr<hp::core::PotentialTracker> potential;
    std::unique_ptr<hp::core::SurfaceTracker> surface;
    hp::core::GreedyChecker greedy;
    hp::core::RestrictedPreferenceChecker preference;
    hp::stats::RunRecorder recorder;
    if (opt.audit) {
      if (mesh != nullptr) {
        hp::core::PotentialTracker::Config pc;
        pc.c_init = 2 * mesh->side();
        pc.d = mesh->dim();
        potential = std::make_unique<hp::core::PotentialTracker>(
            *network, engine, pc);
        engine.add_observer(potential.get());
        if (!mesh->wraps()) {
          surface = std::make_unique<hp::core::SurfaceTracker>(*mesh);
          engine.add_observer(surface.get());
        }
      }
      engine.add_observer(&greedy);
      engine.add_observer(&preference);
    }
    if (opt.csv) engine.add_observer(&recorder);

    // Observability: metrics registry and/or Chrome trace. Registered
    // after the audit trackers so the Φ/B/F gauges read this step's
    // tracker state.
    hp::obs::MetricsRegistry registry;
    std::unique_ptr<hp::obs::EngineMetrics> metrics;
    if (!opt.metrics_path.empty()) {
      metrics = std::make_unique<hp::obs::EngineMetrics>(registry);
      if (potential) metrics->attach_potential(*potential);
      if (surface) metrics->attach_surface(*surface);
      engine.add_observer(metrics.get());
    }
    hp::obs::TraceRing ring(std::size_t{1} << 16);
    std::unique_ptr<hp::obs::TraceObserver> tracer;
    if (!opt.trace_path.empty()) {
      tracer = std::make_unique<hp::obs::TraceObserver>(ring);
      engine.add_observer(tracer.get());
      if (opt.profile) {
        // Opt-in wall-clock spans: the trace stops being deterministic.
        engine.profiler()->set_trace_sink(&ring);
      }
    }

    hp::sim::RunResult result;
    if (!opt.checkpoint_path.empty() && opt.checkpoint_at > 0) {
      // Mid-run checkpoint: run to the requested step boundary, save,
      // then keep running (max_steps still caps the whole run).
      engine.run_for(opt.checkpoint_at);
      hp::sim::save_checkpoint(engine, opt.checkpoint_path);
      result = engine.run();
    } else {
      result = engine.run();
      if (!opt.checkpoint_path.empty()) {
        hp::sim::save_checkpoint(engine, opt.checkpoint_path);
      }
    }

    if (metrics) {
      std::ofstream out(opt.metrics_path);
      if (!out) {
        throw hp::CheckError("cannot open " + opt.metrics_path);
      }
      const bool csv_out =
          opt.metrics_path.size() >= 4 &&
          opt.metrics_path.compare(opt.metrics_path.size() - 4, 4, ".csv") ==
              0;
      if (csv_out) {
        registry.write_csv(out);
      } else {
        registry.write_json(out);
      }
    }
    if (tracer) {
      std::ofstream out(opt.trace_path);
      if (!out) {
        throw hp::CheckError("cannot open " + opt.trace_path);
      }
      hp::obs::write_chrome_trace(out, ring);
    }
    if (opt.profile) engine.profiler()->write_report(std::cerr);

    if (opt.csv) {
      recorder.write_csv(std::cout);
    } else {
      const auto summary = hp::stats::summarize_latency(result);
      std::cout << "network        : " << network->name() << " ("
                << network->num_nodes() << " nodes)\n"
                << "workload       : " << problem.name << " ("
                << problem.size() << " packets)\n"
                << "policy         : " << policy->name() << "\n"
                << "status         : "
                << (result.completed
                        ? "completed"
                        : (result.livelocked ? "LIVELOCK" : "step cap hit"))
                << "\n"
                << "steps          : " << result.steps << "\n"
                << "deflections    : " << result.total_deflections << "\n";
      if (result.completed && summary.delivered > 0) {
        std::cout << "mean latency   : " << summary.latency.mean() << "\n"
                  << "p99 latency    : " << summary.latency.percentile(0.99)
                  << "\n"
                  << "mean stretch   : " << summary.stretch.mean() << "\n";
      }
      if (mesh != nullptr && mesh->dim() == 2 && !mesh->wraps()) {
        std::cout << "Thm 20 bound   : "
                  << hp::core::thm20_bound(
                         mesh->side(), static_cast<double>(problem.size()))
                  << "\n";
      }
      if (opt.audit) {
        std::cout << "audit          : greedy(Def6)="
                  << greedy.violations().size() << " pref(Def18)="
                  << preference.violations().size();
        if (potential) {
          std::cout << " property8=" << potential->property8_violations().size()
                    << " structure=" << potential->structure_violations().size();
        }
        if (surface) {
          std::cout << " lemma14=" << surface->lemma14_violations().size();
        }
        std::cout << " violations\n";
      }
    }
    if (opt.fingerprint) {
      std::cout << "state fingerprint : 0x" << std::hex
                << hp::sim::state_fingerprint(engine) << std::dec << "\n";
    }
    return result.completed ? 0 : 1;
  } catch (const hp::CheckError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
