// Livelock demo (Section 1.2): watch hot-potato routing cycle forever.
//
// Three acts:
//   1. A NON-greedy bounce-back policy livelocks with a single packet —
//      hot-potato routing without greediness has no termination guarantee.
//   2. A deterministic, perfectly greedy (Definition 6) policy with
//      adversarially perverse tie-breaking livelocks on a concrete 4×4
//      torus instance (found by randomized search, frozen below) — the
//      paper's point that greediness alone cannot rule out livelock.
//   3. The same instance under restricted-priority terminates — inside
//      Theorem 20's class, livelock is impossible.
//
//   ./build/examples/livelock_demo
#include <iostream>

#include "routing/perverse.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "topology/mesh.hpp"

namespace {

hp::net::Coord xy(int x, int y) {
  hp::net::Coord c;
  c.push_back(x);
  c.push_back(y);
  return c;
}

void act(const std::string& title) { std::cout << "\n--- " << title << " ---\n"; }

}  // namespace

int main() {
  bool ok = true;

  act("Act 1: non-greedy bounce-back, one packet, 8x8 mesh");
  {
    hp::net::Mesh mesh(2, 8);
    hp::workload::Problem problem;
    problem.name = "one-packet";
    problem.packets.push_back({mesh.node_at(xy(0, 0)), mesh.node_at(xy(7, 7))});
    hp::routing::BounceBackPolicy policy;
    hp::sim::EngineConfig config;
    config.max_steps = 100;
    hp::sim::Engine engine(mesh, problem, policy, config);
    const auto result = engine.run();
    std::cout << "livelocked=" << (result.livelocked ? "yes" : "no")
              << " after " << result.steps_executed
              << " steps — the packet ping-pongs between (0,0) and (1,0) "
                 "forever\n";
    ok &= result.livelocked;
  }

  act("Act 2: GREEDY livelock — perverse tie-breaks on a 4x4 torus");
  {
    hp::net::Mesh torus(2, 4, /*wrap=*/true);
    auto node = [&](int x, int y) { return torus.node_at(xy(x, y)); };
    // Found by routing::livelock_search (seed 8) and frozen here: seven
    // in-flight packets whose deflections feed each other in a cycle.
    hp::workload::Problem problem;
    problem.name = "greedy-livelock";
    problem.packets = {{node(2, 2), node(2, 2)}, {node(2, 1), node(2, 2)},
                       {node(0, 1), node(2, 1)}, {node(3, 2), node(3, 1)},
                       {node(3, 2), node(0, 2)}, {node(1, 2), node(3, 2)},
                       {node(3, 2), node(1, 2)}, {node(1, 2), node(2, 2)}};
    hp::routing::PerverseGreedyPolicy policy;
    hp::sim::EngineConfig config;
    config.max_steps = 50'000;
    hp::sim::Engine engine(torus, problem, policy, config);
    const auto result = engine.run();
    std::cout << "policy=" << policy.name() << " (greedy per Definition 6)\n"
              << "livelocked=" << (result.livelocked ? "yes" : "no")
              << " detected_after=" << result.steps_executed << " steps, "
              << engine.in_flight() << " packets trapped forever\n";
    ok &= result.livelocked;
  }

  act("Act 3: same instance, restricted-priority (Theorem 20 class)");
  {
    hp::net::Mesh torus(2, 4, /*wrap=*/true);
    auto node = [&](int x, int y) { return torus.node_at(xy(x, y)); };
    hp::workload::Problem problem;
    problem.name = "greedy-livelock";
    problem.packets = {{node(2, 2), node(2, 2)}, {node(2, 1), node(2, 2)},
                       {node(0, 1), node(2, 1)}, {node(3, 2), node(3, 1)},
                       {node(3, 2), node(0, 2)}, {node(1, 2), node(3, 2)},
                       {node(3, 2), node(1, 2)}, {node(1, 2), node(2, 2)}};
    hp::routing::RestrictedPriorityPolicy policy;
    hp::sim::Engine engine(torus, problem, policy);
    const auto result = engine.run();
    std::cout << "completed=" << (result.completed ? "yes" : "no") << " in "
              << result.steps
              << " steps — preferring restricted packets breaks the cycle\n";
    ok &= result.completed;
  }

  std::cout << "\n" << (ok ? "demo OK" : "DEMO FAILED") << "\n";
  return ok ? 0 : 1;
}
