// Optical-network scenario (the paper's §1 motivation): in multihop
// lightwave networks ([AS], [Ma], [Sz], [ZA]) buffering a packet means an
// expensive optical→electronic→optical conversion, so blocked packets are
// deflected instead of stored. This example models a Manhattan-Street-like
// optical grid as a 2-D torus and compares bufferless greedy deflection
// against buffered store-and-forward on bursty traffic, reporting the
// buffer occupancy deflection routing avoids.
//
//   ./build/examples/optical_grid [side] [bursts] [seed]
#include <cstdlib>
#include <iostream>

#include "routing/restricted_priority.hpp"
#include "routing/store_forward.hpp"
#include "sim/engine.hpp"
#include "stats/recorder.hpp"
#include "topology/mesh.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

// A traffic burst: every node of a random sub-square fires one packet at a
// node of another random sub-square (e.g. a rack-to-rack shuffle).
hp::workload::Problem burst_traffic(const hp::net::Mesh& torus, int bursts,
                                    hp::Rng& rng) {
  hp::workload::Problem problem;
  problem.name = "optical-bursts";
  const int n = torus.side();
  const int window = std::max(2, n / 4);
  std::vector<int> used(torus.num_nodes(), 0);
  for (int b = 0; b < bursts; ++b) {
    const auto sx = static_cast<int>(rng.uniform(n - window));
    const auto sy = static_cast<int>(rng.uniform(n - window));
    const auto tx = static_cast<int>(rng.uniform(n));
    const auto ty = static_cast<int>(rng.uniform(n));
    for (int dx = 0; dx < window; ++dx) {
      for (int dy = 0; dy < window; ++dy) {
        hp::net::Coord src;
        src.push_back(sx + dx);
        src.push_back(sy + dy);
        const auto src_id = torus.node_at(src);
        if (used[static_cast<std::size_t>(src_id)] >=
            torus.degree(src_id)) {
          continue;  // origin saturated by an overlapping burst
        }
        ++used[static_cast<std::size_t>(src_id)];
        hp::net::Coord dst;
        dst.push_back((tx + dx) % n);
        dst.push_back((ty + dy) % n);
        problem.packets.push_back({src_id, torus.node_at(dst)});
      }
    }
  }
  return problem;
}

}  // namespace

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 16;
  const int bursts = argc > 2 ? std::atoi(argv[2]) : 6;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  hp::net::Mesh torus(2, side, /*wrap=*/true);  // optical ring grid
  hp::net::Mesh mesh(2, side, /*wrap=*/false);  // buffered comparator runs
                                                // dimension-order on a mesh
  hp::Rng rng(seed);
  auto problem = burst_traffic(torus, bursts, rng);
  problem.validate(torus);
  std::cout << "optical grid " << torus.name() << ", " << problem.size()
            << " packets in " << bursts << " bursts\n\n";

  // Bufferless deflection routing on the torus.
  hp::routing::RestrictedPriorityPolicy policy;
  hp::sim::Engine engine(torus, problem, policy);
  const auto deflection = engine.run();
  const auto summary = hp::stats::summarize_latency(deflection);

  // Buffered dimension-order routing (requires O-E-O conversion at every
  // queued hop) on the mesh variant of the same grid.
  const auto buffered = hp::routing::run_store_forward(mesh, problem);

  hp::TablePrinter table({"router", "buffers", "steps", "mean_latency",
                          "p99_latency", "max_queue"});
  table.row()
      .add("greedy deflection (hot-potato)")
      .add("none")
      .add(deflection.steps)
      .add(summary.latency.mean(), 1)
      .add(summary.latency.percentile(0.99), 1)
      .add(std::int64_t{0});
  hp::Samples sf_latency;
  for (auto t : buffered.arrival) sf_latency.add(static_cast<double>(t));
  table.row()
      .add("store-and-forward (dim-order)")
      .add("unbounded")
      .add(buffered.steps)
      .add(sf_latency.mean(), 1)
      .add(sf_latency.percentile(0.99), 1)
      .add(static_cast<std::uint64_t>(buffered.max_queue));
  table.print(std::cout);

  std::cout << "\nDeflection routing needed zero packet buffers; the "
               "buffered router queued up to "
            << buffered.max_queue
            << " packets on one link (each queued hop would cost an "
               "optical-electronic-optical conversion).\nDeflection cost: "
            << deflection.total_deflections << " extra hops total ("
            << static_cast<double>(deflection.total_deflections) /
                   static_cast<double>(problem.size())
            << " per packet).\n";
  return deflection.completed && buffered.completed ? 0 : 1;
}
