// Potential-function trace: a guided tour of the Section 3–4 analysis on a
// single congested run. Prints the evolving mesh occupancy (bad nodes
// bracketed, Figure 3/4 concept), the global potential Φ(t), the bad-node
// volume B(t) and its surface F(t), and finishes with the audit verdicts
// for Property 8, Corollary 10, Lemma 12 and Lemma 14.
//
//   ./build/examples/potential_trace [side] [packets] [seed]
#include <cstdlib>
#include <iostream>

#include "core/bounds.hpp"
#include "core/potential.hpp"
#include "core/surface.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "topology/mesh.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::size_t packets =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 90;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  hp::net::Mesh mesh(2, side);
  hp::Rng rng(seed);
  // A single hotspot produces a growing, then draining, bad-node volume.
  auto problem = hp::workload::hotspot(mesh, packets, 1, rng);

  hp::routing::RestrictedPriorityPolicy policy;
  hp::sim::Engine engine(mesh, problem, policy);

  hp::core::PotentialTracker::Config config;
  config.c_init = 2 * side;
  config.d = 2;
  hp::core::PotentialTracker potential(mesh, engine, config);
  hp::core::SurfaceTracker surface(mesh);
  hp::sim::TraceRecorder trace;
  engine.add_observer(&potential);
  engine.add_observer(&surface);
  engine.add_observer(&trace);

  std::cout << "routing " << problem.size() << " hotspot packets on "
            << mesh.name() << " — initial potential Phi(0) = "
            << potential.phi() << " (<= kM = "
            << problem.size() * static_cast<std::size_t>(4 * side) << ")\n";

  const auto result = engine.run();
  if (!result.completed) {
    std::cout << "run did not complete?!\n";
    return 1;
  }

  // Occupancy snapshots at the start, the congestion peak, and near the end.
  std::size_t peak_step = 0;
  for (std::size_t t = 0; t < surface.b_series().size(); ++t) {
    if (surface.b_series()[t] > surface.b_series()[peak_step]) peak_step = t;
  }
  for (std::size_t idx : {std::size_t{0}, peak_step,
                          trace.snapshots().size() - 1}) {
    if (idx < trace.snapshots().size()) {
      std::cout << "\n" << hp::sim::render_grid(mesh, trace.snapshots()[idx]);
    }
  }

  std::cout << "\n";
  hp::TablePrinter table({"t", "Phi(t)", "B(t)", "F(t)", "lemma14_bound"});
  const auto& b = surface.b_series();
  const std::size_t stride = std::max<std::size_t>(1, b.size() / 10);
  for (std::size_t t = 0; t < b.size(); t += stride) {
    table.row()
        .add(static_cast<std::uint64_t>(t))
        .add(potential.phi_series()[t])
        .add(b[t])
        .add(surface.f_series()[t])
        .add(hp::core::lemma14_bound(2, static_cast<double>(b[t])), 1);
  }
  table.print(std::cout);

  const auto cor10 =
      hp::core::check_corollary10(potential.phi_series(), surface.g_series());
  const auto lem12 =
      hp::core::check_lemma12(potential.phi_series(), surface.f_series());
  std::cout << "\naudit verdicts over " << result.steps_executed << " steps:\n"
            << "  Property 8 (Lemma 19) violations : "
            << potential.property8_violations().size()
            << "  (min node slack " << potential.min_slack() << ")\n"
            << "  Corollary 10 violations          : " << cor10.size() << "\n"
            << "  Lemma 12 violations              : " << lem12.size() << "\n"
            << "  Lemma 14 violations              : "
            << surface.lemma14_violations().size() << "\n"
            << "  structural (§4.1/§4.2) violations: "
            << potential.structure_violations().size() << "\n"
            << "routing time " << result.steps << " steps vs Theorem 20 bound "
            << hp::core::thm20_bound(side, static_cast<double>(problem.size()))
            << "\n";

  const bool clean = potential.property8_violations().empty() &&
                     cor10.empty() && lem12.empty() &&
                     surface.lemma14_violations().empty() &&
                     potential.structure_violations().empty();
  std::cout << (clean ? "all paper invariants verified on this run"
                      : "INVARIANT VIOLATIONS FOUND")
            << "\n";
  return clean ? 0 : 1;
}
