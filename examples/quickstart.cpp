// Quickstart: route a random permutation on a 16×16 mesh with the paper's
// restricted-priority greedy hot-potato algorithm, verify the Theorem 20
// guarantee, and print per-packet statistics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [side] [seed]
#include <cstdlib>
#include <iostream>

#include "core/bounds.hpp"
#include "core/checkers.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/metrics.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "stats/recorder.hpp"
#include "topology/mesh.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // 1. A 2-D mesh and a workload: one packet per node, random destinations
  //    forming a permutation (k = n²).
  hp::net::Mesh mesh(2, side);
  hp::Rng rng(seed);
  auto problem = hp::workload::random_permutation(mesh, rng);

  // 2. The paper's algorithm class: greedy, restricted packets first.
  hp::routing::RestrictedPriorityPolicy policy;

  // 3. Simulate, with the greediness checker watching every step and the
  //    observability layer collecting distributions (docs/OBSERVABILITY.md).
  hp::sim::Engine engine(mesh, problem, policy);
  hp::core::GreedyChecker greedy_checker;
  engine.add_observer(&greedy_checker);
  hp::obs::MetricsRegistry registry;
  hp::obs::EngineMetrics metrics(registry);
  engine.add_observer(&metrics);
  const hp::sim::RunResult result = engine.run();

  // 4. Report.
  const double bound =
      hp::core::remark_permutation_bound(side);  // 8n² for permutations
  const auto summary = hp::stats::summarize_latency(result);
  std::cout << "network          : " << mesh.name() << " ("
            << mesh.num_nodes() << " nodes)\n"
            << "packets          : " << result.num_packets << "\n"
            << "routing time     : " << result.steps << " steps\n"
            << "Theorem 20/Remark: " << bound
            << " (measured is " << static_cast<double>(result.steps) / bound
            << " of the bound)\n"
            << "deflections      : " << result.total_deflections << " ("
            << static_cast<double>(result.total_deflections) /
                   static_cast<double>(result.num_packets)
            << " per packet)\n"
            << "mean latency     : " << summary.latency.mean() << " steps\n"
            << "p99 latency      : " << summary.latency.percentile(0.99)
            << " steps\n"
            << "mean stretch     : " << summary.stretch.mean()
            << " (latency / shortest-path distance)\n"
            << "greedy (Def. 6)  : "
            << (greedy_checker.violations().empty() ? "verified"
                                                    : "VIOLATED")
            << " over " << greedy_checker.steps_checked() << " steps\n";

  // 5. The same numbers, straight from the metrics registry: occupancy is
  //    something the RunResult alone cannot give you.
  const hp::obs::Distribution* occupancy =
      registry.find_distribution("node.occupancy");
  std::cout << "max occupancy    : " << occupancy->stat().max()
            << " packets at one node (mean " << occupancy->stat().mean()
            << ")\n"
            << "bad-node steps   : "
            << registry.counter("engine.bad_node_steps").value()
            << " (node, step) pairs with more than 2 packets\n";

  return result.completed &&
                 static_cast<double>(result.steps) <= bound &&
                 greedy_checker.violations().empty()
             ? 0
             : 1;
}
