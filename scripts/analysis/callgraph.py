#!/usr/bin/env python3
"""Whole-program determinism certification for the hot-potato engine.

PR 2's determinism lint certified a *textual* scope — every file under
``src/sim/`` and ``src/routing/``. But the bit-identical-for-any-thread-count
guarantee depends on every function *reachable* from the routing phase:
potential observers in ``src/core``, topology caches in ``src/topology``,
recorders in ``src/stats``. This tool makes the certified class the actual
call-graph-reachable set, mirroring the paper's Theorem 17 move of proving a
property for every member of a class once instead of per run.

Three subcommands:

  reachable   Build the call graph of ``src/``, compute the set of functions
              reachable from the routing roots (``Engine::step``), and write
              or verify the committed ``routing_reachable.json`` artifact.
              The determinism lint consumes the artifact's file set, so lint
              scope follows reachability, not directory layout — and scope
              growth shows up as a reviewable diff of the artifact.
  layering    Enforce the declared layering DAG (``scripts/analysis/
              layering.json``) over the include graph of ``src/``. A file may
              include only files of its own or a lower layer; every exception
              must be listed in the config with a reason.
  dump        Print the extracted functions and call edges (debugging aid).

Engines: the default is a pure-regex/token engine (Python stdlib only, so it
runs in containers without LLVM). The call graph it builds is *conservative*:
calls resolve by simple name to every function sharing that name, so virtual
dispatch (``obs->on_step(...)``) reaches every override, and any mention of a
class name inside a body reaches that class's constructor and destructor.
Over-approximation widens the certified set — it can only make the lint
stricter, never weaker. When the ``clang.cindex`` bindings are importable,
``--engine=clang`` builds an AST-precise graph from ``compile_commands.json``
as a cross-check; the regex engine remains the source of truth for the
committed artifact (same discipline as the determinism lint's engines).

Exit status: 0 = clean/ok, 1 = findings or stale artifact, 2 = usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "lint"))
from determinism_lint import strip_code  # noqa: E402

SCHEMA = "hp-routing-reachable-v1"
DEFAULT_ROOTS = ("hp::sim::Engine::step",)
ARTIFACT = "routing_reachable.json"
LAYERING_CONFIG = pathlib.Path(__file__).resolve().parent / "layering.json"

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"  # identifiers / keywords
    r"|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||\[\[|\]\]"
    r"|[0-9][0-9A-Za-z_.']*"  # numeric literals (one token)
    r"|[{}()\[\];:,<>~=!&|+\-*/.?%^]"
)

IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

#: Keywords that look like calls (``if (...)``) or never are ones.
NON_CALL_KEYWORDS = frozenset(
    {
        "if", "for", "while", "switch", "return", "catch", "sizeof",
        "alignof", "alignas", "decltype", "new", "delete", "throw",
        "static_assert", "assert", "defined", "noexcept", "else", "do",
        "case", "default", "using", "typedef", "typename", "template",
        "static_cast", "const_cast", "dynamic_cast", "reinterpret_cast",
        "co_await", "co_return", "co_yield", "requires", "operator",
    }
)

SCOPE_KEYWORDS = frozenset({"namespace", "class", "struct", "union", "enum"})


@dataclasses.dataclass
class Token:
    value: str
    line: int  # 1-based

    @property
    def is_ident(self) -> bool:
        return bool(IDENT_RE.match(self.value))


def tokenize(code_lines: list[str]) -> list[Token]:
    out: list[Token] = []
    for lineno, line in enumerate(code_lines, start=1):
        if line.lstrip().startswith("#"):
            continue  # preprocessor directives carry no declarations
        for m in TOKEN_RE.finditer(line):
            out.append(Token(m.group(0), lineno))
    return out


# ---------------------------------------------------------------------------
# Function extraction (regex/token engine)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class FunctionDef:
    qualified: str  # e.g. hp::sim::Engine::step
    name: str  # last component, e.g. step
    file: str  # repo-relative POSIX path
    line: int  # definition start (1-based)
    calls: set[str] = dataclasses.field(default_factory=set)
    idents: set[str] = dataclasses.field(default_factory=set)


@dataclasses.dataclass
class ParsedFile:
    relpath: str
    functions: list[FunctionDef]
    includes: list[str]  # resolved repo-relative paths of quoted includes
    classes: set[str]  # class/struct names defined here


INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def _match_group(tokens: list[Token], i: int, open_: str, close: str) -> int:
    """Index just past the group that opens at tokens[i] (== open_)."""
    depth = 0
    n = len(tokens)
    while i < n:
        v = tokens[i].value
        if v == open_:
            depth += 1
        elif v == close:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _parse_declarator_name(tokens: list[Token], i: int) -> tuple[str, int] | None:
    """Parses a (possibly qualified) declarator name ending right before a
    '('. Returns (name, index_of_lparen) or None. Handles ``A::B::f``,
    ``~A``, ``operator==`` and conversion operators."""
    parts: list[str] = []
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.value == "~" and i + 1 < n and tokens[i + 1].is_ident:
            parts.append("~" + tokens[i + 1].value)
            i += 2
        elif t.value == "operator":
            # operator()(...)  |  operator==(...)  |  operator bool(...)
            j = i + 1
            sym = ""
            if j + 1 < n and tokens[j].value == "(" and tokens[j + 1].value == ")":
                sym, j = "()", j + 2
            else:
                while j < n and tokens[j].value != "(":
                    sym += tokens[j].value
                    j += 1
            parts.append("operator" + sym)
            i = j
            break
        elif t.is_ident:
            parts.append(t.value)
            i += 1
        else:
            return None
        if i < n and tokens[i].value == "::":
            i += 1
            continue
        break
    if not parts or i >= n or tokens[i].value != "(":
        return None
    return "::".join(parts), i


def _skip_ctor_init_list(tokens: list[Token], i: int) -> int | None:
    """Past-`:` scan of a constructor initializer list. Returns the index of
    the body '{' or None if the construct turns out not to be one."""
    n = len(tokens)
    angle = 0
    while i < n:
        v = tokens[i].value
        if v == "<":
            angle += 1
        elif v == ">":
            angle = max(0, angle - 1)
        elif angle == 0 and v == "(":
            i = _match_group(tokens, i, "(", ")")
            # after a completed initializer: ',' continues, '{' is the body
            if i < n and tokens[i].value == "{":
                return i
            continue
        elif angle == 0 and v == "{":
            # `member{...}` braced init only directly after a name/template;
            # otherwise this is the body.
            prev = tokens[i - 1].value if i > 0 else ""
            if IDENT_RE.match(prev) or prev == ">":
                i = _match_group(tokens, i, "{", "}")
                if i < n and tokens[i].value == "{":
                    return i
                continue
            return i
        elif v == ";":
            return None
        i += 1
    return None


def _scan_after_params(tokens: list[Token], i: int) -> int | None:
    """tokens[i] is just past the closing ')' of a parameter list. Returns
    the index of the body '{' when this is a definition, else None."""
    n = len(tokens)
    angle = 0
    while i < n:
        v = tokens[i].value
        if v == "noexcept" and i + 1 < n and tokens[i + 1].value == "(":
            i = _match_group(tokens, i + 1, "(", ")")
            continue
        if v == "<":
            angle += 1
        elif v == ">":
            angle = max(0, angle - 1)
        elif angle == 0:
            if v == "{":
                return i
            if v == ";":
                return None
            if v == "=":  # = default / = delete / = 0
                return None
            if v == ":":
                return _skip_ctor_init_list(tokens, i + 1)
            if v in ("(", "["):
                # unexpected group (attribute, asm...): skip it
                i = _match_group(tokens, i, v, ")" if v == "(" else "]")
                continue
        i += 1
    return None


def parse_file(relpath: str, raw_text: str) -> ParsedFile:
    includes = [
        m.group(1)
        for line in raw_text.splitlines()
        if (m := INCLUDE_RE.match(line))
    ]
    code_lines = strip_code(raw_text)
    tokens = tokenize(code_lines)
    n = len(tokens)

    functions: list[FunctionDef] = []
    classes: set[str] = set()
    # scope stack entries: (kind, name) where kind in
    # {namespace, class, block}
    scopes: list[tuple[str, str]] = []
    i = 0
    while i < n:
        t = tokens[i]
        v = t.value

        if v == "namespace":
            j = i + 1
            name_parts: list[str] = []
            while j < n and (tokens[j].is_ident or tokens[j].value == "::"):
                if tokens[j].is_ident:
                    name_parts.append(tokens[j].value)
                j += 1
            if j < n and tokens[j].value == "{":
                # C++17 nested `namespace a::b {` opens ONE brace
                scopes.append(("namespace", "::".join(name_parts)))
                i = j + 1
                continue
            if j < n and tokens[j].value == "=":  # namespace alias
                while j < n and tokens[j].value != ";":
                    j += 1
            i = j + 1
            continue

        if v in ("class", "struct") and (
            i == 0 or tokens[i - 1].value != "enum"
        ):
            j = i + 1
            name = ""
            if j < n and tokens[j].is_ident:
                name = tokens[j].value
                j += 1
            angle = 0
            while j < n:
                w = tokens[j].value
                if w == "<":
                    angle += 1
                elif w == ">":
                    angle = max(0, angle - 1)
                elif angle == 0 and w in ("{", ";"):
                    break
                j += 1
            if j < n and tokens[j].value == "{":
                scopes.append(("class", name))
                if name:
                    classes.add(name)
                i = j + 1
                continue
            i = j + 1
            continue

        if v in ("enum", "union"):
            j = i + 1
            while j < n and tokens[j].value not in ("{", ";"):
                j += 1
            if j < n and tokens[j].value == "{":
                j = _match_group(tokens, j, "{", "}")
            i = j
            continue

        if v == "{":
            scopes.append(("block", ""))
            i += 1
            continue
        if v == "}":
            if scopes:
                scopes.pop()
            i += 1
            continue

        parsed = None
        if (t.is_ident and v not in NON_CALL_KEYWORDS and v not in SCOPE_KEYWORDS) or v in ("~", "operator"):
            parsed = _parse_declarator_name(tokens, i)
        if parsed is not None:
            name, lparen = parsed
            past_params = _match_group(tokens, lparen, "(", ")")
            body = _scan_after_params(tokens, past_params)
            if body is not None:
                qual_parts = [s[1] for s in scopes if s[0] in ("namespace", "class") and s[1]]
                qualified = "::".join(qual_parts + [name])
                fn = FunctionDef(
                    qualified=qualified,
                    name=name.rsplit("::", 1)[-1],
                    file=relpath,
                    line=tokens[i].line,
                )
                # ctor-init-list / trailing tokens before the body carry
                # real call edges too (`c_(helper(a))`, default member
                # factories) — scan them the same way as the body.
                for k in range(past_params, body):
                    w = tokens[k]
                    if w.is_ident and w.value not in NON_CALL_KEYWORDS:
                        fn.idents.add(w.value)
                        if k + 1 < n and tokens[k + 1].value == "(":
                            fn.calls.add(w.value)
                # walk the body: record calls + identifiers
                depth = 0
                k = body
                while k < n:
                    w = tokens[k]
                    if w.value == "{":
                        depth += 1
                    elif w.value == "}":
                        depth -= 1
                        if depth == 0:
                            k += 1
                            break
                    elif w.is_ident:
                        if w.value not in NON_CALL_KEYWORDS:
                            fn.idents.add(w.value)
                            if k + 1 < n and tokens[k + 1].value == "(":
                                fn.calls.add(w.value)
                    k += 1
                functions.append(fn)
                i = k
                continue
            # declaration only: resume right after the parameter list so a
            # same-line second declarator or initializer is handled sanely.
            i = past_params
            continue

        i += 1

    return ParsedFile(
        relpath=relpath, functions=functions, includes=includes, classes=classes
    )


# ---------------------------------------------------------------------------
# Tree loading
# ---------------------------------------------------------------------------

SRC_EXTS = (".hpp", ".cpp", ".h", ".cc")


def source_files(root: pathlib.Path) -> list[pathlib.Path]:
    base = root / "src"
    return sorted(
        p for p in base.rglob("*") if p.suffix in SRC_EXTS and p.is_file()
    )


def tu_list_from_compile_commands(path: pathlib.Path, root: pathlib.Path) -> set[str]:
    """Repo-relative paths of the src/ translation units in the database."""
    entries = json.loads(path.read_text(encoding="utf-8"))
    out: set[str] = set()
    for entry in entries:
        f = pathlib.Path(entry["file"])
        if not f.is_absolute():
            f = pathlib.Path(entry.get("directory", ".")) / f
        try:
            rel = f.resolve().relative_to(root).as_posix()
        except ValueError:
            continue
        if rel.startswith("src/"):
            out.add(rel)
    return out


@dataclasses.dataclass
class Program:
    files: dict[str, ParsedFile]

    @property
    def functions(self) -> list[FunctionDef]:
        return [fn for pf in self.files.values() for fn in pf.functions]

    def by_simple_name(self) -> dict[str, list[FunctionDef]]:
        idx: dict[str, list[FunctionDef]] = {}
        for fn in self.functions:
            idx.setdefault(fn.name, []).append(fn)
        return idx

    def class_names(self) -> set[str]:
        out: set[str] = set()
        for pf in self.files.values():
            out |= pf.classes
        return out


def load_program(
    root: pathlib.Path, compile_commands: pathlib.Path | None
) -> Program:
    paths = source_files(root)
    if compile_commands is not None and compile_commands.exists():
        tus = tu_list_from_compile_commands(compile_commands, root)
        known = {p.relative_to(root).as_posix() for p in paths}
        missing = tus - known
        for rel in sorted(missing):
            print(
                f"callgraph: note: {rel} is in {compile_commands.name} but "
                "not on disk",
                file=sys.stderr,
            )
    files: dict[str, ParsedFile] = {}
    for path in paths:
        rel = path.relative_to(root).as_posix()
        files[rel] = parse_file(
            rel, path.read_text(encoding="utf-8", errors="replace")
        )
    return Program(files)


# ---------------------------------------------------------------------------
# Reachability
# ---------------------------------------------------------------------------


def reachable_functions(
    program: Program, roots: tuple[str, ...] = DEFAULT_ROOTS
) -> list[FunctionDef]:
    """Conservative closure over the name-resolved call graph.

    Call edges resolve a called simple name to EVERY function definition
    sharing it (this subsumes virtual dispatch: `on_step` reaches every
    override). Additionally, mentioning a class name inside a body reaches
    that class's constructors and destructor — object construction sites
    (`Rng node_rng(...)`, `make_unique<T>(...)`) call them without a
    name-followed-by-paren shape.
    """
    by_name = program.by_simple_name()
    classes = program.class_names()

    def targets(fn: FunctionDef) -> set[str]:
        out: set[str] = set(fn.calls)
        for ident in fn.idents:
            if ident in classes:
                out.add(ident)  # constructors share the class name
                out.add("~" + ident)
        return out

    roots_found = [
        fn
        for fn in program.functions
        if any(fn.qualified == r or fn.qualified.endswith("::" + r) for r in roots)
    ]
    if not roots_found:
        raise SystemExit(
            f"callgraph: none of the roots {list(roots)} were found; "
            "did Engine::step get renamed?"
        )

    seen: set[int] = set()
    order: list[FunctionDef] = []
    stack = list(roots_found)
    while stack:
        fn = stack.pop()
        if id(fn) in seen:
            continue
        seen.add(id(fn))
        order.append(fn)
        for name in targets(fn):
            for callee in by_name.get(name, ()):
                if id(callee) not in seen:
                    stack.append(callee)
    return order


def build_artifact(program: Program, roots: tuple[str, ...]) -> dict:
    reach = reachable_functions(program, roots)
    per_file: dict[str, list[str]] = {}
    for fn in reach:
        per_file.setdefault(fn.file, []).append(fn.qualified)
    for names in per_file.values():
        names.sort()
    return {
        "schema": SCHEMA,
        "engine": "regex",
        "roots": sorted(roots),
        "files": sorted(per_file),
        "functions": {f: per_file[f] for f in sorted(per_file)},
    }


def artifact_to_text(artifact: dict) -> str:
    return json.dumps(artifact, indent=2, sort_keys=False) + "\n"


# ---------------------------------------------------------------------------
# Optional clang engine (cross-check only)
# ---------------------------------------------------------------------------


def clang_reachable_files(
    root: pathlib.Path, compile_commands: pathlib.Path, roots: tuple[str, ...]
) -> set[str] | None:
    """AST-precise reachable file set via libclang, or None when the
    bindings are unavailable. Used as a cross-check: the regex engine stays
    the source of truth for the committed artifact."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None

    try:
        db = cindex.CompilationDatabase.fromDirectory(str(compile_commands.parent))
    except cindex.CompilationDatabaseError:
        return None

    index = cindex.Index.create()
    defs: dict[str, list[tuple[str, str]]] = {}  # usr -> [(file, qualified)]
    edges: dict[str, set[str]] = {}  # caller usr -> callee usrs
    names: dict[str, str] = {}  # usr -> qualified name

    def qualified_name(cursor) -> str:  # noqa: ANN001
        parts = []
        c = cursor
        while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    fn_kinds = {
        cindex.CursorKind.FUNCTION_DECL,
        cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.CONSTRUCTOR,
        cindex.CursorKind.DESTRUCTOR,
        cindex.CursorKind.FUNCTION_TEMPLATE,
    }

    for path in source_files(root):
        if path.suffix not in (".cpp", ".cc"):
            continue
        cmds = db.getCompileCommands(str(path))
        args = []
        if cmds:
            args = [a for a in list(cmds[0].arguments)[1:] if a != str(path)]
        try:
            tu = index.parse(str(path), args=args)
        except cindex.TranslationUnitLoadError:
            continue

        def visit(node, current_usr):  # noqa: ANN001
            if node.kind in fn_kinds and node.is_definition():
                usr = node.get_usr()
                rel = None
                if node.location.file is not None:
                    try:
                        rel = (
                            pathlib.Path(str(node.location.file))
                            .resolve()
                            .relative_to(root)
                            .as_posix()
                        )
                    except ValueError:
                        rel = None
                if rel is not None and rel.startswith("src/"):
                    defs.setdefault(usr, []).append((rel, qualified_name(node)))
                    names[usr] = qualified_name(node)
                current_usr = usr
            elif node.kind == cindex.CursorKind.CALL_EXPR and current_usr:
                ref = node.referenced
                if ref is not None:
                    edges.setdefault(current_usr, set()).add(ref.get_usr())
            for child in node.get_children():
                visit(child, current_usr)

        visit(tu.cursor, None)

    root_usrs = [
        usr for usr, qn in names.items() if any(qn.endswith(r.split("::")[-1]) and r in qn for r in roots)
    ]
    seen: set[str] = set()
    stack = list(root_usrs)
    while stack:
        usr = stack.pop()
        if usr in seen:
            continue
        seen.add(usr)
        stack.extend(edges.get(usr, ()))
    out: set[str] = set()
    for usr in seen:
        for rel, _ in defs.get(usr, ()):
            out.add(rel)
    return out


# ---------------------------------------------------------------------------
# Layering gate
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class LayeringViolation:
    src: str
    dst: str
    detail: str

    def __str__(self) -> str:
        return f"{self.src}: [layering] {self.detail} (includes {self.dst})"


def load_layering_config(path: pathlib.Path) -> dict:
    config = json.loads(path.read_text(encoding="utf-8"))
    for key in ("ranks", "file_overrides", "edge_exceptions"):
        if key not in config:
            raise SystemExit(f"layering config {path} is missing '{key}'")
    for exc in config["edge_exceptions"]:
        if not exc.get("reason", "").strip():
            raise SystemExit(
                f"layering config: exception {exc.get('from')} -> "
                f"{exc.get('to')} is missing its mandatory reason"
            )
    return config


def check_layering(program: Program, config: dict) -> list[LayeringViolation]:
    ranks: dict[str, int] = config["ranks"]
    overrides: dict[str, str] = {
        k: v["layer"] if isinstance(v, dict) else v
        for k, v in config["file_overrides"].items()
    }
    exceptions = {
        (e["from"], e["to"]) for e in config["edge_exceptions"]
    }
    violations: list[LayeringViolation] = []
    used_exceptions: set[tuple[str, str]] = set()
    used_overrides: set[str] = set()

    def layer_of(relpath: str) -> str | None:
        if relpath in overrides:
            used_overrides.add(relpath)
            return overrides[relpath]
        parts = relpath.split("/")
        if len(parts) >= 3 and parts[0] == "src":
            return parts[1]
        return None

    for relpath, parsed in sorted(program.files.items()):
        src_layer = layer_of(relpath)
        if src_layer is None:
            continue
        if src_layer not in ranks:
            violations.append(
                LayeringViolation(relpath, "", f"unknown layer '{src_layer}'")
            )
            continue
        for inc in parsed.includes:
            dst = "src/" + inc
            if dst not in program.files:
                continue  # system/non-src include
            dst_layer = layer_of(dst)
            if dst_layer is None or dst_layer not in ranks:
                continue
            if ranks[dst_layer] <= ranks[src_layer]:
                continue
            if (relpath, dst) in exceptions:
                used_exceptions.add((relpath, dst))
                continue
            violations.append(
                LayeringViolation(
                    relpath,
                    dst,
                    f"layer '{src_layer}' (rank {ranks[src_layer]}) must not "
                    f"include layer '{dst_layer}' (rank {ranks[dst_layer]})",
                )
            )

    # Stale config entries are findings too: an exception or override that no
    # longer matches anything silently widens what a future edit may do.
    for exc in sorted(exceptions - used_exceptions):
        violations.append(
            LayeringViolation(
                exc[0], exc[1], "stale edge_exception: include no longer exists"
            )
        )
    for relpath in sorted(set(overrides) - used_overrides - set(program.files)):
        violations.append(
            LayeringViolation(
                relpath, "", "stale file_override: file does not exist"
            )
        )
    return violations


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def cmd_reachable(args: argparse.Namespace) -> int:
    root = args.root.resolve()
    program = load_program(root, args.compile_commands)
    artifact = build_artifact(program, tuple(args.roots))
    text = artifact_to_text(artifact)
    out_path = root / args.output

    if args.engine == "clang":
        if args.compile_commands is None:
            print("callgraph: --engine=clang needs --compile-commands", file=sys.stderr)
            return 2
        clang_files = clang_reachable_files(
            root, args.compile_commands, tuple(args.roots)
        )
        if clang_files is None:
            print(
                "callgraph: clang.cindex bindings unavailable; regex artifact "
                "stands unverified",
                file=sys.stderr,
            )
        else:
            only_clang = sorted(clang_files - set(artifact["files"]))
            for f in only_clang:
                print(
                    f"callgraph: clang cross-check: {f} reachable per AST but "
                    "missed by the regex engine",
                    file=sys.stderr,
                )
            if only_clang:
                return 1

    if args.check:
        if not out_path.exists():
            print(
                f"callgraph: {args.output} is not committed; run "
                f"`python3 scripts/analysis/callgraph.py reachable --write` "
                "and review the diff",
                file=sys.stderr,
            )
            return 1
        committed = out_path.read_text(encoding="utf-8")
        if committed != text:
            print(
                f"callgraph: {args.output} is stale — the reachable set "
                "changed. Regenerate with `python3 scripts/analysis/"
                "callgraph.py reachable --write` and review the diff "
                "(scope growth is a reviewed event, see "
                "docs/STATIC_ANALYSIS.md).",
                file=sys.stderr,
            )
            try:
                old = json.loads(committed)
                added = sorted(set(artifact["files"]) - set(old.get("files", [])))
                removed = sorted(set(old.get("files", [])) - set(artifact["files"]))
                for f in added:
                    print(f"  + {f}", file=sys.stderr)
                for f in removed:
                    print(f"  - {f}", file=sys.stderr)
            except json.JSONDecodeError:
                pass
            return 1
        print(
            f"callgraph: {args.output} is fresh "
            f"({len(artifact['files'])} files, "
            f"{sum(len(v) for v in artifact['functions'].values())} functions)"
        )
        return 0

    if args.write:
        out_path.write_text(text, encoding="utf-8")
        print(
            f"callgraph: wrote {args.output} ({len(artifact['files'])} files)"
        )
        return 0

    sys.stdout.write(text)
    return 0


def cmd_layering(args: argparse.Namespace) -> int:
    root = args.root.resolve()
    program = load_program(root, args.compile_commands)
    config = load_layering_config(args.config)
    violations = check_layering(program, config)
    for v in violations:
        print(v)
    if violations:
        print(
            f"layering: {len(violations)} violation(s); the declared DAG and "
            "its reviewed exceptions live in scripts/analysis/layering.json",
            file=sys.stderr,
        )
        return 1
    print("layering: include graph respects the declared DAG")
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    root = args.root.resolve()
    program = load_program(root, args.compile_commands)
    for fn in sorted(program.functions, key=lambda f: (f.file, f.line)):
        print(f"{fn.file}:{fn.line}: {fn.qualified}")
        for callee in sorted(fn.calls):
            print(f"    -> {callee}")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="callgraph", description=__doc__.splitlines()[0]
    )
    ap.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[2],
        help="repository root (default: two levels above this script)",
    )
    ap.add_argument(
        "--compile-commands",
        type=pathlib.Path,
        default=None,
        help="compile_commands.json to take the TU list from (optional; "
        "the tree walk of src/ is authoritative either way)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    reach = sub.add_parser("reachable", help="routing-reachable set artifact")
    reach.add_argument("--write", action="store_true", help="write the artifact")
    reach.add_argument(
        "--check",
        action="store_true",
        help="fail if the committed artifact differs from a fresh run",
    )
    reach.add_argument(
        "--output", default=ARTIFACT, help="artifact path relative to root"
    )
    reach.add_argument(
        "--roots",
        nargs="+",
        default=list(DEFAULT_ROOTS),
        help="qualified names (or ::suffixes) of the routing-phase roots",
    )
    reach.add_argument(
        "--engine",
        choices=("regex", "clang"),
        default="regex",
        help="clang = additionally cross-check against a libclang AST pass",
    )
    reach.set_defaults(func=cmd_reachable)

    lay = sub.add_parser("layering", help="include-graph layering gate")
    lay.add_argument(
        "--config", type=pathlib.Path, default=LAYERING_CONFIG
    )
    lay.set_defaults(func=cmd_layering)

    dump = sub.add_parser("dump", help="print functions and call edges")
    dump.set_defaults(func=cmd_dump)

    args = ap.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
