// Fixture: clean pipeline. Every parallel write is owner-derived except
// the deliberately annotated `total_` accumulation, and both epochs are
// bracketed by PhaseBarrier open/close (workers: wait_open/leave).
#include "sim/engine.hpp"

namespace hp::sim {

void Engine::worker_loop() {
  unsigned seen = 0;
  for (;;) {
    seen = barrier_.wait_open(seen);
    if (seen == 0) {
      return;
    }
    drain_tasks();
    barrier_.leave();
  }
}

void Engine::drain_tasks() {
  for (;;) {
    const unsigned t = barrier_.next_task();
    if (t == 0xffffffffU) {
      return;
    }
    run_task(task_kind_, t);
  }
}

void Engine::run_sharded(TaskKind kind, std::size_t count,
                         std::size_t items) {
  task_kind_ = kind;
  task_count_ = count;
  task_items_ = items;
  barrier_.open(static_cast<unsigned>(count), static_cast<unsigned>(kind));
  drain_tasks();
  barrier_.close();
}

void Engine::run_task(TaskKind kind, std::size_t task) {
  const std::size_t begin = task_items_ * task / task_count_;
  const std::size_t end = task_items_ * (task + 1) / task_count_;
  switch (kind) {
    case TaskKind::kScan:
      scan_slots(task, begin, end);
      break;
    case TaskKind::kRoute:
      route_range(begin, end);
      break;
  }
}

void Engine::scan_slots(std::size_t task, std::size_t begin,
                        std::size_t end) {
  scratch_[task] = 0;
  for (std::size_t i = begin; i < end; ++i) {
    scratch_[task] += flight_.pos(i);
  }
}

void Engine::route_range(std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    out_[i] = flight_.pos(i) + 1;
    flight_.move(i, out_[i]);
  }
  HP_SHARED_WRITE("per-range deltas commute; sum is order-free");
  total_ += end - begin;
}

bool Engine::step() {
  run_sharded(TaskKind::kScan, 4, out_.size());
  run_sharded(TaskKind::kRoute, 4, out_.size());
  return true;
}

}  // namespace hp::sim
