// Fixture: minimal phase-pipeline engine for the phase-effects analyzer
// self-tests (scripts/analysis/test_phase_effects.py). Sibling `bad_*`
// case directories vary engine.cpp to seed exactly one contract
// violation each; this header is byte-identical across all cases.
#pragma once

#include <cstddef>
#include <vector>

// Stand-in for the util/thread_annotations.hpp marker; the fixtures are
// parsed, never compiled, but the define keeps the corpus readable.
#define HP_SHARED_WRITE(reason) static_assert(true, "")

namespace hp::sim {

// Stand-in for util::PhaseBarrier: same protocol surface, no atomics.
class PhaseBarrier {
 public:
  void open(unsigned count, unsigned tag);
  void close();
  unsigned wait_open(unsigned seen);
  void leave();
  unsigned next_task();
  void shutdown();
};

// Stand-in for the SoA flight table: one column plus a read/write method
// pair whose per-column effect summaries the analyzer must infer.
class FlightTable {
 public:
  int pos(std::size_t s) const { return pos_[s]; }
  void move(std::size_t s, int to) { pos_[s] = to; }

 private:
  std::vector<int> pos_;
};

class Engine {
 public:
  enum class TaskKind : unsigned { kScan = 0, kRoute };

  bool step();

 private:
  void run_sharded(TaskKind kind, std::size_t count, std::size_t items);
  void drain_tasks();
  void run_task(TaskKind kind, std::size_t task);
  void scan_slots(std::size_t task, std::size_t begin, std::size_t end);
  void route_range(std::size_t begin, std::size_t end);
  void worker_loop();

  FlightTable flight_;
  std::vector<int> scratch_;
  std::vector<int> out_;
  std::size_t total_ = 0;
  TaskKind task_kind_ = TaskKind::kScan;
  std::size_t task_count_ = 0;
  std::size_t task_items_ = 0;
  PhaseBarrier barrier_;
};

}  // namespace hp::sim
