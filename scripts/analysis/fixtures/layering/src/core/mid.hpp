// Fixture: one downward include (fine) and one upward include (violation).
#pragma once

#include "sim/engine.hpp"
#include "util/base.hpp"

namespace hp::core {
inline int mid() { return hp::util::base(); }
}  // namespace hp::core
