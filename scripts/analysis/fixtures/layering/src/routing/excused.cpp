// Fixture: upward include covered by a reviewed edge_exception — no finding.
#include "sim/engine.hpp"

namespace hp::routing {
int excused() { return hp::sim::engine(); }
}  // namespace hp::routing
