// Fixture: sim layer; including downward into util is always fine.
#pragma once

#include "util/base.hpp"

namespace hp::sim {
inline int engine() { return hp::util::base(); }
}  // namespace hp::sim
