// Fixture: bottom layer, no includes.
#pragma once

namespace hp::util {
inline int base() { return 0; }
}  // namespace hp::util
