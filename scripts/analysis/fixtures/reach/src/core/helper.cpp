// Fixture: routing-REACHABLE core code (called from Engine::step) that sits
// OUTSIDE the lint's textual prefix floor (src/sim/, src/routing/). The
// unordered-container findings below must be reported once the reachability
// artifact widens the scope — and must NOT be reported without it.
#include "core/helper.hpp"

#include <unordered_map>

namespace hp::core {

void route_phase(int rounds) {
  std::unordered_map<int, int> tally;
  for (int r = 0; r < rounds; ++r) {
    tally[r % 2] += r;
  }
  int sum = 0;
  for (const auto& kv : tally) {  // iteration order is unspecified
    sum += kv.second;
  }
  (void)sum;
}

}  // namespace hp::core
