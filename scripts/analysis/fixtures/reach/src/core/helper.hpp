// Fixture: declaration only — the definition (and its findings) are in the
// .cpp, so reachability must follow the call graph, not this header.
#pragma once

namespace hp::core {

void route_phase(int rounds);

}  // namespace hp::core
