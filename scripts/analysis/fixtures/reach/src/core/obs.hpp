// Fixture: observer interface; overrides live in other layers.
#pragma once

namespace hp::core {

class Obs {
 public:
  virtual ~Obs() = default;
  virtual void on_tick() = 0;
};

}  // namespace hp::core
