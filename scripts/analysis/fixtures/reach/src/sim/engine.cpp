#include "sim/engine.hpp"

#include "core/helper.hpp"

namespace hp::sim {

void Engine::step() {
  core::route_phase(3);
  if (obs_ != nullptr) {
    obs_->on_tick();  // virtual dispatch: must reach every on_tick override
  }
}

}  // namespace hp::sim
