// Fixture: minimal engine whose step() is the reachability root.
#pragma once

#include "core/obs.hpp"

namespace hp::sim {

class Engine {
 public:
  void step();

 private:
  core::Obs* obs_ = nullptr;
};

}  // namespace hp::sim
