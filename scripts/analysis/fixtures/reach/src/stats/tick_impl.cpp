// Fixture: stats-layer observer reached only through virtual dispatch
// (engine.cpp calls obs_->on_tick()). Its file must appear in the artifact.
#include "core/obs.hpp"

namespace hp::stats {

class TickCounter : public core::Obs {
 public:
  void on_tick() override;

 private:
  long ticks_ = 0;
};

void TickCounter::on_tick() { ticks_ += 1; }

}  // namespace hp::stats
