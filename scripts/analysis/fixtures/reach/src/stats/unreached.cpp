// Fixture: NOT reachable from Engine::step — nothing calls orphan_stat. The
// unordered iteration below must stay un-flagged (the lint certifies the
// reachable class, it is not a blanket src/ ban), and this file must stay
// out of the artifact.
#include <unordered_map>

namespace hp::stats {

int orphan_stat() {
  std::unordered_map<int, int> m;
  m[1] = 2;
  int sum = 0;
  for (const auto& kv : m) {
    sum += kv.second;
  }
  return sum;
}

}  // namespace hp::stats
