// Fixture: two mutexes with a declared acquisition order, locked in the
// WRONG order (the classic AB/BA deadlock shape). Must FAIL to compile
// under -Wthread-safety-beta -Werror (acquired_before/after checking lives
// behind the beta flag) with a "must be acquired" ordering diagnostic.
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class TwoLocks {
 public:
  void wrong_order() {
    b_mu_.lock();
    a_mu_.lock();  // BAD: a_mu_ is declared acquired_before b_mu_
    ++both_;
    a_mu_.unlock();
    b_mu_.unlock();
  }

 private:
  hp::util::Mutex a_mu_ HP_ACQUIRED_BEFORE(b_mu_);
  hp::util::Mutex b_mu_;
  int both_ HP_GUARDED_BY(a_mu_) HP_GUARDED_BY(b_mu_) = 0;
};

}  // namespace

int fixture_entry() {
  TwoLocks t;
  t.wrong_order();
  return 0;
}
