// Fixture: a guarded member read WITHOUT holding its mutex — what the
// engine would look like if a maintainer dropped a MutexLock (or, dually,
// what goes uncaught if the HP_GUARDED_BY annotation is removed). Must FAIL
// to compile under -Wthread-safety -Werror with a
// "requires holding mutex 'mu_'" diagnostic.
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Pool {
 public:
  void bump() HP_EXCLUDES(mu_) {
    hp::util::MutexLock lock(&mu_);
    ++epoch_;
  }

  unsigned long racy_read() {
    return epoch_;  // BAD: no lock held
  }

 private:
  hp::util::Mutex mu_;
  unsigned long epoch_ HP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int fixture_entry() {
  Pool pool;
  pool.bump();
  return static_cast<int>(pool.racy_read());
}
