// Fixture: the engine's pool discipline in miniature — scoped MutexLock,
// guarded members, condition_variable_any waiting on the annotated Mutex,
// explicit wait loops. Must compile CLEAN under
//   clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror
// (compile-only fixture; never executed).
#include <condition_variable>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Pool {
 public:
  void publish_epoch(int shards) HP_EXCLUDES(mu_) {
    hp::util::MutexLock lock(&mu_);
    pending_ = shards;
    ++epoch_;
    cv_.notify_all();
    while (pending_ != 0) {
      cv_.wait(mu_);
    }
  }

  void finish_one() HP_EXCLUDES(mu_) {
    hp::util::MutexLock lock(&mu_);
    if (--pending_ == 0) {
      cv_.notify_all();
    }
  }

  unsigned long epoch() HP_EXCLUDES(mu_) {
    hp::util::MutexLock lock(&mu_);
    return epoch_;
  }

 private:
  hp::util::Mutex mu_;
  std::condition_variable_any cv_;
  unsigned long epoch_ HP_GUARDED_BY(mu_) = 0;
  int pending_ HP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int fixture_entry() {
  Pool pool;
  pool.finish_one();
  return static_cast<int>(pool.epoch());
}
