#!/usr/bin/env python3
"""Phase-effects analyzer: certify the engine's parallel-phase contracts.

The deterministic phase-pipeline (src/sim/engine.cpp) is serial-equivalent
only if three structural contracts hold:

  (a) every write a parallel task performs lands in owner-computed /
      shard-confined state — anything else carries a mandatory-reason
      ``HP_SHARED_WRITE(reason)`` annotation on (or just above) the line;
  (b) every parallel region is bracketed by a PhaseBarrier epoch
      (open/close on the main thread, wait_open/leave on workers);
  (c) within one parallel phase no member is both written and read through
      a non-owner-derived index (cross-phase pairs are ordered by the
      barrier's release/acquire epoch edges, which (b) guarantees).

Like scripts/analysis/callgraph.py this is a conservative, stdlib-only
token analyzer, not a compiler: ownership is *name derivation* — an index
expression is owner-derived when it (transitively) mentions the task /
shard parameter of the enclosing region. Over-approximation flags safe
code (annotate it, with a reason); it never hides a genuinely shared
write. The committed ``phase_effects.json`` artifact makes the extracted
read/write sets a reviewed object, with the same --write/--check
freshness UX as ``routing_reachable.json``.

Exit codes: 0 clean/fresh, 1 findings or stale artifact, 2 usage/parse.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys

SCRIPT_DIR = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(SCRIPT_DIR))
sys.path.insert(0, str(SCRIPT_DIR.parent / "lint"))

from callgraph import (  # noqa: E402
    IDENT_RE,
    NON_CALL_KEYWORDS,
    Token,
    _match_group,
    _parse_declarator_name,
    _scan_after_params,
    tokenize,
)
from determinism_lint import strip_code  # noqa: E402

SCHEMA = "hp-phase-effects-v1"
ARTIFACT = "phase_effects.json"

#: Files the analyzer parses (repo-relative). The first two are mandatory;
#: the rest refine method-constness / column knowledge when present.
REQUIRED_FILES = ("src/sim/engine.hpp", "src/sim/engine.cpp")
OPTIONAL_FILES = (
    "src/sim/flight_table.hpp",
    "src/sim/flight_table.cpp",
    "src/sim/policy.hpp",
    "src/util/phase_barrier.hpp",
)

#: Orchestrators are never inlined into a region's effect set: they *are*
#: regions (or pure plumbing), each analyzed under its own seed.
ORCHESTRATORS = frozenset(
    {
        "run_task", "run_sharded", "drain_tasks", "worker_loop", "step",
        "build_occupancy", "route_all", "apply_assignments", "inject",
        "try_inject", "run", "run_for", "make_result", "start_pool",
        "stop_pool",
    }
)

#: Serial regions recorded in the artifact (effects unconstrained: they
#: run on the main thread between epochs).
SERIAL_REGIONS = (
    "step", "inject", "try_inject", "build_occupancy", "route_all",
    "apply_assignments", "run_sharded", "worker_loop",
)

#: Container methods assumed to mutate / not mutate the receiver when the
#: receiver's class is not part of the parse set (std:: containers).
MUTATING_METHODS = frozenset(
    {
        "clear", "push_back", "emplace_back", "pop_back", "resize",
        "reserve", "insert", "erase", "assign", "swap", "emplace", "push",
        "pop", "append", "store", "exchange", "fetch_add", "fetch_sub",
    }
)
CONST_METHODS = frozenset(
    {
        "size", "empty", "begin", "end", "cbegin", "cend", "get", "c_str",
        "count", "find", "capacity", "back", "front", "load", "contains",
        "full", "records", "at",
    }
)

#: PhaseBarrier protocol verbs (check (b)). ``shutdown`` tears the pool
#: down and pairs with nothing; ``next_task`` marks the caller a region
#: executor.
BARRIER_OPENERS = frozenset({"open", "wait_open"})
BARRIER_CLOSERS = frozenset({"close", "leave"})

#: Classes whose members speak the barrier protocol. ``PhaseBarrier`` is a
#: ``using`` alias of the Sync-templated ``BasicPhaseBarrier``; member types
#: are resolved through namespace-scope aliases in :func:`load_model`, so
#: either spelling may survive as ``Member.obj_cls``.
BARRIER_CLASSES = frozenset({"PhaseBarrier", "BasicPhaseBarrier"})

ANNOTATION_RE = re.compile(r"\bHP_SHARED_WRITE\s*\(")
STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


# ---------------------------------------------------------------------------
# Parsed model
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Member:
    name: str
    cls: str
    line: int
    const_typed: bool
    type_idents: tuple[str, ...]  # raw type tokens, resolved to obj_cls later
    obj_cls: str | None = None


@dataclasses.dataclass
class Fn:
    qualified: str
    name: str
    cls: str | None
    file: str
    line: int
    params: list[str]
    is_const: bool
    body: list[Token]  # tokens strictly inside the outer braces


@dataclasses.dataclass
class Model:
    root: pathlib.Path
    files: list[str] = dataclasses.field(default_factory=list)
    raw_lines: dict[str, list[str]] = dataclasses.field(default_factory=dict)
    classes: dict[str, dict[str, Member]] = dataclasses.field(
        default_factory=dict
    )
    fns: dict[str, Fn] = dataclasses.field(default_factory=dict)
    by_name: dict[str, Fn] = dataclasses.field(default_factory=dict)
    method_const: dict[tuple[str, str], bool] = dataclasses.field(
        default_factory=dict
    )
    enums: dict[str, list[str]] = dataclasses.field(default_factory=dict)
    #: namespace-scope ``using Alias = Target<...>;`` → target idents, used
    #: to resolve member types declared via an alias (e.g. PhaseBarrier).
    type_aliases: dict[str, tuple[str, ...]] = dataclasses.field(
        default_factory=dict
    )

    def engine_members(self) -> dict[str, Member]:
        return self.classes.get("Engine", {})

    def task_kinds(self) -> list[str]:
        return self.enums.get("TaskKind", [])


def _parse_params(tokens: list[Token], lparen: int, past: int) -> list[str]:
    """Parameter names: last plain identifier of each top-level comma
    segment (before any default-argument ``=``)."""
    seg: list[Token] = []
    out: list[str] = []

    def flush() -> None:
        names = [
            t.value
            for t in seg
            if t.is_ident and t.value not in NON_CALL_KEYWORDS
        ]
        out.append(names[-1] if names else "")

    depth = 0
    truncated = False
    for t in tokens[lparen + 1 : past - 1]:
        if t.value in ("(", "[", "{"):
            depth += 1
        elif t.value in (")", "]", "}"):
            depth -= 1
        elif depth == 0 and t.value == ",":
            flush()
            seg = []
            truncated = False
            continue
        elif depth == 0 and t.value == "=":
            truncated = True
        if not truncated:
            seg.append(t)
    if seg or out:
        flush()
    return out


def _member_from_stmt(
    stmt: list[Token], cls: str
) -> Member | None:
    """A class-level statement declares a data member when a ``_``-suffixed
    identifier is immediately followed by ``;``, ``=``, ``{`` or ``[``."""
    vals = [t.value for t in stmt]
    if any(
        v in ("using", "typedef", "friend", "static_assert", "return")
        for v in vals
    ):
        return None
    for i, t in enumerate(stmt):
        if not t.is_ident or not t.value.endswith("_"):
            continue
        nxt = stmt[i + 1].value if i + 1 < len(stmt) else ";"
        if nxt not in (";", "=", "{", "["):
            continue
        type_toks = tuple(
            w.value for w in stmt[:i] if w.is_ident
        )
        return Member(
            name=t.value,
            cls=cls,
            line=t.line,
            const_typed="const" in vals[:i],
            type_idents=type_toks,
        )
    return None


def _method_const_from_stmt(
    stmt: list[Token], cls: str, db: dict[tuple[str, str], bool]
) -> None:
    """Record constness of a method *declaration* (``...(...) const;``)."""
    for i, t in enumerate(stmt):
        if not t.is_ident or t.value in NON_CALL_KEYWORDS:
            continue
        parsed = _parse_declarator_name(stmt, i)
        if parsed is None:
            continue
        name, lparen = parsed
        past = _match_group(stmt, lparen, "(", ")")
        is_const = past < len(stmt) and stmt[past].value == "const"
        db[(cls, name.rsplit("::", 1)[-1])] = is_const
        return


def _parse_enum(tokens: list[Token], i: int, enums: dict[str, list[str]]) -> int:
    """tokens[i] == 'enum'. Records enumerators; returns index past body."""
    j = i + 1
    if j < len(tokens) and tokens[j].value in ("class", "struct"):
        j += 1
    name = ""
    if j < len(tokens) and tokens[j].is_ident:
        name = tokens[j].value
        j += 1
    while j < len(tokens) and tokens[j].value not in ("{", ";"):
        j += 1
    if j >= len(tokens) or tokens[j].value == ";":
        return j
    end = _match_group(tokens, j, "{", "}")
    values: list[str] = []
    depth = 0
    expect = True  # next ident at depth 1 starts an enumerator
    for t in tokens[j : end - 1]:
        if t.value == "{":
            depth += 1
            continue
        if t.value == "}":
            depth -= 1
            continue
        if depth != 1:
            continue
        if t.value == ",":
            expect = True
        elif expect and t.is_ident:
            values.append(t.value)
            expect = False
    if name:
        enums[name] = values
    return end


def parse_into_model(model: Model, relpath: str, raw_text: str) -> None:
    raw = raw_text.splitlines()
    model.raw_lines[relpath] = raw
    code_lines = strip_code(raw_text)
    tokens = tokenize(code_lines)
    n = len(tokens)
    model.files.append(relpath)

    scopes: list[tuple[str, str]] = []  # (kind, name)
    stmt: list[Token] = []

    def cur_class() -> str | None:
        if scopes and scopes[-1][0] == "class":
            return scopes[-1][1]
        return None

    def end_stmt() -> None:
        cls = cur_class()
        if cls is None or not stmt:
            stmt.clear()
            return
        if any(t.value == "(" for t in stmt):
            _method_const_from_stmt(stmt, cls, model.method_const)
        else:
            m = _member_from_stmt(stmt, cls)
            if m is not None:
                model.classes.setdefault(cls, {})[m.name] = m
        stmt.clear()

    i = 0
    while i < n:
        t = tokens[i]
        v = t.value

        if v == "namespace":
            j = i + 1
            parts: list[str] = []
            while j < n and (tokens[j].is_ident or tokens[j].value == "::"):
                if tokens[j].is_ident:
                    parts.append(tokens[j].value)
                j += 1
            if j < n and tokens[j].value == "{":
                scopes.append(("namespace", "::".join(parts)))
                i = j + 1
                continue
            if j < n and tokens[j].value == "=":
                while j < n and tokens[j].value != ";":
                    j += 1
            i = j + 1
            continue

        if v == "template":
            # Skip the parameter list so `class`/`typename` inside it does
            # not open a bogus class scope; the templated declaration that
            # follows is parsed like any other. (`Sync::template Atomic<T>`
            # has no `<` directly after the keyword and falls through.)
            j = i + 1
            if j < n and tokens[j].value == "<":
                depth = 0
                while j < n:
                    w = tokens[j].value
                    if w == "<":
                        depth += 1
                    elif w in (">", ">="):
                        depth -= 1
                    elif w == ">>":
                        depth -= 2
                    j += 1
                    if depth <= 0:
                        break
                i = j
                continue
            i += 1
            continue

        if v == "using" and cur_class() is None and not stmt:
            # `using Alias = Target<...>;` at namespace scope: remember the
            # target's identifiers so members typed via the alias resolve
            # to the underlying class. `using namespace` / bare
            # `using ns::name;` carry no `=` and are skipped whole.
            j = i + 1
            alias = ""
            if j < n and tokens[j].is_ident:
                alias = tokens[j].value
                j += 1
            target: list[str] = []
            saw_eq = False
            while j < n and tokens[j].value != ";":
                if tokens[j].value == "=":
                    saw_eq = True
                elif saw_eq and tokens[j].is_ident:
                    target.append(tokens[j].value)
                j += 1
            if alias and saw_eq and target:
                model.type_aliases[alias] = tuple(target)
            i = j + 1
            continue

        if v in ("class", "struct") and (i == 0 or tokens[i - 1].value != "enum"):
            j = i + 1
            name = ""
            while j < n and (tokens[j].is_ident or tokens[j].value == "("):
                if tokens[j].value == "(":  # alignas(...) etc.
                    j = _match_group(tokens, j, "(", ")")
                    continue
                if tokens[j].value in ("alignas", "final"):
                    j += 1
                    continue
                name = tokens[j].value
                j += 1
            angle = 0
            while j < n:
                w = tokens[j].value
                if w == "<":
                    angle += 1
                elif w == ">":
                    angle = max(0, angle - 1)
                elif angle == 0 and w in ("{", ";"):
                    break
                j += 1
            if j < n and tokens[j].value == "{":
                end_stmt()
                scopes.append(("class", name))
                model.classes.setdefault(name, {})
                i = j + 1
                continue
            i = j + 1
            continue

        if v == "enum":
            end_stmt()
            i = _parse_enum(tokens, i, model.enums)
            continue

        if v == ";":
            end_stmt()
            i += 1
            continue

        if v == "{":
            prev = tokens[i - 1].value if i > 0 else ""
            if cur_class() is not None and (
                IDENT_RE.match(prev) or prev in (">", "]", "=")
            ):
                # brace init of a member (`epoch_{0}`) — keep the statement
                i = _match_group(tokens, i, "{", "}")
                continue
            end_stmt()
            scopes.append(("block", ""))
            i += 1
            continue
        if v == "}":
            end_stmt()
            if scopes:
                scopes.pop()
            i += 1
            continue

        parsed = None
        if (
            t.is_ident and v not in NON_CALL_KEYWORDS and v not in ("public", "private", "protected", "virtual", "static", "inline", "explicit", "constexpr", "friend")
        ) or v in ("~", "operator"):
            parsed = _parse_declarator_name(tokens, i)
        if parsed is not None:
            name, lparen = parsed
            past = _match_group(tokens, lparen, "(", ")")
            body = _scan_after_params(tokens, past)
            if body is not None:
                end_stmt()
                ns_parts = [s[1] for s in scopes if s[0] == "namespace" and s[1]]
                cls_parts = [s[1] for s in scopes if s[0] == "class" and s[1]]
                short = name.rsplit("::", 1)[-1]
                cls = cls_parts[-1] if cls_parts else (
                    name.rsplit("::", 2)[-2] if "::" in name else None
                )
                qualified = "::".join(ns_parts + cls_parts + name.split("::"))
                is_const = past < n and tokens[past].value == "const"
                k = _match_group(tokens, body, "{", "}")
                fn = Fn(
                    qualified=qualified,
                    name=short,
                    cls=cls,
                    file=relpath,
                    line=t.line,
                    params=_parse_params(tokens, lparen, past),
                    is_const=is_const,
                    body=tokens[body + 1 : k - 1],
                )
                model.fns[qualified] = fn
                model.by_name.setdefault(short, fn)
                if cls is not None:
                    model.method_const[(cls, short)] = is_const
                i = k
                continue
            # declaration only — still records method constness (`...(...)
            # const;` / pure virtuals), which drives receiver-write
            # classification for opaque objects like the routing policy
            decl_cls = cur_class()
            if decl_cls:
                short = name.rsplit("::", 1)[-1]
                model.method_const[(decl_cls, short)] = (
                    past < n and tokens[past].value == "const"
                )
            i = past
            continue

        stmt.append(t)
        i += 1

    # Resolve member object classes now that every class name is known.


def load_model(root: pathlib.Path) -> Model:
    model = Model(root=root)
    for rel in REQUIRED_FILES:
        p = root / rel
        if not p.is_file():
            raise FileNotFoundError(rel)
        parse_into_model(model, rel, p.read_text(encoding="utf-8"))
    for rel in OPTIONAL_FILES:
        p = root / rel
        if p.is_file():
            parse_into_model(model, rel, p.read_text(encoding="utf-8"))
    known = set(model.classes)

    def resolve(ident: str, seen: frozenset[str]) -> str | None:
        """Class named by `ident`, following `using` aliases (cycle-safe)."""
        if ident in known:
            return ident
        if ident in seen or ident not in model.type_aliases:
            return None
        for target in model.type_aliases[ident]:
            hit = resolve(target, seen | {ident})
            if hit is not None:
                return hit
        return None

    for members in model.classes.values():
        for m in members.values():
            for ident in m.type_idents:
                hit = resolve(ident, frozenset())
                if hit is not None and hit != m.cls:
                    m.obj_cls = hit
                    break
    return model


# ---------------------------------------------------------------------------
# Effect extraction
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Effect:
    member: str  # "scatter_" or column form "flight_.pos_"
    kind: str  # "read" | "write"
    owned: bool
    file: str
    line: int
    cover_lines: tuple[int, ...]  # lines an HP_SHARED_WRITE may sit on


@dataclasses.dataclass
class BarrierEvent:
    method: str
    index: int  # token index in the function body (ordering only)
    line: int


@dataclasses.dataclass
class Analysis:
    """Per-region result: effects tagged with the top-level token index
    they were reached from (for run_task case-segment attribution)."""

    effects: list[tuple[int, Effect]] = dataclasses.field(default_factory=list)


def _arg_segments(body: list[Token], lparen: int) -> list[list[Token]]:
    """Top-level comma segments of the group opening at body[lparen]."""
    end = _match_group(body, lparen, "(", ")")
    segs: list[list[Token]] = []
    cur: list[Token] = []
    depth = 0
    for t in body[lparen + 1 : end - 1]:
        if t.value in ("(", "[", "{"):
            depth += 1
        elif t.value in (")", "]", "}"):
            depth -= 1
        if depth == 0 and t.value == ",":
            segs.append(cur)
            cur = []
            continue
        cur.append(t)
    if cur:
        segs.append(cur)
    return segs


def _idents(tokens: list[Token]) -> set[str]:
    return {
        t.value
        for t in tokens
        if t.is_ident and t.value not in NON_CALL_KEYWORDS
    }


class RegionAnalyzer:
    """Extracts the effect set of one function body under a derivation
    seed. Helper methods of the same translation unit are inlined
    (depth-capped); orchestrators are not."""

    MAX_DEPTH = 8

    def __init__(self, model: Model):
        self.model = model
        self.members = model.engine_members()
        self._param_writes_memo: dict[str, set[int]] = {}
        self._in_progress: set[str] = set()

    # -- derivation ---------------------------------------------------------

    def derive(
        self, body: list[Token], seed: set[str]
    ) -> tuple[set[str], dict[str, tuple[str, int, set[str]]]]:
        """Fixpoint of name derivation. Members are never derivation
        sources (PhaseBarrier::next_task tickets are deliberately opaque:
        a ticket-indexed write is shared until annotated)."""
        derived = set(seed)
        aliases: dict[str, tuple[str, int, set[str]]] = {}
        n = len(body)
        for _ in range(4):
            before = (len(derived), len(aliases))
            i = 0
            while i < n:
                t = body[i]
                if t.value == "for" and i + 1 < n and body[i + 1].value == "(":
                    self._derive_range_for(body, i + 1, derived)
                if t.is_ident and t.value not in NON_CALL_KEYWORDS:
                    prev = body[i - 1].value if i > 0 else ""
                    nxt = body[i + 1].value if i + 1 < n else ""
                    if (
                        nxt == "="
                        and prev not in (".", "->")
                        and t.value not in self.members
                    ):
                        ext = self._stmt_extent(body, i + 2)
                        if _idents(ext) & derived:
                            derived.add(t.value)
                        if prev == "&":  # reference binding, not a copy
                            self._maybe_alias(t, ext, aliases)
                    elif (
                        nxt in ("(", "{")
                        and prev
                        and (IDENT_RE.match(prev) or prev in ("&", "*", ">"))
                        and t.value not in self.members
                    ):
                        end = _match_group(
                            body, i + 1, nxt, ")" if nxt == "(" else "}"
                        )
                        if _idents(body[i + 2 : end - 1]) & derived:
                            derived.add(t.value)
                i += 1
            if (len(derived), len(aliases)) == before:
                break
        return derived, aliases

    def _stmt_extent(self, body: list[Token], i: int) -> list[Token]:
        out: list[Token] = []
        depth = 0
        while i < len(body):
            v = body[i].value
            if v in ("(", "[", "{"):
                depth += 1
            elif v in (")", "]", "}"):
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0 and (v == ";" or v == ","):
                break
            out.append(body[i])
            i += 1
        return out

    def _maybe_alias(
        self,
        name: Token,
        ext: list[Token],
        aliases: dict[str, tuple[str, int, set[str]]],
    ) -> None:
        """``T& x = member_[idx];`` binds x as an alias of the member with
        the subscript identifiers as its ownership tokens."""
        if not ext or not ext[0].is_ident or ext[0].value not in self.members:
            return
        j = 1
        own: set[str] = set()
        if j < len(ext) and ext[j].value == "[":
            end = _match_group(ext, j, "[", "]")
            own = _idents(ext[j + 1 : end - 1])
            j = end
        if j == len(ext):
            aliases[name.value] = (ext[0].value, name.line, own)

    def _derive_range_for(
        self, body: list[Token], lparen: int, derived: set[str]
    ) -> None:
        end = _match_group(body, lparen, "(", ")")
        head = body[lparen + 1 : end - 1]
        colon = None
        depth = 0
        for k, t in enumerate(head):
            if t.value in ("(", "[", "{"):
                depth += 1
            elif t.value in (")", "]", "}"):
                depth -= 1
            elif depth == 0 and t.value == ";":
                return  # classic for: generic rules handle the init
            elif depth == 0 and t.value == ":":
                colon = k
                break
        if colon is None:
            return
        left, rng = head[:colon], head[colon + 1 :]
        if not (_idents(rng) & derived):
            return
        names: list[str] = []
        if any(t.value == "[" for t in left):  # structured binding
            k = next(i for i, t in enumerate(left) if t.value == "[")
            e = _match_group(left, k, "[", "]")
            names = [t.value for t in left[k + 1 : e - 1] if t.is_ident]
        else:
            idents = [
                t.value
                for t in left
                if t.is_ident and t.value not in NON_CALL_KEYWORDS
            ]
            if idents:
                names = [idents[-1]]
        derived.update(names)

    # -- method summaries ---------------------------------------------------

    def column_summary(self, cls: str, method: str) -> list[tuple[str, str]] | None:
        """Direct column effects of a parsed class's method body:
        [(column, kind)]. None when the method body is unknown."""
        fn = None
        for cand in self.model.fns.values():
            if cand.cls == cls and cand.name == method:
                fn = cand
                break
        if fn is None:
            return None
        cols = self.model.classes.get(cls, {})
        out: list[tuple[str, str]] = []
        body = fn.body
        for i, t in enumerate(body):
            if not t.is_ident or t.value not in cols:
                continue
            prev = body[i - 1].value if i > 0 else ""
            if prev in (".", "->"):
                continue
            j = i + 1
            while j < len(body) and body[j].value == "[":
                j = _match_group(body, j, "[", "]")
            nxt = body[j].value if j < len(body) else ""
            nxt2 = body[j + 1].value if j + 1 < len(body) else ""
            kind = "read"
            if (
                prev in ("++", "--")
                or nxt in ("++", "--")
                or nxt == "="
                or (nxt in ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>") and nxt2 == "=")
            ):
                kind = "write"
            elif nxt in (".", "->") and nxt2 in MUTATING_METHODS:
                kind = "write"
            out.append((t.value, kind))
        # dedupe, writes win for display stability
        seen: dict[str, str] = {}
        for col, kind in out:
            if seen.get(col) != "write":
                seen[col] = kind
        return sorted(seen.items())

    def param_writes(self, fn: Fn) -> set[int]:
        """Indices of parameters the function writes through (directly or
        by forwarding to a callee that does)."""
        if fn.qualified in self._param_writes_memo:
            return self._param_writes_memo[fn.qualified]
        if fn.qualified in self._in_progress:
            return set()
        self._in_progress.add(fn.qualified)
        written: set[int] = set()
        params = {p: k for k, p in enumerate(fn.params) if p}
        body = fn.body
        n = len(body)
        i = 0
        while i < n:
            t = body[i]
            if t.is_ident and t.value in params:
                prev = body[i - 1].value if i > 0 else ""
                if prev not in (".", "->"):
                    j = i + 1
                    while j < n and body[j].value == "[":
                        j = _match_group(body, j, "[", "]")
                    nxt = body[j].value if j < n else ""
                    nxt2 = body[j + 1].value if j + 1 < n else ""
                    if (
                        prev in ("++", "--")
                        or nxt in ("++", "--")
                        or nxt == "="
                        or (nxt in ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>") and nxt2 == "=")
                    ):
                        written.add(params[t.value])
                    elif nxt in (".", "->") and j + 2 < n and body[j + 2].value == "(":
                        meth = nxt2
                        if meth in MUTATING_METHODS or (
                            meth not in CONST_METHODS and meth != "data"
                        ):
                            written.add(params[t.value])
            callee = self._callee_at(body, i)
            if callee is not None and callee.qualified != fn.qualified:
                for argpos, seg in enumerate(_arg_segments(body, i + 1)):
                    if argpos in self.param_writes(callee):
                        ids = _idents(seg)
                        for p, k in params.items():
                            if p in ids:
                                written.add(k)
            i += 1
        self._in_progress.discard(fn.qualified)
        self._param_writes_memo[fn.qualified] = written
        return written

    def _callee_at(self, body: list[Token], i: int) -> Fn | None:
        t = body[i]
        if not t.is_ident or t.value in NON_CALL_KEYWORDS:
            return None
        if i + 1 >= len(body) or body[i + 1].value != "(":
            return None
        prev = body[i - 1].value if i > 0 else ""
        if prev in (".", "->", "::"):
            return None
        return self.model.by_name.get(t.value)

    # -- the body walk ------------------------------------------------------

    def collect(
        self,
        fn: Fn,
        seed: set[str],
        depth: int = 0,
        _memo: dict | None = None,
    ) -> list[tuple[int, Effect]]:
        """Effects of `fn` with `seed` as the derived parameter names.
        Returned pairs are (top-level token index, effect); expansion
        effects inherit the call site's index."""
        if _memo is None:
            _memo = {}
        key = (fn.qualified, frozenset(seed))
        if key in _memo:
            return _memo[key]
        _memo[key] = []  # cycle guard
        derived, aliases = self.derive(fn.body, seed)
        derived |= {a for a, (_, _, own) in aliases.items() if own & derived}
        out: list[tuple[int, Effect]] = []
        body = fn.body
        n = len(body)
        i = 0
        while i < n:
            t = body[i]
            if t.is_ident:
                v = t.value
                if v in self.members or v in aliases:
                    i = self._chain(fn, body, i, derived, aliases, out)
                    continue
                callee = self._callee_at(body, i)
                if callee is not None:
                    self._call_site(
                        fn, body, i, callee, derived, aliases, out,
                        depth, _memo,
                    )
                    # fall through: args still get scanned for member reads
            i += 1
        _memo[key] = out
        return out

    def _owned(self, own: set[str], derived: set[str]) -> bool:
        return bool(own & derived)

    def _chain(
        self,
        fn: Fn,
        body: list[Token],
        i: int,
        derived: set[str],
        aliases: dict[str, tuple[str, int, set[str]]],
        out: list[tuple[int, Effect]],
    ) -> int:
        """Classify one member/alias access chain starting at body[i].
        Returns the index to resume the outer walk from."""
        n = len(body)
        t = body[i]
        prev = body[i - 1].value if i > 0 else ""
        if prev in (".", "->", "::"):
            return i + 1  # a field of something else, not an Engine member
        own: set[str] = set()
        cover = [t.line, t.line - 1]
        if t.value in aliases:
            base, decl_line, own0 = aliases[t.value]
            if t.line == decl_line and i + 1 < n and body[i + 1].value == "=":
                return i + 1  # the alias's own declaration, not an access
            own |= own0
            if t.value in derived:
                own.add(t.value)
            cover += [decl_line, decl_line - 1]
        else:
            base = t.value
        member = self.members.get(base)
        obj_cls = member.obj_cls if member is not None else None
        const_typed = member.const_typed if member is not None else False

        def emit(kind: str, name: str | None = None, extra_own: set[str] | None = None) -> None:
            o = set(own)
            if extra_own:
                o |= extra_own
            out.append(
                (
                    i,
                    Effect(
                        member=name or base,
                        kind=kind,
                        owned=self._owned(o, derived),
                        file=fn.file,
                        line=t.line,
                        cover_lines=tuple(sorted(set(cover))),
                    ),
                )
            )

        j = i + 1
        while j < n and body[j].value == "[":
            end = _match_group(body, j, "[", "]")
            own |= _idents(body[j + 1 : end - 1])
            j = end

        while j + 1 < n and body[j].value in (".", "->") and body[j + 1].is_ident:
            meth = body[j + 1].value
            if j + 2 < n and body[j + 2].value == "(":
                arg_end = _match_group(body, j + 2, "(", ")")
                argids = _idents(body[j + 3 : arg_end - 1])
                resume = j + 3  # the outer walk re-scans the argument list
                if obj_cls in BARRIER_CLASSES:
                    return resume
                summary = (
                    self.column_summary(obj_cls, meth)
                    if obj_cls is not None
                    else None
                )
                if summary is not None:
                    is_const = self.model.method_const.get((obj_cls, meth))
                    for col, kind in summary:
                        if is_const:
                            kind = "read"
                        emit(kind, name=f"{base}.{col}", extra_own=argids)
                    if not summary:
                        if is_const:
                            emit("read", extra_own=argids)
                        else:
                            emit("write")
                    return resume
                if obj_cls is not None:
                    is_const = self.model.method_const.get((obj_cls, meth))
                    if is_const is None:
                        is_const = meth in CONST_METHODS
                    # Opaque-object writes earn ownership only from the
                    # receiver chain: a derived *argument* does not make a
                    # shared object (the policy) task-confined.
                    emit("read" if is_const else "write")
                    return resume
                if meth in MUTATING_METHODS:
                    emit("write")
                elif meth == "data":
                    if const_typed:
                        emit("read")
                    else:
                        # `x.data() + begin` escapes a mutable pointer; the
                        # trailing expression supplies the owner index.
                        trail: set[str] = set()
                        k = arg_end
                        while k < n and body[k].value not in (",", ")", ";"):
                            if body[k].is_ident:
                                trail.add(body[k].value)
                            k += 1
                        emit("write", extra_own=trail)
                elif meth in CONST_METHODS or const_typed:
                    emit("read")
                else:
                    emit("write")
                return resume
            # plain field access: fold into the same member effect
            j += 2
            while j < n and body[j].value == "[":
                end = _match_group(body, j, "[", "]")
                own |= _idents(body[j + 1 : end - 1])
                j = end

        nxt = body[j].value if j < n else ""
        nxt2 = body[j + 1].value if j + 1 < n else ""
        escaped = prev == "&" and (
            body[i - 2].value in ("(", ",") if i >= 2 else False
        )
        if (
            prev in ("++", "--")
            or nxt in ("++", "--")
            or nxt == "="
            or (nxt in ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>") and nxt2 == "=")
            or (escaped and not const_typed)
        ):
            emit("write")
        else:
            emit("read")
        return max(j, i + 1)

    def _call_site(
        self,
        fn: Fn,
        body: list[Token],
        i: int,
        callee: Fn,
        derived: set[str],
        aliases: dict[str, tuple[str, int, set[str]]],
        out: list[tuple[int, Effect]],
        depth: int,
        memo: dict,
    ) -> None:
        segs = _arg_segments(body, i + 1)
        pw = self.param_writes(callee)
        # member (or member-alias) arguments at written-parameter
        # positions are writes *here*, owned by the argument expression
        for argpos, seg in enumerate(segs):
            if argpos not in pw or not seg:
                continue
            head = seg[0].value
            if head == "&" and len(seg) > 1:
                head = seg[1].value
            target = None
            cover = [seg[0].line, seg[0].line - 1]
            if head in self.members:
                target = head
            elif head in aliases:
                target, decl_line, own0 = aliases[head]
                cover += [decl_line, decl_line - 1]
            if target is None:
                continue
            own = _idents(seg)
            if head in aliases:
                own |= aliases[head][2]
            out.append(
                (
                    i,
                    Effect(
                        member=target,
                        kind="write",
                        owned=self._owned(own, derived),
                        file=fn.file,
                        line=seg[0].line,
                        cover_lines=tuple(sorted(set(cover))),
                    ),
                )
            )
        # inline expansion of helper callees
        if (
            callee.name in ORCHESTRATORS
            or depth >= self.MAX_DEPTH
            or callee.qualified == fn.qualified
        ):
            return
        callee_seed = {
            p
            for argpos, p in enumerate(callee.params)
            if p
            and argpos < len(segs)
            and (_idents(segs[argpos]) & derived)
        }
        for _, eff in self.collect(callee, callee_seed, depth + 1, memo):
            out.append((i, eff))

    # -- barrier events -----------------------------------------------------

    def barrier_events(self, fn: Fn) -> list[BarrierEvent]:
        out: list[BarrierEvent] = []
        body = fn.body
        n = len(body)
        for i, t in enumerate(body):
            if not t.is_ident or t.value not in self.members:
                continue
            if self.members[t.value].obj_cls not in BARRIER_CLASSES:
                continue
            j = i + 1
            if j < n and body[j].value in (".", "->") and j + 2 < n:
                if body[j + 1].is_ident and body[j + 2].value == "(":
                    out.append(BarrierEvent(body[j + 1].value, i, t.line))
        return out

    def executor_calls(self, fn: Fn, executors: set[str]) -> list[tuple[str, int, int]]:
        """(callee name, token index, line) of calls to region executors."""
        out = []
        body = fn.body
        for i, t in enumerate(body):
            callee = self._callee_at(body, i)
            if callee is not None and callee.name in executors:
                out.append((callee.name, i, t.line))
        return out


# ---------------------------------------------------------------------------
# HP_SHARED_WRITE annotations (raw-line scan: reasons are string literals,
# which strip_code blanks out of the token stream)
# ---------------------------------------------------------------------------


def collect_annotations(model: Model) -> dict[tuple[str, int], str]:
    anns: dict[tuple[str, int], str] = {}
    for relpath, lines in model.raw_lines.items():
        for idx, line in enumerate(lines, start=1):
            if re.match(r"\s*#\s*define\b", line):
                continue
            m = ANNOTATION_RE.search(line)
            if m is None:
                continue
            # argument extent: from the '(' to its match, spanning at most
            # three raw lines (clang-format never wraps wider than that)
            text = line[m.end() :]
            for extra in lines[idx : idx + 2]:
                text += "\n" + extra
            depth = 1
            arg = []
            for ch in text:
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        break
                arg.append(ch)
            reason = " ".join(STRING_RE.findall("".join(arg))).strip()
            anns[(relpath, idx)] = reason
    return anns


# ---------------------------------------------------------------------------
# Regions, checks, artifact
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class Result:
    parallel: dict[str, list[Effect]]
    serial: dict[str, list[Effect]]
    findings: list[Finding]
    shared_writes: list[dict]
    events_by_fn: dict[str, list[str]]
    executors: list[str]
    pipeline: list[str]
    task_kinds: list[str]


def _case_segments(body: list[Token]) -> tuple[int, list[tuple[str, int]]]:
    """(index of the switch, [(enumerator, label index), ...])."""
    switch_at = next(
        (i for i, t in enumerate(body) if t.value == "switch"), len(body)
    )
    labels: list[tuple[str, int]] = []
    i = switch_at
    while i < len(body):
        if body[i].value == "case":
            j = i + 1
            idents: list[str] = []
            while j < len(body) and body[j].value != ":":
                if body[j].is_ident:
                    idents.append(body[j].value)
                j += 1
            if idents:
                labels.append((idents[-1], i))
            i = j
        i += 1
    return switch_at, labels


def _phase_of_index(
    idx: int, switch_at: int, labels: list[tuple[str, int]]
) -> str | None:
    """None = preamble (belongs to every phase)."""
    if idx < switch_at or not labels:
        return None
    phase = None
    for name, at in labels:
        if at <= idx:
            phase = name
        else:
            break
    return phase


def extract_pipeline(model: Model) -> list[str]:
    """TaskKind enumerators in the order step() runs their epochs."""
    order: list[str] = []
    visited: set[str] = set()

    def visit(fn: Fn) -> None:
        if fn.qualified in visited:
            return
        visited.add(fn.qualified)
        body = fn.body
        for i, t in enumerate(body):
            if (
                t.value == "run_sharded"
                and i + 1 < len(body)
                and body[i + 1].value == "("
            ):
                segs = _arg_segments(body, i + 1)
                if segs:
                    kinds = [
                        w.value for w in segs[0] if w.is_ident
                    ]
                    if kinds:
                        order.append(kinds[-1])
                continue
            if not t.is_ident or i + 1 >= len(body):
                continue
            if body[i + 1].value != "(":
                continue
            prev = body[i - 1].value if i > 0 else ""
            if prev in (".", "->", "::"):
                continue
            callee = model.by_name.get(t.value)
            if callee is not None and callee.cls == fn.cls:
                visit(callee)

    step = model.by_name.get("step")
    if step is not None:
        visit(step)
    seen: set[str] = set()
    out = []
    for k in order:
        if k not in seen:
            seen.add(k)
            out.append(k)
    return out


def analyze(model: Model) -> Result:
    an = RegionAnalyzer(model)
    annotations = collect_annotations(model)
    used: set[tuple[str, int]] = set()
    findings: list[Finding] = []
    shared_writes: list[dict] = []
    task_kinds = model.task_kinds()

    parallel: dict[str, list[Effect]] = {}
    run_task = model.by_name.get("run_task")
    if run_task is not None:
        seed = {p for p in run_task.params if p}
        tagged = an.collect(run_task, seed)
        switch_at, labels = _case_segments(run_task.body)
        for kind in task_kinds:
            parallel[kind] = []
        for idx, eff in tagged:
            phase = _phase_of_index(idx, switch_at, labels)
            if phase is None:
                for kind in task_kinds:
                    parallel.setdefault(kind, []).append(eff)
            else:
                parallel.setdefault(phase, []).append(eff)
        label_names = {name for name, _ in labels}
        for kind in task_kinds:
            if kind not in label_names:
                findings.append(
                    Finding(
                        "missing-case",
                        run_task.file,
                        run_task.line,
                        f"TaskKind::{kind} has no case in run_task — "
                        "an epoch of that kind would silently do nothing",
                    )
                )
    drain = model.by_name.get("drain_tasks")
    if drain is not None:
        parallel["drain"] = [eff for _, eff in an.collect(drain, set())]

    serial: dict[str, list[Effect]] = {}
    for name in SERIAL_REGIONS:
        fn = model.by_name.get(name)
        if fn is not None:
            seed = {p for p in fn.params if p}
            serial[name] = [eff for _, eff in an.collect(fn, seed)]

    # -- check (a): parallel writes are owned or annotated-with-reason ------
    def annotation_for(eff: Effect) -> tuple[int, str] | None:
        for ln in eff.cover_lines:
            key = (eff.file, ln)
            if key in annotations:
                return ln, annotations[key]
        return None

    annotated_writes: dict[str, set[str]] = {}  # region -> member names
    reported: set[tuple[str, str, int]] = set()
    for region, effects in parallel.items():
        for eff in effects:
            if eff.kind != "write" or eff.owned:
                continue
            hit = annotation_for(eff)
            dedup = (region, eff.member, eff.line)
            if hit is None:
                if dedup not in reported:
                    reported.add(dedup)
                    findings.append(
                        Finding(
                            "unowned-parallel-write",
                            eff.file,
                            eff.line,
                            f"write to '{eff.member}' in parallel phase "
                            f"'{region}' is not owner-derived; confine it "
                            "to task-owned state or annotate with "
                            "HP_SHARED_WRITE(reason)",
                        )
                    )
                continue
            ln, reason = hit
            used.add((eff.file, ln))
            annotated_writes.setdefault(region, set()).add(eff.member)
            if not reason:
                if dedup not in reported:
                    reported.add(dedup)
                    findings.append(
                        Finding(
                            "missing-reason",
                            eff.file,
                            ln,
                            "HP_SHARED_WRITE needs a non-empty reason "
                            f"string for the shared write to '{eff.member}'",
                        )
                    )
                continue
            entry = {
                "member": eff.member,
                "file": eff.file,
                "line": ln,
                "reason": reason,
            }
            if entry not in shared_writes:
                shared_writes.append(entry)

    # -- check (c): no unannotated write + unowned read of one member
    # inside the same epoch (cross-task visibility without a barrier) -------
    for region, effects in parallel.items():
        ann = annotated_writes.get(region, set())
        by_member: dict[str, list[Effect]] = {}
        for eff in effects:
            by_member.setdefault(eff.member, []).append(eff)
        for member, effs in sorted(by_member.items()):
            writes = [
                e
                for e in effs
                if e.kind == "write"
                and not (not e.owned and annotation_for(e) is not None)
            ]
            unowned_reads = [
                e for e in effs if e.kind == "read" and not e.owned
            ]
            if member in ann:
                continue
            if writes and unowned_reads:
                w, r = writes[0], unowned_reads[0]
                findings.append(
                    Finding(
                        "intra-phase-hazard",
                        r.file,
                        r.line,
                        f"'{member}' is written (line {w.line}) and read "
                        f"through a non-owner index in the same parallel "
                        f"phase '{region}' — no barrier orders the pair",
                    )
                )

    # stale annotations: every HP_SHARED_WRITE must justify a live shared
    # write (dead ones hide future races behind a stale excuse)
    for (relpath, ln), _reason in sorted(annotations.items()):
        if (relpath, ln) not in used:
            findings.append(
                Finding(
                    "stale-annotation",
                    relpath,
                    ln,
                    "HP_SHARED_WRITE does not cover any shared write in a "
                    "parallel phase — delete it or move it onto the write",
                )
            )

    # -- check (b): barrier bracketing --------------------------------------
    events_by_fn: dict[str, list[str]] = {}
    events_idx: dict[str, list[BarrierEvent]] = {}
    executors: set[str] = set()
    for fn in model.fns.values():
        evs = an.barrier_events(fn)
        if evs:
            events_by_fn[fn.name] = [e.method for e in evs]
            events_idx[fn.name] = evs
        if any(e.method == "next_task" for e in evs):
            executors.add(fn.name)
    for fn in model.fns.values():
        evs = events_idx.get(fn.name, [])
        bal = 0
        for e in evs:
            if e.method in BARRIER_OPENERS:
                bal += 1
            elif e.method in BARRIER_CLOSERS:
                bal -= 1
            if bal < 0:
                findings.append(
                    Finding(
                        "unbalanced-barrier",
                        fn.file,
                        e.line,
                        f"{fn.name} closes a barrier epoch it never opened",
                    )
                )
                bal = 0
        if bal != 0:
            findings.append(
                Finding(
                    "unbalanced-barrier",
                    fn.file,
                    evs[-1].line,
                    f"{fn.name} opens a barrier epoch it never closes",
                )
            )
        for callee, idx, line in an.executor_calls(fn, executors):
            opened = any(
                e.index < idx and e.method in BARRIER_OPENERS for e in evs
            )
            closed = any(
                e.index > idx and e.method in BARRIER_CLOSERS for e in evs
            )
            if not (opened and closed):
                findings.append(
                    Finding(
                        "unbracketed-executor",
                        fn.file,
                        line,
                        f"{fn.name} runs the parallel executor '{callee}' "
                        "outside an open/close (or wait_open/leave) "
                        "PhaseBarrier epoch",
                    )
                )

    return Result(
        parallel=parallel,
        serial=serial,
        findings=findings,
        shared_writes=shared_writes,
        events_by_fn=events_by_fn,
        executors=sorted(executors),
        pipeline=extract_pipeline(model),
        task_kinds=task_kinds,
    )


# ---------------------------------------------------------------------------
# Artifact
# ---------------------------------------------------------------------------


def _access_summary(effects: list[Effect], kind: str, annotated: set[str]) -> dict[str, str]:
    out: dict[str, str] = {}
    by_member: dict[str, list[Effect]] = {}
    for e in effects:
        if e.kind == kind:
            by_member.setdefault(e.member, []).append(e)
    for member, effs in sorted(by_member.items()):
        if all(e.owned for e in effs):
            out[member] = "owned"
        elif kind == "write" and member in annotated:
            out[member] = "annotated"
        else:
            out[member] = "shared"
    return out


def build_artifact(model: Model, result: Result) -> dict:
    annotated = {sw["member"] for sw in result.shared_writes}
    phases_parallel: dict[str, dict] = {}
    for region in sorted(result.parallel):
        effs = result.parallel[region]
        phases_parallel[region] = {
            "reads": _access_summary(effs, "read", annotated),
            "writes": _access_summary(effs, "write", annotated),
        }
    phases_serial: dict[str, dict] = {}
    for region in sorted(result.serial):
        effs = result.serial[region]
        phases_serial[region] = {
            "reads": sorted({e.member for e in effs if e.kind == "read"}),
            "writes": sorted({e.member for e in effs if e.kind == "write"}),
        }
    cross_phase: list[dict] = []
    for wi, write_phase in enumerate(result.pipeline):
        wset = {
            e.member
            for e in result.parallel.get(write_phase, [])
            if e.kind == "write"
        }
        for read_phase in result.pipeline[wi + 1 :]:
            rset = {
                e.member
                for e in result.parallel.get(read_phase, [])
                if e.kind == "read"
            }
            for member in sorted(wset & rset):
                cross_phase.append(
                    {
                        "member": member,
                        "write_phase": write_phase,
                        "read_phase": read_phase,
                        "ordered_by": "PhaseBarrier",
                    }
                )
    return {
        "schema": SCHEMA,
        "files": sorted(model.files),
        "task_kinds": result.task_kinds,
        "pipeline": result.pipeline,
        "phases": {"parallel": phases_parallel, "serial": phases_serial},
        "shared_writes": sorted(
            result.shared_writes,
            key=lambda sw: (sw["file"], sw["line"], sw["member"]),
        ),
        "barriers": {
            "events": {
                k: result.events_by_fn[k] for k in sorted(result.events_by_fn)
            },
            "executors": result.executors,
        },
        "cross_phase": cross_phase,
    }


def artifact_to_text(artifact: dict) -> str:
    return json.dumps(artifact, indent=2, sort_keys=False) + "\n"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _load(root: pathlib.Path) -> Model | None:
    try:
        return load_model(root)
    except FileNotFoundError as missing:
        print(
            f"phase_effects: required file {missing} not found under {root}",
            file=sys.stderr,
        )
        return None


def cmd_check(args: argparse.Namespace) -> int:
    model = _load(args.root.resolve())
    if model is None:
        return 2
    result = analyze(model)
    for finding in result.findings:
        print(f"phase_effects: {finding.render()}", file=sys.stderr)
    if result.findings:
        print(
            f"phase_effects: {len(result.findings)} finding(s) — the "
            "parallel-phase contracts do not hold (see "
            "docs/STATIC_ANALYSIS.md, layer 6)",
            file=sys.stderr,
        )
        return 1
    n_parallel = len(result.parallel)
    n_shared = len(result.shared_writes)
    print(
        f"phase_effects: OK — {n_parallel} parallel region(s), "
        f"{n_shared} annotated shared write(s), pipeline "
        + " -> ".join(result.pipeline)
    )
    return 0


def cmd_artifact(args: argparse.Namespace) -> int:
    root = args.root.resolve()
    model = _load(root)
    if model is None:
        return 2
    result = analyze(model)
    artifact = build_artifact(model, result)
    text = artifact_to_text(artifact)
    out_path = root / ARTIFACT

    if args.check:
        if not out_path.exists():
            print(
                f"phase_effects: {ARTIFACT} is not committed; run "
                "`python3 scripts/analysis/phase_effects.py artifact "
                "--write` and review the diff",
                file=sys.stderr,
            )
            return 1
        committed = out_path.read_text(encoding="utf-8")
        if committed != text:
            print(
                f"phase_effects: {ARTIFACT} is stale — the extracted "
                "read/write sets changed. Regenerate with `python3 "
                "scripts/analysis/phase_effects.py artifact --write` and "
                "review the diff (a new shared write is a reviewed event, "
                "see docs/STATIC_ANALYSIS.md).",
                file=sys.stderr,
            )
            try:
                old = json.loads(committed)
                for key in ("pipeline", "shared_writes"):
                    new_v = json.dumps(artifact.get(key), sort_keys=True)
                    old_v = json.dumps(old.get(key), sort_keys=True)
                    if new_v != old_v:
                        print(f"  {key}: {old_v} -> {new_v}", file=sys.stderr)
            except json.JSONDecodeError:
                pass
            return 1
        print(
            f"phase_effects: {ARTIFACT} is fresh "
            f"({len(artifact['phases']['parallel'])} parallel regions, "
            f"{len(artifact['shared_writes'])} shared writes)"
        )
        return 0

    if args.write:
        out_path.write_text(text, encoding="utf-8")
        print(
            f"phase_effects: wrote {ARTIFACT} "
            f"({len(artifact['phases']['parallel'])} parallel regions)"
        )
        return 0

    sys.stdout.write(text)
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    model = _load(args.root.resolve())
    if model is None:
        return 2
    result = analyze(model)
    for region in sorted(result.parallel):
        print(f"parallel {region}:")
        for eff in result.parallel[region]:
            own = "owned" if eff.owned else "SHARED"
            print(
                f"  {eff.kind:5} {own:6} {eff.member:28} "
                f"{eff.file}:{eff.line}"
            )
    for region in sorted(result.serial):
        effs = result.serial[region]
        reads = sorted({e.member for e in effs if e.kind == "read"})
        writes = sorted({e.member for e in effs if e.kind == "write"})
        print(f"serial {region}: reads={reads} writes={writes}")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="phase_effects", description=__doc__.splitlines()[0]
    )
    ap.add_argument(
        "--root",
        type=pathlib.Path,
        default=SCRIPT_DIR.parent.parent,
        help="repository root (fixture trees mirror src/sim/...)",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)
    sub.add_parser(
        "check", help="verify the parallel-phase contracts (a)/(b)/(c)"
    )
    p_art = sub.add_parser(
        "artifact", help=f"emit or verify the committed {ARTIFACT}"
    )
    p_art.add_argument("--write", action="store_true")
    p_art.add_argument("--check", action="store_true")
    sub.add_parser("dump", help="human-readable per-region effect listing")
    args = ap.parse_args(argv)
    if args.cmd == "check":
        return cmd_check(args)
    if args.cmd == "artifact":
        if args.write and args.check:
            print("phase_effects: --write and --check conflict", file=sys.stderr)
            return 2
        return cmd_artifact(args)
    return cmd_dump(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
