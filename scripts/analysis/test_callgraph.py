#!/usr/bin/env python3
"""Fixture self-tests for the whole-program analyzer (callgraph.py).

Mirrors scripts/lint/test_determinism_lint.py: every fixture has an exact
expected census, so both a missed detection and an over-trigger fail. The
reach fixture also drives the determinism lint end-to-end, asserting the
acceptance property of the PR: an unordered-container iteration in a
routing-REACHABLE src/core function is caught once the artifact widens the
scope — and, crucially, is missed with the prefix floor alone.

Stdlib only; runs under ctest as `callgraph_selftest`.
"""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import shutil
import sys
import tempfile
import unittest

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))
sys.path.insert(0, str(HERE.parent / "lint"))

import callgraph  # noqa: E402
import determinism_lint  # noqa: E402

REACH = HERE / "fixtures" / "reach"
LAYER = HERE / "fixtures" / "layering"


def run_lint(argv: list[str]) -> tuple[int, str]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
        code = determinism_lint.main(argv)
    return code, out.getvalue()


def run_callgraph(argv: list[str]) -> tuple[int, str]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
        try:
            code = callgraph.main(argv)
        except SystemExit as e:  # argparse or fatal errors
            code = e.code if isinstance(e.code, int) else 2
    return code, out.getvalue()


class ReachabilityFixture(unittest.TestCase):
    """Census of the call-graph closure from Engine::step."""

    @classmethod
    def setUpClass(cls):
        program = callgraph.load_program(REACH, None)
        cls.artifact = callgraph.build_artifact(
            program, callgraph.DEFAULT_ROOTS
        )

    def test_reachable_file_census(self):
        self.assertEqual(
            self.artifact["files"],
            [
                "src/core/helper.cpp",
                "src/sim/engine.cpp",
                "src/stats/tick_impl.cpp",
            ],
        )

    def test_direct_call_reaches_core_definition(self):
        self.assertEqual(
            self.artifact["functions"]["src/core/helper.cpp"],
            ["hp::core::route_phase"],
        )

    def test_virtual_dispatch_reaches_override(self):
        # engine.cpp only ever writes `obs_->on_tick()`; the stats-layer
        # override must still be certified.
        self.assertEqual(
            self.artifact["functions"]["src/stats/tick_impl.cpp"],
            ["hp::stats::TickCounter::on_tick"],
        )

    def test_uncalled_function_stays_out(self):
        self.assertNotIn("src/stats/unreached.cpp", self.artifact["files"])

    def test_schema_fields(self):
        self.assertEqual(self.artifact["schema"], callgraph.SCHEMA)
        self.assertEqual(self.artifact["engine"], "regex")
        self.assertEqual(self.artifact["roots"], ["hp::sim::Engine::step"])


class ReachScopesDeterminismLint(unittest.TestCase):
    """The artifact must widen the lint scope — the acceptance criterion."""

    def setUp(self):
        program = callgraph.load_program(REACH, None)
        artifact = callgraph.build_artifact(program, callgraph.DEFAULT_ROOTS)
        self.tmp = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        )
        self.addCleanup(pathlib.Path(self.tmp.name).unlink)
        json.dump(artifact, self.tmp)
        self.tmp.close()

    def test_reachable_core_iteration_is_caught(self):
        code, out = run_lint(
            ["--root", str(REACH), "--reachable", self.tmp.name]
        )
        self.assertEqual(code, 1, out)
        findings = [l for l in out.splitlines() if "src/" in l and "[" in l]
        census = {}
        for line in findings:
            path = line.split(":", 1)[0]
            rule = line.split("[", 1)[1].split("]", 1)[0]
            census[(path, rule)] = census.get((path, rule), 0) + 1
        self.assertEqual(
            census,
            {
                ("src/core/helper.cpp", "unordered-member"): 1,
                ("src/core/helper.cpp", "unordered-iteration"): 1,
            },
        )

    def test_unreached_stats_file_is_not_flagged(self):
        code, out = run_lint(
            ["--root", str(REACH), "--reachable", self.tmp.name]
        )
        self.assertNotIn("unreached.cpp", out)

    def test_prefix_floor_alone_misses_the_core_finding(self):
        # The pre-artifact behaviour: src/core escapes all routing rules.
        # This is exactly the gap the call-graph scope closes.
        code, out = run_lint(["--root", str(REACH), "--no-reachable"])
        self.assertEqual(code, 0, out)

    def test_missing_explicit_artifact_is_an_error(self):
        code, out = run_lint(
            ["--root", str(REACH), "--reachable", "/nonexistent/a.json"]
        )
        self.assertEqual(code, 2, out)


class ArtifactFreshness(unittest.TestCase):
    def test_check_fails_on_stale_artifact(self):
        with tempfile.TemporaryDirectory() as td:
            root = pathlib.Path(td) / "tree"
            shutil.copytree(REACH, root)
            code, out = run_callgraph(
                ["--root", str(root), "reachable", "--write"]
            )
            self.assertEqual(code, 0, out)
            code, out = run_callgraph(
                ["--root", str(root), "reachable", "--check"]
            )
            self.assertEqual(code, 0, out)
            # Grow the reachable set: a fresh call edge into unreached.cpp.
            engine = root / "src" / "sim" / "engine.cpp"
            engine.write_text(
                engine.read_text().replace(
                    "core::route_phase(3);",
                    "core::route_phase(3);\n  hp::stats::orphan_stat();",
                )
            )
            code, out = run_callgraph(
                ["--root", str(root), "reachable", "--check"]
            )
            self.assertEqual(code, 1, out)
            self.assertIn("stale", out)
            self.assertIn("+ src/stats/unreached.cpp", out)

    def test_check_fails_when_artifact_missing(self):
        with tempfile.TemporaryDirectory() as td:
            root = pathlib.Path(td) / "tree"
            shutil.copytree(REACH, root)
            code, out = run_callgraph(
                ["--root", str(root), "reachable", "--check"]
            )
            self.assertEqual(code, 1, out)


class LayeringFixture(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        program = callgraph.load_program(LAYER, None)
        config = callgraph.load_layering_config(
            LAYER / "layering_config.json"
        )
        cls.violations = callgraph.check_layering(program, config)

    def test_exact_violation_census(self):
        edges = sorted((v.src, v.dst) for v in self.violations)
        self.assertEqual(
            edges,
            [
                ("src/core/deleted_long_ago.cpp", "src/sim/engine.hpp"),
                ("src/core/mid.hpp", "src/sim/engine.hpp"),
            ],
        )

    def test_upward_include_is_the_violation(self):
        real = [v for v in self.violations if v.src == "src/core/mid.hpp"]
        self.assertEqual(len(real), 1)
        self.assertIn("must not include layer 'sim'", real[0].detail)

    def test_stale_exception_is_reported(self):
        stale = [
            v
            for v in self.violations
            if v.src == "src/core/deleted_long_ago.cpp"
        ]
        self.assertEqual(len(stale), 1)
        self.assertIn("stale edge_exception", stale[0].detail)

    def test_excused_edge_and_downward_includes_are_clean(self):
        srcs = {v.src for v in self.violations}
        self.assertNotIn("src/routing/excused.cpp", srcs)
        self.assertNotIn("src/sim/engine.hpp", srcs)

    def test_reasonless_exception_is_rejected(self):
        config = json.loads(
            (LAYER / "layering_config.json").read_text()
        )
        config["edge_exceptions"][0]["reason"] = "  "
        with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
            json.dump(config, f)
            f.flush()
            with self.assertRaises(SystemExit):
                callgraph.load_layering_config(pathlib.Path(f.name))


class ParserRobustness(unittest.TestCase):
    """Direct parse_file checks for constructs that trip naive scanners."""

    def test_ctor_init_list_and_braced_init(self):
        pf = callgraph.parse_file(
            "src/sim/x.cpp",
            "namespace hp::sim {\n"
            "Foo::Foo(int a) : a_(a), b_{a + 1}, c_(helper(a)) {\n"
            "  init_tables();\n"
            "}\n"
            "}\n",
        )
        self.assertEqual(len(pf.functions), 1)
        fn = pf.functions[0]
        self.assertEqual(fn.qualified, "hp::sim::Foo::Foo")
        self.assertIn("init_tables", fn.calls)
        self.assertIn("helper", fn.calls)

    def test_declaration_is_not_a_definition(self):
        pf = callgraph.parse_file(
            "src/sim/x.hpp",
            "namespace hp {\n"
            "void declared_only(int x);\n"
            "int defaulted() = delete;\n"
            "struct S { virtual void pure() = 0; ~S() = default; };\n"
            "}\n",
        )
        self.assertEqual(pf.functions, [])

    def test_control_keywords_are_not_calls(self):
        pf = callgraph.parse_file(
            "src/sim/x.cpp",
            "namespace hp {\n"
            "void f() {\n"
            "  if (g()) { while (h()) { return; } }\n"
            "  for (int i = 0; i < 3; ++i) { k(i); }\n"
            "}\n"
            "}\n",
        )
        (fn,) = pf.functions
        self.assertEqual(fn.calls, {"g", "h", "k"})

    def test_strings_and_comments_hide_calls(self):
        pf = callgraph.parse_file(
            "src/sim/x.cpp",
            'namespace hp {\nvoid f() {\n  const char* s = "fake()";\n'
            "  // commented_call();\n}\n}\n",
        )
        (fn,) = pf.functions
        self.assertEqual(fn.calls, set())

    def test_class_mention_reaches_constructor(self):
        pf = callgraph.parse_file(
            "src/sim/x.cpp",
            "namespace hp {\n"
            "struct Rng { Rng(int s) { seed(s); } };\n"
            "void f() {\n  Rng node_rng{42};\n  (void)node_rng;\n}\n"
            "}\n",
        )
        program = callgraph.Program({"src/sim/x.cpp": pf})
        names = {fn.qualified for fn in program.functions}
        self.assertIn("hp::Rng::Rng", names)
        f = next(fn for fn in pf.functions if fn.name == "f")
        self.assertIn("Rng", f.idents)
        reach = callgraph.reachable_functions(program, ("hp::f",))
        self.assertEqual(
            {fn.qualified for fn in reach},
            {"hp::f", "hp::Rng::Rng"},  # seed() has no definition here
        )


if __name__ == "__main__":
    unittest.main(verbosity=2)
