#!/usr/bin/env python3
"""Fixture self-tests for the phase-effects analyzer (phase_effects.py).

Mirrors test_callgraph.py: every fixture has an exact expected census, so
both a missed detection and an over-trigger fail. The `good` fixture pins
the full extracted artifact (ownership maps, shared-write allow list,
barrier events), each `bad_*` fixture seeds exactly one contract
violation, and the live-tree tests assert the real engine passes and the
committed phase_effects.json stays fresh.

Stdlib only; runs under ctest as `phase_effects_selftest`.
"""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import shutil
import sys
import tempfile
import unittest

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

import phase_effects  # noqa: E402

EFFECTS = HERE / "fixtures" / "effects"
REPO = HERE.parent.parent


def run_effects(argv: list[str]) -> tuple[int, str]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
        try:
            code = phase_effects.main(argv)
        except SystemExit as e:  # argparse or fatal errors
            code = e.code if isinstance(e.code, int) else 2
    return code, out.getvalue()


def census(root: pathlib.Path) -> list[tuple[str, int]]:
    model = phase_effects.load_model(root)
    result = phase_effects.analyze(model)
    return sorted((f.rule, f.line) for f in result.findings)


class GoodFixture(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.model = phase_effects.load_model(EFFECTS / "good")
        cls.result = phase_effects.analyze(cls.model)
        cls.artifact = phase_effects.build_artifact(cls.model, cls.result)

    def test_check_passes(self):
        code, out = run_effects(["--root", str(EFFECTS / "good"), "check"])
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_no_findings(self):
        self.assertEqual(self.result.findings, [])

    def test_parallel_region_census(self):
        self.assertEqual(
            sorted(self.artifact["phases"]["parallel"]),
            ["drain", "kRoute", "kScan"],
        )

    def test_pipeline_order(self):
        self.assertEqual(self.artifact["pipeline"], ["kScan", "kRoute"])
        self.assertEqual(self.artifact["task_kinds"], ["kScan", "kRoute"])

    def test_scan_phase_write_set_is_owned(self):
        scan = self.artifact["phases"]["parallel"]["kScan"]
        self.assertEqual(scan["writes"], {"scratch_": "owned"})
        self.assertEqual(scan["reads"]["flight_.pos_"], "owned")

    def test_route_phase_column_summary(self):
        # flight_.move(i, ...) must surface as an owned write of the pos_
        # column, and the annotated total_ accumulation as "annotated".
        route = self.artifact["phases"]["parallel"]["kRoute"]
        self.assertEqual(
            route["writes"],
            {"flight_.pos_": "owned", "out_": "owned", "total_": "annotated"},
        )

    def test_shared_write_allow_list(self):
        self.assertEqual(
            self.artifact["shared_writes"],
            [
                {
                    "member": "total_",
                    "file": "src/sim/engine.cpp",
                    "line": 66,
                    "reason": "per-range deltas commute; sum is order-free",
                }
            ],
        )

    def test_barrier_event_census(self):
        self.assertEqual(
            self.artifact["barriers"],
            {
                "events": {
                    "drain_tasks": ["next_task"],
                    "run_sharded": ["open", "close"],
                    "worker_loop": ["wait_open", "leave"],
                },
                "executors": ["drain_tasks"],
            },
        )

    def test_owner_index_derivation(self):
        # begin/end are derived from the task id inside run_task, so they
        # must enter the derived set when seeded with the fn's params.
        analyzer = phase_effects.RegionAnalyzer(self.model)
        fn = self.model.by_name["run_task"]
        derived, _ = analyzer.derive(fn.body, set(fn.params))
        self.assertLessEqual({"task", "begin", "end"}, derived)

    def test_flight_table_method_summaries(self):
        analyzer = phase_effects.RegionAnalyzer(self.model)
        self.assertEqual(
            analyzer.column_summary("FlightTable", "move"), [("pos_", "write")]
        )
        self.assertEqual(
            analyzer.column_summary("FlightTable", "pos"), [("pos_", "read")]
        )

    def test_method_constness_db(self):
        self.assertTrue(self.model.method_const[("FlightTable", "pos")])
        self.assertFalse(self.model.method_const[("FlightTable", "move")])


class BadFixtures(unittest.TestCase):
    """One seeded violation per fixture; censuses are exact."""

    def test_unowned_parallel_write(self):
        self.assertEqual(
            census(EFFECTS / "bad_unowned_write"),
            [("unowned-parallel-write", 56)],
        )

    def test_unannotated_shared_write_in_drain(self):
        self.assertEqual(
            census(EFFECTS / "bad_unannotated_shared"),
            [("unowned-parallel-write", 26)],
        )

    def test_intra_phase_write_read_hazard(self):
        self.assertEqual(
            census(EFFECTS / "bad_missing_barrier"),
            [("intra-phase-hazard", 63)],
        )

    def test_executor_without_barrier_epoch(self):
        self.assertEqual(
            census(EFFECTS / "bad_unbracketed"),
            [("unbracketed-executor", 34)],
        )

    def test_open_without_close(self):
        self.assertEqual(
            census(EFFECTS / "bad_unbalanced"),
            [("unbalanced-barrier", 35), ("unbracketed-executor", 36)],
        )

    def test_annotation_without_reason(self):
        self.assertEqual(
            census(EFFECTS / "bad_reasonless"), [("missing-reason", 65)]
        )

    def test_stale_annotation(self):
        self.assertEqual(
            census(EFFECTS / "bad_stale_annotation"),
            [("stale-annotation", 55)],
        )

    def test_enum_value_without_case(self):
        self.assertEqual(
            census(EFFECTS / "bad_missing_case"), [("missing-case", 40)]
        )

    def test_check_exit_code_and_rule_tag(self):
        code, out = run_effects(
            ["--root", str(EFFECTS / "bad_unowned_write"), "check"]
        )
        self.assertEqual(code, 1)
        self.assertIn("[unowned-parallel-write]", out)
        self.assertIn("1 finding(s)", out)


class ArtifactFreshness(unittest.TestCase):
    def copy_good(self, td: str) -> pathlib.Path:
        root = pathlib.Path(td) / "tree"
        shutil.copytree(EFFECTS / "good", root)
        return root

    def test_missing_artifact_fails_check(self):
        with tempfile.TemporaryDirectory() as td:
            root = self.copy_good(td)
            code, out = run_effects(
                ["--root", str(root), "artifact", "--check"]
            )
            self.assertEqual(code, 1)
            self.assertIn("not committed", out)

    def test_write_then_check_is_fresh(self):
        with tempfile.TemporaryDirectory() as td:
            root = self.copy_good(td)
            code, out = run_effects(["--root", str(root), "artifact", "--write"])
            self.assertEqual(code, 0, out)
            code, out = run_effects(
                ["--root", str(root), "artifact", "--check"]
            )
            self.assertEqual(code, 0, out)
            self.assertIn("fresh", out)

    def test_stale_artifact_is_detected(self):
        with tempfile.TemporaryDirectory() as td:
            root = self.copy_good(td)
            run_effects(["--root", str(root), "artifact", "--write"])
            cpp = root / "src" / "sim" / "engine.cpp"
            cpp.write_text(
                cpp.read_text().replace(
                    "out_[i] = flight_.pos(i) + 1;",
                    "scratch_[i] = flight_.pos(i) + 1;",
                )
            )
            code, out = run_effects(
                ["--root", str(root), "artifact", "--check"]
            )
            self.assertEqual(code, 1)
            self.assertIn("stale", out)

    def test_write_and_check_conflict(self):
        code, _ = run_effects(
            ["--root", str(EFFECTS / "good"), "artifact", "--write", "--check"]
        )
        self.assertEqual(code, 2)

    def test_artifact_schema(self):
        with tempfile.TemporaryDirectory() as td:
            root = self.copy_good(td)
            run_effects(["--root", str(root), "artifact", "--write"])
            data = json.loads((root / "phase_effects.json").read_text())
            self.assertEqual(data["schema"], phase_effects.SCHEMA)
            self.assertEqual(
                sorted(data),
                [
                    "barriers",
                    "cross_phase",
                    "files",
                    "phases",
                    "pipeline",
                    "schema",
                    "shared_writes",
                    "task_kinds",
                ],
            )


class LiveTree(unittest.TestCase):
    """The real engine must satisfy the contracts it documents."""

    def test_live_check_passes(self):
        code, out = run_effects(["--root", str(REPO), "check"])
        self.assertEqual(code, 0, out)

    def test_live_pipeline_census(self):
        model = phase_effects.load_model(REPO)
        self.assertEqual(
            phase_effects.extract_pipeline(model),
            ["kScan", "kBucket", "kGoodMask", "kRoute", "kMove"],
        )

    def test_live_shared_writes_are_annotated_with_reasons(self):
        model = phase_effects.load_model(REPO)
        result = phase_effects.analyze(model)
        members = sorted(w["member"] for w in result.shared_writes)
        self.assertEqual(members, ["policy_", "shards_"])
        for w in result.shared_writes:
            self.assertTrue(w["reason"].strip(), w)

    def test_committed_artifact_is_fresh(self):
        code, out = run_effects(["--root", str(REPO), "artifact", "--check"])
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
