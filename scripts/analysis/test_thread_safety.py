#!/usr/bin/env python3
"""Thread-safety fixture tests: Clang's capability analysis as a gate.

Compiles the fixtures in fixtures/threadsafety/ with
``clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror``:

  good_pool_discipline.cpp  the engine's pool discipline in miniature —
                            must compile clean
  bad_unguarded_access.cpp  guarded member touched without its mutex —
                            must fail with "requires holding"
  bad_lock_order.cpp        declared acquisition order violated — must
                            fail (needs -Wthread-safety-beta)

and finally syntax-checks the REAL engine TU (src/sim/engine.cpp) under the
same flags, so the committed annotations are themselves certified, not just
the toy fixtures.

When clang++ is not installed the script prints SKIPPED and exits 0 — the
container bakes in gcc only; CI runs the real thing. Exit: 0 = ok/skip,
1 = a fixture behaved wrong.
"""

from __future__ import annotations

import pathlib
import shutil
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parents[1]
FIXTURES = HERE / "fixtures" / "threadsafety"

FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-I",
    str(ROOT / "src"),
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror",
]

#: fixture -> (must_compile, required stderr substring on failure)
EXPECTED = {
    "good_pool_discipline.cpp": (True, ""),
    "bad_unguarded_access.cpp": (False, "requires holding"),
    "bad_lock_order.cpp": (False, "must be acquired"),
}


def compile_one(clangxx: str, path: pathlib.Path) -> tuple[int, str]:
    proc = subprocess.run(
        [clangxx, *FLAGS, str(path)],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stderr


def main() -> int:
    clangxx = shutil.which("clang++")
    if clangxx is None:
        print(
            "test_thread_safety: SKIPPED — clang++ not installed (the "
            "capability analysis is clang-only; CI runs it)"
        )
        return 0

    failures = 0
    for name, (must_compile, needle) in sorted(EXPECTED.items()):
        rc, stderr = compile_one(clangxx, FIXTURES / name)
        if must_compile and rc != 0:
            print(f"FAIL {name}: expected clean compile, got:\n{stderr}")
            failures += 1
        elif not must_compile and rc == 0:
            print(
                f"FAIL {name}: compiled clean but must be rejected by "
                "-Wthread-safety"
            )
            failures += 1
        elif not must_compile and needle not in stderr:
            print(
                f"FAIL {name}: rejected, but without the expected "
                f"'{needle}' diagnostic:\n{stderr}"
            )
            failures += 1
        else:
            print(f"ok   {name}")

    rc, stderr = compile_one(clangxx, ROOT / "src" / "sim" / "engine.cpp")
    if rc != 0:
        print(
            "FAIL src/sim/engine.cpp: the real engine annotations do not "
            f"pass the analysis:\n{stderr}"
        )
        failures += 1
    else:
        print("ok   src/sim/engine.cpp (real engine TU)")

    if failures:
        print(f"test_thread_safety: {failures} failure(s)")
        return 1
    print("test_thread_safety: all fixtures behave as declared")
    return 0


if __name__ == "__main__":
    sys.exit(main())
