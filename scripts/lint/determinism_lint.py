#!/usr/bin/env python3
"""Repo-specific determinism lint for the hot-potato routing engine.

PR 1's headline guarantee is that routing results are bit-identical for any
thread count. That property is enforced dynamically by golden-fingerprint
tests, but a single careless construct — iterating an ``std::unordered_map``,
ordering by pointer value, drawing from ``std::rand`` — silently breaks it
until a fingerprint drifts. This tool statically rejects the *class* of code
that can break determinism, mirroring how the paper proves properties of an
algorithm class rather than of one run.

Rules (full rationale in docs/STATIC_ANALYSIS.md):

  unordered-member     Declaring std::unordered_map/unordered_set in
                       routing-reachable code requires an allow annotation
                       stating the order-independence discipline (e.g. the
                       LivelockDetector's commutative digest). "Reachable" =
                       the src/sim + src/routing prefix floor, widened by the
                       committed call-graph artifact routing_reachable.json
                       (scripts/analysis/callgraph.py).
  unordered-iteration  Iterating such a container (range-for, begin()/end())
                       in routing-reachable code. Iteration order is
                       unspecified and varies across libstdc++/libc++ and
                       across runs with pointer-salted hashing.
  raw-random           std::rand / srand / random_device / mt19937 etc.
                       anywhere in src/ outside src/util/rng.*. All
                       randomness must flow through the per-(seed,step,node)
                       streams so runs are replayable.
  pointer-order        Ordering or hashing by pointer value in
                       routing-reachable code: pointer-keyed map/set,
                       std::hash over a pointer type, casting a pointer to
                       (u)intptr_t. Allocation addresses differ run to run.
  static-local         Mutable function-local statics in routing-reachable
                       code. Hidden cross-run/cross-shard state breaks both
                       replayability and the sharded-routing proof that node
                       decisions are pure functions of node-local inputs.
  span-retention       A StepObserver::on_step override storing the record's
                       spans (assignments/arrivals) or the record's address.
                       The spans alias per-step scratch buffers and die with
                       the call (see sim/observer.hpp).

Allow annotations::

    std::unordered_map<K, V> seen_;  // hp-lint: allow(unordered-member) <why>

  The annotation may sit on the flagged line or the line directly above it.
  A reason is mandatory; a bare allow is itself a finding.

Engines: by default the lint runs its pure-regex engine (Python stdlib only,
so it works in a container with no LLVM). When the ``clang.cindex`` bindings
are importable, ``--engine=clang`` (or ``--engine=auto``) additionally
confirms unordered-iteration findings against the AST, eliminating regex
false positives; the regex engine remains the source of truth for the other
rules.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys

RULES = {
    "unordered-member": (
        "unordered container in routing-reachable code needs an "
        "'hp-lint: allow(unordered-member) <reason>' annotation documenting "
        "its order-independence discipline"
    ),
    "unordered-iteration": (
        "iteration over an unordered container in routing-reachable code; "
        "iteration order is unspecified and breaks bit-identical results"
    ),
    "raw-random": (
        "raw randomness outside src/util/rng.*; use the engine's "
        "per-(seed, step, node) streams so runs are replayable"
    ),
    "pointer-order": (
        "ordering/hashing by pointer value; allocation addresses vary "
        "between runs and break determinism"
    ),
    "static-local": (
        "mutable function-local static in routing-reachable code; hidden "
        "state breaks replayability and sharded-routing purity"
    ),
    "span-retention": (
        "StepObserver::on_step stores a span/record that dies with the "
        "call; copy what you keep (see sim/observer.hpp)"
    ),
    "atomic-implicit-seqcst": (
        "atomic operation relies on the implicit seq_cst default; spell "
        "the std::memory_order explicitly so the synchronization protocol "
        "is reviewable (see phase_barrier.hpp for the house style)"
    ),
    "volatile-qualifier": (
        "volatile is not a synchronization primitive; use std::atomic "
        "with an explicit order, or annotate the MMIO-style exception"
    ),
    "atomic-store-no-notify": (
        "mutation of an atomic that threads park on via wait() has no "
        "notify_one/notify_all before the enclosing block ends; a missed "
        "wakeup strands the parked thread (the lost-wakeup class the model "
        "checker in tests/model/ proves absent)"
    ),
    "stale-allow": (
        "hp-lint allow annotation no longer suppresses any finding; "
        "delete it or move it back onto the offending line"
    ),
}

ALLOW_RE = re.compile(r"//\s*hp-lint:\s*allow\(([a-z-]+)\)\s*(.*?)\s*(?:\*/)?\s*$")

# Scope predicates, keyed by rule. Paths are POSIX-style and repo-relative.
#
# The *floor* of the routing scope is the textual prefix below. On top of it,
# the committed call-graph artifact (routing_reachable.json, regenerated by
# scripts/analysis/callgraph.py) contributes every file holding a function
# reachable from Engine::step — so core observers, topology caches and stats
# recorders are certified too. The union is a ratchet: reachability can only
# WIDEN the scope beyond the prefix floor, never narrow it, which guards the
# engine-room directories against any miss of the call-graph heuristics.
ROUTING_SCOPE = ("src/sim/", "src/routing/")
REACHABLE_ARTIFACT = "routing_reachable.json"
REACHABLE_SCHEMA = "hp-routing-reachable-v1"


def in_routing_scope(relpath: str) -> bool:
    return relpath.startswith(ROUTING_SCOPE)


def load_reachable_files(artifact_path: pathlib.Path) -> set[str] | None:
    """File set of the committed reachability artifact, or None when the
    artifact is absent/unreadable (the prefix floor then stands alone).
    Freshness of the artifact is enforced separately by
    `callgraph.py reachable --check`, not here."""
    try:
        data = json.loads(artifact_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if data.get("schema") != REACHABLE_SCHEMA:
        return None
    files = data.get("files", [])
    if not isinstance(files, list):
        return None
    return {f for f in files if isinstance(f, str)}


def in_raw_random_scope(relpath: str) -> bool:
    return relpath.startswith("src/") and not relpath.startswith("src/util/rng.")


def in_atomics_scope(relpath: str) -> bool:
    # Tests may exercise implicit-order atomics on purpose (e.g. the barrier
    # stress harness); the discipline applies to shipped engine code only.
    return relpath.startswith("src/")


@dataclasses.dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    detail: str

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.rule}] {RULES[self.rule]}"
            + (f" ({self.detail})" if self.detail else "")
        )


def strip_code(text: str) -> list[str]:
    """Returns per-line code with comments and string/char literals blanked.

    Line structure is preserved so findings keep their line numbers. This is
    a lexer, not a parser: it only understands //, /* */, "..." (with escapes
    and the few raw strings the tree uses) and '...'.
    """
    out: list[str] = []
    i, n = 0, len(text)
    cur: list[str] = []
    state = "code"  # code | block_comment | line_comment | dq | sq
    while i < n:
        c = text[i]
        if c == "\n":
            out.append("".join(cur))
            cur = []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            two = text[i : i + 2]
            if two == "//":
                state = "line_comment"
                i += 2
            elif two == "/*":
                state = "block_comment"
                i += 2
            elif c == '"':
                state = "dq"
                cur.append(c)
                i += 1
            elif c == "'":
                state = "sq"
                cur.append(c)
                i += 1
            else:
                cur.append(c)
                i += 1
        elif state == "block_comment":
            if text[i : i + 2] == "*/":
                state = "code"
                i += 2
            else:
                i += 1
        elif state == "line_comment":
            i += 1
        elif state in ("dq", "sq"):
            quote = '"' if state == "dq" else "'"
            if c == "\\":
                i += 2
            elif c == quote:
                state = "code"
                cur.append(c)
                i += 1
            else:
                cur.append(" ")  # blank literal contents, keep width
                i += 1
    if cur or (text and not text.endswith("\n")):
        out.append("".join(cur))
    return out


class FileLinter:
    """Applies every in-scope rule to one file."""

    def __init__(
        self,
        relpath: str,
        raw_text: str,
        *,
        force_all_rules: bool = False,
        routing_scope: bool | None = None,
    ) -> None:
        self.relpath = relpath
        self.raw_lines = raw_text.splitlines()
        self.code_lines = strip_code(raw_text)
        self.force = force_all_rules
        # None = decide by path prefix (legacy floor); the driver injects the
        # call-graph verdict (prefix floor ∪ reachable set) when available.
        self.routing_scope = routing_scope
        self.findings: list[Finding] = []
        # Lines (1-based) whose allow annotation suppressed a finding; the
        # complement of this set drives the stale-allow rule.
        self.used_allows: set[int] = set()

    # -- allow annotations ------------------------------------------------
    def allow_for(self, lineno: int, rule: str) -> bool:
        """True iff line `lineno` (1-based) carries or inherits a valid
        allow(rule) annotation: on the flagged line itself, or anywhere in
        the contiguous comment block directly above it. A reasonless allow
        is itself reported and suppresses nothing further."""
        candidates = [lineno]
        above = lineno - 1
        while (
            1 <= above <= len(self.raw_lines)
            and self.raw_lines[above - 1].lstrip().startswith("//")
        ):
            candidates.append(above)
            above -= 1
        for candidate in candidates:
            if 1 <= candidate <= len(self.raw_lines):
                m = ALLOW_RE.search(self.raw_lines[candidate - 1])
                if m and m.group(1) == rule:
                    self.used_allows.add(candidate)
                    if not m.group(2):
                        self.findings.append(
                            Finding(
                                self.relpath,
                                candidate,
                                rule,
                                "allow annotation is missing its reason",
                            )
                        )
                        return True  # already reported; don't double-flag
                    return True
        return False

    def flag(self, lineno: int, rule: str, detail: str = "") -> None:
        if not self.allow_for(lineno, rule):
            self.findings.append(Finding(self.relpath, lineno, rule, detail))

    # -- rules ------------------------------------------------------------
    UNORDERED_DECL = re.compile(
        r"\bunordered_(?:map|set|multimap|multiset)\s*<"
    )
    UNORDERED_NAME = re.compile(
        r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*&?\s+"
        r"(\w+)\s*[;={,)]"
    )
    RAW_RANDOM = re.compile(
        r"\b(?:std::)?(?:s?rand\s*\(|random_device\b|mt19937(?:_64)?\b|"
        r"default_random_engine\b|minstd_rand0?\b|random_shuffle\b)"
    )
    POINTER_KEY = re.compile(
        r"\b(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"
    )
    POINTER_HASH = re.compile(r"\bhash\s*<[^<>]*\*\s*>")
    POINTER_TO_INT = re.compile(
        r"(?:reinterpret|static)_cast\s*<\s*(?:std::)?u?intptr_t\s*>"
    )
    STATIC_LOCAL = re.compile(
        r"^\s+static\s+(?!const\b|constexpr\b|consteval\b|constinit\b|"
        r"assert\b|_assert)"
    )
    #: A static member *function* (`static void relax() { ... }`) is not a
    #: function-local static; exempt declarator-shaped lines, including the
    #: zero-argument form that the `(`-in-declarator check below misses
    #: (it strips `()` to ignore call parens in initializers).
    STATIC_FN = re.compile(
        r"^\s+static\s+[\w:<>,&*\s]+\b\w+\s*\([^()]*\)\s*"
        r"(?:const\s*)?(?:noexcept\s*)?[;{]"
    )
    SPAN_MEMBER = re.compile(
        r"\bstd::span\s*<[^;]*>\s+\w+_\s*(?:;|=|\{)"
    )
    RECORD_RETAIN = re.compile(
        r"\w+_\s*=\s*record\s*;"  # member copy of the whole record
        r"|=\s*&\s*record\b"  # storing its address
        r"|\bStepRecord\s*\*\s*\w+_\s*(?:;|=)"  # record-pointer member
        r"|\bconst\s+StepRecord\s*&\s*\w+_\s*;"  # record-reference member
    )
    RECORD_SPAN_RETAIN = re.compile(
        r"\w+_\s*=\s*record\s*\.\s*(?:assignments|arrivals)\b"
    )
    # [Aa]tomic: covers std::atomic and the BasicPhaseBarrier-style policy
    # alias `Atomic<T>` (template parameter selecting real vs model shim).
    ATOMIC_DECL = re.compile(
        r"\b(?:std::)?[Aa]tomic\s*<[^;{}]*>\s*&?\s+(\w+)\s*[;={,)[]"
        r"|\b(?:std::)?atomic_flag\s+(\w+)\s*[;={,)[]"
    )
    # Member functions whose trailing memory_order argument defaults to
    # seq_cst; notify_one/notify_all take no order and are exempt.
    ATOMIC_ORDERED_METHODS = (
        "load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
        "fetch_xor|wait|test|test_and_set|clear|"
        "compare_exchange_weak|compare_exchange_strong"
    )
    VOLATILE = re.compile(r"\bvolatile\b")
    INLINE_ASM = re.compile(r"\basm\b|__asm")

    def lint(self) -> list[Finding]:
        routing = self.force or (
            self.routing_scope
            if self.routing_scope is not None
            else in_routing_scope(self.relpath)
        )
        raw_random = self.force or in_raw_random_scope(self.relpath)
        atomics = self.force or in_atomics_scope(self.relpath)
        has_on_step = any("on_step" in line for line in self.code_lines)

        unordered_names: set[str] = set()
        if routing:
            for line in self.code_lines:
                m = self.UNORDERED_NAME.search(line)
                if m:
                    unordered_names.add(m.group(1))
        unordered_iter = (
            re.compile(
                r"for\s*\([^;()]*:\s*(?:this->)?(?:"
                + "|".join(map(re.escape, sorted(unordered_names)))
                + r")\b"
                r"|\b(?:"
                + "|".join(map(re.escape, sorted(unordered_names)))
                + r")\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\("
            )
            if unordered_names
            else None
        )

        atomic_names: set[str] = set()
        atomic_decl_lines: set[int] = set()
        if atomics:
            for idx, line in enumerate(self.code_lines, start=1):
                for m in self.ATOMIC_DECL.finditer(line):
                    atomic_names.add(m.group(1) or m.group(2))
                    atomic_decl_lines.add(idx)
        names_alt = "|".join(map(re.escape, sorted(atomic_names)))
        atomic_call = (
            re.compile(
                rf"\b(?:{names_alt})\s*\.\s*"
                rf"(?:{self.ATOMIC_ORDERED_METHODS})\s*\("
            )
            if atomic_names
            else None
        )
        atomic_op = (
            re.compile(
                rf"(?:\+\+|--)\s*(?:{names_alt})\b"
                rf"|\b(?:{names_alt})\s*(?:\+\+|--)"
                rf"|\b(?:{names_alt})\s*(?:[-+*/%&|^]|<<|>>)="
                rf"|\b(?:{names_alt})\s*=(?!=)"
            )
            if atomic_names
            else None
        )

        # atomic-store-no-notify: the waited set is every declared atomic
        # this file parks on via `X.wait(...)`; mutations of those names must
        # be followed by a notify on the same name before their enclosing
        # block closes (brace-delta scan — the leave()-style
        # `if (fetch_sub(...) == 1) notify_one();` pattern stays in scope).
        waited_names: set[str] = set()
        if atomic_names:
            wait_use = re.compile(rf"\b({names_alt})\s*\.\s*wait\s*\(")
            for line in self.code_lines:
                for m in wait_use.finditer(line):
                    waited_names.add(m.group(1))
        waited_mutation = (
            re.compile(
                r"\b(" + "|".join(map(re.escape, sorted(waited_names))) + r")"
                r"\s*\.\s*(?:store|exchange|fetch_add|fetch_sub|fetch_and|"
                r"fetch_or|fetch_xor|compare_exchange_weak|"
                r"compare_exchange_strong)\s*\("
            )
            if waited_names
            else None
        )

        def notify_follows(lineno: int, name: str) -> bool:
            """True iff `name` is notified between line `lineno` (1-based,
            inclusive) and the close of the enclosing block."""
            notify = re.compile(
                rf"\b{re.escape(name)}\s*\.\s*notify_(?:one|all)\s*\("
            )
            depth = 0
            for j in range(lineno, len(self.code_lines) + 1):
                line = self.code_lines[j - 1]
                if notify.search(line):
                    return True
                depth += line.count("{") - line.count("}")
                if depth < 0:
                    return False
            return False

        def call_extent(lineno: int, open_col: int) -> str:
            """Text inside the (possibly multi-line) call starting at the
            '(' at (lineno, open_col), up to its matching ')'."""
            depth, out = 0, []
            for j in range(lineno - 1, min(lineno + 4, len(self.code_lines))):
                line = self.code_lines[j]
                for ch in line[open_col if j == lineno - 1 else 0 :]:
                    if ch == "(":
                        depth += 1
                    elif ch == ")":
                        depth -= 1
                        if depth == 0:
                            return "".join(out)
                    if depth >= 1:
                        out.append(ch)
            return "".join(out)

        for idx, line in enumerate(self.code_lines, start=1):
            if line.lstrip().startswith("#"):
                continue  # preprocessor: includes are not declarations
            if routing:
                if self.UNORDERED_DECL.search(line):
                    self.flag(idx, "unordered-member", line.strip()[:80])
                if unordered_iter and unordered_iter.search(line):
                    self.flag(idx, "unordered-iteration", line.strip()[:80])
                if re.search(
                    r"for\s*\([^;()]*:\s*[^()]*\bunordered_(?:map|set)", line
                ):
                    self.flag(idx, "unordered-iteration", line.strip()[:80])
                if (
                    self.POINTER_KEY.search(line)
                    or self.POINTER_HASH.search(line)
                    or self.POINTER_TO_INT.search(line)
                ):
                    self.flag(idx, "pointer-order", line.strip()[:80])
                if (
                    self.STATIC_LOCAL.search(line)
                    and not self.STATIC_FN.search(line)
                    and "(" not in line.split("=")[0].split(";")[0].replace("()", "")
                ):
                    self.flag(idx, "static-local", line.strip()[:80])
            if raw_random and self.RAW_RANDOM.search(line):
                self.flag(idx, "raw-random", line.strip()[:80])
            if atomics:
                if self.VOLATILE.search(line) and not self.INLINE_ASM.search(
                    line
                ):
                    self.flag(idx, "volatile-qualifier", line.strip()[:80])
                implicit = False
                if atomic_call:
                    for m in atomic_call.finditer(line):
                        if "memory_order" not in call_extent(idx, m.end() - 1):
                            implicit = True
                if (
                    not implicit
                    and atomic_op
                    and idx not in atomic_decl_lines
                    and atomic_op.search(line)
                ):
                    implicit = True
                if implicit:
                    self.flag(idx, "atomic-implicit-seqcst", line.strip()[:80])
                if waited_mutation:
                    for m in waited_mutation.finditer(line):
                        if not notify_follows(idx, m.group(1)):
                            self.flag(
                                idx,
                                "atomic-store-no-notify",
                                f"{m.group(1)}: " + line.strip()[:70],
                            )
            if has_on_step and (
                self.RECORD_SPAN_RETAIN.search(line)
                or self.RECORD_RETAIN.search(line)
                or self.SPAN_MEMBER.search(line)
            ):
                self.flag(idx, "span-retention", line.strip()[:80])

        # stale-allow: any allow annotation that suppressed nothing above,
        # restricted to rules actually in force for this file (an allow for
        # a routing rule in non-routing code is dormant, not stale).
        in_force: set[str] = set()
        if routing:
            in_force |= {
                "unordered-member",
                "unordered-iteration",
                "pointer-order",
                "static-local",
            }
        if raw_random:
            in_force.add("raw-random")
        if atomics:
            in_force |= {
                "atomic-implicit-seqcst",
                "volatile-qualifier",
                "atomic-store-no-notify",
            }
        if has_on_step:
            in_force.add("span-retention")
        for idx, raw in enumerate(self.raw_lines, start=1):
            m = ALLOW_RE.search(raw)
            if m and idx not in self.used_allows:
                rule = m.group(1)
                if rule in in_force or rule not in RULES:
                    self.findings.append(
                        Finding(self.relpath, idx, "stale-allow", f"allow({rule})")
                    )
        return self.findings


# -- optional clang engine ----------------------------------------------------
def clang_confirm_unordered_iteration(
    findings: list[Finding], root: pathlib.Path
) -> list[Finding]:
    """AST pass over unordered-iteration findings: keeps only those whose
    line really sits inside a range-for over an unordered container. Used
    when the libclang bindings are importable; otherwise the regex verdicts
    stand as-is."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return findings

    keep: list[Finding] = []
    other = [f for f in findings if f.rule != "unordered-iteration"]
    by_file: dict[str, list[Finding]] = {}
    for f in findings:
        if f.rule == "unordered-iteration":
            by_file.setdefault(f.path, []).append(f)

    index = cindex.Index.create()
    for relpath, file_findings in by_file.items():
        try:
            tu = index.parse(
                str(root / relpath), args=["-std=c++20", "-I", str(root / "src")]
            )
        except cindex.TranslationUnitLoadError:
            keep.extend(file_findings)  # cannot parse: trust the regex
            continue
        iter_lines: set[int] = set()
        def visit(node):  # noqa: ANN001
            if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                for child in node.get_children():
                    if "unordered_" in (child.type.spelling or ""):
                        iter_lines.add(node.location.line)
                        break
            for child in node.get_children():
                visit(child)
        visit(tu.cursor)
        keep.extend(f for f in file_findings if f.line in iter_lines)
    return other + keep


# -- driver -------------------------------------------------------------------
SCAN_DIRS = ("src", "bench", "examples", "tests")
EXTS = (".hpp", ".cpp", ".h", ".cc")


def iter_tree(root: pathlib.Path):
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in EXTS and p.is_file():
                yield p


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], prog="determinism_lint"
    )
    ap.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[2],
        help="repository root (default: two levels above this script)",
    )
    ap.add_argument(
        "files",
        nargs="*",
        type=pathlib.Path,
        help="lint only these files instead of the whole tree",
    )
    ap.add_argument(
        "--fixture-mode",
        action="store_true",
        help="treat the given files as routing-reachable and apply every "
        "rule regardless of path (used by the self-test corpus)",
    )
    ap.add_argument(
        "--engine",
        choices=("auto", "regex", "clang"),
        default="auto",
        help="auto = regex, plus AST confirmation when libclang imports",
    )
    ap.add_argument(
        "--reachable",
        type=pathlib.Path,
        default=None,
        help="routing_reachable.json to widen the routing scope with "
        f"(default: <root>/{REACHABLE_ARTIFACT}; the scope is always at "
        "least the src/sim + src/routing prefix floor)",
    )
    ap.add_argument(
        "--no-reachable",
        action="store_true",
        help="ignore the reachability artifact; prefix floor only",
    )
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, text in RULES.items():
            print(f"{rule}: {text}")
        return 0

    root = args.root.resolve()
    if args.files:
        paths = [p.resolve() for p in args.files]
    else:
        paths = list(iter_tree(root))
    if not paths:
        print("determinism_lint: nothing to scan", file=sys.stderr)
        return 2

    reachable: set[str] | None = None
    if not args.no_reachable and not args.fixture_mode:
        artifact = args.reachable or (root / REACHABLE_ARTIFACT)
        reachable = load_reachable_files(artifact)
        if reachable is None and args.reachable is not None:
            print(
                f"determinism_lint: cannot read reachability artifact "
                f"{artifact}",
                file=sys.stderr,
            )
            return 2

    findings: list[Finding] = []
    for path in paths:
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        routing = None
        if reachable is not None:
            routing = in_routing_scope(rel) or rel in reachable
        findings.extend(
            FileLinter(
                rel,
                text,
                force_all_rules=args.fixture_mode,
                routing_scope=routing,
            ).lint()
        )

    if args.engine in ("auto", "clang"):
        if args.engine == "clang":
            try:
                import clang.cindex  # type: ignore  # noqa: F401
            except ImportError:
                print(
                    "determinism_lint: --engine=clang but libclang bindings "
                    "are not importable",
                    file=sys.stderr,
                )
                return 2
        findings = clang_confirm_unordered_iteration(findings, root)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(
            f"determinism_lint: {len(findings)} finding(s); see "
            "docs/STATIC_ANALYSIS.md for the rules and the allow syntax",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
