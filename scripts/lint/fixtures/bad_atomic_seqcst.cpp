// Fixture: atomic operations that lean on the implicit seq_cst default.
// Every atomic op in shipped engine code must spell its std::memory_order
// so the synchronization protocol is reviewable (phase_barrier.hpp is the
// house style). Expected findings: atomic-implicit-seqcst (x7).
#include <atomic>
#include <cstdint>

namespace fixture {

class Pool {
 public:
  void publish(std::uint32_t tag) {
    // BAD: store() defaults to memory_order_seq_cst.
    tag_.store(tag);
    // BAD: fetch_add() defaults to memory_order_seq_cst.
    epoch_.fetch_add(2);
    // BAD: operator++ is a seq_cst read-modify-write.
    tickets_++;
    // BAD: so is the compound assignment form.
    epoch_ |= 1;
    // BAD: plain assignment is a seq_cst store in disguise.
    active_ = 0;
  }

  std::uint32_t poll() const {
    // BAD: load() defaults to memory_order_seq_cst.
    return tag_.load();
  }

  bool try_lock() {
    // BAD: test_and_set() defaults to memory_order_seq_cst.
    return !busy_.test_and_set();
  }

  std::uint64_t snapshot() const {
    // OK: explicit orders, including multi-line calls.
    return epoch_.load(std::memory_order_acquire) +
           tickets_.load(std::memory_order_relaxed);
  }

  void wake() {
    // OK: notify has no memory_order parameter.
    epoch_.notify_all();
    active_.notify_one();
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> tickets_{0};
  std::atomic<std::uint32_t> active_{0};
  std::atomic<std::uint32_t> tag_{0};
  std::atomic_flag busy_ = ATOMIC_FLAG_INIT;
};

}  // namespace fixture
