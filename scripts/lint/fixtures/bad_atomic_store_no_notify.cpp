// Fixture: mutations of waited-on atomics that never wake the sleepers.
// epoch_ and active_ are parked on via atomic::wait below, so every store/
// RMW to them must be followed by notify_one/notify_all before the
// enclosing block ends — a missed wakeup strands the parked thread (the
// lost-wakeup bug class tests/model/ model-checks the real barrier for).
// quiet_ is never waited on, so its bare stores are fine.
// Expected findings: atomic-store-no-notify (x3).
#include <atomic>
#include <cstdint>

namespace fixture {

class LostWakeups {
 public:
  std::uint64_t wait_open(std::uint64_t seen) {
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    while (e == seen) {
      epoch_.wait(e, std::memory_order_acquire);
      e = epoch_.load(std::memory_order_acquire);
    }
    return e;
  }

  void close() {
    std::uint32_t live = active_.load(std::memory_order_acquire);
    while (live != 0) {
      active_.wait(live, std::memory_order_acquire);
      live = active_.load(std::memory_order_acquire);
    }
  }

  void open_bad(std::uint32_t workers) {
    // BAD: close() can be parked on active_; this store never wakes it.
    active_.store(workers, std::memory_order_relaxed);
  }

  void publish_bad() {
    // BAD: wait_open() parks on epoch_; the bump is silent.
    epoch_.fetch_add(2, std::memory_order_release);
  }

  void leave_bad() {
    // BAD: the last leaver must notify the closer.
    active_.fetch_sub(1, std::memory_order_release);
  }

  void publish_good() {
    epoch_.fetch_add(2, std::memory_order_release);
    epoch_.notify_all();
  }

  void leave_good() {
    if (active_.fetch_sub(1, std::memory_order_release) == 1) {
      active_.notify_one();
    }
  }

  void untracked_ok() {
    quiet_.store(5, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> active_{0};
  std::atomic<std::uint32_t> quiet_{0};
};

}  // namespace fixture
