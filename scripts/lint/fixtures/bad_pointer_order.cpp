// Fixture: ordering or hashing by pointer value. Allocation addresses vary
// run to run, so any pointer-keyed order leaks nondeterminism into results.
// Expected findings: pointer-order (x3).
#include <cstdint>
#include <functional>
#include <map>
#include <set>

namespace fixture {

struct Packet {
  int id;
};

struct Registry {
  // BAD: std::set orders by pointer value.
  std::set<const Packet*> live_;
  // BAD: pointer-keyed map, same problem.
  std::map<Packet*, int> rank_;
};

inline std::size_t key_of(const Packet* p) {
  // BAD: pointer cast to integer — address-dependent value.
  return static_cast<std::size_t>(reinterpret_cast<std::uintptr_t>(p));
}

}  // namespace fixture
