// Fixture: raw randomness outside src/util/rng.*. Every draw must come from
// the engine's per-(seed, step, node) streams to keep runs replayable.
// Expected findings: raw-random (x3).
#include <cstdlib>
#include <random>

namespace fixture {

inline int roll_dice() {
  // BAD: std::rand is global mutable state with unspecified sequences.
  return std::rand() % 6;
}

inline unsigned seed_from_entropy() {
  // BAD: random_device is non-reproducible by design.
  std::random_device rd;
  return rd();
}

inline int shuffle_seed() {
  // BAD: private engine bypasses the repo's seed discipline.
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

}  // namespace fixture
