// Fixture: a StepObserver::on_step override that stores the record's spans.
// The spans alias the engine's per-step scratch buffers and die with the
// call (sim/observer.hpp) — observers must copy what they keep.
// Expected findings: span-retention (x3).
#include <cstdint>
#include <span>

namespace fixture {

struct Assignment {
  std::uint64_t pkt;
};
struct Packet {
  std::uint64_t id;
};
struct StepRecord {
  std::uint64_t step;
  std::span<const Assignment> assignments;
  std::span<const Packet> arrivals;
};
struct Engine {};

class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(const Engine& engine, const StepRecord& record) = 0;
};

class LeakyObserver final : public StepObserver {
 public:
  void on_step(const Engine& /*engine*/, const StepRecord& record) override {
    // BAD: the span dangles as soon as on_step returns.
    last_assignments_ = record.assignments;
    // BAD: whole-record member copy smuggles both spans out.
    last_record_ = record;
    last_step_ = record.step;  // OK: scalar copy.
  }

 private:
  // BAD: span member in an observer is retention by construction.
  std::span<const Assignment> last_assignments_;
  StepRecord last_record_;
  std::uint64_t last_step_ = 0;
};

}  // namespace fixture
