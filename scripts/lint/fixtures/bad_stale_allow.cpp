// Fixture: allow annotations that no longer suppress anything. The first
// survived a refactor that removed the container it excused; the second
// names a rule that does not exist. A live allow (which suppresses a real
// finding) must NOT be reported. Expected findings: stale-allow (x2).
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

class Tracker {
 public:
  std::size_t seen() const { return seen_.size(); }

 private:
  // BAD(stale): the unordered_map this excused became a sorted vector.
  // hp-lint: allow(unordered-member) digest-keyed, never iterated
  std::vector<std::uint64_t> seen_;

  // BAD(stale): no such rule; this can never suppress anything.
  // hp-lint: allow(unordered-chaos) keys are commutative digests
  std::uint32_t salt_ = 0;

  // OK(live): annotation still sits on a real unordered member.
  // hp-lint: allow(unordered-member) lookup/insert only, never iterated
  std::unordered_map<std::uint64_t, std::uint64_t> index_;
};

}  // namespace fixture
