// Fixture: mutable function-local statics in policy code. Hidden cross-call
// state makes a node's routing decision depend on global execution history,
// breaking both replayability and the sharded-routing purity argument.
// Expected findings: static-local (x2).
#include <cstdint>

namespace fixture {

inline int next_tiebreak() {
  // BAD: mutates across calls; order of calls differs across shardings.
  static int counter = 0;
  return counter++;
}

inline std::uint64_t remembered_step() {
  // BAD: same problem, thread_local flavor.
  static thread_local std::uint64_t last_step = 0;
  return ++last_step;
}

// OK: immutable statics carry no cross-call state.
inline int table_lookup(int i) {
  static constexpr int kTable[4] = {1, 2, 3, 4};
  return kTable[i & 3];
}

}  // namespace fixture
