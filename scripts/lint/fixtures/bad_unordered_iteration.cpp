// Fixture: iterating an unordered container whose *declaration* is
// legitimately allowlisted. The iteration is still a finding — the allow
// covers the member's existence, not walking it in unspecified order.
// Expected findings: unordered-iteration (x3), plus unordered-member (x1)
// for the unannotated parameter of drain().
#include <cstdint>
#include <unordered_map>

namespace fixture {

class Digest {
 public:
  std::uint64_t sum() const {
    std::uint64_t total = 0;
    // BAD: range-for over an unordered map; order is unspecified.
    for (const auto& kv : seen_) total += kv.second;
    return total;
  }

  std::uint64_t first() const {
    // BAD: begin() on an unordered map picks an arbitrary bucket.
    return seen_.begin()->second;
  }

 private:
  // hp-lint: allow(unordered-member) fixture: pretend this map is only used
  // through order-independent lookups (the iterations above violate that).
  std::unordered_map<std::uint64_t, std::uint64_t> seen_;
};

inline std::uint64_t drain(const std::unordered_map<int, int>& m) {
  std::uint64_t total = 0;
  // BAD: iterating a parameter of unordered type.
  for (const auto& kv : m) {
    total += static_cast<std::uint64_t>(kv.second);
  }
  return total;
}

}  // namespace fixture
