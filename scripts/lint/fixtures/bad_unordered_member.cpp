// Fixture: unordered containers in routing-reachable code without an allow
// annotation. Expected findings: unordered-member (x3 — one of them via a
// reasonless allow, which must not suppress).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Tracker {
  // BAD: no annotation at all.
  std::unordered_map<std::uint64_t, int> counts_;

  // BAD: annotation present but the mandatory reason is missing.
  std::unordered_set<std::uint64_t> ids_;  // hp-lint: allow(unordered-member)
};

// BAD: local variable, still unordered in routing scope.
inline int count_distinct(const int* v, int n) {
  std::unordered_set<int> seen;
  for (int i = 0; i < n; ++i) seen.insert(v[i]);
  return static_cast<int>(seen.size());
}

}  // namespace fixture
