// Fixture: volatile used as a (non-)synchronization primitive. volatile
// suppresses compiler reordering only — it is neither atomic nor ordered —
// so engine code must use std::atomic with an explicit memory_order.
// Expected findings: volatile-qualifier (x2).
#include <cstdint>

namespace fixture {

class Flags {
 public:
  void raise() { ready_ = true; }

  std::uint32_t spins() const {
    // OK: inline asm "volatile" is an asm qualifier, not the type
    // qualifier this rule polices (cf. cpu_relax in phase_barrier.hpp).
    asm volatile("" ::: "memory");
    return count_;
  }

 private:
  // BAD: volatile member posing as a cross-thread flag.
  volatile bool ready_ = false;
  // BAD: volatile local-ish counter; same story.
  volatile std::uint32_t count_ = 0;
};

}  // namespace fixture
