// Fixture: the livelock-detector shape — an unordered map used strictly
// through order-independent operations, carrying a properly reasoned allow
// annotation. Also exercises the benign look-alikes each rule must NOT
// flag. Expected findings: none.
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Assignment {
  std::uint64_t pkt;
};
struct Packet {
  std::uint64_t id;
};
struct StepRecord {
  std::uint64_t step;
  std::span<const Assignment> assignments;
  std::span<const Packet> arrivals;
};
struct Engine {};

class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(const Engine& engine, const StepRecord& record) = 0;
};

/// The commutative-hash discipline: the map is fed by an order-independent
/// digest and consumed by lookup/insert/size only — never iterated.
class Detector {
 public:
  std::uint64_t record(std::uint64_t digest, std::uint64_t step) {
    auto [it, inserted] = seen_.try_emplace(digest, step);
    return inserted ? kNoRepeat : it->second;
  }
  std::size_t states_seen() const { return seen_.size(); }
  static constexpr std::uint64_t kNoRepeat = ~std::uint64_t{0};

 private:
  // hp-lint: allow(unordered-member) lookup/insert only, never iterated;
  // keys are commutative digests so no result depends on bucket order.
  std::unordered_map<std::uint64_t, std::uint64_t> seen_;
};

/// An observer that copies what it keeps: scalars and explicit vectors.
class CopyingObserver final : public StepObserver {
 public:
  void on_step(const Engine& /*engine*/, const StepRecord& record) override {
    last_step_ = record.step;  // scalar copy: fine
    arrivals_seen_ += record.arrivals.size();
    for (const Assignment& a : record.assignments) {  // transient walk: fine
      ids_.push_back(a.pkt);  // element-wise copy: fine
    }
  }

 private:
  std::uint64_t last_step_ = 0;
  std::size_t arrivals_seen_ = 0;
  std::vector<std::uint64_t> ids_;
};

/// Benign look-alikes: ordered set of values, rng-free "rand"-ish names,
/// pointer *storage* (not ordering), constexpr local table.
inline int strand_count(const std::vector<int>& strands) {
  static constexpr int kBias = 1;
  std::vector<const int*> ptrs;  // storing pointers is fine
  for (const int& s : strands) ptrs.push_back(&s);
  return static_cast<int>(ptrs.size()) + kBias;
}

}  // namespace fixture
