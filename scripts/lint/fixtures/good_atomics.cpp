// Fixture: the phase_barrier.hpp atomics discipline in miniature — every
// atomic operation spells its memory_order, notify/wait pair correctly,
// and the one excused construct carries a reasoned allow annotation.
// Expected findings: none.
#include <atomic>
#include <cstdint>

namespace fixture {

class Epoch {
 public:
  void open(std::uint32_t tasks) {
    tickets_.store(0, std::memory_order_relaxed);
    num_tasks_.store(tasks, std::memory_order_relaxed);
    epoch_.fetch_add(2, std::memory_order_release);
    epoch_.notify_all();
  }

  std::uint32_t next_ticket() {
    const std::uint32_t t = tickets_.fetch_add(1, std::memory_order_relaxed);
    return t < num_tasks_.load(std::memory_order_relaxed) ? t : ~0u;
  }

  std::uint64_t wait_past(std::uint64_t seen) {
    std::uint64_t raw = epoch_.load(std::memory_order_acquire);
    while (raw == seen) {
      epoch_.wait(raw, std::memory_order_acquire);
      raw = epoch_.load(std::memory_order_acquire);
    }
    return raw;
  }

  bool try_claim() {
    // hp-lint: allow(atomic-implicit-seqcst) one-shot latch on the cold
    // shutdown path; seq_cst keeps it trivially correct and unordered
    // with nothing.
    return !claimed_.test_and_set();
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> tickets_{0};
  std::atomic<std::uint32_t> num_tasks_{0};
  std::atomic_flag claimed_ = ATOMIC_FLAG_INIT;
};

}  // namespace fixture
