#!/usr/bin/env python3
"""Self-tests for the determinism lint: every known-bad fixture must be
flagged with exactly the expected rule counts, every good fixture must pass,
and the allow-annotation machinery must behave (reason mandatory, comment
blocks scanned upward). Runs on the Python standard library alone so it
works in containers without pytest; ctest registers it as
`determinism_lint_selftest`."""

from __future__ import annotations

import collections
import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import determinism_lint  # noqa: E402

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

# fixture file -> expected {rule: count}. A bad fixture's expectation is the
# full census: any extra or missing finding is a regression in the lint.
EXPECTED = {
    "bad_unordered_member.cpp": {"unordered-member": 3},
    "bad_unordered_iteration.cpp": {
        "unordered-iteration": 3,
        "unordered-member": 1,
    },
    "bad_rand.cpp": {"raw-random": 3},
    "bad_pointer_order.cpp": {"pointer-order": 3},
    "bad_static_local.cpp": {"static-local": 2},
    "bad_span_retention.cpp": {"span-retention": 3},
    "bad_atomic_seqcst.cpp": {"atomic-implicit-seqcst": 7},
    "bad_atomic_store_no_notify.cpp": {"atomic-store-no-notify": 3},
    "bad_volatile.cpp": {"volatile-qualifier": 2},
    "bad_stale_allow.cpp": {"stale-allow": 2},
    "good_allowlisted.cpp": {},
    "good_atomics.cpp": {},
}


def lint_fixture(name: str) -> list[determinism_lint.Finding]:
    path = FIXTURES / name
    linter = determinism_lint.FileLinter(
        name, path.read_text(encoding="utf-8"), force_all_rules=True
    )
    return linter.lint()


class FixtureCorpus(unittest.TestCase):
    def test_fixture_census(self) -> None:
        for name, expected in EXPECTED.items():
            with self.subTest(fixture=name):
                findings = lint_fixture(name)
                census = collections.Counter(f.rule for f in findings)
                self.assertEqual(
                    dict(census),
                    expected,
                    msg="\n".join(str(f) for f in findings) or "(no findings)",
                )

    def test_every_rule_has_a_bad_fixture(self) -> None:
        covered = set()
        for expected in EXPECTED.values():
            covered.update(expected)
        self.assertEqual(covered, set(determinism_lint.RULES))

    def test_cli_exits_nonzero_on_bad_fixture(self) -> None:
        for name, expected in EXPECTED.items():
            with self.subTest(fixture=name):
                rc = determinism_lint.main(
                    ["--engine", "regex", "--fixture-mode", str(FIXTURES / name)]
                )
                self.assertEqual(rc, 1 if expected else 0)


class AllowAnnotations(unittest.TestCase):
    def lint_text(self, text: str) -> list[determinism_lint.Finding]:
        return determinism_lint.FileLinter(
            "inline.cpp", text, force_all_rules=True
        ).lint()

    def test_allow_with_reason_suppresses(self) -> None:
        text = (
            "// hp-lint: allow(unordered-member) digest-keyed, never iterated\n"
            "std::unordered_map<int, int> seen_;\n"
        )
        self.assertEqual(self.lint_text(text), [])

    def test_allow_scans_comment_block_upward(self) -> None:
        text = (
            "// hp-lint: allow(unordered-member) digest-keyed, never iterated;\n"
            "// continuation line of the rationale, still one comment block\n"
            "std::unordered_map<int, int> seen_;\n"
        )
        self.assertEqual(self.lint_text(text), [])

    def test_allow_without_reason_is_a_finding(self) -> None:
        text = "std::unordered_map<int, int> m_;  // hp-lint: allow(unordered-member)\n"
        findings = self.lint_text(text)
        self.assertEqual(len(findings), 1)
        self.assertIn("missing its reason", findings[0].detail)

    def test_allow_for_wrong_rule_does_not_suppress(self) -> None:
        text = (
            "// hp-lint: allow(raw-random) wrong rule entirely\n"
            "std::unordered_map<int, int> m_;\n"
        )
        findings = self.lint_text(text)
        # The member is still flagged, and the mismatched allow — which now
        # suppresses nothing — is reported stale.
        self.assertEqual(
            [f.rule for f in findings], ["unordered-member", "stale-allow"]
        )

    def test_atomic_allow_with_reason_suppresses(self) -> None:
        text = (
            "std::atomic<int> hits_{0};\n"
            "// hp-lint: allow(atomic-implicit-seqcst) cold path, seq_cst fine\n"
            "void bump() { hits_.fetch_add(1); }\n"
        )
        self.assertEqual(self.lint_text(text), [])

    def test_store_no_notify_allow_suppresses(self) -> None:
        text = (
            "std::atomic<int> gate_{0};\n"
            "void block() { gate_.wait(0, std::memory_order_acquire); }\n"
            "// hp-lint: allow(atomic-store-no-notify) caller notifies after\n"
            "// batching several gates; see flush_gates()\n"
            "void arm() { gate_.store(1, std::memory_order_release); }\n"
        )
        self.assertEqual(self.lint_text(text), [])

    def test_policy_alias_atomic_is_tracked(self) -> None:
        # The BasicPhaseBarrier style: Atomic<T> is a Sync-policy alias for
        # std::atomic<T>; waited-on members must still pair mutations with
        # notifies.
        text = (
            "Atomic<std::uint64_t> epoch_{0};\n"
            "void park() { epoch_.wait(0, std::memory_order_acquire); }\n"
            "void bump() { epoch_.fetch_add(2, std::memory_order_release); }\n"
        )
        findings = self.lint_text(text)
        self.assertEqual([f.rule for f in findings], ["atomic-store-no-notify"])

    def test_explicit_order_is_clean(self) -> None:
        text = (
            "std::atomic<int> hits_{0};\n"
            "void bump() { hits_.fetch_add(1, std::memory_order_relaxed); }\n"
        )
        self.assertEqual(self.lint_text(text), [])

    def test_comment_contents_are_not_code(self) -> None:
        text = (
            "// for (auto& kv : seen_) { std::rand(); }\n"
            "/* std::unordered_map<int, int> ghost_; */\n"
            'const char* s = "std::random_device in a string";\n'
        )
        self.assertEqual(self.lint_text(text), [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
