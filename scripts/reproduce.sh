#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, then every
# experiment harness, teeing outputs to test_output.txt / bench_output.txt.
#
# -e (with pipefail) makes every stage gating: a failing build, a failing
# ctest run, or a crashing bench harness aborts the script with a nonzero
# exit instead of silently reporting success at the end.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  cat <<'EOF'
usage: scripts/reproduce.sh [--dry-run] [--help]

Builds the tree, runs the full ctest suite, then every bench harness,
teeing outputs to test_output.txt / bench_output.txt. Any failure aborts
with a nonzero exit.

  -n, --dry-run  print the stages without executing anything
  -h, --help     show this message
EOF
}

DRY=0
for arg in "$@"; do
  case "$arg" in
    -n|--dry-run) DRY=1 ;;
    -h|--help) usage; exit 0 ;;
    *) echo "unknown option: $arg" >&2; usage >&2; exit 2 ;;
  esac
done

if [ "$DRY" = 1 ]; then
  echo "would run: cmake -B build -G Ninja"
  echo "would run: cmake --build build"
  echo "would run: ctest --test-dir build  (tee test_output.txt)"
  echo "would run: build/bench/*           (tee bench_output.txt)"
  exit 0
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "done — see test_output.txt and bench_output.txt"
