#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, then every
# experiment harness, teeing outputs to test_output.txt / bench_output.txt.
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "done — see test_output.txt and bench_output.txt"
