#!/usr/bin/env bash
# Single local entry point for the static-analysis layers
# (docs/STATIC_ANALYSIS.md):
#
#   1. whole-program analyzer — scripts/analysis/ self-tests, then the
#      layering gate and the routing_reachable.json freshness check
#   2. determinism lint  — scripts/lint/ self-tests, then the live tree
#      (scope = prefix floor ∪ the reachability artifact)
#   3. strict warnings   — HP_STRICT build (-Werror) in build-strict/
#   4. thread safety     — fixture census + clang -Wthread-safety -Werror
#      build in build-tsafety/ (clang-only)
#   5. clang-tidy        — over build-strict/compile_commands.json
#
# plus a clang-format check when the binary exists. Layers whose tool is not
# installed are SKIPPED with a notice (the container bakes in gcc + python3
# only; CI runs every layer). Any executed layer failing fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  cat <<'EOF'
usage: scripts/run_static_analysis.sh [--quick] [--no-tidy] [--help]

  --quick    analyzer + lints + format check only (no builds, no tidy)
  --no-tidy  skip the clang-tidy layer even if clang-tidy is installed
  --help     show this message
EOF
}

QUICK=0
NO_TIDY=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --no-tidy) NO_TIDY=1 ;;
    -h|--help) usage; exit 0 ;;
    *) echo "unknown option: $arg" >&2; usage >&2; exit 2 ;;
  esac
done

failures=0
layer() { echo; echo "=== $* ==="; }

# --- cheapest and most repo-specific layers first ---------------------------
layer "whole-program analyzer: fixture self-tests"
python3 scripts/analysis/test_callgraph.py || failures=$((failures + 1))

layer "layering gate (declared DAG over the include graph)"
python3 scripts/analysis/callgraph.py layering || failures=$((failures + 1))

layer "routing_reachable.json freshness"
python3 scripts/analysis/callgraph.py reachable --check \
  || failures=$((failures + 1))

layer "determinism lint: fixture self-tests"
python3 scripts/lint/test_determinism_lint.py || failures=$((failures + 1))

layer "determinism lint: live tree (call-graph-scoped)"
python3 scripts/lint/determinism_lint.py --root . || failures=$((failures + 1))

layer "bench_compare: self-test"
python3 scripts/bench_compare.py --self-test || failures=$((failures + 1))

# --- format check (satellite): check-only, never reformats ------------------
layer "clang-format check"
if command -v clang-format >/dev/null 2>&1; then
  git ls-files '*.hpp' '*.cpp' | xargs clang-format --dry-run -Werror \
    || failures=$((failures + 1))
else
  echo "SKIPPED: clang-format not installed"
fi

if [ "$QUICK" = 1 ]; then
  [ "$failures" = 0 ] || { echo; echo "static analysis: $failures layer(s) failed"; exit 1; }
  echo; echo "static analysis (quick): all executed layers clean"
  exit 0
fi

# --- layer 2: strict warnings as errors -------------------------------------
layer "strict warnings (HP_STRICT=ON, -Werror)"
mkdir -p build-strict
cmake -B build-strict -S . -DHP_STRICT=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  > build-strict/configure.log 2>&1 \
  || { cat build-strict/configure.log; failures=$((failures + 1)); }
cmake --build build-strict -j "$(nproc)" || failures=$((failures + 1))

# --- thread-safety: fixtures + whole-tree clang build -----------------------
layer "thread safety (-Wthread-safety -Werror, clang-only)"
python3 scripts/analysis/test_thread_safety.py || failures=$((failures + 1))
if command -v clang++ >/dev/null 2>&1; then
  mkdir -p build-tsafety
  cmake -B build-tsafety -S . -DHP_THREAD_SAFETY=ON \
    -DCMAKE_CXX_COMPILER=clang++ \
    > build-tsafety/configure.log 2>&1 \
    || { cat build-tsafety/configure.log; failures=$((failures + 1)); }
  cmake --build build-tsafety -j "$(nproc)" || failures=$((failures + 1))
else
  echo "SKIPPED: whole-tree thread-safety build needs clang++"
fi

# --- clang-tidy over the exported compilation database ----------------------
layer "clang-tidy"
if [ "$NO_TIDY" = 1 ]; then
  echo "SKIPPED: --no-tidy"
elif command -v clang-tidy >/dev/null 2>&1; then
  clang-tidy --verify-config || failures=$((failures + 1))
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p build-strict \
      "$(pwd)/src/" "$(pwd)/bench/" "$(pwd)/examples/" "$(pwd)/tests/" \
      || failures=$((failures + 1))
  else
    git ls-files 'src/*.cpp' 'bench/*.cpp' 'examples/*.cpp' 'tests/*.cpp' \
      | xargs -P "$(nproc)" -n 1 clang-tidy -quiet -p build-strict \
      || failures=$((failures + 1))
  fi
else
  echo "SKIPPED: clang-tidy not installed"
fi

echo
if [ "$failures" != 0 ]; then
  echo "static analysis: $failures layer(s) failed"
  exit 1
fi
echo "static analysis: all executed layers clean"
