#!/usr/bin/env bash
# Single local entry point for the static-analysis layers
# (docs/STATIC_ANALYSIS.md):
#
#   1. whole-program analyzer — scripts/analysis/ self-tests, then the
#      layering gate and the routing_reachable.json freshness check
#   2. determinism lint  — scripts/lint/ self-tests, then the live tree
#      (scope = prefix floor ∪ the reachability artifact); includes the
#      atomics-discipline rules (implicit seq_cst, volatile,
#      store-without-notify on waited atomics)
#   3. strict warnings   — HP_STRICT build (-Werror) in build-strict/
#   4. thread safety     — fixture census + clang -Wthread-safety -Werror
#      build in build-tsafety/ (clang-only)
#   5. clang-tidy        — over build-strict/compile_commands.json
#   6. phase effects     — scripts/analysis/phase_effects.py self-tests,
#      live-engine contract check, and phase_effects.json freshness
#   7. atomics fixtures  — exercised inside the layer-2 self-tests; listed
#      here because docs/STATIC_ANALYSIS.md numbers them separately
#   8. model checker     — exhaustive bounded-schedule exploration of
#      BasicPhaseBarrier<ModelSync> plus the buggy-protocol fixture corpus
#      (tests/model/, built by the strict build)
#
# plus a clang-format check when the binary exists. Layers whose tool is not
# installed are SKIPPED with a notice (the container bakes in gcc + python3
# only; CI runs every layer). Any executed layer failing fails the script,
# the summary lists the failed layers by name, and every executed layer
# reports its wall-clock seconds in the summary timing table.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  cat <<'EOF'
usage: scripts/run_static_analysis.sh [--quick] [--no-tidy] [--help]

  --quick    analyzers + lints + freshness + format check only
             (no builds, no tidy)
  --no-tidy  skip the clang-tidy layer even if clang-tidy is installed
  --help     show this message
EOF
}

QUICK=0
NO_TIDY=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --no-tidy) NO_TIDY=1 ;;
    -h|--help) usage; exit 0 ;;
    *) echo "unknown option: $arg" >&2; usage >&2; exit 2 ;;
  esac
done

failures=0
FAILED=()
CURRENT=""
LAYER_NAMES=()
LAYER_SECS=()
LAYER_START=0
close_layer() {
  if [ -n "$CURRENT" ]; then
    LAYER_NAMES+=("$CURRENT")
    LAYER_SECS+=("$(( $(date +%s) - LAYER_START ))")
  fi
}
layer() {
  close_layer
  echo; echo "=== $* ==="
  CURRENT="$*"
  LAYER_START=$(date +%s)
}
fail_layer() {
  failures=$((failures + 1))
  # A layer with several commands is listed once.
  if [ "${#FAILED[@]}" = 0 ] \
    || [ "${FAILED[$((${#FAILED[@]} - 1))]}" != "$CURRENT" ]; then
    FAILED+=("$CURRENT")
  fi
}
summary() {
  close_layer
  echo
  echo "layer timings:"
  for i in "${!LAYER_NAMES[@]}"; do
    printf '  %5ss  %s\n' "${LAYER_SECS[$i]}" "${LAYER_NAMES[$i]}"
  done
  echo
  if [ "$failures" != 0 ]; then
    echo "static analysis: ${#FAILED[@]} layer(s) failed:"
    for name in "${FAILED[@]}"; do
      echo "  FAILED: $name"
    done
    exit 1
  fi
  echo "static analysis$1: all executed layers clean"
}

# --- cheapest and most repo-specific layers first ---------------------------
layer "whole-program analyzer: fixture self-tests"
python3 scripts/analysis/test_callgraph.py || fail_layer

layer "layering gate (declared DAG over the include graph)"
python3 scripts/analysis/callgraph.py layering || fail_layer

layer "routing_reachable.json freshness"
python3 scripts/analysis/callgraph.py reachable --check || fail_layer

layer "determinism lint: fixture self-tests"
python3 scripts/lint/test_determinism_lint.py || fail_layer

layer "determinism lint: live tree (call-graph-scoped)"
python3 scripts/lint/determinism_lint.py --root . || fail_layer

layer "phase-effects analyzer: fixture self-tests"
python3 scripts/analysis/test_phase_effects.py || fail_layer

layer "phase-effects contracts: live engine"
python3 scripts/analysis/phase_effects.py check || fail_layer

layer "phase_effects.json freshness"
python3 scripts/analysis/phase_effects.py artifact --check || fail_layer

layer "bench_compare: self-test"
python3 scripts/bench_compare.py --self-test || fail_layer

# --- format check (satellite): check-only, never reformats ------------------
layer "clang-format check"
if command -v clang-format >/dev/null 2>&1; then
  git ls-files '*.hpp' '*.cpp' | xargs clang-format --dry-run -Werror \
    || fail_layer
else
  echo "SKIPPED: clang-format not installed"
fi

if [ "$QUICK" = 1 ]; then
  summary " (quick)"
  exit 0
fi

# --- layer 2: strict warnings as errors -------------------------------------
layer "strict warnings (HP_STRICT=ON, -Werror)"
mkdir -p build-strict
cmake -B build-strict -S . -DHP_STRICT=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  > build-strict/configure.log 2>&1 \
  || { cat build-strict/configure.log; fail_layer; }
cmake --build build-strict -j "$(nproc)" || fail_layer

# --- layer 8: concurrency model checker --------------------------------------
# Exhaustive bounded exploration is deterministic and finite, but cap the
# wall time anyway so a state-space regression fails loudly instead of
# wedging the run. The binaries come out of the strict build above.
layer "model checker (bounded exhaustive schedules, tests/model/)"
MODEL_BIN_DIR=build-strict/tests/model
if [ -x "$MODEL_BIN_DIR/model_fixtures_test" ] \
  && [ -x "$MODEL_BIN_DIR/model_barrier_test" ]; then
  timeout 900 "$MODEL_BIN_DIR/model_fixtures_test" || fail_layer
  timeout 900 "$MODEL_BIN_DIR/model_barrier_test" || fail_layer
else
  echo "model test binaries missing from $MODEL_BIN_DIR (strict build broken?)"
  fail_layer
fi

# --- thread-safety: fixtures + whole-tree clang build -----------------------
layer "thread safety (-Wthread-safety -Werror, clang-only)"
python3 scripts/analysis/test_thread_safety.py || fail_layer
if command -v clang++ >/dev/null 2>&1; then
  mkdir -p build-tsafety
  cmake -B build-tsafety -S . -DHP_THREAD_SAFETY=ON \
    -DCMAKE_CXX_COMPILER=clang++ \
    > build-tsafety/configure.log 2>&1 \
    || { cat build-tsafety/configure.log; fail_layer; }
  cmake --build build-tsafety -j "$(nproc)" || fail_layer
else
  echo "SKIPPED: whole-tree thread-safety build needs clang++"
fi

# --- clang-tidy over the exported compilation database ----------------------
layer "clang-tidy"
if [ "$NO_TIDY" = 1 ]; then
  echo "SKIPPED: --no-tidy"
elif command -v clang-tidy >/dev/null 2>&1; then
  clang-tidy --verify-config || fail_layer
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p build-strict \
      "$(pwd)/src/" "$(pwd)/bench/" "$(pwd)/examples/" "$(pwd)/tests/" \
      || fail_layer
  else
    git ls-files 'src/*.cpp' 'bench/*.cpp' 'examples/*.cpp' 'tests/*.cpp' \
      | xargs -P "$(nproc)" -n 1 clang-tidy -quiet -p build-strict \
      || fail_layer
  fi
else
  echo "SKIPPED: clang-tidy not installed"
fi

summary ""
