#!/usr/bin/env python3
"""Saturation-sweep driver: fan bench_sweep cells out in parallel and
aggregate the per-cell JSON back into one committed artifact.

The C++ side (bench/bench_sweep.cpp) measures one grid cell at a time:
`bench_sweep --cell POLICY:PATTERN:PARETO --out cell.json` probes the
cell's saturation point with the closed-loop admission controller and
measures its offered-load curve. Cells are independent simulations, so
this driver runs them concurrently (each bench process is single-job),
then merges the per-cell files into the BENCH_sweep.json layout that
scripts/bench_compare.py gates.

Subcommands:
  run      fan out cells in parallel, merge into --out
             sweep.py run --bench build/bench/bench_sweep \\
                 [--cells restricted:uniform:0,...] [--jobs N] --out X.json
  merge    merge per-cell JSON files (duplicate entries are an error)
             sweep.py merge --out merged.json cell1.json cell2.json ...
  check    verify an artifact covers the full committed grid
             sweep.py check BENCH_sweep.json
  extract  print (and optionally CSV-dump) the per-cell saturation points
             sweep.py extract BENCH_sweep.json [--csv points.csv]

Exit: 0 = ok, 1 = failed cells / missing coverage / merge conflict,
2 = usage error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import pathlib
import subprocess
import sys
import tempfile

SCHEMA = "hotpotato-bench-sweep-v1"

# The committed grid — must match full_grid() in bench/bench_sweep.cpp.
POLICIES = ("restricted", "greedy-random")
PATTERNS = ("uniform", "hotspot", "transpose", "bit-reversal")
LOAD_FRACTIONS = tuple(range(10, 101, 10))


def full_grid() -> list[str]:
    return [
        f"{policy}:{pattern}:{pareto}"
        for policy in POLICIES
        for pattern in PATTERNS
        for pareto in (0, 1)
    ]


def cell_key(cell: str) -> str:
    """Entry-name prefix of one cell id (bench_sweep's Cell::key)."""
    policy, pattern, pareto = cell.split(":")
    pattern = "bitrev" if pattern == "bit-reversal" else pattern
    return f"{policy}_{pattern}_p{pareto}"


def expected_entries(cells: list[str]) -> set[str]:
    names: set[str] = set()
    for cell in cells:
        key = cell_key(cell)
        names.add(f"{key}_saturation")
        names.update(f"{key}_load{f:03d}" for f in LOAD_FRACTIONS)
    return names


def load(path: pathlib.Path) -> dict:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"sweep: cannot read {path}: {e}")
    if data.get("schema") != SCHEMA:
        raise SystemExit(
            f"sweep: {path} has schema {data.get('schema')!r}, want {SCHEMA}"
        )
    if not isinstance(data.get("entries"), dict):
        raise SystemExit(f"sweep: {path} has no entries object")
    return data


def merge(paths: list[pathlib.Path]) -> tuple[dict, list[str]]:
    """Merges per-cell artifacts; a name appearing in two inputs is a
    conflict (the same cell ran twice), not a silent overwrite."""
    merged: dict = {"schema": SCHEMA, "entries": {}}
    problems: list[str] = []
    for path in paths:
        for name, metrics in load(path).get("entries", {}).items():
            if name in merged["entries"]:
                problems.append(f"duplicate entry {name} (again in {path})")
                continue
            merged["entries"][name] = metrics
    return merged, problems


def check_coverage(data: dict, cells: list[str]) -> list[str]:
    """Missing-cell detection: every expected entry of every cell must be
    present. A cell whose probe found a dead system legitimately has no
    load entries — but then its _saturation entry must say so."""
    problems: list[str] = []
    entries = data["entries"]
    for cell in cells:
        key = cell_key(cell)
        sat = entries.get(f"{key}_saturation")
        if sat is None:
            problems.append(f"{cell}: missing {key}_saturation")
            continue
        if sat.get("saturation_rate", 0) <= 0:
            continue  # dead cell: curve legitimately absent
        for f in LOAD_FRACTIONS:
            if f"{key}_load{f:03d}" not in entries:
                problems.append(f"{cell}: missing {key}_load{f:03d}")
    return problems


def extract_points(data: dict) -> list[dict]:
    """The per-cell saturation summary, sorted by cell key."""
    points = []
    for name, metrics in sorted(data["entries"].items()):
        if not name.endswith("_saturation"):
            continue
        points.append(
            {
                "cell": name[: -len("_saturation")],
                "saturation_rate": metrics.get("saturation_rate", 0.0),
                "throughput": metrics.get("throughput", 0.0),
                "mean_latency": metrics.get("mean_latency", 0.0),
                "converged": int(metrics.get("converged", 0)),
            }
        )
    return points


def write_json(data: dict, out: pathlib.Path) -> None:
    entries = data["entries"]
    with out.open("w", encoding="utf-8") as f:
        f.write('{\n  "schema": "%s",\n  "entries": {\n' % data["schema"])
        names = list(entries)
        for i, name in enumerate(names):
            metrics = ", ".join(
                f'"{k}": {v:.12g}' for k, v in entries[name].items()
            )
            comma = "," if i + 1 < len(names) else ""
            f.write(f'    "{name}": {{{metrics}}}{comma}\n')
        f.write("  }\n}\n")


def cmd_run(args: argparse.Namespace) -> int:
    cells = args.cells.split(",") if args.cells else full_grid()
    bench = pathlib.Path(args.bench)
    if not bench.exists():
        print(f"sweep: bench binary {bench} not found", file=sys.stderr)
        return 2
    workdir = pathlib.Path(args.workdir or tempfile.mkdtemp(prefix="sweep."))
    workdir.mkdir(parents=True, exist_ok=True)

    def run_cell(cell: str) -> tuple[str, pathlib.Path | None]:
        out = workdir / f"cell_{cell_key(cell)}.json"
        proc = subprocess.run(
            [str(bench), "--cell", cell, "--out", str(out)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0 or not out.exists():
            sys.stderr.write(proc.stdout + proc.stderr)
            return cell, None
        return cell, out

    produced: list[pathlib.Path] = []
    failed: list[str] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as ex:
        for cell, path in ex.map(run_cell, cells):
            if path is None:
                failed.append(cell)
            else:
                produced.append(path)
                print(f"  done {cell}")
    if failed:
        for cell in failed:
            print(f"sweep: cell {cell} failed", file=sys.stderr)
        return 1

    merged, problems = merge(produced)
    problems += check_coverage(merged, cells)
    if problems:
        for p in problems:
            print(f"sweep: {p}", file=sys.stderr)
        return 1
    write_json(merged, pathlib.Path(args.out))
    print(f"wrote {args.out} ({len(merged['entries'])} entries, "
          f"{len(cells)} cells)")
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    merged, problems = merge([pathlib.Path(p) for p in args.inputs])
    if problems:
        for p in problems:
            print(f"sweep: {p}", file=sys.stderr)
        return 1
    write_json(merged, pathlib.Path(args.out))
    print(f"wrote {args.out} ({len(merged['entries'])} entries)")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    data = load(pathlib.Path(args.artifact))
    cells = args.cells.split(",") if args.cells else full_grid()
    problems = check_coverage(data, cells)
    if problems:
        for p in problems:
            print(f"sweep: {p}", file=sys.stderr)
        return 1
    print(f"sweep: {args.artifact} covers all {len(cells)} cells")
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    data = load(pathlib.Path(args.artifact))
    points = extract_points(data)
    if not points:
        print("sweep: no *_saturation entries found", file=sys.stderr)
        return 1
    width = max(len(p["cell"]) for p in points)
    print(f"{'cell':<{width}}  saturation  throughput  mean_lat  converged")
    for p in points:
        print(
            f"{p['cell']:<{width}}  {p['saturation_rate']:>10.4f}  "
            f"{p['throughput']:>10.4f}  {p['mean_latency']:>8.2f}  "
            f"{p['converged']:>9d}"
        )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as f:
            f.write("cell,saturation_rate,throughput,mean_latency,converged\n")
            for p in points:
                f.write(
                    f"{p['cell']},{p['saturation_rate']:.12g},"
                    f"{p['throughput']:.12g},{p['mean_latency']:.12g},"
                    f"{p['converged']}\n"
                )
        print(f"wrote {args.csv}")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="sweep", description=__doc__.splitlines()[0]
    )
    sub = ap.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="fan out cells and merge")
    run_p.add_argument("--bench", required=True,
                       help="path to the bench_sweep binary")
    run_p.add_argument("--out", required=True)
    run_p.add_argument("--cells",
                       help="comma-separated cell ids (default: full grid)")
    run_p.add_argument("--jobs", type=int, default=4)
    run_p.add_argument("--workdir",
                       help="keep per-cell JSON here (default: temp dir)")

    merge_p = sub.add_parser("merge", help="merge per-cell artifacts")
    merge_p.add_argument("--out", required=True)
    merge_p.add_argument("inputs", nargs="+")

    check_p = sub.add_parser("check", help="verify grid coverage")
    check_p.add_argument("artifact")
    check_p.add_argument("--cells",
                         help="comma-separated cell ids (default: full grid)")

    extract_p = sub.add_parser("extract", help="saturation-point summary")
    extract_p.add_argument("artifact")
    extract_p.add_argument("--csv", help="also write the summary as CSV")

    args = ap.parse_args(argv)
    return {
        "run": cmd_run,
        "merge": cmd_merge,
        "check": cmd_check,
        "extract": cmd_extract,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
