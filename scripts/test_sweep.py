#!/usr/bin/env python3
"""Unit tests for the sweep driver (scripts/sweep.py).

Covers the pure aggregation layer against the committed fixture cells in
scripts/fixtures/sweep/ — real per-cell bench_sweep output, so the tests
break if the C++ entry naming and the Python grid model drift apart —
plus synthetic inputs for the failure paths (duplicate entries, missing
cells, schema mismatches). The process-spawning `run` subcommand is
exercised end-to-end by CI's sweep-smoke job, not here.

Stdlib only; runs under ctest as `sweep_selftest`.
"""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import sys
import tempfile
import unittest

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

import sweep  # noqa: E402

FIXTURES = HERE / "fixtures" / "sweep"
CELLS = ["restricted:uniform:0", "greedy-random:transpose:1"]
CELL_FILES = [
    FIXTURES / "cell_restricted_uniform_p0.json",
    FIXTURES / "cell_greedy-random_transpose_p1.json",
]


class GridModelTest(unittest.TestCase):
    def test_full_grid_is_16_cells(self):
        grid = sweep.full_grid()
        self.assertEqual(len(grid), 16)
        self.assertEqual(len(set(grid)), 16)
        self.assertIn("restricted:uniform:0", grid)
        self.assertIn("greedy-random:bit-reversal:1", grid)

    def test_cell_key_matches_bench_naming(self):
        self.assertEqual(sweep.cell_key("restricted:uniform:0"),
                         "restricted_uniform_p0")
        self.assertEqual(sweep.cell_key("greedy-random:bit-reversal:1"),
                         "greedy-random_bitrev_p1")

    def test_expected_entries_per_cell(self):
        names = sweep.expected_entries(["restricted:hotspot:1"])
        self.assertEqual(len(names), 11)  # 1 saturation + 10 load points
        self.assertIn("restricted_hotspot_p1_saturation", names)
        self.assertIn("restricted_hotspot_p1_load010", names)
        self.assertIn("restricted_hotspot_p1_load100", names)


class MergeTest(unittest.TestCase):
    def test_merge_fixture_cells(self):
        merged, problems = sweep.merge(CELL_FILES)
        self.assertEqual(problems, [])
        self.assertEqual(merged["schema"], sweep.SCHEMA)
        self.assertEqual(set(merged["entries"]),
                         sweep.expected_entries(CELLS))

    def test_merge_rejects_duplicates(self):
        merged, problems = sweep.merge([CELL_FILES[0], CELL_FILES[0]])
        self.assertEqual(len(problems), 11)  # every entry collides
        self.assertTrue(all("duplicate entry" in p for p in problems))
        # First occurrence wins; nothing is silently overwritten.
        self.assertEqual(len(merged["entries"]), 11)

    def test_load_rejects_wrong_schema(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = pathlib.Path(tmp) / "bad.json"
            bad.write_text(json.dumps({"schema": "other", "entries": {}}))
            with self.assertRaises(SystemExit):
                sweep.load(bad)

    def test_write_round_trips(self):
        merged, _ = sweep.merge(CELL_FILES)
        with tempfile.TemporaryDirectory() as tmp:
            out = pathlib.Path(tmp) / "merged.json"
            sweep.write_json(merged, out)
            self.assertEqual(sweep.load(out)["entries"], merged["entries"])


class CoverageTest(unittest.TestCase):
    def test_fixture_cells_cover_themselves(self):
        merged, _ = sweep.merge(CELL_FILES)
        self.assertEqual(sweep.check_coverage(merged, CELLS), [])

    def test_missing_cell_is_detected(self):
        merged, _ = sweep.merge([CELL_FILES[0]])
        problems = sweep.check_coverage(merged, CELLS)
        self.assertEqual(len(problems), 1)
        self.assertIn("greedy-random_transpose_p1_saturation", problems[0])

    def test_missing_load_point_is_detected(self):
        merged, _ = sweep.merge([CELL_FILES[0]])
        del merged["entries"]["restricted_uniform_p0_load050"]
        problems = sweep.check_coverage(merged, [CELLS[0]])
        self.assertEqual(len(problems), 1)
        self.assertIn("load050", problems[0])

    def test_dead_cell_needs_no_curve(self):
        data = {
            "schema": sweep.SCHEMA,
            "entries": {
                "restricted_uniform_p0_saturation": {
                    "saturation_rate": 0.0,
                    "converged": 0,
                }
            },
        }
        self.assertEqual(sweep.check_coverage(data, [CELLS[0]]), [])


class ExtractTest(unittest.TestCase):
    def test_extracts_saturation_points_from_fixtures(self):
        merged, _ = sweep.merge(CELL_FILES)
        points = sweep.extract_points(merged)
        self.assertEqual([p["cell"] for p in points],
                         ["greedy-random_transpose_p1",
                          "restricted_uniform_p0"])
        for p in points:
            self.assertGreater(p["saturation_rate"], 0.0)
            self.assertGreater(p["throughput"], 0.0)
            self.assertEqual(p["converged"], 1)
            # The probed point delivers in the same ballpark it admits.
            self.assertLess(abs(p["throughput"] - p["saturation_rate"]),
                            0.5 * p["saturation_rate"])

    def test_extract_cli_writes_csv(self):
        with tempfile.TemporaryDirectory() as tmp:
            merged, _ = sweep.merge(CELL_FILES)
            artifact = pathlib.Path(tmp) / "a.json"
            sweep.write_json(merged, artifact)
            csv_path = pathlib.Path(tmp) / "points.csv"
            stdout = io.StringIO()
            with contextlib.redirect_stdout(stdout):
                rc = sweep.main(
                    ["extract", str(artifact), "--csv", str(csv_path)]
                )
            self.assertEqual(rc, 0)
            lines = csv_path.read_text().strip().splitlines()
            self.assertEqual(
                lines[0],
                "cell,saturation_rate,throughput,mean_latency,converged",
            )
            self.assertEqual(len(lines), 3)  # header + 2 cells

    def test_check_cli_on_subset(self):
        with tempfile.TemporaryDirectory() as tmp:
            merged, _ = sweep.merge(CELL_FILES)
            artifact = pathlib.Path(tmp) / "a.json"
            sweep.write_json(merged, artifact)
            stdout = io.StringIO()
            with contextlib.redirect_stdout(stdout):
                rc = sweep.main(
                    ["check", str(artifact), "--cells", ",".join(CELLS)]
                )
            self.assertEqual(rc, 0)
            # The same artifact does NOT cover the full 16-cell grid.
            stderr = io.StringIO()
            with contextlib.redirect_stdout(stdout), \
                    contextlib.redirect_stderr(stderr):
                rc = sweep.main(["check", str(artifact)])
            self.assertEqual(rc, 1)


if __name__ == "__main__":
    unittest.main(verbosity=2)
