#include "core/bounds.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hp::core {

double thm17_bound(int d, double k, double M) {
  HP_REQUIRE(d >= 1, "dimension must be positive");
  HP_REQUIRE(k >= 0 && M >= 0, "k and M must be nonnegative");
  const double dd = static_cast<double>(d);
  return std::pow(4.0 * dd, 1.0 - 1.0 / dd) * std::pow(k, 1.0 / dd) * M;
}

double thm20_bound(int n, double k) {
  // Theorem 17 with d = 2, M = 4n: (4·2)^{1/2} · √k · 4n = 8√2 · n · √k.
  return 8.0 * std::sqrt(2.0) * static_cast<double>(n) * std::sqrt(k);
}

double remark_permutation_bound(int n) {
  return 8.0 * static_cast<double>(n) * static_cast<double>(n);
}

double remark_four_per_node_bound(int n) {
  return 16.0 * static_cast<double>(n) * static_cast<double>(n);
}

double ddim_bound(int d, int n, double k) {
  HP_REQUIRE(d >= 1, "dimension must be positive");
  const double dd = static_cast<double>(d);
  return std::pow(4.0, dd + 1.0 - 1.0 / dd) * std::pow(dd, 1.0 - 1.0 / dd) *
         std::pow(k, 1.0 / dd) * std::pow(static_cast<double>(n), dd - 1.0);
}

double ddim_potential_cap(int d, int n) {
  const double dd = static_cast<double>(d);
  return std::pow(4.0, dd) * std::pow(static_cast<double>(n), dd - 1.0);
}

double brassil_cruz_bound(int diam, double walk_len, double k) {
  return static_cast<double>(diam) + walk_len + 2.0 * (k - 1.0);
}

double hajek_bound(double k, int dim) {
  return 2.0 * k + static_cast<double>(dim);
}

double bts_bound(double k, int dmax) {
  return 2.0 * (k - 1.0) + static_cast<double>(dmax);
}

double distance_lower_bound(int dmax) { return static_cast<double>(dmax); }

double single_target_lower_bound(double k, int dmax, int in_degree) {
  HP_REQUIRE(in_degree >= 1, "in-degree must be positive");
  const double absorb = std::ceil(k / static_cast<double>(in_degree));
  return std::max(static_cast<double>(dmax), absorb);
}

double phi0_upper(double k, double M) { return k * M; }

}  // namespace hp::core
