// Closed-form bounds from the paper and the related work it reproduces.
//
// Every experiment harness compares measured routing times against these.
#pragma once

#include <cstdint>

namespace hp::core {

/// Theorem 17: a routing algorithm with a potential function that satisfies
/// Property 8, with per-packet potential at most M, solves every k-packet
/// problem on the d-dimensional mesh within (4d)^{1−1/d} · k^{1/d} · M steps.
double thm17_bound(int d, double k, double M);

/// Theorem 20: any greedy algorithm that prefers restricted packets routes
/// any k-packet problem on the n×n mesh within 8√2 · n · √k steps.
/// (Theorem 17 with d = 2 and M = 4n.)
double thm20_bound(int n, double k);

/// Remark after Theorem 20: splitting a full permutation (k = n²) by origin
/// parity gives 8n²; with four packets per node, 16n².
double remark_permutation_bound(int n);
double remark_four_per_node_bound(int n);

/// Section 5: the generalized class (prefer packets with fewer good
/// directions, maximize advancing packets) on the d-dimensional n^d mesh
/// routes k packets within 4^{d+1−1/d} · d^{1−1/d} · k^{1/d} · n^{d−1}.
double ddim_bound(int d, int n, double k);

/// The per-packet potential cap M implied by the Section 5 bound when
/// factored through Theorem 17: M = 4^d · n^{d−1} (M = 4n at d = 2).
double ddim_potential_cap(int d, int n);

/// Brassil–Cruz [BC]: destination-order priority greedy routes within
/// diam + P + 2(k−1) on any regular network, where P is the length of a
/// walk visiting all destinations.
double brassil_cruz_bound(int diam, double walk_len, double k);

/// Hajek [Haj]: greedy priority routing on the 2^m-node hypercube finishes
/// within 2k + m steps.
double hajek_bound(double k, int dim);

/// [BTS]/[Fe]/[BRS]: greedy routing on the 2-D mesh within
/// 2(k−1) + d_max where d_max is the largest origin→destination distance.
double bts_bound(double k, int dmax);

/// Trivial lower bound for any algorithm: the largest origin→destination
/// distance in the instance.
double distance_lower_bound(int dmax);

/// Single-target lower bound: the destination absorbs at most `in_degree`
/// packets per step and the farthest packet needs d_max steps, so time is
/// at least max(d_max, ceil(k / in_degree)).
double single_target_lower_bound(double k, int dmax, int in_degree);

/// Upper bound on the initial total potential: Φ(0) ≤ k · M.
double phi0_upper(double k, double M);

}  // namespace hp::core
