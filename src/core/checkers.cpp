#include "core/checkers.hpp"

#include <sstream>

#include "sim/engine.hpp"

namespace hp::core {

namespace {

/// Iterates assignments grouped by node; calls fn(begin, end) per group.
template <typename Fn>
void for_each_node_group(std::span<const sim::Assignment> as, Fn&& fn) {
  std::size_t begin = 0;
  while (begin < as.size()) {
    std::size_t end = begin;
    while (end < as.size() && as[end].node == as[begin].node) ++end;
    fn(begin, end);
    begin = end;
  }
}

}  // namespace

void GreedyChecker::on_step(const sim::Engine& /*engine*/,
                            const sim::StepRecord& record) {
  ++steps_;
  const auto& as = record.assignments;
  for_each_node_group(as, [&](std::size_t begin, std::size_t end) {
    // Which directions are used by advancing packets at this node?
    std::uint32_t advancing_mask = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (as[i].advances) advancing_mask |= std::uint32_t{1} << as[i].out;
    }
    for (std::size_t i = begin; i < end; ++i) {
      if (as[i].advances) continue;
      ++deflections_;
      if ((as[i].good_mask & ~advancing_mask) != 0) {
        std::ostringstream os;
        os << "step " << record.step << " node " << as[i].node << ": packet "
           << as[i].pkt
           << " was deflected while a good arc was free or used by a "
              "non-advancing packet (Definition 6 violated)";
        violations_.push_back(os.str());
      }
    }
  });
}

void RestrictedPreferenceChecker::on_step(const sim::Engine& /*engine*/,
                                          const sim::StepRecord& record) {
  const auto& as = record.assignments;
  for_each_node_group(as, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (as[i].advances || as[i].num_good != 1) continue;
      ++restricted_deflections_;
      // Find who is using this restricted packet's single good arc.
      bool ok = false;
      for (std::size_t j = begin; j < end; ++j) {
        if (j == i || !as[j].advances) continue;
        if ((as[i].good_mask >> as[j].out) & 1u) {
          ok = (as[j].num_good == 1);
          break;
        }
      }
      if (!ok) {
        std::ostringstream os;
        os << "step " << record.step << " node " << as[i].node
           << ": restricted packet " << as[i].pkt
           << " deflected by a nonrestricted packet (Definition 18 violated)";
        violations_.push_back(os.str());
      }
    }
  });
}

void RestrictedCensus::on_step(const sim::Engine& /*engine*/,
                               const sim::StepRecord& record) {
  StepCounts counts;
  counts.step = record.step;
  for (const sim::Assignment& a : record.assignments) {
    if (static_cast<std::size_t>(a.num_good) >= good_hist_.size()) {
      good_hist_.resize(static_cast<std::size_t>(a.num_good) + 1, 0);
    }
    ++good_hist_[static_cast<std::size_t>(a.num_good)];
    if (a.num_good == 1) {
      if (a.was_type_a) {
        ++counts.type_a;
      } else {
        ++counts.type_b;
      }
    } else {
      ++counts.unrestricted;
    }
    if (a.advances) {
      ++counts.advancing;
    } else {
      ++counts.deflected;
    }
  }
  series_.push_back(counts);
}

}  // namespace hp::core
