// Runtime verification of the paper's algorithm-class definitions.
//
// The experiments do not *trust* a policy's claim to be greedy or to prefer
// restricted packets — these observers re-derive the definitions from each
// step's routing decisions and record every violation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/observer.hpp"

namespace hp::core {

/// Definition 6: an algorithm is greedy if, whenever a packet p is
/// deflected, every good arc of p is used by another *advancing* packet.
class GreedyChecker : public sim::StepObserver {
 public:
  void on_step(const sim::Engine& engine,
               const sim::StepRecord& record) override;

  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t steps_checked() const { return steps_; }
  std::uint64_t deflections_checked() const { return deflections_; }

 private:
  std::vector<std::string> violations_;
  std::uint64_t steps_ = 0;
  std::uint64_t deflections_ = 0;
};

/// Definition 18: the algorithm prefers restricted packets — a
/// nonrestricted packet never deflects a restricted one. Equivalently,
/// when a restricted packet is deflected, the packet advancing through its
/// single good arc is itself restricted.
class RestrictedPreferenceChecker : public sim::StepObserver {
 public:
  void on_step(const sim::Engine& engine,
               const sim::StepRecord& record) override;

  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t restricted_deflections() const {
    return restricted_deflections_;
  }

 private:
  std::vector<std::string> violations_;
  std::uint64_t restricted_deflections_ = 0;
};

/// Census of packet classes over time: how many packets are restricted of
/// Type A, restricted of Type B, or unrestricted at each step (the
/// taxonomy of §4.1, Figure 5), plus a histogram of good-direction counts.
class RestrictedCensus : public sim::StepObserver {
 public:
  struct StepCounts {
    std::uint64_t step = 0;
    std::int64_t type_a = 0;
    std::int64_t type_b = 0;
    std::int64_t unrestricted = 0;
    std::int64_t advancing = 0;
    std::int64_t deflected = 0;
  };

  void on_step(const sim::Engine& engine,
               const sim::StepRecord& record) override;

  const std::vector<StepCounts>& series() const { return series_; }
  /// Total packets observed with each good-direction count (index =
  /// number of good directions).
  const std::vector<std::uint64_t>& good_dir_histogram() const {
    return good_hist_;
  }

 private:
  std::vector<StepCounts> series_;
  std::vector<std::uint64_t> good_hist_;
};

}  // namespace hp::core
