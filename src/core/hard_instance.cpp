#include "core/hard_instance.hpp"

#include <numeric>

#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hp::core {

namespace {

std::uint64_t evaluate(const net::Mesh& mesh, const workload::Problem& problem,
                       const PolicyFactory& factory) {
  auto policy = factory();
  HP_REQUIRE(policy->deterministic(),
             "hard-instance search needs a deterministic policy");
  sim::EngineConfig config;
  config.max_steps = 1'000'000;
  sim::Engine engine(mesh, problem, *policy, config);
  const auto result = engine.run();
  HP_CHECK(result.completed,
           result.livelocked ? "policy livelocked during hard-instance search"
                             : "policy timed out during hard-instance search");
  return result.steps;
}

workload::Problem random_permutation_problem(const net::Mesh& mesh, Rng& rng) {
  const auto n = static_cast<net::NodeId>(mesh.num_nodes());
  std::vector<net::NodeId> dest(static_cast<std::size_t>(n));
  std::iota(dest.begin(), dest.end(), 0);
  rng.shuffle(std::span<net::NodeId>(dest));
  workload::Problem p;
  p.name = "hard-search";
  for (net::NodeId v = 0; v < n; ++v) {
    p.packets.push_back({v, dest[static_cast<std::size_t>(v)]});
  }
  return p;
}

}  // namespace

HardSearchResult search_hard_permutation(const net::Mesh& mesh,
                                         const PolicyFactory& factory,
                                         HardSearchConfig config) {
  HP_REQUIRE(config.evaluations >= config.restarts && config.restarts >= 1,
             "evaluation budget must cover every restart");
  Rng rng(config.seed);
  HardSearchResult result;

  const std::size_t per_restart = config.evaluations / config.restarts;
  for (std::size_t restart = 0; restart < config.restarts; ++restart) {
    workload::Problem current = random_permutation_problem(mesh, rng);
    std::uint64_t current_steps = evaluate(mesh, current, factory);
    ++result.evaluations;
    if (result.evaluations == 1) result.baseline_steps = current_steps;
    if (current_steps > result.worst_steps) {
      result.worst_steps = current_steps;
      result.worst = current;
    }
    result.trajectory.push_back(result.worst_steps);

    for (std::size_t it = 1; it < per_restart; ++it) {
      workload::Problem candidate = current;
      for (int s = 0; s < config.swaps_per_mutation; ++s) {
        const auto i = rng.uniform(candidate.packets.size());
        const auto j = rng.uniform(candidate.packets.size());
        std::swap(candidate.packets[i].dst, candidate.packets[j].dst);
      }
      const std::uint64_t steps = evaluate(mesh, candidate, factory);
      ++result.evaluations;
      // Plateau-accepting hill climb: equal objective still moves, which
      // lets the search drift across neutral ridges.
      if (steps >= current_steps) {
        current = std::move(candidate);
        current_steps = steps;
      }
      if (steps > result.worst_steps) {
        result.worst_steps = steps;
        result.worst = current;
      }
      result.trajectory.push_back(result.worst_steps);
    }
  }
  result.worst.name = "hard-search-worst";
  return result;
}

}  // namespace hp::core
