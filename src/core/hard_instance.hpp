// Adversarial hard-instance search.
//
// Section 6.1 reports that [BCS] constructed permutations forcing a
// specific restricted-priority greedy algorithm to Ω(n²) steps on the n×n
// mesh — proving the paper's O(n√k) = O(n²) analysis tight for this class.
// This module searches for slow instances automatically: hill-climbing
// over permutations (destination swaps) with random restarts, maximizing
// the measured routing time of a deterministic policy. It both produces
// concrete stress instances and quantifies the average-vs-adversarial gap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/policy.hpp"
#include "topology/mesh.hpp"
#include "workload/workload.hpp"

namespace hp::core {

using PolicyFactory = std::function<std::unique_ptr<sim::RoutingPolicy>()>;

struct HardSearchConfig {
  /// Total instance evaluations (each is one full routing run).
  std::size_t evaluations = 500;
  /// Random restarts; the budget is split evenly across them.
  std::size_t restarts = 4;
  /// Destination swaps applied per mutation.
  int swaps_per_mutation = 1;
  std::uint64_t seed = 1;
};

struct HardSearchResult {
  workload::Problem worst;             ///< slowest instance found
  std::uint64_t worst_steps = 0;       ///< its routing time
  std::uint64_t baseline_steps = 0;    ///< routing time of the first
                                       ///< (random) instance, for contrast
  std::size_t evaluations = 0;
  /// Best-so-far routing time after each evaluation (for plotting search
  /// progress).
  std::vector<std::uint64_t> trajectory;
};

/// Hill-climbs over permutations of `mesh`'s nodes to maximize the routing
/// time of the policy produced by `factory` (which must build
/// deterministic policies — otherwise the objective is noise).
HardSearchResult search_hard_permutation(const net::Mesh& mesh,
                                         const PolicyFactory& factory,
                                         HardSearchConfig config = {});

}  // namespace hp::core
