#include "core/isoperimetry.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hp::core {

CellSet::CellSet(int d) : d_(d) {
  HP_REQUIRE(d >= 1 && d <= net::kMaxDim, "dimension out of range");
}

std::uint64_t CellSet::key(const net::Coord& c) const {
  HP_REQUIRE(static_cast<int>(c.size()) == d_, "coordinate arity mismatch");
  std::uint64_t k = 0;
  for (int a = 0; a < d_; ++a) {
    const int x = c[static_cast<std::size_t>(a)];
    HP_REQUIRE(x >= 0 && x <= 255, "cell coordinate out of [0,255]");
    k = (k << 8) | static_cast<std::uint64_t>(x);
  }
  return k;
}

bool CellSet::contains(const net::Coord& c) const {
  for (int a = 0; a < d_; ++a) {
    const int x = c[static_cast<std::size_t>(a)];
    if (x < 0 || x > 255) return false;
  }
  return index_.contains(key(c));
}

bool CellSet::add(const net::Coord& c) {
  if (!index_.insert(key(c)).second) return false;
  cells_.push_back(c);
  return true;
}

std::size_t CellSet::surface_area() const {
  std::size_t faces = 0;
  for (const net::Coord& c : cells_) {
    for (int a = 0; a < d_; ++a) {
      for (int sign : {-1, +1}) {
        net::Coord nb = c;
        nb[static_cast<std::size_t>(a)] += sign;
        if (!contains(nb)) ++faces;
      }
    }
  }
  return faces;
}

std::size_t CellSet::projection_size(int dropped_axis) const {
  HP_REQUIRE(dropped_axis >= 0 && dropped_axis < d_, "axis out of range");
  // hp-lint: allow(unordered-member) insert + size() only, never iterated:
  // the projection cardinality is independent of bucket order.
  std::unordered_set<std::uint64_t> shadow;
  for (const net::Coord& c : cells_) {
    std::uint64_t k = 0;
    for (int a = 0; a < d_; ++a) {
      if (a == dropped_axis) continue;
      k = (k << 8) | static_cast<std::uint64_t>(c[static_cast<std::size_t>(a)]);
    }
    shadow.insert(k);
  }
  return shadow.size();
}

double claim13_bound(int d, double volume) {
  if (volume <= 0) return 0.0;
  const double dd = static_cast<double>(d);
  return 2.0 * dd * std::pow(volume, (dd - 1.0) / dd);
}

std::size_t projection_surface_lower_bound(const CellSet& cells) {
  std::size_t total = 0;
  for (int a = 0; a < cells.dim(); ++a) {
    total += cells.projection_size(a);
  }
  return 2 * total;
}

CellSet make_box(const std::vector<int>& sides) {
  const int d = static_cast<int>(sides.size());
  CellSet set(d);
  net::Coord c;
  for (int a = 0; a < d; ++a) {
    HP_REQUIRE(sides[static_cast<std::size_t>(a)] >= 1, "empty box side");
    c.push_back(0);
  }
  // Odometer enumeration of the box.
  while (true) {
    set.add(c);
    int a = 0;
    while (a < d) {
      if (++c[static_cast<std::size_t>(a)] <
          sides[static_cast<std::size_t>(a)]) {
        break;
      }
      c[static_cast<std::size_t>(a)] = 0;
      ++a;
    }
    if (a == d) break;
  }
  return set;
}

CellSet make_line(int d, int axis, int len) {
  HP_REQUIRE(axis >= 0 && axis < d, "axis out of range");
  HP_REQUIRE(len >= 1, "empty line");
  CellSet set(d);
  for (int i = 0; i < len; ++i) {
    net::Coord c;
    for (int a = 0; a < d; ++a) c.push_back(a == axis ? i : 0);
    set.add(c);
  }
  return set;
}

CellSet make_cross(int d, int arm) {
  HP_REQUIRE(arm >= 1, "empty cross arm");
  CellSet set(d);
  const int center = arm + 1;
  for (int a = 0; a < d; ++a) {
    for (int i = -arm; i <= arm; ++i) {
      net::Coord c;
      for (int b = 0; b < d; ++b) c.push_back(b == a ? center + i : center);
      set.add(c);
    }
  }
  return set;
}

CellSet make_random_blob(int d, std::size_t volume, Rng& rng) {
  HP_REQUIRE(volume >= 1, "empty blob");
  CellSet set(d);
  net::Coord seed;
  for (int a = 0; a < d; ++a) seed.push_back(128);
  set.add(seed);
  std::vector<net::Coord> frontier{seed};
  while (set.volume() < volume && !frontier.empty()) {
    const std::size_t pick = rng.uniform(frontier.size());
    net::Coord base = frontier[pick];
    // Try the neighbors of the picked cell in random order.
    InlineVector<int, 2 * net::kMaxDim> dirs;
    for (int i = 0; i < 2 * d; ++i) dirs.push_back(i);
    rng.shuffle(std::span<int>(dirs.data(), dirs.size()));
    bool grew = false;
    for (int dir : dirs) {
      net::Coord nb = base;
      const int a = dir / 2;
      nb[static_cast<std::size_t>(a)] += (dir % 2 == 0) ? 1 : -1;
      const int x = nb[static_cast<std::size_t>(a)];
      if (x < 0 || x > 255 || set.contains(nb)) continue;
      set.add(nb);
      frontier.push_back(nb);
      grew = true;
      break;
    }
    if (!grew) {
      frontier[pick] = frontier.back();
      frontier.pop_back();
    }
  }
  HP_CHECK(set.volume() == volume, "blob growth ran out of space");
  return set;
}

CellSet make_staircase(int d, int len) {
  HP_REQUIRE(d >= 2, "staircase needs d >= 2");
  HP_REQUIRE(len >= 1 && len <= 255, "staircase length out of range");
  CellSet set(d);
  for (int i = 0; i < len; ++i) {
    net::Coord c;
    c.push_back(i);
    c.push_back(i);
    for (int a = 2; a < d; ++a) c.push_back(0);
    set.add(c);
    if (i + 1 < len) {
      net::Coord c2 = c;
      c2[0] += 1;  // connect the diagonal steps
      set.add(c2);
    }
  }
  return set;
}

}  // namespace hp::core
