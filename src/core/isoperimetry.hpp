// The isoperimetric inequality of Claim 13.
//
// Any d-dimensional volume composed of V unit cubes has surface area at
// least 2d · V^{(d−1)/d}. The paper proves this with Shearer's entropy
// inequality and uses it (through the 2-neighbor equivalence classes) to
// lower-bound the number of surface arcs around congested regions.
//
// This module computes exact surface areas of arbitrary cell sets in Z^d
// and provides generators for the shapes the experiments sweep over.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "topology/types.hpp"
#include "util/rng.hpp"

namespace hp::core {

/// A finite set of unit cells in Z^d. Cell coordinates must lie in
/// [0, 255] on every axis (ample for the experiments), d ≤ kMaxDim.
class CellSet {
 public:
  explicit CellSet(int d);

  int dim() const { return d_; }
  std::size_t volume() const { return cells_.size(); }
  bool contains(const net::Coord& c) const;
  /// Adds a cell; duplicates are ignored. Returns true if newly added.
  bool add(const net::Coord& c);
  const std::vector<net::Coord>& cells() const { return cells_; }

  /// Exact surface area: the number of (cell, direction) pairs whose
  /// neighboring cell is not in the set.
  std::size_t surface_area() const;

  /// |π_I(set)| for the axis subset excluding `dropped_axis` — the size of
  /// the projection onto the remaining d−1 axes (used by equation (1) and
  /// the Shearer bound in the Claim 13 proof).
  std::size_t projection_size(int dropped_axis) const;

 private:
  std::uint64_t key(const net::Coord& c) const;
  int d_;
  std::vector<net::Coord> cells_;
  // hp-lint: allow(unordered-member) membership/dedup only, never iterated:
  // every traversal runs over cells_, which preserves insertion order.
  std::unordered_set<std::uint64_t> index_;
};

/// Claim 13's lower bound: 2d · V^{(d−1)/d}.
double claim13_bound(int d, double volume);

/// Equation (1): surface(V) ≥ 2 · Σ_{|I|=d−1} |π_I(V)|. Computes the
/// right-hand side exactly.
std::size_t projection_surface_lower_bound(const CellSet& cells);

// --- Shape generators for the Claim 13 experiments -------------------------

/// Axis-aligned box with the given side lengths (sides.size() == d).
CellSet make_box(const std::vector<int>& sides);

/// A 1×…×1×len line along `axis`.
CellSet make_line(int d, int axis, int len);

/// A "plus"/cross of arm length `arm` centered in a box (thin in all but
/// one axis per arm) — a shape with poor volume-to-surface ratio.
CellSet make_cross(int d, int arm);

/// Random connected blob grown by seeded BFS-with-random-frontier until it
/// holds `volume` cells. Stays within [0, 255]^d.
CellSet make_random_blob(int d, std::size_t volume, Rng& rng);

/// A diagonal staircase of `len` steps (worst-case-ish perimeter growth).
CellSet make_staircase(int d, int len);

}  // namespace hp::core
