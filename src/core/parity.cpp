#include "core/parity.hpp"

#include <algorithm>

#include "core/bounds.hpp"
#include "util/check.hpp"

namespace hp::core {

int movement_parity(const net::Mesh& mesh, net::NodeId node) {
  int sum = 0;
  for (int a = 0; a < mesh.dim(); ++a) sum += mesh.coord(node, a);
  return sum & 1;
}

std::array<workload::Problem, 2> parity_split(
    const net::Mesh& mesh, const workload::Problem& problem) {
  HP_REQUIRE(!mesh.wraps(),
             "parity splitting relies on the mesh's bipartite structure; "
             "an odd torus is not bipartite");
  std::array<workload::Problem, 2> classes;
  classes[0].name = problem.name + "/even";
  classes[1].name = problem.name + "/odd";
  for (const auto& spec : problem.packets) {
    classes[static_cast<std::size_t>(movement_parity(mesh, spec.src))]
        .packets.push_back(spec);
  }
  return classes;
}

double parity_split_bound(const net::Mesh& mesh,
                          const workload::Problem& problem) {
  const auto classes = parity_split(mesh, problem);
  double bound = 0.0;
  for (const auto& cls : classes) {
    if (cls.packets.empty()) continue;
    bound = std::max(bound,
                     thm20_bound(mesh.side(),
                                 static_cast<double>(cls.packets.size())));
  }
  return bound;
}

}  // namespace hp::core
