// The Remark after Theorem 20: parity splitting.
//
// On the mesh, the parity of (Σ position coordinates + t) is invariant —
// every step moves a packet across exactly one axis. Hence packets whose
// origins have different coordinate-sum parities can NEVER meet, and a
// hot-potato routing problem decomposes into two completely independent
// sub-problems. For a full permutation (k = n²) each class holds n²/2
// packets, sharpening Theorem 20 from 8√2·n·√(n²) to 8√2·n·√(n²/2) = 8n².
#pragma once

#include <array>

#include "topology/mesh.hpp"
#include "workload/workload.hpp"

namespace hp::core {

/// Movement parity of a node: (Σ coordinates) mod 2. Two packets can be
/// co-located at step t only if origin_parity ⊕ (t mod 2) agrees — i.e.
/// only if their origin parities agree.
int movement_parity(const net::Mesh& mesh, net::NodeId node);

/// Splits `problem` into its two non-interacting parity classes. The
/// result's [0] holds packets with even origin parity, [1] odd. Packet
/// order within each class follows the original problem.
std::array<workload::Problem, 2> parity_split(const net::Mesh& mesh,
                                              const workload::Problem& problem);

/// The Remark's sharpened bound for a problem: max over the two classes
/// of thm20_bound(n, k_class) — valid because the classes route
/// independently and concurrently.
double parity_split_bound(const net::Mesh& mesh,
                          const workload::Problem& problem);

}  // namespace hp::core
