#include "core/potential.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace hp::core {

namespace {

/// True iff, after this step, the packet is a restricted packet of Type A
/// (§4.1): it was restricted (one good direction) during the step and
/// advanced. Such a packet is still restricted at its new node unless it
/// arrived — advancing along the single unaligned axis preserves alignment.
bool type_a_after(const sim::Assignment& a) {
  return a.advances && a.num_good == 1;
}

}  // namespace

PotentialTracker::PotentialTracker(const net::Network& net,
                                   const sim::Engine& engine, Config config)
    : net_(net),
      config_(config),
      min_slack_(std::numeric_limits<std::int64_t>::max()),
      min_c_(std::numeric_limits<std::int64_t>::max()),
      min_phi_(std::numeric_limits<std::int64_t>::max()) {
  HP_REQUIRE(config_.c_init > 0, "c_init must be positive");
  HP_REQUIRE(config_.d >= 1, "dimension must be positive");
  HP_REQUIRE(engine.now() == 0,
             "PotentialTracker must be attached before the first step");
  c_.assign(engine.num_packets(), config_.c_init);
  for (const sim::Packet& p : engine.archive()) {
    // Delivered at injection (src == dst): zero potential from the start.
    c_[static_cast<std::size_t>(p.id)] = 0;
  }
  const sim::FlightTable& flight = engine.flight();
  for (sim::FlightTable::Slot s = 0; s < flight.end_slot(); ++s) {
    phi_ += net_.distance(flight.pos(s), flight.dst(s)) + config_.c_init;
  }
  phi_series_.push_back(phi_);
}

void PotentialTracker::on_step(const sim::Engine& engine,
                               const sim::StepRecord& record) {
  const auto& as = record.assignments;
  const std::int64_t d = config_.d;
  const std::int64_t max_per_packet =
      config_.c_init + static_cast<std::int64_t>(net_.diameter());

  std::size_t group_begin = 0;
  while (group_begin < as.size()) {
    std::size_t group_end = group_begin;
    while (group_end < as.size() &&
           as[group_end].node == as[group_begin].node) {
      ++group_end;
    }
    const net::NodeId node = as[group_begin].node;
    const auto num = static_cast<std::int64_t>(group_end - group_begin);

    std::int64_t before = 0;
    std::int64_t after = 0;
    InlineVector<std::int64_t, 2 * net::kMaxDim> new_c;

    for (std::size_t i = group_begin; i < group_end; ++i) {
      const sim::Assignment& a = as[i];
      HP_CHECK(static_cast<std::size_t>(a.pkt) < c_.size(),
               "packet injected after the tracker was attached — the "
               "potential analysis covers batch problems only");
      const sim::Packet& p = engine.packet(a.pkt);
      const std::int64_t c_old = c_[static_cast<std::size_t>(a.pkt)];
      before += net_.distance(a.node, p.dst) + c_old;

      std::int64_t c_next;
      if (p.arrived()) {
        c_next = 0;  // rule 4
      } else if (type_a_after(a)) {
        // Rule 3: find the Type A packet p deflected, if any. "p deflected
        // q" means q was deflected and p advanced through an arc good for q
        // (Definition 5ff); only co-located packets qualify.
        int victims = 0;
        std::int64_t victim_c = 0;
        for (std::size_t j = group_begin; j < group_end; ++j) {
          const sim::Assignment& q = as[j];
          if (j == i || q.advances || !q.was_type_a) continue;
          if ((q.good_mask >> a.out) & 1u) {
            ++victims;
            victim_c = c_[static_cast<std::size_t>(q.pkt)];
          }
        }
        if (victims == 0) {
          c_next = c_old - 2;  // rule 3(a)
        } else {
          c_next = victim_c - 2;  // rule 3(b): switch loads
          if (victims > 1) {
            std::ostringstream os;
            os << "step " << record.step << " node " << node
               << ": advancing restricted packet " << a.pkt << " deflected "
               << victims << " Type A packets (§4.1 property 1 violated)";
            structure_violations_.push_back(os.str());
          }
          if (a.was_type_a) {
            std::ostringstream os;
            os << "step " << record.step << " node " << node << ": packet "
               << a.pkt
               << " of Type A deflected a Type A packet (§4.1 property 2 "
                  "violated)";
            structure_violations_.push_back(os.str());
          }
        }
      } else {
        c_next = config_.c_init;  // rule 2
      }
      new_c.push_back(c_next);

      const std::int64_t phi_p =
          p.arrived() ? 0 : net_.distance(p.pos, p.dst) + c_next;
      after += phi_p;
      if (!p.arrived()) {
        min_c_ = std::min(min_c_, c_next);
        min_phi_ = std::min(min_phi_, phi_p);
        if (phi_p <= 0) {
          std::ostringstream os;
          os << "step " << record.step << ": packet " << a.pkt
             << " has nonpositive potential " << phi_p << " before arrival";
          structure_violations_.push_back(os.str());
        }
      }
      max_phi_ = std::max(max_phi_, phi_p);
      if (phi_p > max_per_packet) {
        std::ostringstream os;
        os << "step " << record.step << ": packet " << a.pkt << " potential "
           << phi_p << " exceeds M = " << max_per_packet;
        structure_violations_.push_back(os.str());
      }
    }

    // Commit the group's new C values (rule 3(b) reads pre-step values of
    // co-located packets, so writes must not interleave with reads).
    for (std::size_t i = group_begin; i < group_end; ++i) {
      c_[static_cast<std::size_t>(as[i].pkt)] = new_c[i - group_begin];
    }

    // Property 8 (and Lemma 19 at d = 2).
    const std::int64_t lost = before - after;
    const std::int64_t required = num <= d ? num : 2 * d - num;
    min_slack_ = std::min(min_slack_, lost - required);
    if (lost < required) {
      property8_violations_.push_back(
          NodeViolation{record.step, node, lost, required});
    }
    phi_ -= lost;

    group_begin = group_end;
  }

  phi_series_.push_back(phi_);
}

std::vector<std::uint64_t> check_corollary10(
    const std::vector<std::int64_t>& phi_series,
    const std::vector<std::int64_t>& g_series) {
  std::vector<std::uint64_t> bad;
  for (std::size_t t = 0; t < g_series.size(); ++t) {
    if (t + 1 >= phi_series.size()) break;
    if (phi_series[t + 1] > phi_series[t] - g_series[t]) {
      bad.push_back(static_cast<std::uint64_t>(t));
    }
  }
  return bad;
}

std::vector<std::uint64_t> check_lemma12(
    const std::vector<std::int64_t>& phi_series,
    const std::vector<std::int64_t>& f_series) {
  std::vector<std::uint64_t> bad;
  HP_REQUIRE(!phi_series.empty(), "empty potential series");
  for (std::size_t t = 0; t < f_series.size(); ++t) {
    // Past the end of the run the potential stays at its final value
    // (zero for completed runs), so clamp the two-step lookahead.
    const std::int64_t phi_t2 =
        (t + 2 < phi_series.size()) ? phi_series[t + 2] : phi_series.back();
    if (phi_t2 > phi_series[t] - f_series[t]) {
      bad.push_back(static_cast<std::uint64_t>(t));
    }
  }
  return bad;
}

}  // namespace hp::core
