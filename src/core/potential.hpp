// The potential function of Sections 3–4, implemented as a step observer.
//
// Every packet p carries φ_p(t) = dist_p(t) + C_p(t), where C_p is the
// "additional potential" of §4.2:
//
//   1. Initially C_p = c_init (the paper uses 2n on the n×n mesh).
//   2. If after step t packet p is not restricted, or is restricted of
//      Type B, then C_p = c_init.
//   3. If after step t packet p is restricted of Type A (it was restricted
//      during step t and advanced), then:
//      (a) if p deflected no Type A packet this step, C_p ← C_p − 2;
//      (b) if p deflected a Type A packet q (there is exactly one),
//          C_p ← C_q − 2 — the two packets "switch" their loads.
//   4. When p reaches its destination, C_p = 0 (and φ_p = 0).
//
// The tracker audits, at every node in every step:
//   * Property 8 / Lemma 19: a node with ℓ ≤ d packets loses ≥ ℓ potential
//     units; a node with ℓ > d packets loses ≥ 2d − ℓ.
//   * The §4.1 structural properties: an advancing restricted packet
//     deflects at most one Type A packet, and the deflector of a Type A
//     packet is a Type B restricted packet.
//   * 0 ≤ φ_p ≤ M with M = c_init + diameter, and φ_p = 0 only on arrival.
//
// Violations are recorded, never silently dropped; for algorithms in the
// paper's class (greedy + prefers restricted packets, d = 2, c_init = 2n)
// the test suite asserts there are none.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/observer.hpp"
#include "topology/network.hpp"

namespace hp::core {

class PotentialTracker : public sim::StepObserver {
 public:
  struct Config {
    /// Initial / reset value of the additional potential C_p.
    std::int64_t c_init = 0;
    /// Mesh dimension d used by the Property 8 thresholds.
    int d = 2;
  };

  struct NodeViolation {
    std::uint64_t step = 0;
    net::NodeId node = net::kInvalidNode;
    std::int64_t lost = 0;
    std::int64_t required = 0;
  };

  /// `net` must be the network the observed engine runs on. For the paper's
  /// 2-D setting pass d = 2 and c_init = 2n.
  PotentialTracker(const net::Network& net, const sim::Engine& engine,
                   Config config);

  void on_step(const sim::Engine& engine,
               const sim::StepRecord& record) override;

  /// Global potential after the last observed step.
  std::int64_t phi() const { return phi_; }
  /// Φ(t) for t = 0 … steps observed; phi_series()[t] is the potential at
  /// the beginning of step t.
  const std::vector<std::int64_t>& phi_series() const { return phi_series_; }

  /// Current additional potential of one packet.
  std::int64_t c_of(sim::PacketId id) const {
    return c_[static_cast<std::size_t>(id)];
  }

  const std::vector<NodeViolation>& property8_violations() const {
    return property8_violations_;
  }
  const std::vector<std::string>& structure_violations() const {
    return structure_violations_;
  }

  /// Smallest (lost − required) over every node and step; ≥ 0 iff
  /// Property 8 held throughout.
  std::int64_t min_slack() const { return min_slack_; }
  /// Smallest C_p observed on any in-flight packet (the 2-D analysis
  /// implies this never drops below 2 for c_init = 2n).
  std::int64_t min_c() const { return min_c_; }
  /// Smallest per-packet potential φ_p observed on any in-flight packet.
  std::int64_t min_phi() const { return min_phi_; }
  /// Largest per-packet potential observed (must stay ≤ M).
  std::int64_t max_phi() const { return max_phi_; }

 private:
  const net::Network& net_;
  Config config_;
  std::vector<std::int64_t> c_;
  std::int64_t phi_ = 0;
  std::vector<std::int64_t> phi_series_;
  std::vector<NodeViolation> property8_violations_;
  std::vector<std::string> structure_violations_;
  std::int64_t min_slack_;
  std::int64_t min_c_;
  std::int64_t min_phi_;
  std::int64_t max_phi_ = 0;
};

/// Corollary 10: Φ(t+1) ≤ Φ(t) − G(t). Returns the steps t violating it.
/// `g_series[t]` must be the number of packets in good nodes at the
/// beginning of step t.
std::vector<std::uint64_t> check_corollary10(
    const std::vector<std::int64_t>& phi_series,
    const std::vector<std::int64_t>& g_series);

/// Lemma 12: Φ(t+2) ≤ Φ(t) − F(t). Returns the steps t violating it.
/// `f_series[t]` must be the number of surface arcs at the beginning of
/// step t.
std::vector<std::uint64_t> check_lemma12(
    const std::vector<std::int64_t>& phi_series,
    const std::vector<std::int64_t>& f_series);

}  // namespace hp::core
