#include "core/surface.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace hp::core {

CongestionSnapshot analyze_congestion(const net::Mesh& mesh,
                                      const std::vector<int>& occupancy) {
  HP_REQUIRE(occupancy.size() == mesh.num_nodes(),
             "occupancy size must match node count");
  const int d = mesh.dim();
  CongestionSnapshot snap;
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(mesh.num_nodes());
       ++v) {
    const int load = occupancy[static_cast<std::size_t>(v)];
    if (load <= d) {
      snap.packets_in_good += load;
      continue;
    }
    snap.packets_in_bad += load;
    ++snap.bad_nodes;
    // Count surface arcs out of this bad node (Definition 11). Every one
    // of the 2d directions is considered; a missing arc ("out of the
    // mesh") counts, as does a missing or good 2-neighbor.
    for (net::Dir e = 0; e < mesh.num_dirs(); ++e) {
      if (!mesh.arc_exists(v, e)) {
        ++snap.surface_arcs;
        continue;
      }
      const net::NodeId nn = mesh.two_neighbor(v, e);
      if (nn == net::kInvalidNode ||
          occupancy[static_cast<std::size_t>(nn)] <= d) {
        ++snap.surface_arcs;
      }
    }
  }
  return snap;
}

double lemma14_bound(int d, double packets_in_bad) {
  if (packets_in_bad <= 0) return 0.0;
  const double dd = static_cast<double>(d);
  return std::pow(2.0 * dd, 1.0 / dd) *
         std::pow(packets_in_bad, (dd - 1.0) / dd);
}

SurfaceTracker::SurfaceTracker(const net::Mesh& mesh)
    : mesh_(mesh),
      occupancy_(mesh.num_nodes(), 0),
      min_ratio_(std::numeric_limits<double>::infinity()) {
  HP_REQUIRE(!mesh.wraps(),
             "surface-arc analysis is defined on the mesh, not the torus");
}

void SurfaceTracker::on_step(const sim::Engine& /*engine*/,
                             const sim::StepRecord& record) {
  // Occupancy at the beginning of the step: assignments are grouped by the
  // node each packet was routed from.
  for (net::NodeId v : touched_) occupancy_[static_cast<std::size_t>(v)] = 0;
  touched_.clear();
  for (const sim::Assignment& a : record.assignments) {
    if (occupancy_[static_cast<std::size_t>(a.node)] == 0) {
      touched_.push_back(a.node);
    }
    ++occupancy_[static_cast<std::size_t>(a.node)];
  }

  const CongestionSnapshot snap = analyze_congestion(mesh_, occupancy_);
  b_.push_back(snap.packets_in_bad);
  g_.push_back(snap.packets_in_good);
  f_.push_back(snap.surface_arcs);

  if (snap.packets_in_bad > 0) {
    const double bound =
        lemma14_bound(mesh_.dim(), static_cast<double>(snap.packets_in_bad));
    const double ratio = static_cast<double>(snap.surface_arcs) / bound;
    min_ratio_ = std::min(min_ratio_, ratio);
    if (static_cast<double>(snap.surface_arcs) < bound) {
      lemma14_violations_.push_back(record.step);
    }
  }
}

}  // namespace hp::core
