// Good/bad nodes and surface arcs (Definitions 9 and 11, Lemma 14).
//
// A node is *bad* at a step if it holds more than d packets, else *good*.
// A surface arc goes out of a bad node S in a direction whose 2-neighbor
// (Definition 4) is good or absent; arcs leading off the mesh from a bad
// edge node also count. Lemma 14 lower-bounds the number of surface arcs
// F(t) by (2d)^{1/d} · B(t)^{(d−1)/d}, where B(t) is the number of packets
// in bad nodes — the paper's bridge from congestion volume to guaranteed
// potential loss.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/observer.hpp"
#include "topology/mesh.hpp"

namespace hp::core {

/// Congestion metrics of one configuration (one step, pre-move).
struct CongestionSnapshot {
  std::int64_t packets_in_bad = 0;   ///< B(t)
  std::int64_t packets_in_good = 0;  ///< G(t)
  std::int64_t bad_nodes = 0;
  std::int64_t surface_arcs = 0;  ///< F(t)
};

/// Computes B, G, F for an occupancy vector (packets per node) on a mesh.
/// `occupancy` must have one entry per node.
CongestionSnapshot analyze_congestion(const net::Mesh& mesh,
                                      const std::vector<int>& occupancy);

/// Lemma 14's lower bound on the surface-arc count.
double lemma14_bound(int d, double packets_in_bad);

/// Observer recording B(t), G(t), F(t) for every step of a run and checking
/// Lemma 14 as it goes.
class SurfaceTracker : public sim::StepObserver {
 public:
  explicit SurfaceTracker(const net::Mesh& mesh);

  void on_step(const sim::Engine& engine,
               const sim::StepRecord& record) override;

  const std::vector<std::int64_t>& b_series() const { return b_; }
  const std::vector<std::int64_t>& g_series() const { return g_; }
  const std::vector<std::int64_t>& f_series() const { return f_; }

  /// Steps at which F(t) < (2d)^{1/d} B(t)^{(d−1)/d} (expected: none).
  const std::vector<std::uint64_t>& lemma14_violations() const {
    return lemma14_violations_;
  }
  /// Minimum of F(t) / lemma14_bound(B(t)) over steps with B(t) > 0;
  /// ≥ 1 iff Lemma 14 held. Returns +inf if congestion never occurred.
  double min_lemma14_ratio() const { return min_ratio_; }

 private:
  const net::Mesh& mesh_;
  std::vector<int> occupancy_;
  std::vector<net::NodeId> touched_;
  std::vector<std::int64_t> b_, g_, f_;
  std::vector<std::uint64_t> lemma14_violations_;
  double min_ratio_;
};

}  // namespace hp::core
