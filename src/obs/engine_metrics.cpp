#include "obs/engine_metrics.hpp"

#include <cstddef>

#include "sim/engine.hpp"

namespace hp::obs {

EngineMetrics::EngineMetrics(MetricsRegistry& registry, Config config)
    : registry_(&registry),
      config_(config),
      steps_(registry.counter("engine.steps")),
      delivered_(registry.counter("packets.delivered")),
      advances_(registry.counter("packets.advances")),
      deflections_(registry.counter("packets.deflections")),
      bad_node_steps_(registry.counter("engine.bad_node_steps")),
      in_flight_now_(registry.gauge("engine.in_flight")),
      bad_nodes_now_(registry.gauge("engine.bad_nodes")),
      latency_(registry.distribution("packet.latency", 0.0,
                                     config.latency_hi, config.latency_bins)),
      stretch_(registry.distribution("packet.stretch", 0.0, 16.0, 64)),
      deflections_per_packet_(
          registry.distribution("packet.deflections", 0.0,
                                config.deflections_hi,
                                config.deflections_bins)),
      occupancy_(registry.distribution("node.occupancy", 0.0, 32.0, 32)),
      in_flight_(registry.distribution("step.in_flight", 0.0, 4096.0, 64)) {}

void EngineMetrics::on_step(const sim::Engine& engine,
                            const sim::StepRecord& record) {
  steps_.add(1);
  in_flight_now_.set(static_cast<double>(record.in_flight_after));
  in_flight_.add(static_cast<double>(record.in_flight_after));

  for (const sim::Packet& p : record.arrivals) {
    delivered_.add(1);
    const std::uint64_t latency = p.arrived_at - p.injected_at;
    latency_.add(static_cast<double>(latency));
    deflections_per_packet_.add(static_cast<double>(p.deflections));
    if (p.initial_distance > 0) {
      stretch_.add(static_cast<double>(latency) /
                   static_cast<double>(p.initial_distance));
    }
  }

  // Pre-move occupancy per node: assignments are grouped contiguously by
  // node, so each maximal same-node run is one node's packet count.
  std::uint64_t bad_nodes = 0;
  std::size_t i = 0;
  const std::size_t m = record.assignments.size();
  while (i < m) {
    const net::NodeId node = record.assignments[i].node;
    std::size_t run = 0;
    while (i < m && record.assignments[i].node == node) {
      if (record.assignments[i].advances) {
        advances_.add(1);
      } else {
        deflections_.add(1);
      }
      ++run;
      ++i;
    }
    occupancy_.add(static_cast<double>(run));
    if (run > static_cast<std::size_t>(config_.bad_threshold)) ++bad_nodes;
  }
  bad_nodes_now_.set(static_cast<double>(bad_nodes));
  bad_node_steps_.add(bad_nodes);

  // The registrations below repeat every step so the gauges track the
  // trackers' post-step state without EngineMetrics knowing the step plan.
  if (potential_ != nullptr) {
    potential_gauges(*potential_);
  }
  if (surface_ != nullptr) {
    surface_gauges(*surface_);
  }
  if (config_.memory_gauges) {
    memory_gauges(engine);
  }
}

void EngineMetrics::potential_gauges(const core::PotentialTracker& tracker) {
  // Resolved lazily: the gauges only exist in snapshots of runs that had
  // a potential tracker attached.
  registry_->gauge("potential.phi").set(static_cast<double>(tracker.phi()));
  registry_->gauge("potential.min_slack")
      .set(static_cast<double>(tracker.min_slack()));
}

void EngineMetrics::memory_gauges(const sim::Engine& engine) {
  // Resolved lazily: the gauges only exist when Config::memory_gauges is
  // on. Capacity accounting, so values are report-only (see the Config
  // comment) — never compare them across thread counts.
  const sim::EngineMemoryStats stats = engine.memory_stats();
  registry_->gauge("engine.memory.total_bytes")
      .set(static_cast<double>(stats.total()));
  registry_->gauge("engine.memory.topology_bytes")
      .set(static_cast<double>(stats.topology_bytes));
  registry_->gauge("engine.memory.occupancy_bytes")
      .set(static_cast<double>(stats.occupancy_bytes));
  registry_->gauge("engine.memory.flight_bytes")
      .set(static_cast<double>(stats.flight_bytes));
  registry_->gauge("engine.memory.archive_bytes")
      .set(static_cast<double>(stats.archive_bytes));
  registry_->gauge("engine.memory.scratch_bytes")
      .set(static_cast<double>(stats.scratch_bytes));
}

void EngineMetrics::surface_gauges(const core::SurfaceTracker& tracker) {
  if (tracker.b_series().empty()) return;
  registry_->gauge("surface.b").set(
      static_cast<double>(tracker.b_series().back()));
  registry_->gauge("surface.g").set(
      static_cast<double>(tracker.g_series().back()));
  registry_->gauge("surface.f").set(
      static_cast<double>(tracker.f_series().back()));
}

}  // namespace hp::obs
