// EngineMetrics: the StepObserver that populates a MetricsRegistry from a
// live run — packet latency, deflections per packet, per-node occupancy,
// step counters — and, when the paper's potential/surface observers are
// attached, mirrors Φ(t), B(t), G(t) and F(t) into gauges.
//
// Everything is derived from the StepRecord alone (no engine queries, no
// retained spans), so the observer composes with continuous-injection runs
// and its output is a pure function of the simulated trajectory: the
// determinism tests assert byte-identical snapshots across thread counts.
#pragma once

#include <cstdint>

#include "core/potential.hpp"
#include "core/surface.hpp"
#include "obs/metrics.hpp"
#include "sim/observer.hpp"

namespace hp::obs {

class EngineMetrics : public sim::StepObserver {
 public:
  struct Config {
    /// Histogram ranges: [0, *_hi) with *_bins fixed-width bins;
    /// out-of-range samples clamp to the edge bins, the summary stats
    /// stay exact.
    double latency_hi = 4096.0;
    std::size_t latency_bins = 64;
    double deflections_hi = 256.0;
    std::size_t deflections_bins = 64;
    /// Definition 9 bad-node threshold d (a node is bad when it holds
    /// more than `bad_threshold` packets).
    int bad_threshold = 2;
    /// Mirror Engine::memory_stats() into engine.memory.* gauges each
    /// step. Off by default: the gauges query the engine (capacities vary
    /// with thread count), so snapshots of runs that enable this are
    /// reporting data, not deterministic artifacts.
    bool memory_gauges = false;
  };

  explicit EngineMetrics(MetricsRegistry& registry)
      : EngineMetrics(registry, Config{}) {}
  EngineMetrics(MetricsRegistry& registry, Config config);

  /// Mirror Φ(t) from a PotentialTracker registered on the same engine
  /// *before* this observer (gauges reflect the tracker's post-step
  /// state). The tracker must outlive this observer.
  void attach_potential(const core::PotentialTracker& tracker) {
    potential_ = &tracker;
  }

  /// Mirror B(t)/G(t)/F(t) from a SurfaceTracker registered on the same
  /// engine before this observer. The tracker must outlive this observer.
  void attach_surface(const core::SurfaceTracker& tracker) {
    surface_ = &tracker;
  }

  void on_step(const sim::Engine& engine,
               const sim::StepRecord& record) override;

 private:
  void potential_gauges(const core::PotentialTracker& tracker);
  void surface_gauges(const core::SurfaceTracker& tracker);
  void memory_gauges(const sim::Engine& engine);

  MetricsRegistry* registry_;
  Config config_;
  const core::PotentialTracker* potential_ = nullptr;
  const core::SurfaceTracker* surface_ = nullptr;

  // Resolved once in the constructor; registry references are stable.
  Counter& steps_;
  Counter& delivered_;
  Counter& advances_;
  Counter& deflections_;
  Counter& bad_node_steps_;
  Gauge& in_flight_now_;
  Gauge& bad_nodes_now_;
  Distribution& latency_;
  Distribution& stretch_;
  Distribution& deflections_per_packet_;
  Distribution& occupancy_;
  Distribution& in_flight_;
};

}  // namespace hp::obs
