#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>

namespace hp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (byte < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[byte >> 4];
          out += kHex[byte & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // std::to_chars emits the shortest string that round-trips, with no
  // locale involvement — the deterministic encoding the fingerprint tests
  // rely on.
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

}  // namespace hp::obs
