// Minimal JSON emission helpers shared by the observability writers
// (metrics snapshots, Chrome trace events). Only what the writers need:
// RFC 8259 string escaping and locale-independent number formatting, both
// deterministic — the same values always produce the same bytes, which is
// what lets the determinism tests fingerprint whole snapshot files.
#pragma once

#include <string>
#include <string_view>

namespace hp::obs {

/// Escapes `s` for inclusion in a JSON string literal (the surrounding
/// quotes are not added): `"` and `\` are backslash-escaped, control
/// characters below 0x20 use the short forms (\n, \t, \r, \b, \f) or
/// \u00XX. Bytes >= 0x80 pass through untouched, so the output is exactly
/// as UTF-8-clean as the input.
std::string json_escape(std::string_view s);

/// Formats a double as a JSON number: shortest round-trip representation,
/// no locale dependence. NaN and infinities have no JSON encoding and
/// render as null.
std::string json_number(double v);

}  // namespace hp::obs
