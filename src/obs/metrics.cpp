#include "obs/metrics.hpp"

#include <cstddef>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace hp::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Distribution& MetricsRegistry::distribution(const std::string& name,
                                            double lo, double hi,
                                            std::size_t bins) {
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    it = distributions_.emplace(name, Distribution(lo, hi, bins)).first;
  } else {
    HP_REQUIRE(it->second.lo() == lo && it->second.hi() == hi &&
                   it->second.histogram().bins() == bins,
               "distribution '" + name +
                   "' re-requested with a different (lo, hi, bins) shape");
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Distribution* MetricsRegistry::find_distribution(
    const std::string& name) const {
  const auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"schema\": \"hp-metrics-v1\",\n  \"counters\": {";
  std::size_t i = 0;
  for (const auto& [name, c] : counters_) {
    out << (i++ ? ", " : "") << "\"" << json_escape(name)
        << "\": " << c.value();
  }
  out << "},\n  \"gauges\": {";
  i = 0;
  for (const auto& [name, g] : gauges_) {
    out << (i++ ? ", " : "") << "\"" << json_escape(name)
        << "\": " << json_number(g.value());
  }
  out << "},\n  \"distributions\": {";
  i = 0;
  for (const auto& [name, d] : distributions_) {
    out << (i++ ? "," : "") << "\n    \"" << json_escape(name) << "\": {"
        << "\"count\": " << d.stat().count()
        << ", \"mean\": " << json_number(d.stat().mean())
        << ", \"min\": " << json_number(d.stat().min())
        << ", \"max\": " << json_number(d.stat().max())
        << ", \"sum\": " << json_number(d.stat().sum())
        << ", \"lo\": " << json_number(d.lo())
        << ", \"hi\": " << json_number(d.hi()) << ", \"bins\": [";
    for (std::size_t b = 0; b < d.histogram().bins(); ++b) {
      out << (b ? "," : "") << d.histogram().bin_count(b);
    }
    out << "]}";
  }
  if (i > 0) out << "\n  ";
  out << "}\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  CsvWriter csv(out, {"kind", "name", "value", "count", "mean", "min", "max",
                      "sum"});
  for (const auto& [name, c] : counters_) {
    csv.row().add("counter").add(name).add(c.value()).add("").add("").add(
        "").add("").add("");
  }
  for (const auto& [name, g] : gauges_) {
    csv.row()
        .add("gauge")
        .add(name)
        .add(json_number(g.value()))
        .add("")
        .add("")
        .add("")
        .add("")
        .add("");
  }
  for (const auto& [name, d] : distributions_) {
    csv.row()
        .add("distribution")
        .add(name)
        .add("")
        .add(static_cast<std::uint64_t>(d.stat().count()))
        .add(json_number(d.stat().mean()))
        .add(json_number(d.stat().min()))
        .add(json_number(d.stat().max()))
        .add(json_number(d.stat().sum()));
  }
}

}  // namespace hp::obs
