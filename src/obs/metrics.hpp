// MetricsRegistry: named counters, gauges and histogram-backed
// distributions for watching long runs — the structured replacement for
// ad-hoc CSV dumps.
//
// Determinism contract: a registry snapshot is a pure function of the
// metric values. Entries are stored and exported in name order (std::map,
// never an unordered container) and numbers are formatted through the
// locale-independent helpers in obs/json.hpp, so two runs that compute the
// same values emit byte-identical JSON/CSV — the determinism tests hold
// the engine's observers to exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "util/stats.hpp"

namespace hp::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous measurement.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Sample distribution: streaming summary statistics plus a fixed-width
/// util::Histogram over [lo, hi). Out-of-range samples clamp to the edge
/// bins (documented on hp::Histogram), so the summary stats — not the
/// bins — carry the true min/max.
class Distribution {
 public:
  Distribution(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), histogram_(lo, hi, bins) {}

  void add(double x) {
    stat_.add(x);
    histogram_.add(x);
  }

  const RunningStat& stat() const { return stat_; }
  const Histogram& histogram() const { return histogram_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
  RunningStat stat_;
  Histogram histogram_;
};

/// Registry of named metrics. find-or-create accessors return references
/// that stay valid for the registry's lifetime (std::map nodes are
/// stable), so hot-path users resolve each name once and keep the
/// reference.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// The (lo, hi, bins) shape is fixed by the first call for a name;
  /// re-requesting the same name with a different shape throws
  /// hp::CheckError (a silent shape change would corrupt the series).
  Distribution& distribution(const std::string& name, double lo, double hi,
                             std::size_t bins);

  /// Read-only lookups; nullptr when the name was never registered.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Distribution* find_distribution(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && distributions_.empty();
  }
  std::size_t size() const {
    return counters_.size() + gauges_.size() + distributions_.size();
  }

  /// One JSON object (schema "hp-metrics-v1"): counters, gauges and
  /// distributions keyed by name, names sorted. See docs/OBSERVABILITY.md
  /// for the full schema.
  void write_json(std::ostream& out) const;

  /// Flat CSV, one row per metric: kind,name,value,count,mean,min,max,sum.
  /// Counters/gauges fill `value`; distributions fill the summary columns
  /// (bins are JSON-only).
  void write_csv(std::ostream& out) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Distribution> distributions_;
};

}  // namespace hp::obs
