#include "obs/profiler.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace hp::obs {

namespace {

constexpr const char* kPhaseNames[kNumPhases] = {
    "inject", "occupancy", "route", "apply", "observe"};

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

const char* phase_name(Phase p) {
  const auto i = static_cast<std::size_t>(p);
  HP_REQUIRE(i < kNumPhases, "phase out of range");
  return kPhaseNames[i];
}

PhaseProfiler::PhaseProfiler() : origin_(Clock::now()) {}

void PhaseProfiler::begin(Phase p) {
  started_[static_cast<std::size_t>(p)] = Clock::now();
}

void PhaseProfiler::end(Phase p) {
  const auto i = static_cast<std::size_t>(p);
  const Clock::time_point now = Clock::now();
  stats_[i].ns += ns_between(started_[i], now);
  ++stats_[i].calls;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.name = kPhaseNames[i];
    e.cat = "phase";
    e.phase = 'X';
    e.ts = ns_between(origin_, started_[i]) / 1000;
    e.dur = ns_between(started_[i], now) / 1000;
    trace_->push(e);
  }
}

void PhaseProfiler::add_shard_epoch(Phase p, const std::uint64_t* shard_ns,
                                    std::size_t shards) {
  HP_REQUIRE(shards >= 1, "sharded epoch needs at least one shard");
  ShardPhaseStat& stat = shard_stats_[static_cast<std::size_t>(p)];
  if (stat.totals.size() < shards) stat.totals.resize(shards, 0);
  std::uint64_t max_ns = 0;
  std::uint64_t sum_ns = 0;
  for (std::size_t w = 0; w < shards; ++w) {
    stat.totals[w] += shard_ns[w];
    max_ns = std::max(max_ns, shard_ns[w]);
    sum_ns += shard_ns[w];
  }
  const double mean =
      static_cast<double>(sum_ns) / static_cast<double>(shards);
  if (mean > 0.0) {
    stat.imbalance_sum += static_cast<double>(max_ns) / mean;
    ++stat.epochs;
  }
}

double PhaseProfiler::shard_imbalance(Phase p) const {
  const ShardPhaseStat& stat = shard_stats_[static_cast<std::size_t>(p)];
  return stat.epochs == 0
             ? 0.0
             : stat.imbalance_sum / static_cast<double>(stat.epochs);
}

void PhaseProfiler::write_report(std::ostream& out) const {
  std::uint64_t total_ns = 0;
  for (const PhaseStat& s : stats_) total_ns += s.ns;
  out << "engine phase profile (" << steps_ << " steps, "
      << static_cast<double>(total_ns) / 1e6 << " ms accounted)\n";
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const PhaseStat& s = stats_[i];
    const double share =
        total_ns == 0 ? 0.0
                      : 100.0 * static_cast<double>(s.ns) /
                            static_cast<double>(total_ns);
    const double per_step =
        steps_ == 0 ? 0.0
                    : static_cast<double>(s.ns) / static_cast<double>(steps_);
    out << "  " << kPhaseNames[i] << ": " << s.ns << " ns (" << share
        << "%), " << s.calls << " calls, " << per_step << " ns/step\n";
  }
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const ShardPhaseStat& s = shard_stats_[i];
    if (s.epochs == 0) continue;
    out << "  " << kPhaseNames[i] << " shards: " << s.totals.size()
        << " used over " << s.epochs << " sharded epochs, imbalance "
        << "(max/mean) " << shard_imbalance(static_cast<Phase>(i)) << "\n";
  }
}

}  // namespace hp::obs
