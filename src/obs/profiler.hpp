// Wall-clock phase profiler for the sharded engine step.
//
// The engine times its per-step phases (inject / build-occupancy / route /
// apply / observe) and, in sharded routing, each shard's routing work —
// but only when EngineConfig::profile is set: when it is off the engine
// holds a null profiler and each phase costs exactly one pointer test
// (bench_engine_micro's off-path entries gate that this stays true).
//
// Wall-clock numbers are inherently non-deterministic; the profiler is
// therefore a reporting layer only. It never feeds the metrics registry,
// and it appends spans to a trace ring only when explicitly attached via
// set_trace_sink — the determinism tests cover the profile-off artifacts.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <vector>

namespace hp::obs {

class TraceRing;

enum class Phase : int {
  kInject = 0,
  kOccupancy,
  kRoute,
  kApply,
  kObserve,
};

inline constexpr std::size_t kNumPhases = 5;

/// Short stable label ("inject", "occupancy", ...).
const char* phase_name(Phase p);

class PhaseProfiler {
 public:
  struct PhaseStat {
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
  };

  PhaseProfiler();

  void begin(Phase p);
  void end(Phase p);
  void note_step() { ++steps_; }

  /// One sharded routing epoch: per-shard wall times for the shards that
  /// ran. Accumulates per-shard totals and the imbalance estimate.
  void add_route_epoch(const std::uint64_t* shard_ns, std::size_t shards);

  const PhaseStat& stat(Phase p) const {
    return stats_[static_cast<std::size_t>(p)];
  }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t epochs() const { return epochs_; }
  /// Mean over sharded epochs of (slowest shard / mean shard); 1.0 is a
  /// perfectly balanced routing phase, 0 when no sharded epoch ran.
  double shard_imbalance() const;
  /// Cumulative routing ns per shard index (empty when never sharded).
  const std::vector<std::uint64_t>& shard_totals() const {
    return shard_totals_;
  }

  /// Human-readable per-phase table: ns totals, share of the accounted
  /// time, per-step means, plus the shard balance line.
  void write_report(std::ostream& out) const;

  /// When set, every end(p) appends a wall-clock 'X' span (cat "phase",
  /// tid 0) to `ring`, timestamped in real microseconds since the
  /// profiler's construction. Pass nullptr to detach.
  void set_trace_sink(TraceRing* ring) { trace_ = ring; }

 private:
  using Clock = std::chrono::steady_clock;

  std::array<PhaseStat, kNumPhases> stats_{};
  std::array<Clock::time_point, kNumPhases> started_{};
  Clock::time_point origin_;
  std::uint64_t steps_ = 0;
  std::uint64_t epochs_ = 0;
  double imbalance_sum_ = 0.0;
  std::vector<std::uint64_t> shard_totals_;
  TraceRing* trace_ = nullptr;
};

/// RAII phase bracket tolerating a null profiler — the engine's hot path
/// uses this so the profile-off cost is a single branch per phase.
class PhaseScope {
 public:
  PhaseScope(PhaseProfiler* profiler, Phase phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) profiler_->begin(phase_);
  }
  ~PhaseScope() {
    if (profiler_ != nullptr) profiler_->end(phase_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProfiler* profiler_;
  Phase phase_;
};

}  // namespace hp::obs
