// Wall-clock phase profiler for the sharded engine step.
//
// The engine times its per-step phases (inject / build-occupancy / route /
// apply / observe) and, in sharded routing, each shard's routing work —
// but only when EngineConfig::profile is set: when it is off the engine
// holds a null profiler and each phase costs exactly one pointer test
// (bench_engine_micro's off-path entries gate that this stays true).
//
// Wall-clock numbers are inherently non-deterministic; the profiler is
// therefore a reporting layer only. It never feeds the metrics registry,
// and it appends spans to a trace ring only when explicitly attached via
// set_trace_sink — the determinism tests cover the profile-off artifacts.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <vector>

namespace hp::obs {

class TraceRing;

enum class Phase : int {
  kInject = 0,
  kOccupancy,
  kRoute,
  kApply,
  kObserve,
};

inline constexpr std::size_t kNumPhases = 5;

/// Short stable label ("inject", "occupancy", ...).
const char* phase_name(Phase p);

class PhaseProfiler {
 public:
  struct PhaseStat {
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
  };

  PhaseProfiler();

  /// Per-shard accumulation of one phase's sharded epochs (occupancy,
  /// route, and apply all fan out in the phase-pipeline engine).
  struct ShardPhaseStat {
    std::uint64_t epochs = 0;
    double imbalance_sum = 0.0;
    /// Cumulative ns per task index (empty when the phase never sharded).
    std::vector<std::uint64_t> totals;
  };

  void begin(Phase p);
  void end(Phase p);
  void note_step() { ++steps_; }

  /// One sharded epoch of phase `p`: per-task wall times for the tasks
  /// that ran. Accumulates per-task totals and the imbalance estimate.
  void add_shard_epoch(Phase p, const std::uint64_t* shard_ns,
                       std::size_t shards);
  /// Back-compat alias from the routing-only sharded engine.
  void add_route_epoch(const std::uint64_t* shard_ns, std::size_t shards) {
    add_shard_epoch(Phase::kRoute, shard_ns, shards);
  }

  const PhaseStat& stat(Phase p) const {
    return stats_[static_cast<std::size_t>(p)];
  }
  const ShardPhaseStat& shard_stat(Phase p) const {
    return shard_stats_[static_cast<std::size_t>(p)];
  }
  std::uint64_t steps() const { return steps_; }
  /// Sharded-epoch count / balance of one phase. Imbalance is the mean
  /// over epochs of (slowest task / mean task); 1.0 is perfectly balanced,
  /// 0 when the phase never ran sharded.
  std::uint64_t epochs(Phase p) const { return shard_stat(p).epochs; }
  double shard_imbalance(Phase p) const;
  // Route-phase shorthands, kept for the pre-pipeline call sites.
  std::uint64_t epochs() const { return epochs(Phase::kRoute); }
  double shard_imbalance() const { return shard_imbalance(Phase::kRoute); }
  const std::vector<std::uint64_t>& shard_totals() const {
    return shard_stat(Phase::kRoute).totals;
  }

  /// Human-readable per-phase table: ns totals, share of the accounted
  /// time, per-step means, plus the shard balance line.
  void write_report(std::ostream& out) const;

  /// When set, every end(p) appends a wall-clock 'X' span (cat "phase",
  /// tid 0) to `ring`, timestamped in real microseconds since the
  /// profiler's construction. Pass nullptr to detach.
  void set_trace_sink(TraceRing* ring) { trace_ = ring; }

 private:
  using Clock = std::chrono::steady_clock;

  std::array<PhaseStat, kNumPhases> stats_{};
  std::array<ShardPhaseStat, kNumPhases> shard_stats_{};
  std::array<Clock::time_point, kNumPhases> started_{};
  Clock::time_point origin_;
  std::uint64_t steps_ = 0;
  TraceRing* trace_ = nullptr;
};

/// RAII phase bracket tolerating a null profiler — the engine's hot path
/// uses this so the profile-off cost is a single branch per phase.
class PhaseScope {
 public:
  PhaseScope(PhaseProfiler* profiler, Phase phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) profiler_->begin(phase_);
  }
  ~PhaseScope() {
    if (profiler_ != nullptr) profiler_->end(phase_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProfiler* profiler_;
  Phase phase_;
};

}  // namespace hp::obs
