#include "obs/trace.hpp"

#include <utility>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace hp::obs {

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  HP_REQUIRE(capacity >= 1, "trace ring capacity must be at least 1");
}

void TraceRing::push(TraceEvent event) {
  if (size_ < capacity_) {
    events_.push_back(std::move(event));
    ++size_;
    return;
  }
  events_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

const TraceEvent& TraceRing::at(std::size_t i) const {
  HP_REQUIRE(i < size_, "trace ring index out of range");
  // Before the first overwrite next_ is 0, so this is plain indexing;
  // afterwards next_ points at the oldest retained event.
  return events_[(next_ + i) % size_];
}

void TraceRing::clear() {
  events_.clear();
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void write_chrome_trace(std::ostream& out, const TraceRing& ring) {
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
         "{\"dropped_events\": "
      << ring.dropped() << "},\n\"traceEvents\": [";
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const TraceEvent& e = ring.at(i);
    out << (i ? ",\n" : "\n") << "{\"name\": \"" << json_escape(e.name)
        << "\", \"cat\": \"" << json_escape(e.cat) << "\", \"ph\": \""
        << e.phase << "\", \"ts\": " << e.ts << ", \"pid\": 0, \"tid\": "
        << e.tid;
    if (e.phase == 'X') out << ", \"dur\": " << e.dur;
    if (e.has_value) out << ", \"args\": {\"v\": " << e.value << "}";
    out << "}";
  }
  out << "\n]\n}\n";
}

TraceObserver::TraceObserver(TraceRing& ring, Config config)
    : ring_(ring), config_(config) {
  HP_REQUIRE(config_.packet_tracks >= 1, "packet_tracks must be at least 1");
}

void TraceObserver::on_step(const sim::Engine& /*engine*/,
                            const sim::StepRecord& record) {
  for (const sim::Packet& p : record.arrivals) {
    TraceEvent e;
    e.name = "pkt" + std::to_string(p.id);
    e.cat = "packet";
    e.phase = 'X';
    e.ts = p.injected_at;
    e.dur = p.arrived_at - p.injected_at;
    e.tid = static_cast<std::uint32_t>(p.id) % config_.packet_tracks;
    ring_.push(e);
  }
  if (config_.counters) {
    TraceEvent e;
    e.name = "in_flight";
    e.phase = 'C';
    e.ts = record.step + 1;
    e.value = static_cast<std::int64_t>(record.in_flight_after);
    e.has_value = true;
    ring_.push(e);
  }
}

}  // namespace hp::obs
