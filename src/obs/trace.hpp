// Bounded ring-buffer event tracer with Chrome trace_event JSON export.
//
// Events produced by the engine observer carry *virtual* timestamps — one
// engine step maps to one trace microsecond — so a trace stream is a pure
// function of the simulated trajectory: bit-identical across thread counts
// and across reruns with the same seed, like every other observability
// artifact. Wall-clock spans (engine phase timings) enter a ring only when
// the phase profiler is explicitly attached as a sink, and are documented
// as non-deterministic.
//
// The ring is bounded: once `capacity` events are held, each push
// overwrites the oldest event and is counted in dropped(), so tracing
// composes with continuous-injection runs of unbounded length. The export
// loads in chrome://tracing and Perfetto.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/observer.hpp"

namespace hp::obs {

/// One Chrome trace_event record. Only the fields the exporters use:
/// complete spans (ph 'X', with dur), counters (ph 'C', with value) and
/// instants (ph 'i').
struct TraceEvent {
  std::string name;
  std::string cat = "engine";
  char phase = 'X';       ///< Chrome "ph" letter
  std::uint64_t ts = 0;   ///< microseconds (virtual: engine steps)
  std::uint64_t dur = 0;  ///< span length; 'X' events only
  std::uint32_t tid = 0;  ///< track within pid 0
  std::int64_t value = 0;      ///< single "v" argument, 'C' events
  bool has_value = false;      ///< whether `value` is meaningful
};

/// Fixed-capacity ring of trace events. push() overwrites the oldest event
/// once the ring is full; dropped() counts the overwritten ones so an
/// export can say what it lost. Storage grows lazily up to `capacity`.
class TraceRing {
 public:
  /// `capacity` must be at least 1 (throws hp::CheckError otherwise).
  explicit TraceRing(std::size_t capacity);

  void push(TraceEvent event);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }
  bool empty() const { return size_ == 0; }

  /// Retained events oldest-first; `i` < size().
  const TraceEvent& at(std::size_t i) const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t next_ = 0;  ///< slot the next push writes (once saturated)
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Writes the ring as one Chrome trace_event JSON document:
/// {"displayTimeUnit": "ms", "traceEvents": [...]} with pid 0 throughout.
/// Dropped-event counts are recorded in an "otherData" note so a truncated
/// trace is distinguishable from a complete one.
void write_chrome_trace(std::ostream& out, const TraceRing& ring);

/// Engine observer emitting the deterministic packet-lifecycle trace:
///   * one complete span per delivered packet (ts = injection step,
///     dur = latency, laid out over `packet_tracks` round-robin tracks),
///   * one in-flight counter sample per step.
/// All timestamps are virtual (step = 1 us); see the header comment.
class TraceObserver : public sim::StepObserver {
 public:
  struct Config {
    /// Emit the per-step "in_flight" counter track.
    bool counters = true;
    /// Number of tid tracks packet spans are spread over (id mod tracks).
    std::uint32_t packet_tracks = 64;
  };

  explicit TraceObserver(TraceRing& ring) : TraceObserver(ring, Config{}) {}
  TraceObserver(TraceRing& ring, Config config);

  void on_step(const sim::Engine& engine,
               const sim::StepRecord& record) override;

 private:
  TraceRing& ring_;
  Config config_;
};

}  // namespace hp::obs
