#include "routing/brassil_cruz.hpp"

#include "util/check.hpp"

namespace hp::routing {

namespace {

PriorityGreedyPolicy::Options options_with(DeflectRule deflect) {
  PriorityGreedyPolicy::Options options;
  options.deflect = deflect;
  return options;
}

}  // namespace

BrassilCruzPolicy::BrassilCruzPolicy(std::vector<int> dest_rank,
                                     DeflectRule deflect)
    : PriorityGreedyPolicy(options_with(deflect)),
      dest_rank_(std::move(dest_rank)) {
  HP_REQUIRE(!dest_rank_.empty(), "empty destination rank vector");
}

int BrassilCruzPolicy::rank(const sim::NodeContext& /*ctx*/,
                            const sim::PacketView& packet) const {
  HP_CHECK(static_cast<std::size_t>(packet.dst) < dest_rank_.size(),
           "destination outside the rank vector");
  return dest_rank_[static_cast<std::size_t>(packet.dst)];
}

std::string BrassilCruzPolicy::name() const { return "brassil-cruz"; }

std::vector<int> snake_rank(const net::Mesh& mesh) {
  HP_REQUIRE(mesh.dim() == 2, "snake_rank is defined for 2-D meshes");
  const int n = mesh.side();
  std::vector<int> rank(mesh.num_nodes());
  int next = 0;
  for (int y = 0; y < n; ++y) {
    for (int i = 0; i < n; ++i) {
      const int x = (y % 2 == 0) ? i : n - 1 - i;
      net::Coord c;
      c.push_back(x);
      c.push_back(y);
      rank[static_cast<std::size_t>(mesh.node_at(c))] = next++;
    }
  }
  return rank;
}

}  // namespace hp::routing
