// Brassil–Cruz destination-order priority routing [BC].
//
// For any regular network with undirected edges, fix an order on the
// destinations (a walk visiting all of them) and give packets priority by
// the rank of their destination in that order. Brassil and Cruz bound the
// routing time by diam + P + 2(k−1), where P is the length of the walk.
// This is the "structured priority" baseline the paper contrasts greedy
// algorithms with: termination is guaranteed, but the priority is global
// and oblivious to the actual congestion.
#pragma once

#include <vector>

#include "routing/greedy_base.hpp"
#include "topology/mesh.hpp"

namespace hp::routing {

class BrassilCruzPolicy : public PriorityGreedyPolicy {
 public:
  /// `dest_rank[v]` is the rank of node v in the destination walk; lower
  /// ranks win. Must cover every node of the network.
  explicit BrassilCruzPolicy(std::vector<int> dest_rank,
                             DeflectRule deflect = DeflectRule::kFirstFree);

  std::string name() const override;

 protected:
  int rank(const sim::NodeContext& ctx,
           const sim::PacketView& packet) const override;

 private:
  std::vector<int> dest_rank_;
};

/// The canonical destination walk on a 2-D mesh: row-major boustrophedon
/// ("snake") order, a Hamiltonian path of length n² − 1. Returns the rank
/// vector to feed BrassilCruzPolicy, with walk length P = n² − 1.
std::vector<int> snake_rank(const net::Mesh& mesh);

}  // namespace hp::routing
