#include "routing/ddim_priority.hpp"

namespace hp::routing {

namespace {

PriorityGreedyPolicy::Options to_options(
    const DdimPriorityPolicy::Params& params) {
  PriorityGreedyPolicy::Options options;
  options.maximize_advancing = true;  // the Section 5 requirement
  options.deflect = params.deflect;
  options.randomize_ties = params.randomize_ties;
  return options;
}

}  // namespace

DdimPriorityPolicy::DdimPriorityPolicy(Params params)
    : PriorityGreedyPolicy(to_options(params)) {}

int DdimPriorityPolicy::rank(const sim::NodeContext& /*ctx*/,
                             const sim::PacketView& packet) const {
  return packet.num_good();
}

std::string DdimPriorityPolicy::name() const {
  return options().randomize_ties ? "ddim-priority/random-ties"
                                  : "ddim-priority";
}

}  // namespace hp::routing
