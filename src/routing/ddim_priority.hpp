// The Section 5 algorithm class for d-dimensional meshes: prefer packets
// with fewer good directions, and maximize the number of advancing packets
// at every node. The paper shows (proof sketched; details in [Hal]/[BHS])
// that this class routes k packets on the n^d mesh within
// 4^{d+1−1/d} · d^{1−1/d} · k^{1/d} · n^{d−1} steps.
#pragma once

#include "routing/greedy_base.hpp"

namespace hp::routing {

class DdimPriorityPolicy : public PriorityGreedyPolicy {
 public:
  struct Params {
    DeflectRule deflect = DeflectRule::kFirstFree;
    bool randomize_ties = false;
  };

  DdimPriorityPolicy() : DdimPriorityPolicy(Params{}) {}
  explicit DdimPriorityPolicy(Params params);

  std::string name() const override;

  /// Fewest-good-directions-first puts restricted packets (one good
  /// direction) ahead of everything else, so the Definition 18 preference
  /// holds as a special case of the Section 5 priority.
  bool claims_restricted_preference() const override { return true; }

 protected:
  /// Priority is the number of good directions: the most constrained
  /// packets route first.
  int rank(const sim::NodeContext& ctx,
           const sim::PacketView& packet) const override;
};

}  // namespace hp::routing
