#include "routing/greedy_base.hpp"

#include <algorithm>

#include "util/inline_vector.hpp"

namespace hp::routing {

void PriorityGreedyPolicy::route(const sim::NodeContext& ctx,
                                 std::span<const sim::PacketView> packets,
                                 std::span<net::Dir> out) {
  InlineVector<std::size_t, 2 * net::kMaxDim> order;
  for (std::size_t i = 0; i < packets.size(); ++i) order.push_back(i);

  if (options_.randomize_ties) {
    ctx.rng.shuffle(std::span<std::size_t>(order.data(), order.size()));
  }

  InlineVector<int, 2 * net::kMaxDim> ranks;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    ranks.push_back(rank(ctx, packets[i]));
  }
  // Stable: ties keep the (possibly shuffled) preliminary order.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ranks[a] < ranks[b];
                   });

  const std::span<const std::size_t> order_span(order.data(), order.size());
  if (options_.maximize_advancing) {
    assign_augmenting(ctx, packets, order_span, options_.deflect, out);
  } else {
    assign_sequential(ctx, packets, order_span, options_.deflect, out);
  }
}

}  // namespace hp::routing
