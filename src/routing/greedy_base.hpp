// Base class for priority-driven greedy hot-potato policies.
//
// A concrete policy only defines a priority *rank* for each resident packet
// (lower rank routes first); the base class orders packets, runs the
// matching machinery, and handles deflections. Every policy built this way
// is greedy in the sense of Definition 6 by construction — the test suite
// additionally verifies this with core::GreedyChecker on live runs.
#pragma once

#include <string>

#include "routing/matching.hpp"
#include "sim/policy.hpp"

namespace hp::routing {

class PriorityGreedyPolicy : public sim::RoutingPolicy {
 public:
  struct Options {
    /// Use Kuhn augmenting paths to maximize the number of advancing
    /// packets (the Section 5 requirement); otherwise sequential maximal
    /// matching suffices for greediness.
    bool maximize_advancing = false;
    /// Arc choice for deflected packets.
    DeflectRule deflect = DeflectRule::kFirstFree;
    /// Break ties among equal-rank packets uniformly at random (costs
    /// determinism); otherwise ties resolve by arrival order, which is
    /// ascending packet id.
    bool randomize_ties = false;
  };

  explicit PriorityGreedyPolicy(Options options) : options_(options) {}

  void route(const sim::NodeContext& ctx,
             std::span<const sim::PacketView> packets,
             std::span<net::Dir> out) final;

  bool deterministic() const override {
    return !options_.randomize_ties && options_.deflect != DeflectRule::kRandom;
  }

  /// Greedy per Definition 6 by construction: the matching machinery only
  /// deflects a packet when all of its good arcs carry advancing packets.
  /// HP_AUDIT builds re-verify this with core::GreedyChecker on every run.
  bool claims_greedy() const override { return true; }

  const Options& options() const { return options_; }

 protected:
  /// Priority rank of one packet at this node; lower ranks are routed
  /// (and therefore advanced) first. Must be a deterministic function of
  /// its arguments.
  virtual int rank(const sim::NodeContext& ctx,
                   const sim::PacketView& packet) const = 0;

 private:
  Options options_;
};

}  // namespace hp::routing
