#include "routing/greedy_variants.hpp"

namespace hp::routing {

namespace {

PriorityGreedyPolicy::Options options_with(DeflectRule deflect,
                                           bool randomize) {
  PriorityGreedyPolicy::Options options;
  options.deflect = deflect;
  options.randomize_ties = randomize;
  return options;
}

}  // namespace

GreedyRandomPolicy::GreedyRandomPolicy()
    : PriorityGreedyPolicy(options_with(DeflectRule::kRandom, true)) {}

int GreedyRandomPolicy::rank(const sim::NodeContext& /*ctx*/,
                             const sim::PacketView& /*packet*/) const {
  return 0;  // order comes entirely from the shuffle
}

std::string GreedyRandomPolicy::name() const { return "greedy-random"; }

FurthestFirstPolicy::FurthestFirstPolicy(DeflectRule deflect)
    : PriorityGreedyPolicy(options_with(deflect, false)) {}

int FurthestFirstPolicy::rank(const sim::NodeContext& ctx,
                              const sim::PacketView& packet) const {
  return -ctx.net.distance(ctx.node, packet.dst);
}

std::string FurthestFirstPolicy::name() const { return "furthest-first"; }

ClosestFirstPolicy::ClosestFirstPolicy(DeflectRule deflect)
    : PriorityGreedyPolicy(options_with(deflect, false)) {}

int ClosestFirstPolicy::rank(const sim::NodeContext& ctx,
                             const sim::PacketView& packet) const {
  return ctx.net.distance(ctx.node, packet.dst);
}

std::string ClosestFirstPolicy::name() const { return "closest-first"; }

IdPriorityPolicy::IdPriorityPolicy(DeflectRule deflect)
    : PriorityGreedyPolicy(options_with(deflect, false)) {}

int IdPriorityPolicy::rank(const sim::NodeContext& /*ctx*/,
                           const sim::PacketView& packet) const {
  return packet.id;
}

std::string IdPriorityPolicy::name() const { return "id-priority"; }

}  // namespace hp::routing
