// Plain greedy tie-break variants. These are greedy per Definition 6 but do
// NOT necessarily prefer restricted packets, so Theorem 20 does not cover
// them — the baseline experiments measure how they behave regardless.
#pragma once

#include "routing/greedy_base.hpp"

namespace hp::routing {

/// Uniformly random priorities and random deflections each step — the
/// "simplest possible" greedy algorithm the paper's introduction alludes
/// to (Baran / Borodin–Hopcroft style).
class GreedyRandomPolicy : public PriorityGreedyPolicy {
 public:
  GreedyRandomPolicy();
  std::string name() const override;

 protected:
  int rank(const sim::NodeContext& ctx,
           const sim::PacketView& packet) const override;
};

/// Priority to packets farthest from their destination.
class FurthestFirstPolicy : public PriorityGreedyPolicy {
 public:
  explicit FurthestFirstPolicy(DeflectRule deflect = DeflectRule::kFirstFree);
  std::string name() const override;

 protected:
  int rank(const sim::NodeContext& ctx,
           const sim::PacketView& packet) const override;
};

/// Priority to packets closest to their destination.
class ClosestFirstPolicy : public PriorityGreedyPolicy {
 public:
  explicit ClosestFirstPolicy(DeflectRule deflect = DeflectRule::kFirstFree);
  std::string name() const override;

 protected:
  int rank(const sim::NodeContext& ctx,
           const sim::PacketView& packet) const override;
};

/// Fixed total order by packet id — the batch analogue of "oldest packet
/// first". On the hypercube this is the algorithm class for which Hajek
/// proved the 2k + n evacuation bound (see routing/hajek_hypercube.hpp).
class IdPriorityPolicy : public PriorityGreedyPolicy {
 public:
  explicit IdPriorityPolicy(DeflectRule deflect = DeflectRule::kFirstFree);
  std::string name() const override;

 protected:
  int rank(const sim::NodeContext& ctx,
           const sim::PacketView& packet) const override;
};

}  // namespace hp::routing
