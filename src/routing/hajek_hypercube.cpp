#include "routing/hajek_hypercube.hpp"

// Behaviour lives in IdPriorityPolicy; this unit anchors the header.
namespace hp::routing {}
