// Hajek's greedy hot-potato routing on the hypercube [Haj].
//
// Hajek showed that a simple greedy algorithm on the 2^m-node hypercube
// evacuates any batch of k packets within 2k + m steps. The algorithm is a
// fixed-priority greedy: one packet (the current "leader") is never
// deflected, and finishes within m steps of becoming leader; amortizing
// over packets gives the bound. In the batch setting a fixed total order
// by packet id realizes this scheme. The bench harness checks the 2k + m
// bound empirically against this implementation.
#pragma once

#include "routing/greedy_variants.hpp"
#include "topology/hypercube.hpp"

namespace hp::routing {

/// Id-priority greedy specialized (by name and by the bound it is checked
/// against) to the hypercube.
class HajekHypercubePolicy : public IdPriorityPolicy {
 public:
  explicit HajekHypercubePolicy(DeflectRule deflect = DeflectRule::kFirstFree)
      : IdPriorityPolicy(deflect) {}
  std::string name() const override { return "hajek-hypercube"; }
};

}  // namespace hp::routing
