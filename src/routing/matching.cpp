#include "routing/matching.hpp"

#include "util/check.hpp"

namespace hp::routing {

namespace {

constexpr int kUnassigned = -1;

/// Assigns every packet in `order` without an out direction a free arc
/// according to `rule`. `used_mask` has a bit set per taken direction.
void deflect_remaining(const sim::NodeContext& ctx,
                       std::span<const sim::PacketView> packets,
                       std::span<const std::size_t> order, DeflectRule rule,
                       std::uint32_t used_mask, std::span<net::Dir> out) {
  for (std::size_t idx : order) {
    if (out[idx] != net::kInvalidDir) continue;
    const sim::PacketView& p = packets[idx];

    // Collect the free arcs at this node.
    net::DirList free;
    for (net::Dir d : ctx.avail_dirs) {
      if (((used_mask >> d) & 1u) == 0) free.push_back(d);
    }
    HP_CHECK(!free.empty(), "no free arc for a resident packet — the node "
                            "holds more packets than arcs");

    net::Dir chosen = net::kInvalidDir;
    switch (rule) {
      case DeflectRule::kFirstFree:
        chosen = free.front();
        break;
      case DeflectRule::kRandom:
        chosen = free[ctx.rng.uniform(free.size())];
        break;
      case DeflectRule::kReverseEntry:
        if (p.entry_dir != net::kInvalidDir) {
          const net::Dir back = ctx.net.reverse_dir(p.entry_dir);
          if (free.contains(back)) chosen = back;
        }
        if (chosen == net::kInvalidDir) chosen = free.front();
        break;
      case DeflectRule::kStraight:
        if (p.entry_dir != net::kInvalidDir && free.contains(p.entry_dir)) {
          chosen = p.entry_dir;
        }
        if (chosen == net::kInvalidDir) chosen = free.front();
        break;
    }
    out[idx] = chosen;
    used_mask |= std::uint32_t{1} << chosen;
  }
}

}  // namespace

void assign_sequential(const sim::NodeContext& ctx,
                       std::span<const sim::PacketView> packets,
                       std::span<const std::size_t> order, DeflectRule rule,
                       std::span<net::Dir> out) {
  HP_REQUIRE(packets.size() == out.size() && packets.size() == order.size(),
             "assignment arity mismatch");
  for (auto& dir : out) dir = net::kInvalidDir;

  std::uint32_t used_mask = 0;
  for (std::size_t idx : order) {
    for (net::Dir g : packets[idx].good) {
      if (((used_mask >> g) & 1u) == 0) {
        out[idx] = g;
        used_mask |= std::uint32_t{1} << g;
        break;
      }
    }
  }
  deflect_remaining(ctx, packets, order, rule, used_mask, out);
}

namespace {

/// Kuhn's augmenting DFS: tries to advance packet `idx`, possibly rerouting
/// already-matched packets to alternate good arcs. `owner[d]` is the packet
/// currently matched to direction d (or kUnassigned). `visited` is a
/// per-attempt direction bitmask.
bool try_augment(std::span<const sim::PacketView> packets, std::size_t idx,
                 std::span<int> owner, std::uint32_t& visited) {
  for (net::Dir g : packets[idx].good) {
    const std::uint32_t bit = std::uint32_t{1} << g;
    if (visited & bit) continue;
    visited |= bit;
    if (owner[static_cast<std::size_t>(g)] == kUnassigned ||
        try_augment(packets,
                    static_cast<std::size_t>(owner[static_cast<std::size_t>(g)]),
                    owner, visited)) {
      owner[static_cast<std::size_t>(g)] = static_cast<int>(idx);
      return true;
    }
  }
  return false;
}

}  // namespace

void assign_augmenting(const sim::NodeContext& ctx,
                       std::span<const sim::PacketView> packets,
                       std::span<const std::size_t> order, DeflectRule rule,
                       std::span<net::Dir> out) {
  HP_REQUIRE(packets.size() == out.size() && packets.size() == order.size(),
             "assignment arity mismatch");
  for (auto& dir : out) dir = net::kInvalidDir;

  InlineVector<int, 2 * net::kMaxDim> owner;
  for (int d = 0; d < ctx.net.num_dirs(); ++d) owner.push_back(kUnassigned);

  for (std::size_t idx : order) {
    std::uint32_t visited = 0;
    try_augment(packets, idx, std::span<int>(owner.data(), owner.size()),
                visited);
  }

  std::uint32_t used_mask = 0;
  for (int d = 0; d < ctx.net.num_dirs(); ++d) {
    const int pkt = owner[static_cast<std::size_t>(d)];
    if (pkt != kUnassigned) {
      out[static_cast<std::size_t>(pkt)] = static_cast<net::Dir>(d);
      used_mask |= std::uint32_t{1} << d;
    }
  }
  deflect_remaining(ctx, packets, order, rule, used_mask, out);
}

}  // namespace hp::routing
