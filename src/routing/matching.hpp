// Per-node packet-to-arc assignment machinery shared by every greedy policy.
//
// Routing one node for one step is a bipartite matching problem between the
// resident packets and their good arcs. Two facts make this the right
// abstraction for the paper's algorithm classes:
//
//  * Any *maximal* matching yields a greedy algorithm (Definition 6): if a
//    deflected packet still had a free good arc, the matching was not
//    maximal.
//  * Processing packets in a priority order and never unmatching an
//    already-matched packet realizes "preference": a lower-priority packet
//    can never steal the arc that would have advanced a higher-priority
//    one. With augmenting paths (Kuhn's algorithm) the result is in
//    addition a *maximum* matching — Section 5's "maximize the number of
//    advancing packets" requirement — while matched packets stay matched.
#pragma once

#include <span>

#include "sim/policy.hpp"

namespace hp::routing {

/// How packets that could not advance pick among the remaining free arcs.
/// (After a maximal matching every free arc is bad for every deflected
/// packet, so this choice never affects greediness — only future dynamics.)
enum class DeflectRule {
  kFirstFree,      ///< lowest direction label (deterministic)
  kRandom,         ///< uniformly random free arc
  kReverseEntry,   ///< send the packet back where it came from if possible
  kStraight,       ///< keep the packet moving in its entry direction
};

/// Sequential greedy matching: packets, visited in `order` (indices into
/// `packets`), grab their first free good arc; packets left without one are
/// deflected per `rule`. Produces a maximal matching, hence a greedy
/// assignment. Writes out[i] for every packet i.
void assign_sequential(const sim::NodeContext& ctx,
                       std::span<const sim::PacketView> packets,
                       std::span<const std::size_t> order, DeflectRule rule,
                       std::span<net::Dir> out);

/// Priority-preserving maximum matching (Kuhn's augmenting paths), then
/// deflection per `rule`. Earlier packets in `order` never lose their
/// match when later ones augment; the advancing set is maximum-cardinality.
void assign_augmenting(const sim::NodeContext& ctx,
                       std::span<const sim::PacketView> packets,
                       std::span<const std::size_t> order, DeflectRule rule,
                       std::span<net::Dir> out);

}  // namespace hp::routing
