#include "routing/perverse.hpp"

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace hp::routing {

namespace {

PriorityGreedyPolicy::Options perverse_options() {
  PriorityGreedyPolicy::Options options;
  options.deflect = DeflectRule::kReverseEntry;
  options.randomize_ties = false;
  return options;
}

}  // namespace

PerverseGreedyPolicy::PerverseGreedyPolicy()
    : PriorityGreedyPolicy(perverse_options()) {}

int PerverseGreedyPolicy::rank(const sim::NodeContext& ctx,
                               const sim::PacketView& packet) const {
  // Advance the farthest packets, starving the ones about to arrive.
  return -ctx.net.distance(ctx.node, packet.dst);
}

std::string PerverseGreedyPolicy::name() const { return "perverse-greedy"; }

void BounceBackPolicy::route(const sim::NodeContext& ctx,
                             std::span<const sim::PacketView> packets,
                             std::span<net::Dir> out) {
  std::uint32_t used = 0;
  // First pass: bounce every packet back through its entry arc if free.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    out[i] = net::kInvalidDir;
    if (packets[i].entry_dir == net::kInvalidDir) continue;
    const net::Dir back = ctx.net.reverse_dir(packets[i].entry_dir);
    if (ctx.net.arc_exists(ctx.node, back) && (((used >> back) & 1u) == 0)) {
      out[i] = back;
      used |= std::uint32_t{1} << back;
    }
  }
  // Remaining packets (e.g. just injected): first free arc.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (out[i] != net::kInvalidDir) continue;
    for (net::Dir d : ctx.avail_dirs) {
      if (((used >> d) & 1u) == 0) {
        out[i] = d;
        used |= std::uint32_t{1} << d;
        break;
      }
    }
    HP_CHECK(out[i] != net::kInvalidDir, "no free arc for resident packet");
  }
}

LivelockSearchResult livelock_search(const net::Network& net,
                                     sim::RoutingPolicy& policy,
                                     std::size_t num_packets,
                                     std::size_t instances,
                                     std::uint64_t max_steps,
                                     std::uint64_t seed) {
  HP_REQUIRE(policy.deterministic(),
             "livelock proofs require a deterministic policy");
  LivelockSearchResult result;
  Rng rng(seed);
  const auto num_nodes = static_cast<std::uint64_t>(net.num_nodes());

  for (std::size_t trial = 0; trial < instances; ++trial) {
    workload::Problem problem;
    problem.name = "livelock-search-" + std::to_string(trial);
    std::vector<int> capacity(net.num_nodes());
    for (net::NodeId v = 0; v < static_cast<net::NodeId>(net.num_nodes());
         ++v) {
      capacity[static_cast<std::size_t>(v)] = net.degree(v);
    }
    while (problem.packets.size() < num_packets) {
      const auto src = static_cast<net::NodeId>(rng.uniform(num_nodes));
      if (capacity[static_cast<std::size_t>(src)] == 0) continue;
      --capacity[static_cast<std::size_t>(src)];
      const auto dst = static_cast<net::NodeId>(rng.uniform(num_nodes));
      problem.packets.push_back({src, dst});
    }

    sim::EngineConfig config;
    config.max_steps = max_steps;
    config.detect_livelock = true;
    sim::Engine engine(net, problem, policy, config);
    const sim::RunResult run = engine.run();
    ++result.instances_tried;
    if (run.livelocked) {
      ++result.livelocks_found;
      if (!result.example) result.example = problem;
    }
  }
  return result;
}

}  // namespace hp::routing
