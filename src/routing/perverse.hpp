// Adversarial policies for the livelock experiments (Section 1.2).
//
// The paper warns that "it is rather easy to come up with a livelock
// situation whenever greediness is the only routing policy" [NS1], [Haj].
// Two policies support reproducing this:
//
//  * PerverseGreedyPolicy — still greedy per Definition 6, but chooses the
//    most obstructive options the definition leaves free: it advances the
//    packets that are *farthest* from their destinations and bounces every
//    deflected packet straight back where it came from. Deterministic, so
//    a repeated configuration is a livelock proof.
//  * BounceBackPolicy — a NON-greedy hot-potato policy that returns every
//    packet through its entry arc whenever possible. Even a single packet
//    livelocks under it, demonstrating that hot-potato routing without the
//    greediness requirement has no termination guarantee at all.
//
// The livelock_search utility sweeps random small instances under a
// deterministic policy and reports proven cycles.
#pragma once

#include <optional>

#include "routing/greedy_base.hpp"
#include "topology/network.hpp"
#include "workload/workload.hpp"

namespace hp::routing {

class PerverseGreedyPolicy : public PriorityGreedyPolicy {
 public:
  PerverseGreedyPolicy();
  std::string name() const override;

 protected:
  int rank(const sim::NodeContext& ctx,
           const sim::PacketView& packet) const override;
};

class BounceBackPolicy : public sim::RoutingPolicy {
 public:
  std::string name() const override { return "bounce-back"; }
  bool deterministic() const override { return true; }
  void route(const sim::NodeContext& ctx,
             std::span<const sim::PacketView> packets,
             std::span<net::Dir> out) override;
};

/// Outcome of a livelock search over random instances.
struct LivelockSearchResult {
  std::size_t instances_tried = 0;
  std::size_t livelocks_found = 0;
  /// First livelocking instance found, if any.
  std::optional<workload::Problem> example;
};

/// Runs `instances` random problems with `num_packets` packets on `net`
/// under a deterministic policy, each capped at `max_steps`, and counts
/// proven livelocks (repeated configurations).
LivelockSearchResult livelock_search(const net::Network& net,
                                     sim::RoutingPolicy& policy,
                                     std::size_t num_packets,
                                     std::size_t instances,
                                     std::uint64_t max_steps,
                                     std::uint64_t seed);

}  // namespace hp::routing
