#include "routing/restricted_priority.hpp"

namespace hp::routing {

namespace {

PriorityGreedyPolicy::Options to_options(
    const RestrictedPriorityPolicy::Params& params) {
  PriorityGreedyPolicy::Options options;
  options.maximize_advancing = params.maximize_advancing;
  options.deflect = params.deflect;
  options.randomize_ties =
      params.tie_break == RestrictedPriorityPolicy::TieBreak::kRandom;
  return options;
}

}  // namespace

RestrictedPriorityPolicy::RestrictedPriorityPolicy(Params params)
    : PriorityGreedyPolicy(to_options(params)), params_(params) {}

int RestrictedPriorityPolicy::rank(const sim::NodeContext& /*ctx*/,
                                   const sim::PacketView& packet) const {
  if (!packet.restricted()) return 4;
  switch (params_.tie_break) {
    case TieBreak::kTypeAFirst:
      return packet.type_a() ? 0 : 1;
    case TieBreak::kTypeBFirst:
      return packet.type_a() ? 1 : 0;
    case TieBreak::kArrivalOrder:
    case TieBreak::kRandom:
      return 0;
  }
  return 0;
}

std::string RestrictedPriorityPolicy::name() const {
  std::string n = "restricted-priority";
  switch (params_.tie_break) {
    case TieBreak::kArrivalOrder:
      break;
    case TieBreak::kRandom:
      n += "/random-ties";
      break;
    case TieBreak::kTypeAFirst:
      n += "/typeA-first";
      break;
    case TieBreak::kTypeBFirst:
      n += "/typeB-first";
      break;
  }
  if (options().maximize_advancing) n += "/max-adv";
  if (options().deflect == DeflectRule::kRandom) n += "/random-deflect";
  return n;
}

}  // namespace hp::routing
