// The paper's Section 4 algorithm class: greedy hot-potato routing that
// prefers restricted packets (Definition 18).
//
// A packet is *restricted* when it has exactly one good direction. The
// policy routes restricted packets before all others, so a nonrestricted
// packet can never deflect a restricted one. Theorem 20: every algorithm
// in this class routes any k-packet problem on the n×n mesh within
// 8√2 · n · √k steps.
//
// Within the class the paper leaves tie-breaking free; the options below
// span the choices our experiments sweep (they all stay inside the class).
#pragma once

#include "routing/greedy_base.hpp"

namespace hp::routing {

class RestrictedPriorityPolicy : public PriorityGreedyPolicy {
 public:
  /// Secondary order among packets of the same restrictedness class.
  enum class TieBreak {
    kArrivalOrder,  ///< ascending packet id (deterministic)
    kRandom,        ///< uniform random
    kTypeAFirst,    ///< Type A restricted packets before Type B
    kTypeBFirst,    ///< Type B restricted packets before Type A
  };

  struct Params {
    TieBreak tie_break = TieBreak::kArrivalOrder;
    DeflectRule deflect = DeflectRule::kFirstFree;
    /// Also maximize the number of advancing packets (harmless for the
    /// 2-D analysis; required by the Section 5 generalization).
    bool maximize_advancing = false;
  };

  RestrictedPriorityPolicy() : RestrictedPriorityPolicy(Params{}) {}
  explicit RestrictedPriorityPolicy(Params params);

  std::string name() const override;

  /// Every tie-break/deflect combination stays inside the Definition 18
  /// class: restricted packets outrank all others, so a nonrestricted
  /// packet can never deflect a restricted one.
  bool claims_restricted_preference() const override { return true; }

 protected:
  int rank(const sim::NodeContext& ctx,
           const sim::PacketView& packet) const override;

 private:
  Params params_;
};

}  // namespace hp::routing
