#include "routing/single_target.hpp"

namespace hp::routing {

namespace {

PriorityGreedyPolicy::Options options_with(DeflectRule deflect) {
  PriorityGreedyPolicy::Options options;
  options.deflect = deflect;
  options.maximize_advancing = true;
  return options;
}

}  // namespace

SingleTargetPolicy::SingleTargetPolicy(DeflectRule deflect)
    : PriorityGreedyPolicy(options_with(deflect)) {}

int SingleTargetPolicy::rank(const sim::NodeContext& ctx,
                             const sim::PacketView& packet) const {
  // Closest first; among equal distances, restricted packets first. All
  // packets share a destination, so distances at one node are equal and
  // the restricted tie-break dominates within a node.
  return 2 * ctx.net.distance(ctx.node, packet.dst) +
         (packet.restricted() ? 0 : 1);
}

std::string SingleTargetPolicy::name() const { return "single-target"; }

}  // namespace hp::routing
