// Single-target greedy routing ([BTS]-style).
//
// All k packets share one destination. Ben-Aroya, Tamar and Schuster give
// a greedy single-target algorithm on the 2-D mesh that matches the
// d_max + k lower bound. The essential ingredients are greediness plus
// giving way to packets that are closer to the target (so the absorption
// pipeline at the destination never starves); we realize this as a
// closest-first priority with restricted packets breaking ties first.
#pragma once

#include "routing/greedy_base.hpp"

namespace hp::routing {

class SingleTargetPolicy : public PriorityGreedyPolicy {
 public:
  explicit SingleTargetPolicy(DeflectRule deflect = DeflectRule::kFirstFree);
  std::string name() const override;

 protected:
  int rank(const sim::NodeContext& ctx,
           const sim::PacketView& packet) const override;
};

}  // namespace hp::routing
