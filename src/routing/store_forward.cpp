#include "routing/store_forward.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace hp::routing {

namespace {

/// Dimension-order next hop: the direction correcting the lowest-numbered
/// axis on which the packet is not yet aligned with its destination.
net::Dir next_dir(const net::Mesh& mesh, net::NodeId at, net::NodeId dst) {
  for (int a = 0; a < mesh.dim(); ++a) {
    const int here = mesh.coord(at, a);
    const int want = mesh.coord(dst, a);
    if (here == want) continue;
    return net::Mesh::dir_of(a, want > here ? +1 : -1);
  }
  HP_CHECK(false, "next_dir called for a delivered packet");
  return net::kInvalidDir;
}

}  // namespace

StoreForwardResult run_store_forward(const net::Mesh& mesh,
                                     const workload::Problem& problem,
                                     std::uint64_t max_steps) {
  problem.validate(mesh);

  StoreForwardResult result;
  result.arrival.assign(problem.size(), 0);
  result.initial_distance.assign(problem.size(), 0);

  const std::size_t num_dirs = static_cast<std::size_t>(mesh.num_dirs());
  // FIFO per directed link, indexed node * num_dirs + dir.
  std::vector<std::deque<std::size_t>> queue(mesh.num_nodes() * num_dirs);
  std::vector<std::size_t> active;  // nonempty queue indices (deduplicated)
  std::vector<std::uint8_t> is_active(queue.size(), 0);

  auto enqueue = [&](std::size_t pkt, net::NodeId at, net::NodeId dst) {
    const net::Dir d = next_dir(mesh, at, dst);
    const std::size_t q = static_cast<std::size_t>(at) * num_dirs +
                          static_cast<std::size_t>(d);
    queue[q].push_back(pkt);
    result.max_queue = std::max(result.max_queue, queue[q].size());
    if (!is_active[q]) {
      is_active[q] = 1;
      active.push_back(q);
    }
  };

  std::size_t remaining = 0;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const auto& spec = problem.packets[i];
    result.initial_distance[i] = mesh.distance(spec.src, spec.dst);
    if (spec.src == spec.dst) {
      result.arrival[i] = 0;
    } else {
      enqueue(i, spec.src, spec.dst);
      ++remaining;
    }
  }

  std::uint64_t now = 0;
  std::vector<std::pair<std::size_t, net::NodeId>> moved;  // packet, new node
  while (remaining > 0 && now < max_steps) {
    moved.clear();
    // One packet crosses each busy link this step.
    std::size_t write = 0;
    for (std::size_t qi = 0; qi < active.size(); ++qi) {
      const std::size_t q = active[qi];
      auto& fifo = queue[q];
      HP_CHECK(!fifo.empty(), "active queue is empty");
      const std::size_t pkt = fifo.front();
      fifo.pop_front();
      const auto at = static_cast<net::NodeId>(q / num_dirs);
      const auto dir = static_cast<net::Dir>(q % num_dirs);
      const net::NodeId next = mesh.neighbor(at, dir);
      HP_CHECK(next != net::kInvalidNode,
               "dimension-order route left the mesh");
      moved.emplace_back(pkt, next);
      if (fifo.empty()) {
        is_active[q] = 0;
      } else {
        active[write++] = q;  // stays active
      }
    }
    active.resize(write);
    ++now;

    for (const auto& [pkt, at] : moved) {
      const net::NodeId dst = problem.packets[pkt].dst;
      if (at == dst) {
        result.arrival[pkt] = now;
        --remaining;
      } else {
        enqueue(pkt, at, dst);
      }
    }
  }

  result.completed = (remaining == 0);
  result.steps = 0;
  for (std::uint64_t t : result.arrival) result.steps = std::max(result.steps, t);
  if (!result.completed) result.steps = now;
  return result;
}

}  // namespace hp::routing
