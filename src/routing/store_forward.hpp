// Store-and-forward dimension-order routing — the structured, buffered
// baseline of the paper's introduction.
//
// Packets follow the fixed dimension-order path (correct axis 0, then axis
// 1, …) and wait in unbounded FIFO queues when their next link is busy;
// one packet crosses each directed link per step. This is NOT a hot-potato
// algorithm: it models the conventional routers the paper contrasts
// greedy deflection routing against. The comparison experiments measure
// its sensitivity to load and to a packet's initial distance.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/mesh.hpp"
#include "workload/workload.hpp"

namespace hp::routing {

struct StoreForwardResult {
  bool completed = false;
  /// Step at which the last packet arrived.
  std::uint64_t steps = 0;
  /// Largest FIFO occupancy observed on any link queue.
  std::size_t max_queue = 0;
  /// Per-packet arrival step, aligned with the problem's packet order.
  std::vector<std::uint64_t> arrival;
  /// Per-packet origin→destination distance.
  std::vector<int> initial_distance;
};

/// Simulates dimension-order store-and-forward routing of `problem` on
/// `mesh` with unbounded buffers.
StoreForwardResult run_store_forward(const net::Mesh& mesh,
                                     const workload::Problem& problem,
                                     std::uint64_t max_steps = 10'000'000);

}  // namespace hp::routing
