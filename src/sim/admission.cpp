#include "sim/admission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace hp::sim {

AdmissionController::AdmissionController(ProbeConfig config)
    : config_(config) {
  HP_REQUIRE(config_.min_rate > 0.0, "probe floor must be positive");
  HP_REQUIRE(config_.max_rate > config_.min_rate,
             "probe ceiling must exceed the floor");
  HP_REQUIRE(config_.growth > 1.0, "probe-up growth must exceed 1");
  HP_REQUIRE(config_.tolerance > 0.0 && config_.tolerance < 1.0,
             "convergence tolerance must be in (0, 1)");
  HP_REQUIRE(config_.stable_fraction > 0.0 && config_.stable_fraction <= 1.0,
             "stability fraction must be in (0, 1]");
  HP_REQUIRE(config_.window_steps > 0, "empty probe window");
  HP_REQUIRE(config_.max_windows >= 1, "need at least one probe window");
}

bool AdmissionController::stable(const WindowMeasurement& m) const {
  if (m.offered_rate <= 0.0) return true;
  if (m.admit_fraction < config_.stable_fraction) return false;
  // Deliveries must keep up with the *realized* admissions, not the
  // nominal knob: a pattern that exempts some nodes (transpose diagonal)
  // can never deliver the nominal per-node rate even when perfectly
  // stable.
  return m.throughput >= config_.stable_fraction * m.admitted_rate;
}

ProbeResult AdmissionController::probe(LoadableSystem& system) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ProbeResult result;
  double lo = 0.0;    // highest rate measured stable so far
  double hi = kInf;   // lowest rate measured unstable so far
  WindowMeasurement at_lo;  // measurement backing the current lo
  double rate =
      std::clamp(config_.initial_rate, config_.min_rate, config_.max_rate);

  for (int w = 0; w < config_.max_windows; ++w) {
    const WindowMeasurement m =
        system.run_window(rate, config_.warmup_steps, config_.window_steps);
    const bool ok = stable(m);
    if (ok && rate > lo) {
      lo = rate;
      at_lo = m;
    }
    if (!ok) hi = std::min(hi, rate);
    result.trajectory.push_back({w, rate, ok, lo, hi, m});

    // Termination: the ceiling held, the floor failed, or the bracket is
    // tight enough. (max_windows bounds the loop regardless.)
    if (lo >= config_.max_rate) {
      result.converged = true;
      break;
    }
    if (hi <= config_.min_rate) break;  // dead system: report, don't hang
    if (std::isfinite(hi) && hi - lo <= config_.tolerance * hi) {
      result.converged = lo > 0.0;
      break;
    }

    // Steering: multiplicative probe-up until some rate fails, then plain
    // bisection of the (lo, hi) bracket.
    if (!std::isfinite(hi)) {
      rate = std::min(rate * config_.growth, config_.max_rate);
    } else {
      rate = 0.5 * (lo + hi);
    }
    rate = std::clamp(rate, config_.min_rate, config_.max_rate);
  }

  result.windows = static_cast<int>(result.trajectory.size());
  result.saturation_rate = lo;
  result.throughput_at_saturation = at_lo.throughput;
  result.latency_at_saturation = at_lo.mean_latency;
  return result;
}

}  // namespace hp::sim
