// Closed-loop admission control: throughput probing in the style of
// MongoDB's execution-control simulator (SNIPPETS.md §2).
//
// The paper's bounds are worst-case batch results; a capacity planner
// instead asks "what continuous offered load can this (topology, policy,
// workload) sustain?". The AdmissionController answers by probing: it
// runs the system under test for fixed step windows at a trial injection
// rate, reads back delivered throughput / admitted fraction / latency,
// and steers the rate — multiplicative probe-up while the system keeps
// up, bisection once a rate has failed — until the stable/unstable
// bracket is tighter than the configured tolerance. Every decision is a
// pure function of virtual-time measurements (never wall clock), so a
// probe trajectory is deterministic and bit-identical across engine
// thread counts.
//
// The controller is deliberately decoupled from the engine behind the
// LoadableSystem interface: tests drive it against synthetic
// known-capacity systems, and stats/sweep.hpp adapts a real Engine +
// TrafficInjector pair.
#pragma once

#include <cstdint>
#include <vector>

namespace hp::sim {

/// What one fixed-length measurement window observed. All quantities are
/// virtual-time (per step) and per node, so they are comparable across
/// topologies and window lengths.
struct WindowMeasurement {
  double offered_rate = 0;     ///< configured offered packets/node/step
  double throughput = 0;       ///< delivered packets/node/step
  double admit_fraction = 1;   ///< admitted / offered injection attempts
  /// Realized admissions per node per step. This — not the nominal
  /// offered_rate — is what deliveries are compared against: patterns may
  /// exempt nodes (a transpose diagonal never sends) and integer flow
  /// sizes skew the realized packet rate, so the nominal knob is only an
  /// upper bound on what the sources actually produce.
  double admitted_rate = 0;
  double mean_latency = 0;     ///< arrivals in the window (virtual steps)
  double p99_latency = 0;
  double mean_population = 0;  ///< mean packets in flight (pre-move)
  double peak_in_flight = 0;   ///< max post-move in-flight count
  double start_backlog = 0;    ///< in-flight per node at window start
  double end_backlog = 0;      ///< in-flight per node at window end
  std::uint64_t delivered = 0;  ///< packets delivered inside the window
};

/// A system whose offered load can be set per window. Implementations
/// keep their own state across windows (the probe loop intentionally
/// measures a *warm* system; run_window's warmup lets it relax after a
/// rate change before measurement starts).
class LoadableSystem {
 public:
  virtual ~LoadableSystem() = default;

  virtual WindowMeasurement run_window(double rate,
                                       std::uint64_t warmup_steps,
                                       std::uint64_t measure_steps) = 0;
};

struct ProbeConfig {
  double initial_rate = 0.05;  ///< first trial rate
  double min_rate = 1e-3;      ///< below this the system counts as dead
  double max_rate = 1.0;       ///< hot-potato ceiling: 1 packet/node/step
  double growth = 2.0;         ///< probe-up factor while no rate failed yet
  /// Converged when the bracket satisfies hi − lo ≤ tolerance · hi.
  double tolerance = 0.05;
  /// A window is stable iff admit_fraction and throughput/admitted_rate
  /// both reach this floor (the capacity rule is not pushing back, and
  /// deliveries keep up with what was actually admitted).
  double stable_fraction = 0.92;
  std::uint64_t window_steps = 600;  ///< measured steps per window
  std::uint64_t warmup_steps = 200;  ///< relax steps after a rate change
  int max_windows = 48;              ///< hard termination cap
};

/// One probe window of the recorded trajectory: the trial rate, the
/// verdict, and the stable/unstable bracket *after* the verdict was
/// applied (hi is +infinity until some rate has failed).
struct ProbeStep {
  int window = 0;
  double rate = 0;
  bool stable = false;
  double lo = 0;
  double hi = 0;
  WindowMeasurement measurement;
};

struct ProbeResult {
  /// True iff the bracket closed to tolerance (or the ceiling proved
  /// stable). False: the trajectory still records why — either the floor
  /// itself is unstable (an always-oversubscribed system) or max_windows
  /// ran out.
  bool converged = false;
  /// Highest offered rate measured stable (the bracket's lo); 0 when no
  /// rate was ever sustained.
  double saturation_rate = 0;
  double throughput_at_saturation = 0;
  double latency_at_saturation = 0;
  int windows = 0;
  std::vector<ProbeStep> trajectory;
};

class AdmissionController {
 public:
  explicit AdmissionController(ProbeConfig config = {});

  /// Runs the probe loop to termination (convergence, a dead floor, or
  /// max_windows — the loop cannot hang). The returned trajectory has one
  /// entry per window, in order.
  ProbeResult probe(LoadableSystem& system) const;

  /// The stability verdict on one window, exposed for direct unit tests.
  bool stable(const WindowMeasurement& m) const;

  const ProbeConfig& config() const { return config_; }

 private:
  ProbeConfig config_;
};

}  // namespace hp::sim
