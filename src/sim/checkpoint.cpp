#include "sim/checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "sim/engine.hpp"
#include "util/binio.hpp"
#include "util/check.hpp"

namespace hp::sim {

/// Friend of Engine: serializes the private counters and state sections.
/// Everything not written here is per-step scratch the engine rebuilds
/// from scratch-free state at the next step() call.
class CheckpointIO {
 public:
  static void save(const Engine& e, std::ostream& out) {
    util::BinWriter w(out);
    w.u32(kCheckpointMagic);
    w.u32(kCheckpointVersion);

    // Header: what run this checkpoint belongs to. Restore refuses any
    // mismatch — resuming on a different topology/policy/seed would
    // silently compute a different experiment.
    w.str(e.net_.name());
    w.u64(e.num_nodes_);
    w.u32(static_cast<std::uint32_t>(e.num_dirs_));
    w.str(e.policy_.name());
    w.u64(e.config_.seed);

    write_state(e, w);
    w.write_digest_trailer();
    HP_REQUIRE(w.good(), "checkpoint write failed (stream error)");
  }

  static void restore(Engine& e, std::istream& in) {
    HP_REQUIRE(e.now_ == 0 && e.next_id_ == 0 && e.flight_.empty() &&
                   e.archive_.count() == 0,
               "restore_checkpoint needs a freshly constructed engine (no "
               "steps run, no packets injected)");

    util::BinReader r(in, "checkpoint");
    HP_REQUIRE(r.u32() == kCheckpointMagic,
               "not a checkpoint file (bad magic)");
    const std::uint32_t version = r.u32();
    HP_REQUIRE(version == kCheckpointVersion,
               "unsupported checkpoint version " + std::to_string(version) +
                   " (this build reads version " +
                   std::to_string(kCheckpointVersion) + ")");

    const std::string net_name = r.str();
    HP_REQUIRE(net_name == e.net_.name(),
               "checkpoint was written for network '" + net_name +
                   "' but this engine runs on '" + e.net_.name() + "'");
    const std::uint64_t nodes = r.u64();
    const std::uint32_t dirs = r.u32();
    HP_REQUIRE(nodes == e.num_nodes_ &&
                   dirs == static_cast<std::uint32_t>(e.num_dirs_),
               "checkpoint topology shape does not match this engine");
    const std::string policy_name = r.str();
    HP_REQUIRE(policy_name == e.policy_.name(),
               "checkpoint was written under policy '" + policy_name +
                   "' but this engine runs '" + e.policy_.name() + "'");
    const std::uint64_t seed = r.u64();
    HP_REQUIRE(seed == e.config_.seed,
               "checkpoint seed " + std::to_string(seed) +
                   " does not match engine seed " +
                   std::to_string(e.config_.seed));

    e.next_id_ = r.u64();
    e.delivered_ = r.u64();
    e.now_ = r.u64();
    e.last_arrival_ = r.u64();
    e.total_deflections_ = r.u64();
    e.total_advances_ = r.u64();
    e.livelocked_ = r.u8() != 0;
    e.flight_.deserialize(r);
    e.archive_.deserialize(r);
    e.livelock_.deserialize(r);
    r.verify_digest_trailer();
  }

  static std::uint64_t fingerprint(const Engine& e) {
    // Digest the state sections through a BinWriter over a scratch
    // stream: the fingerprint is exactly the FNV-1a hash the checkpoint
    // trailer would carry, minus the header. Spill/sample archives
    // contribute their exact counts instead of records (which live
    // outside the engine), so the fingerprint is total.
    std::ostringstream sink;
    util::BinWriter w(sink);
    write_counters(e, w);
    e.flight_.serialize(w);
    w.u64(e.archive_.count());
    w.u64(e.archive_.dropped());
    if (e.archive_.keeps_records() &&
        e.archive_.mode() == ArchiveMode::kMemory) {
      for (const Packet& p : e.archive_.records()) write_packet_record(w, p);
    }
    return w.digest();
  }

 private:
  static void write_counters(const Engine& e, util::BinWriter& w) {
    w.u64(e.next_id_);
    w.u64(e.delivered_);
    w.u64(e.now_);
    w.u64(e.last_arrival_);
    w.u64(e.total_deflections_);
    w.u64(e.total_advances_);
    w.u8(e.livelocked_ ? 1 : 0);
  }

  static void write_state(const Engine& e, util::BinWriter& w) {
    write_counters(e, w);
    e.flight_.serialize(w);
    e.archive_.serialize(w);
    e.livelock_.serialize(w);
  }
};

void save_checkpoint(const Engine& engine, std::ostream& out) {
  CheckpointIO::save(engine, out);
}

void save_checkpoint(const Engine& engine, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  HP_REQUIRE(out.good(), "cannot create checkpoint file " + path);
  CheckpointIO::save(engine, out);
  out.flush();
  HP_REQUIRE(out.good(), "write to checkpoint file " + path + " failed");
}

void restore_checkpoint(Engine& engine, std::istream& in) {
  CheckpointIO::restore(engine, in);
}

void restore_checkpoint(Engine& engine, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HP_REQUIRE(in.good(), "cannot open checkpoint file " + path);
  CheckpointIO::restore(engine, in);
}

std::uint64_t state_fingerprint(const Engine& engine) {
  return CheckpointIO::fingerprint(engine);
}

}  // namespace hp::sim
