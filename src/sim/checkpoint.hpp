// Checkpoint/restore of the full engine state, and the state fingerprint
// the round-trip tests compare (docs/SCALE.md).
//
// A checkpoint captures everything the next step's outcome depends on:
// the run counters (clock, id watermark, delivered/deflection totals),
// every FlightTable column in slot order plus the id locator window, the
// arrival archive, and the livelock detector's seen-state map. Policy
// randomness needs no state — the engine derives each step's streams from
// (seed, step, node) — so a restored engine replays the interrupted run
// bit-for-bit, for every thread count.
//
// Format v1: little-endian, magic "HPCK" + version word, a header naming
// the topology / policy / seed the checkpoint belongs to, the state
// sections, and an FNV-1a digest trailer over the whole payload. Any
// truncation, corruption, version skew, or mismatched header fails with a
// clear hp::CheckError — never undefined behavior.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace hp::sim {

class Engine;

inline constexpr std::uint32_t kCheckpointMagic = 0x4b435048;  // "HPCK"
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Writes a checkpoint of `engine` at its current step boundary. Requires
/// the in-memory arrival archive (or archive_arrivals off) — spill/sample
/// archives hold state outside the checkpoint.
void save_checkpoint(const Engine& engine, std::ostream& out);
void save_checkpoint(const Engine& engine, const std::string& path);

/// Restores a checkpoint into a freshly constructed engine (no steps run,
/// no packets injected — use an empty workload::Problem). The engine must
/// have been built over the same topology, policy, seed, and
/// archive_arrivals flag the checkpoint names; the MemoryProfile may
/// differ (the wire format is column-width independent).
void restore_checkpoint(Engine& engine, std::istream& in);
void restore_checkpoint(Engine& engine, const std::string& path);

/// FNV-1a digest of the engine's step-boundary state: run counters, every
/// flight column in slot order, the locator window, and the arrival
/// archive. Two engines with equal fingerprints continue identically;
/// slot order is part of the determinism contract, so the fingerprint is
/// thread-count invariant. Defined for every archive mode (spill/sample
/// contribute their exact counts, not their retained records).
std::uint64_t state_fingerprint(const Engine& engine);

}  // namespace hp::sim
