#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <type_traits>

#include "obs/profiler.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"

#ifdef HP_AUDIT
#include <optional>
#include <string>
#include <utility>

// The audit gate reaches one layer up into core/ for the definition
// checkers. Only the .cpp depends on it, and only under HP_AUDIT, so the
// sim -> core edge never leaks into the public headers.
#include "core/checkers.hpp"
#endif

namespace hp::sim {

#ifdef HP_AUDIT
namespace {

/// Wraps the Definition 6 / Definition 18 checkers behind the audit gate:
/// any recorded violation aborts the run via hp::CheckError, so every
/// engine-driving test doubles as a conformance test for the policy's
/// claims.
class DefinitionAudit final : public StepObserver {
 public:
  DefinitionAudit(std::string policy, bool greedy, bool preference)
      : policy_(std::move(policy)) {
    if (greedy) greedy_.emplace();
    if (preference) preference_.emplace();
  }

  void on_step(const Engine& engine, const StepRecord& record) override {
    if (greedy_.has_value()) {
      greedy_->on_step(engine, record);
      HP_CHECK(greedy_->violations().empty(),
               "HP_AUDIT: policy '" + policy_ +
                   "' claims greedy (Definition 6) but violated it: " +
                   greedy_->violations().front());
    }
    if (preference_.has_value()) {
      preference_->on_step(engine, record);
      HP_CHECK(preference_->violations().empty(),
               "HP_AUDIT: policy '" + policy_ +
                   "' claims restricted preference (Definition 18) but "
                   "violated it: " +
                   preference_->violations().front());
    }
  }

 private:
  std::string policy_;
  std::optional<core::GreedyChecker> greedy_;
  std::optional<core::RestrictedPreferenceChecker> preference_;
};

}  // namespace
#endif  // HP_AUDIT

namespace {

/// Seed of the policy's random stream at (engine seed, step, node). Each
/// node gets an independent stream, so routing decisions are a pure
/// function of the node's residents — independent of the order nodes are
/// processed in, which is what makes sharded routing bit-identical to
/// serial routing.
std::uint64_t node_stream_seed(std::uint64_t seed, std::uint64_t step,
                               net::NodeId node) {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL * (step + 1));
  const std::uint64_t a = splitmix64(s);
  s ^= a + 0xbf58476d1ce4e5b9ULL *
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) +
                1);
  return splitmix64(s);
}

/// Inserts `id` into an id-sorted bucket. Buckets hold at most the node
/// degree, so this is a handful of moves at worst.
template <typename BucketT>
void sorted_insert(BucketT& bucket, PacketId id) {
  bucket.push_back(id);
  std::size_t i = bucket.size() - 1;
  while (i > 0 && bucket[i - 1] > bucket[i]) {
    std::swap(bucket[i - 1], bucket[i]);
    --i;
  }
}

/// Occupancy-ownership shard count: a function of the node count ALONE.
/// The owner-grouped occupied_ ordering depends on this value, so it must
/// never vary with the thread count (or any other machine property) — one
/// shard per 256 nodes keeps small determinism-corpus meshes on the exact
/// legacy ordering while giving large networks enough owners to scale.
std::size_t occupancy_shard_count(std::size_t num_nodes) {
  return std::clamp<std::size_t>(num_nodes / 256, 1, 32);
}

/// Slot count below which the occupancy scatter/bucket fan-out costs more
/// than it buys. Pure tuning: both paths produce the identical ordering.
constexpr std::size_t kParallelOccupancyCutoff = 1024;

std::uint64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

Engine::Engine(const net::Network& net, const workload::Problem& problem,
               RoutingPolicy& policy, EngineConfig config)
    : net_(net),
      policy_(policy),
      config_(config),
      lean_(config.memory == MemoryProfile::kLean),
      flight_(config.memory == MemoryProfile::kLean ? ColumnWidth::kCompact
                                                    : ColumnWidth::kWide),
      occupancy_(net.num_nodes()),
      node_stamp_(net.num_nodes(), ~std::uint64_t{0}) {
  HP_REQUIRE(config_.num_threads >= 1 && config_.num_threads <= 512,
             "num_threads must be in [1, 512]");
  archive_.configure(config_.archive);
  archive_.set_keep_records(config_.archive_arrivals);

  num_dirs_ = net.num_dirs();
  num_nodes_ = net.num_nodes();
  const auto n = num_nodes_;
  if (!lean_) {
    degree_.resize(n);
    avail_dirs_.resize(n);
    neighbor_table_.resize(n * static_cast<std::size_t>(num_dirs_));
    for (std::size_t v = 0; v < n; ++v) {
      const auto node = static_cast<net::NodeId>(v);
      for (net::Dir d = 0; d < num_dirs_; ++d) {
        const net::NodeId nb = net.neighbor(node, d);
        neighbor_table_[v * static_cast<std::size_t>(num_dirs_) +
                        static_cast<std::size_t>(d)] = nb;
        if (nb != net::kInvalidNode) {
          avail_dirs_[v].push_back(d);
          ++degree_[v];
        }
      }
    }
  }

  occ_shards_ = occupancy_shard_count(n);
  if (occ_shards_ > 1) {
    shards_.resize(occ_shards_);
    scatter_.resize(occ_shards_ * occ_shards_);
  }

  problem.validate(net);
  inject(problem);

  if (config_.profile) profiler_ = std::make_unique<obs::PhaseProfiler>();

#ifdef HP_AUDIT
  if (policy.claims_greedy() || policy.claims_restricted_preference()) {
    audit_ = std::make_unique<DefinitionAudit>(
        policy.name(), policy.claims_greedy(),
        policy.claims_restricted_preference());
    add_observer(audit_.get());
  }
#endif

  if (config_.num_threads > 1) start_pool();
}

Engine::~Engine() { stop_pool(); }

void Engine::inject(const workload::Problem& problem) {
  for (const auto& spec : problem.packets) {
    Packet p;
    p.id = static_cast<PacketId>(next_id_++);
    p.src = spec.src;
    p.dst = spec.dst;
    p.pos = spec.src;
    p.initial_distance = net_.distance(spec.src, spec.dst);
    if (p.pos == p.dst) {
      // Trivial packet: delivered at injection, never routed.
      p.arrived_at = 0;
      ++delivered_;
      flight_.note_absent(p.id);
      archive_.append(p);
    } else {
      flight_.insert(p);
    }
  }
}

void Engine::add_observer(StepObserver* observer) {
  HP_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

Packet Engine::packet(PacketId id) const {
  const FlightTable::Slot s = flight_.slot_of(id);
  if (s != FlightTable::kNoSlot) return flight_.materialize(s);
  for (const Packet& p : step_arrivals_) {
    if (p.id == id) return p;
  }
  const Packet* archived = archive_.find(id);
  HP_CHECK(archived != nullptr,
           "no record of packet " + std::to_string(id) +
               " (delivered and archive_arrivals is off?)");
  return *archived;
}

net::NodeId Engine::packet_dst(PacketId id) const {
  const FlightTable::Slot s = flight_.slot_of(id);
  if (s != FlightTable::kNoSlot) return flight_.dst(s);
  return packet(id).dst;
}

std::vector<Packet> Engine::snapshot_packets() const {
  HP_REQUIRE(config_.archive_arrivals,
             "snapshot_packets() needs archive_arrivals = true");
  HP_REQUIRE(archive_.mode() == ArchiveMode::kMemory,
             "snapshot_packets() needs the in-memory arrival archive; spill "
             "and sample modes drop or reorder records");
  std::vector<Packet> out(static_cast<std::size_t>(next_id_));
  for (const Packet& p : archive_.records()) {
    out[static_cast<std::size_t>(p.id)] = p;
  }
  for (FlightTable::Slot s = 0; s < flight_.end_slot(); ++s) {
    out[static_cast<std::size_t>(flight_.id(s))] = flight_.materialize(s);
  }
  return out;
}

net::DirList Engine::node_avail_dirs(net::NodeId node) const {
  if (!lean_) return avail_dirs_[static_cast<std::size_t>(node)];
  // Lean profile: probe the arcs on demand. Same ascending order the
  // cache-building loop produces, so both profiles hand policies an
  // identical NodeContext.
  net::DirList dirs;
  for (net::Dir d = 0; d < num_dirs_; ++d) {
    if (net_.neighbor(node, d) != net::kInvalidNode) dirs.push_back(d);
  }
  return dirs;
}

EngineMemoryStats Engine::memory_stats() const {
  const auto vec_bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  EngineMemoryStats stats;
  stats.topology_bytes =
      vec_bytes(degree_) + vec_bytes(avail_dirs_) + vec_bytes(neighbor_table_);
  stats.occupancy_bytes =
      vec_bytes(occupancy_) + vec_bytes(occupied_) + vec_bytes(node_stamp_);
  stats.flight_bytes = flight_.memory_bytes();
  stats.archive_bytes = archive_.memory_bytes();
  stats.scratch_bytes = vec_bytes(assignments_) + vec_bytes(step_arrivals_) +
                        vec_bytes(good_mask_) + vec_bytes(epoch_ns_) +
                        vec_bytes(shards_) + vec_bytes(scatter_);
  for (const ShardState& s : shards_) {
    stats.scratch_bytes += vec_bytes(s.route_buf) + vec_bytes(s.occ_nodes) +
                           vec_bytes(s.arrivals);
  }
  for (const auto& row : scatter_) stats.scratch_bytes += vec_bytes(row);
  return stats;
}

std::vector<PacketId> Engine::packets_at(net::NodeId node) const {
  std::vector<PacketId> out;
  for (FlightTable::Slot s = 0; s < flight_.end_slot(); ++s) {
    if (flight_.pos(s) == node) out.push_back(flight_.id(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- pool ------------------------------------------------------------------

void Engine::start_pool() {
  const auto threads = static_cast<std::size_t>(config_.num_threads);
  barrier_ = std::make_unique<util::PhaseBarrier>(
      static_cast<std::uint32_t>(threads - 1));
  workers_.reserve(threads - 1);
  for (std::size_t w = 0; w + 1 < threads; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Engine::stop_pool() {
  if (workers_.empty()) return;
  barrier_->shutdown();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void Engine::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const util::PhaseBarrier::Epoch e = barrier_->wait_open(seen);
    seen = e.serial;
    if (e.stop) return;
    drain_tasks();
    barrier_->leave();
  }
}

void Engine::drain_tasks() {
  const bool timed = profiler_ != nullptr;
  for (;;) {
    const std::uint32_t t = barrier_->next_task();
    if (t == util::PhaseBarrier::kNoTask) return;
    HP_SHARED_WRITE("barrier tickets give task t exactly one owner");
    ShardState& shard = shards_[t];
    try {
      if (timed) {
        const auto t0 = std::chrono::steady_clock::now();
        run_task(task_kind_, t);
        shard.ns = ns_since(t0);
      } else {
        run_task(task_kind_, t);
      }
    } catch (...) {
      // Workers must not unwind out of worker_loop; the main thread
      // rethrows the first error in task order after the epoch closes.
      shard.error = std::current_exception();
    }
  }
}

void Engine::run_sharded(TaskKind kind, std::size_t count, std::size_t items,
                         obs::Phase phase) {
  task_kind_ = kind;
  task_count_ = count;
  task_items_ = items;
  if (shards_.size() < count) shards_.resize(count);
  if (barrier_ == nullptr || count <= 1) {
    for (std::size_t t = 0; t < count; ++t) run_task(kind, t);
    return;
  }
  for (std::size_t t = 0; t < count; ++t) {
    shards_[t].error = nullptr;
    shards_[t].ns = 0;
  }
  barrier_->open(static_cast<std::uint32_t>(count),
                 static_cast<std::uint32_t>(kind));
  drain_tasks();  // the main thread is a full participant
  barrier_->close();
  for (std::size_t t = 0; t < count; ++t) {
    if (shards_[t].error) std::rethrow_exception(shards_[t].error);
  }
  if (profiler_ != nullptr) {
    epoch_ns_.resize(count);
    for (std::size_t t = 0; t < count; ++t) epoch_ns_[t] = shards_[t].ns;
    profiler_->add_shard_epoch(phase, epoch_ns_.data(), count);
  }
}

void Engine::run_task(TaskKind kind, std::size_t task) {
  const std::size_t begin = task_items_ * task / task_count_;
  const std::size_t end = task_items_ * (task + 1) / task_count_;
  switch (kind) {
    case TaskKind::kScan:
      scan_slots(task, begin, end);
      break;
    case TaskKind::kBucket:
      bucket_owner(task);
      break;
    case TaskKind::kGoodMask:
      policy_.batch_good_dirs(net_, flight_.pos_data() + begin,
                              flight_.dst_data() + begin,
                              good_mask_.data() + begin, end - begin);
      break;
    case TaskKind::kRoute:
      route_range(begin, end, shards_[task].route_buf);
      break;
    case TaskKind::kMove:
      move_range(task, begin, end);
      break;
  }
}

std::size_t Engine::sub_tasks(std::size_t items, std::size_t grain) const {
  if (barrier_ == nullptr || items < 2 * grain) return 1;
  const auto threads = static_cast<std::size_t>(config_.num_threads);
  return std::min({items / grain, 4 * threads, std::size_t{128}});
}

// --- occupancy -------------------------------------------------------------

void Engine::scan_slots(std::size_t task, std::size_t begin,
                        std::size_t end) {
  const std::size_t row = task * occ_shards_;
  for (std::size_t o = 0; o < occ_shards_; ++o) scatter_[row + o].clear();
  for (std::size_t i = begin; i < end; ++i) {
    const auto s = static_cast<FlightTable::Slot>(i);
    const net::NodeId node = flight_.pos(s);
    scatter_[row + owner_of(node)].emplace_back(node, flight_.id(s));
  }
}

void Engine::bucket_owner(std::size_t owner) {
  ShardState& shard = shards_[owner];
  shard.occ_nodes.clear();
  // Rows in scan-task order, pairs in slot order within a row: the
  // first-seen order below is the global slot order restricted to this
  // owner's nodes — independent of how many scan tasks produced the rows.
  for (std::size_t r = 0; r < occ_shards_; ++r) {
    for (const auto& [node, id] : scatter_[r * occ_shards_ + owner]) {
      const auto n = static_cast<std::size_t>(node);
      if (node_stamp_[n] != now_) {
        node_stamp_[n] = now_;
        occupancy_[n].clear();
        shard.occ_nodes.push_back(node);
      }
      sorted_insert(occupancy_[n], id);
    }
  }
}

void Engine::build_occupancy() {
  occupied_.clear();
  const std::size_t slots = flight_.size();
  if (occ_shards_ == 1) {
    // Single-owner networks keep the exact legacy ordering (first seen in
    // slot order) — the determinism corpus pins this path byte-for-byte.
    for (FlightTable::Slot s = 0; s < flight_.end_slot(); ++s) {
      const net::NodeId node = flight_.pos(s);
      const auto n = static_cast<std::size_t>(node);
      if (node_stamp_[n] != now_) {
        node_stamp_[n] = now_;
        occupancy_[n].clear();
        occupied_.push_back(node);
      }
      sorted_insert(occupancy_[n], flight_.id(s));
    }
    return;
  }

  if (barrier_ != nullptr && slots >= kParallelOccupancyCutoff) {
    run_sharded(TaskKind::kScan, occ_shards_, slots, obs::Phase::kOccupancy);
    run_sharded(TaskKind::kBucket, occ_shards_, occ_shards_,
                obs::Phase::kOccupancy);
  } else {
    // Serial fallback producing the identical owner-grouped ordering.
    for (std::size_t o = 0; o < occ_shards_; ++o) {
      shards_[o].occ_nodes.clear();
    }
    for (FlightTable::Slot s = 0; s < flight_.end_slot(); ++s) {
      const net::NodeId node = flight_.pos(s);
      const auto n = static_cast<std::size_t>(node);
      if (node_stamp_[n] != now_) {
        node_stamp_[n] = now_;
        occupancy_[n].clear();
        shards_[owner_of(node)].occ_nodes.push_back(node);
      }
      sorted_insert(occupancy_[n], flight_.id(s));
    }
  }
  for (std::size_t o = 0; o < occ_shards_; ++o) {
    occupied_.insert(occupied_.end(), shards_[o].occ_nodes.begin(),
                     shards_[o].occ_nodes.end());
  }
}

// --- injection -------------------------------------------------------------

void Engine::set_injector(Injector* injector) {
  HP_REQUIRE(injector != nullptr, "null injector");
  injector_ = injector;
}

bool Engine::try_inject(net::NodeId src, net::NodeId dst) {
  HP_CHECK(injecting_now_,
           "try_inject may only be called from an Injector during step()");
  const auto n = static_cast<net::NodeId>(net_.num_nodes());
  HP_REQUIRE(src >= 0 && src < n, "injection origin out of range");
  HP_REQUIRE(dst >= 0 && dst < n, "injection destination out of range");

  Packet p;
  p.id = static_cast<PacketId>(next_id_);
  p.src = src;
  p.dst = dst;
  p.pos = src;
  p.injected_at = now_;
  p.initial_distance = net_.distance(src, dst);
  if (src == dst) {
    p.arrived_at = now_;
    ++next_id_;
    ++delivered_;
    flight_.note_absent(p.id);
    archive_.append(p);
    return true;
  }

  // Capacity rule: a node never holds more packets than its out-degree.
  const auto node = static_cast<std::size_t>(src);
  if (node_stamp_[node] != now_) {
    node_stamp_[node] = now_;
    occupancy_[node].clear();
    occupied_.push_back(src);
  }
  if (static_cast<int>(occupancy_[node].size()) >= node_degree(src)) {
    return false;
  }
  ++next_id_;
  sorted_insert(occupancy_[node], p.id);
  flight_.insert(p);
  return true;
}

// --- routing ---------------------------------------------------------------

void Engine::route_node(net::NodeId node, const Bucket& residents,
                        std::vector<Assignment>& out) {
  HP_CHECK(static_cast<int>(residents.size()) <= node_degree(node),
           "more packets at a node than its degree — model violation");

  Rng node_rng(node_stream_seed(config_.seed, now_, node));
  NodeContext ctx{net_, node, now_, node_avail_dirs(node), node_rng};

  InlineVector<PacketView, 2 * net::kMaxDim> views;
  for (PacketId id : residents) {
    const FlightTable::Slot s = flight_.slot_of(id);
    PacketView v;
    v.id = id;
    v.dst = flight_.dst(s);
    v.entry_dir = flight_.entry_dir(s);
    v.good_mask = good_mask_[static_cast<std::size_t>(s)];
    HP_CHECK(v.good_mask != 0,
             "packet with no good direction was not absorbed — engine bug");
    v.good = net::dirlist_from_mask(v.good_mask);
    v.prev_advanced = flight_.prev_advanced(s);
    v.prev_num_good = flight_.prev_num_good(s);
    views.push_back(v);
  }

  InlineVector<net::Dir, 2 * net::kMaxDim> dirs;
  for (std::size_t i = 0; i < residents.size(); ++i) {
    dirs.push_back(net::kInvalidDir);
  }
  HP_SHARED_WRITE("route() is concurrent-safe per the RoutingPolicy contract");
  policy_.route(ctx, std::span<const PacketView>(views.data(), views.size()),
                std::span<net::Dir>(dirs.data(), dirs.size()));

  // Validate the assignment: every packet got an existing arc and no arc
  // is used twice (one packet per directed link per step).
  std::uint32_t used_mask = 0;
  for (std::size_t i = 0; i < residents.size(); ++i) {
    const net::Dir d = dirs[i];
    HP_CHECK(d >= 0 && d < net_.num_dirs(),
             "policy '" + policy_.name() + "' returned an invalid direction");
    HP_CHECK(arc_target(node, d) != net::kInvalidNode,
             "policy '" + policy_.name() + "' routed a packet off the mesh");
    const std::uint32_t bit = std::uint32_t{1} << d;
    HP_CHECK((used_mask & bit) == 0,
             "policy '" + policy_.name() + "' put two packets on one arc");
    used_mask |= bit;

    Assignment a;
    a.pkt = residents[i];
    a.node = node;
    a.out = d;
    a.advances = (views[i].good_mask & bit) != 0;
    a.num_good = views[i].num_good();
    a.good_mask = views[i].good_mask;
    a.was_type_a = views[i].type_a();
    a.prev_advanced = views[i].prev_advanced;
    a.prev_num_good = views[i].prev_num_good;
    out.push_back(a);
  }
}

void Engine::route_range(std::size_t begin, std::size_t end,
                         std::vector<Assignment>& out) {
  for (std::size_t i = begin; i < end; ++i) {
    const net::NodeId node = occupied_[i];
    route_node(node, occupancy_[static_cast<std::size_t>(node)], out);
  }
}

void Engine::route_all() {
  // Good-direction masks for every in-flight packet, batched over the
  // dense pos/dst columns (closed-form topology fast paths, no per-packet
  // virtual call). Runs after injection so injected packets are covered.
  const std::size_t slots = flight_.size();
  good_mask_.resize(slots);
  run_sharded(TaskKind::kGoodMask, sub_tasks(slots, 2048), slots,
              obs::Phase::kRoute);

  const std::size_t m = occupied_.size();
  const std::size_t tasks = sub_tasks(m, 64);
  if (tasks <= 1) {
    // Inline routing: sharding only buys wall-clock, never changes
    // results (per-task buffers concatenate to the serial sequence), so
    // the cutover point is a pure tuning knob.
    route_range(0, m, assignments_);
    return;
  }
  if (shards_.size() < tasks) shards_.resize(tasks);
  for (std::size_t t = 0; t < tasks; ++t) shards_[t].route_buf.clear();
  run_sharded(TaskKind::kRoute, tasks, m, obs::Phase::kRoute);
  for (std::size_t t = 0; t < tasks; ++t) {
    assignments_.insert(assignments_.end(), shards_[t].route_buf.begin(),
                        shards_[t].route_buf.end());
  }
}

// --- apply -----------------------------------------------------------------

void Engine::move_range(std::size_t task, std::size_t begin,
                        std::size_t end) {
  // Every assignment addresses a distinct packet (the engine validates one
  // arc per packet per node), so concurrent tasks write disjoint flight
  // slots. Removal mutates the slot layout and therefore stays serial, in
  // assignment order, back in apply_assignments().
  ShardState& shard = shards_[task];
  shard.arrivals.clear();
  shard.advances = 0;
  shard.deflections = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Assignment& a = assignments_[i];
    const FlightTable::Slot s = flight_.slot_of(a.pkt);
    HP_CHECK(s != FlightTable::kNoSlot,
             "assignment for a packet that is not in flight");
    const net::NodeId to = arc_target(a.node, a.out);
    HP_CHECK(to != net::kInvalidNode, "movement off the network");
    flight_.move(s, to, a.out, a.advances, a.num_good);
    if (a.advances) {
      ++shard.advances;
    } else {
      ++shard.deflections;
    }
    if (to == flight_.dst(s)) shard.arrivals.push_back(a.pkt);
  }
}

void Engine::apply_assignments() {
  const std::size_t count = assignments_.size();
  const std::size_t tasks = std::max<std::size_t>(sub_tasks(count, 2048), 1);
  run_sharded(TaskKind::kMove, tasks, count, obs::Phase::kApply);
  // Serial epilogue: totals, then arrival removal. Concatenating per-task
  // arrival lists in task order reproduces assignment order exactly, so
  // the swap-remove sequence — and with it every future slot layout — is
  // identical to a serial apply.
  for (std::size_t t = 0; t < tasks; ++t) {
    total_advances_ += shards_[t].advances;
    total_deflections_ += shards_[t].deflections;
    for (const PacketId pkt : shards_[t].arrivals) {
      const FlightTable::Slot s = flight_.slot_of(pkt);
      Packet record = flight_.remove(s, now_ + 1);
      last_arrival_ = now_ + 1;
      ++delivered_;
      step_arrivals_.push_back(record);
    }
  }
  for (const Packet& p : step_arrivals_) archive_.append(p);
}

// --- step ------------------------------------------------------------------

bool Engine::step() {
  if ((flight_.empty() && injector_ == nullptr) || livelocked_) return false;

  assignments_.clear();
  step_arrivals_.clear();
  {
    obs::PhaseScope scope(profiler_.get(), obs::Phase::kOccupancy);
    build_occupancy();
  }
  if (injector_ != nullptr) {
    obs::PhaseScope scope(profiler_.get(), obs::Phase::kInject);
    injecting_now_ = true;
    injector_->inject(*this, now_);
    injecting_now_ = false;
  }

  {
    obs::PhaseScope scope(profiler_.get(), obs::Phase::kRoute);
    route_all();
  }
  {
    obs::PhaseScope scope(profiler_.get(), obs::Phase::kApply);
    apply_assignments();
  }

  ++now_;

  StepRecord record;
  record.step = now_ - 1;
  record.assignments = assignments_;
  record.arrivals = step_arrivals_;
  record.in_flight_after = flight_.size();
  {
    obs::PhaseScope scope(profiler_.get(), obs::Phase::kObserve);
    for (StepObserver* obs : observers_) {
      obs->on_step(*this, record);
    }
  }
  if (profiler_ != nullptr) profiler_->note_step();

  if (config_.detect_livelock && policy_.deterministic() &&
      injector_ == nullptr && !flight_.empty()) {
    const auto repeat = livelock_.record(digest_state(flight_), now_);
    if (repeat != LivelockDetector::kNoRepeat) livelocked_ = true;
  }
  return true;
}

RunResult Engine::make_result() {
  RunResult result;
  result.completed = flight_.empty();
  result.livelocked = livelocked_;
  result.steps = result.completed ? last_arrival_ : now_;
  result.steps_executed = now_;
  result.total_deflections = total_deflections_;
  result.total_advances = total_advances_;
  result.num_packets = num_packets();
  if (config_.archive_arrivals && archive_.mode() == ArchiveMode::kMemory) {
    result.packets = snapshot_packets();
  }
  return result;
}

RunResult Engine::run() {
  HP_REQUIRE(injector_ == nullptr,
             "run() is for batch problems; use run_for() with an injector");
  while (!flight_.empty() && !livelocked_ && now_ < config_.max_steps) {
    step();
  }
  return make_result();
}

RunResult Engine::run_for(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    if (!step()) break;
  }
  return make_result();
}

}  // namespace hp::sim
