#include "sim/engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hp::sim {

Engine::Engine(const net::Network& net, const workload::Problem& problem,
               RoutingPolicy& policy, EngineConfig config)
    : net_(net),
      policy_(policy),
      config_(config),
      rng_(config.seed),
      occupancy_(net.num_nodes()),
      node_stamp_(net.num_nodes(), ~std::uint64_t{0}) {
  problem.validate(net);
  inject(problem);
}

void Engine::inject(const workload::Problem& problem) {
  packets_.reserve(problem.packets.size());
  PacketId next_id = 0;
  for (const auto& spec : problem.packets) {
    Packet p;
    p.id = next_id++;
    p.src = spec.src;
    p.dst = spec.dst;
    p.pos = spec.src;
    p.initial_distance = net_.distance(spec.src, spec.dst);
    if (p.pos == p.dst) {
      // Trivial packet: delivered at injection, never routed.
      p.arrived_at = 0;
      ++delivered_;
    } else {
      ++in_flight_;
    }
    packets_.push_back(p);
  }
}

void Engine::add_observer(StepObserver* observer) {
  HP_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

std::vector<PacketId> Engine::packets_at(net::NodeId node) const {
  std::vector<PacketId> out;
  for (const Packet& p : packets_) {
    if (!p.arrived() && p.pos == node) out.push_back(p.id);
  }
  return out;
}

void Engine::build_occupancy() {
  occupied_.clear();
  for (const Packet& p : packets_) {
    if (p.arrived()) continue;
    const auto node = static_cast<std::size_t>(p.pos);
    if (node_stamp_[node] != now_) {
      node_stamp_[node] = now_;
      occupancy_[node].clear();
      occupied_.push_back(p.pos);
    }
    occupancy_[node].push_back(p.id);
  }
}

void Engine::set_injector(Injector* injector) {
  HP_REQUIRE(injector != nullptr, "null injector");
  injector_ = injector;
}

bool Engine::try_inject(net::NodeId src, net::NodeId dst) {
  HP_CHECK(injecting_now_,
           "try_inject may only be called from an Injector during step()");
  const auto n = static_cast<net::NodeId>(net_.num_nodes());
  HP_REQUIRE(src >= 0 && src < n, "injection origin out of range");
  HP_REQUIRE(dst >= 0 && dst < n, "injection destination out of range");

  Packet p;
  p.id = static_cast<PacketId>(packets_.size());
  p.src = src;
  p.dst = dst;
  p.pos = src;
  p.injected_at = now_;
  p.initial_distance = net_.distance(src, dst);
  if (src == dst) {
    p.arrived_at = now_;
    ++delivered_;
    packets_.push_back(p);
    return true;
  }

  // Capacity rule: a node never holds more packets than its out-degree.
  const auto node = static_cast<std::size_t>(src);
  if (node_stamp_[node] != now_) {
    node_stamp_[node] = now_;
    occupancy_[node].clear();
    occupied_.push_back(src);
  }
  if (static_cast<int>(occupancy_[node].size()) >= net_.degree(src)) {
    return false;
  }
  occupancy_[node].push_back(p.id);
  packets_.push_back(p);
  ++in_flight_;
  return true;
}

void Engine::route_node(net::NodeId node,
                        const std::vector<PacketId>& residents) {
  const int degree = net_.degree(node);
  HP_CHECK(static_cast<int>(residents.size()) <= degree,
           "more packets at a node than its degree — model violation");

  NodeContext ctx{net_, node, now_, {}, rng_};
  for (net::Dir d = 0; d < net_.num_dirs(); ++d) {
    if (net_.arc_exists(node, d)) ctx.avail_dirs.push_back(d);
  }

  InlineVector<PacketView, 2 * net::kMaxDim> views;
  for (PacketId id : residents) {
    const Packet& p = packets_[static_cast<std::size_t>(id)];
    PacketView v;
    v.id = id;
    v.dst = p.dst;
    v.entry_dir = p.last_move_dir;
    v.good = net_.good_dirs(node, p.dst);
    HP_CHECK(!v.good.empty(),
             "packet with no good direction was not absorbed — engine bug");
    v.prev_advanced = p.prev_advanced;
    v.prev_num_good = p.prev_num_good;
    views.push_back(v);
  }

  InlineVector<net::Dir, 2 * net::kMaxDim> out;
  for (std::size_t i = 0; i < residents.size(); ++i) {
    out.push_back(net::kInvalidDir);
  }
  policy_.route(ctx, std::span<const PacketView>(views.data(), views.size()),
                std::span<net::Dir>(out.data(), out.size()));

  // Validate the assignment: every packet got an existing arc and no arc
  // is used twice (one packet per directed link per step).
  std::uint32_t used_mask = 0;
  for (std::size_t i = 0; i < residents.size(); ++i) {
    const net::Dir d = out[i];
    HP_CHECK(d >= 0 && d < net_.num_dirs(),
             "policy '" + policy_.name() + "' returned an invalid direction");
    HP_CHECK(net_.arc_exists(node, d),
             "policy '" + policy_.name() + "' routed a packet off the mesh");
    const std::uint32_t bit = std::uint32_t{1} << d;
    HP_CHECK((used_mask & bit) == 0,
             "policy '" + policy_.name() + "' put two packets on one arc");
    used_mask |= bit;

    Assignment a;
    a.pkt = residents[i];
    a.node = node;
    a.out = d;
    a.advances = views[i].good.contains(d);
    a.num_good = views[i].num_good();
    for (net::Dir g : views[i].good) a.good_mask |= std::uint32_t{1} << g;
    a.was_type_a = views[i].type_a();
    a.prev_advanced = views[i].prev_advanced;
    a.prev_num_good = views[i].prev_num_good;
    assignments_.push_back(a);
  }
}

bool Engine::step() {
  if ((in_flight_ == 0 && injector_ == nullptr) || livelocked_) return false;

  assignments_.clear();
  arrivals_.clear();
  build_occupancy();
  if (injector_ != nullptr) {
    injecting_now_ = true;
    injector_->inject(*this, now_);
    injecting_now_ = false;
  }
  // Process nodes in a fixed order so runs are reproducible regardless of
  // packet table order.
  std::sort(occupied_.begin(), occupied_.end());

  for (net::NodeId node : occupied_) {
    route_node(node, occupancy_[static_cast<std::size_t>(node)]);
  }

  // Apply the movement.
  for (const Assignment& a : assignments_) {
    Packet& p = packets_[static_cast<std::size_t>(a.pkt)];
    p.pos = net_.neighbor(a.node, a.out);
    HP_CHECK(p.pos != net::kInvalidNode, "movement off the network");
    p.last_move_dir = a.out;
    p.prev_advanced = a.advances;
    p.prev_num_good = a.num_good;
    if (a.advances) {
      ++total_advances_;
    } else {
      ++p.deflections;
      ++total_deflections_;
    }
    if (p.pos == p.dst) {
      p.arrived_at = now_ + 1;
      last_arrival_ = now_ + 1;
      --in_flight_;
      ++delivered_;
      arrivals_.push_back(p.id);
    }
  }

  ++now_;

  StepRecord record;
  record.step = now_ - 1;
  record.assignments = assignments_;
  record.arrivals = arrivals_;
  for (StepObserver* obs : observers_) {
    obs->on_step(*this, record);
  }

  if (config_.detect_livelock && policy_.deterministic() &&
      injector_ == nullptr && in_flight_ > 0) {
    const auto repeat = livelock_.record(digest_state(packets_), now_);
    if (repeat != LivelockDetector::kNoRepeat) livelocked_ = true;
  }
  return true;
}

RunResult Engine::run() {
  HP_REQUIRE(injector_ == nullptr,
             "run() is for batch problems; use run_for() with an injector");
  while (in_flight_ > 0 && !livelocked_ && now_ < config_.max_steps) {
    step();
  }
  RunResult result;
  result.completed = (in_flight_ == 0);
  result.livelocked = livelocked_;
  result.steps = result.completed ? last_arrival_ : now_;
  result.steps_executed = now_;
  result.total_deflections = total_deflections_;
  result.total_advances = total_advances_;
  result.num_packets = packets_.size();
  result.packets = packets_;
  return result;
}

RunResult Engine::run_for(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    if (!step()) break;
  }
  RunResult result;
  result.completed = (in_flight_ == 0);
  result.livelocked = livelocked_;
  result.steps = last_arrival_;
  result.steps_executed = now_;
  result.total_deflections = total_deflections_;
  result.total_advances = total_advances_;
  result.num_packets = packets_.size();
  result.packets = packets_;
  return result;
}

}  // namespace hp::sim
