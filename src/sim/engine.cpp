#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>

#include "obs/profiler.hpp"
#include "util/check.hpp"

#ifdef HP_AUDIT
#include <optional>
#include <string>
#include <utility>

// The audit gate reaches one layer up into core/ for the definition
// checkers. Only the .cpp depends on it, and only under HP_AUDIT, so the
// sim -> core edge never leaks into the public headers.
#include "core/checkers.hpp"
#endif

namespace hp::sim {

#ifdef HP_AUDIT
namespace {

/// Wraps the Definition 6 / Definition 18 checkers behind the audit gate:
/// any recorded violation aborts the run via hp::CheckError, so every
/// engine-driving test doubles as a conformance test for the policy's
/// claims.
class DefinitionAudit final : public StepObserver {
 public:
  DefinitionAudit(std::string policy, bool greedy, bool preference)
      : policy_(std::move(policy)) {
    if (greedy) greedy_.emplace();
    if (preference) preference_.emplace();
  }

  void on_step(const Engine& engine, const StepRecord& record) override {
    if (greedy_.has_value()) {
      greedy_->on_step(engine, record);
      HP_CHECK(greedy_->violations().empty(),
               "HP_AUDIT: policy '" + policy_ +
                   "' claims greedy (Definition 6) but violated it: " +
                   greedy_->violations().front());
    }
    if (preference_.has_value()) {
      preference_->on_step(engine, record);
      HP_CHECK(preference_->violations().empty(),
               "HP_AUDIT: policy '" + policy_ +
                   "' claims restricted preference (Definition 18) but "
                   "violated it: " +
                   preference_->violations().front());
    }
  }

 private:
  std::string policy_;
  std::optional<core::GreedyChecker> greedy_;
  std::optional<core::RestrictedPreferenceChecker> preference_;
};

}  // namespace
#endif  // HP_AUDIT

namespace {

/// Seed of the policy's random stream at (engine seed, step, node). Each
/// node gets an independent stream, so routing decisions are a pure
/// function of the node's residents — independent of the order nodes are
/// processed in, which is what makes sharded routing bit-identical to
/// serial routing.
std::uint64_t node_stream_seed(std::uint64_t seed, std::uint64_t step,
                               net::NodeId node) {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL * (step + 1));
  const std::uint64_t a = splitmix64(s);
  s ^= a + 0xbf58476d1ce4e5b9ULL *
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) +
                1);
  return splitmix64(s);
}

/// Inserts `id` into an id-sorted bucket. Buckets hold at most the node
/// degree, so this is a handful of moves at worst.
void sorted_insert(InlineVector<PacketId, 2 * net::kMaxDim>& bucket,
                   PacketId id) {
  bucket.push_back(id);
  std::size_t i = bucket.size() - 1;
  while (i > 0 && bucket[i - 1] > bucket[i]) {
    std::swap(bucket[i - 1], bucket[i]);
    --i;
  }
}

}  // namespace

Engine::Engine(const net::Network& net, const workload::Problem& problem,
               RoutingPolicy& policy, EngineConfig config)
    : net_(net),
      policy_(policy),
      config_(config),
      occupancy_(net.num_nodes()),
      node_stamp_(net.num_nodes(), ~std::uint64_t{0}) {
  HP_REQUIRE(config_.num_threads >= 1 && config_.num_threads <= 512,
             "num_threads must be in [1, 512]");
  archive_.set_keep_records(config_.archive_arrivals);

  num_dirs_ = net.num_dirs();
  const auto n = net.num_nodes();
  degree_.resize(n);
  avail_dirs_.resize(n);
  neighbor_table_.resize(n * static_cast<std::size_t>(num_dirs_));
  for (std::size_t v = 0; v < n; ++v) {
    const auto node = static_cast<net::NodeId>(v);
    for (net::Dir d = 0; d < num_dirs_; ++d) {
      const net::NodeId nb = net.neighbor(node, d);
      neighbor_table_[v * static_cast<std::size_t>(num_dirs_) +
                      static_cast<std::size_t>(d)] = nb;
      if (nb != net::kInvalidNode) {
        avail_dirs_[v].push_back(d);
        ++degree_[v];
      }
    }
  }

  problem.validate(net);
  inject(problem);

  if (config_.profile) profiler_ = std::make_unique<obs::PhaseProfiler>();

#ifdef HP_AUDIT
  if (policy.claims_greedy() || policy.claims_restricted_preference()) {
    audit_ = std::make_unique<DefinitionAudit>(
        policy.name(), policy.claims_greedy(),
        policy.claims_restricted_preference());
    add_observer(audit_.get());
  }
#endif

  if (config_.num_threads > 1) start_pool();
}

Engine::~Engine() { stop_pool(); }

void Engine::inject(const workload::Problem& problem) {
  for (const auto& spec : problem.packets) {
    Packet p;
    p.id = static_cast<PacketId>(next_id_++);
    p.src = spec.src;
    p.dst = spec.dst;
    p.pos = spec.src;
    p.initial_distance = net_.distance(spec.src, spec.dst);
    if (p.pos == p.dst) {
      // Trivial packet: delivered at injection, never routed.
      p.arrived_at = 0;
      ++delivered_;
      flight_.note_absent(p.id);
      archive_.append(p);
    } else {
      flight_.insert(p);
    }
  }
}

void Engine::add_observer(StepObserver* observer) {
  HP_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

Packet Engine::packet(PacketId id) const {
  const FlightTable::Slot s = flight_.slot_of(id);
  if (s != FlightTable::kNoSlot) return flight_.materialize(s);
  for (const Packet& p : step_arrivals_) {
    if (p.id == id) return p;
  }
  const Packet* archived = archive_.find(id);
  HP_CHECK(archived != nullptr,
           "no record of packet " + std::to_string(id) +
               " (delivered and archive_arrivals is off?)");
  return *archived;
}

net::NodeId Engine::packet_dst(PacketId id) const {
  const FlightTable::Slot s = flight_.slot_of(id);
  if (s != FlightTable::kNoSlot) return flight_.dst(s);
  return packet(id).dst;
}

std::vector<Packet> Engine::snapshot_packets() const {
  HP_REQUIRE(config_.archive_arrivals,
             "snapshot_packets() needs archive_arrivals = true");
  std::vector<Packet> out(static_cast<std::size_t>(next_id_));
  for (const Packet& p : archive_.records()) {
    out[static_cast<std::size_t>(p.id)] = p;
  }
  for (FlightTable::Slot s = 0; s < flight_.end_slot(); ++s) {
    out[static_cast<std::size_t>(flight_.id(s))] = flight_.materialize(s);
  }
  return out;
}

std::vector<PacketId> Engine::packets_at(net::NodeId node) const {
  std::vector<PacketId> out;
  for (FlightTable::Slot s = 0; s < flight_.end_slot(); ++s) {
    if (flight_.pos(s) == node) out.push_back(flight_.id(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Engine::build_occupancy() {
  occupied_.clear();
  for (FlightTable::Slot s = 0; s < flight_.end_slot(); ++s) {
    const net::NodeId node = flight_.pos(s);
    const auto n = static_cast<std::size_t>(node);
    if (node_stamp_[n] != now_) {
      node_stamp_[n] = now_;
      occupancy_[n].clear();
      occupied_.push_back(node);
    }
    sorted_insert(occupancy_[n], flight_.id(s));
  }
}

void Engine::set_injector(Injector* injector) {
  HP_REQUIRE(injector != nullptr, "null injector");
  injector_ = injector;
}

bool Engine::try_inject(net::NodeId src, net::NodeId dst) {
  HP_CHECK(injecting_now_,
           "try_inject may only be called from an Injector during step()");
  const auto n = static_cast<net::NodeId>(net_.num_nodes());
  HP_REQUIRE(src >= 0 && src < n, "injection origin out of range");
  HP_REQUIRE(dst >= 0 && dst < n, "injection destination out of range");

  Packet p;
  p.id = static_cast<PacketId>(next_id_);
  p.src = src;
  p.dst = dst;
  p.pos = src;
  p.injected_at = now_;
  p.initial_distance = net_.distance(src, dst);
  if (src == dst) {
    p.arrived_at = now_;
    ++next_id_;
    ++delivered_;
    flight_.note_absent(p.id);
    archive_.append(p);
    return true;
  }

  // Capacity rule: a node never holds more packets than its out-degree.
  const auto node = static_cast<std::size_t>(src);
  if (node_stamp_[node] != now_) {
    node_stamp_[node] = now_;
    occupancy_[node].clear();
    occupied_.push_back(src);
  }
  if (static_cast<int>(occupancy_[node].size()) >= degree_[node]) {
    return false;
  }
  ++next_id_;
  sorted_insert(occupancy_[node], p.id);
  flight_.insert(p);
  return true;
}

void Engine::route_node(net::NodeId node, const Bucket& residents,
                        std::vector<Assignment>& out) {
  HP_CHECK(static_cast<int>(residents.size()) <=
               degree_[static_cast<std::size_t>(node)],
           "more packets at a node than its degree — model violation");

  Rng node_rng(node_stream_seed(config_.seed, now_, node));
  NodeContext ctx{net_, node, now_,
                  avail_dirs_[static_cast<std::size_t>(node)], node_rng};

  InlineVector<PacketView, 2 * net::kMaxDim> views;
  for (PacketId id : residents) {
    const FlightTable::Slot s = flight_.slot_of(id);
    PacketView v;
    v.id = id;
    v.dst = flight_.dst(s);
    v.entry_dir = flight_.entry_dir(s);
    v.good = net_.good_dirs(node, v.dst);
    HP_CHECK(!v.good.empty(),
             "packet with no good direction was not absorbed — engine bug");
    v.prev_advanced = flight_.prev_advanced(s);
    v.prev_num_good = flight_.prev_num_good(s);
    views.push_back(v);
  }

  InlineVector<net::Dir, 2 * net::kMaxDim> dirs;
  for (std::size_t i = 0; i < residents.size(); ++i) {
    dirs.push_back(net::kInvalidDir);
  }
  policy_.route(ctx, std::span<const PacketView>(views.data(), views.size()),
                std::span<net::Dir>(dirs.data(), dirs.size()));

  // Validate the assignment: every packet got an existing arc and no arc
  // is used twice (one packet per directed link per step).
  std::uint32_t used_mask = 0;
  for (std::size_t i = 0; i < residents.size(); ++i) {
    const net::Dir d = dirs[i];
    HP_CHECK(d >= 0 && d < net_.num_dirs(),
             "policy '" + policy_.name() + "' returned an invalid direction");
    HP_CHECK(neighbor_table_[static_cast<std::size_t>(node) *
                                 static_cast<std::size_t>(num_dirs_) +
                             static_cast<std::size_t>(d)] !=
                 net::kInvalidNode,
             "policy '" + policy_.name() + "' routed a packet off the mesh");
    const std::uint32_t bit = std::uint32_t{1} << d;
    HP_CHECK((used_mask & bit) == 0,
             "policy '" + policy_.name() + "' put two packets on one arc");
    used_mask |= bit;

    Assignment a;
    a.pkt = residents[i];
    a.node = node;
    a.out = d;
    a.advances = views[i].good.contains(d);
    a.num_good = views[i].num_good();
    for (net::Dir g : views[i].good) a.good_mask |= std::uint32_t{1} << g;
    a.was_type_a = views[i].type_a();
    a.prev_advanced = views[i].prev_advanced;
    a.prev_num_good = views[i].prev_num_good;
    out.push_back(a);
  }
}

void Engine::route_range(std::size_t begin, std::size_t end,
                         std::vector<Assignment>& out) {
  for (std::size_t i = begin; i < end; ++i) {
    const net::NodeId node = occupied_[i];
    route_node(node, occupancy_[static_cast<std::size_t>(node)], out);
  }
}

void Engine::route_all() {
  const std::size_t m = occupied_.size();
  const auto threads = static_cast<std::size_t>(config_.num_threads);
  // Small steps are routed inline: sharding only buys wall-clock, never
  // changes results, so the cutover point is a pure tuning knob.
  if (threads <= 1 || m < 2 * threads) {
    route_range(0, m, assignments_);
    return;
  }

  const std::size_t shards = std::min(threads, m);
  // shard_bufs_ is shard-confined (see engine.hpp): the workers are
  // quiescent here — the previous epoch's pending count reached 0 — so the
  // serial phase may clear the buffers without the lock.
  if (shard_bufs_.size() < shards) shard_bufs_.resize(shards);
  for (std::size_t w = 0; w < shards; ++w) shard_bufs_[w].clear();
  if (profiler_ != nullptr) shard_route_ns_.assign(shards, 0);

  std::exception_ptr failure;
  {
    util::MutexLock lock(&pool_mu_);
    shard_ranges_.assign(shards, {});
    shard_errors_.assign(shards, nullptr);
    for (std::size_t w = 0; w < shards; ++w) {
      shard_ranges_[w].begin = m * w / shards;
      shard_ranges_[w].end = m * (w + 1) / shards;
    }
    pool_active_shards_ = shards;
    pool_pending_ = shards;
    ++pool_epoch_;
    pool_cv_.notify_all();
    while (pool_pending_ != 0) done_cv_.wait(pool_mu_);
    for (std::size_t w = 0; w < shards; ++w) {
      if (shard_errors_[w]) {
        failure = shard_errors_[w];
        break;
      }
    }
  }
  if (failure) std::rethrow_exception(failure);
  if (profiler_ != nullptr) {
    profiler_->add_route_epoch(shard_route_ns_.data(), shards);
  }
  // Concatenate per-shard buffers in shard order: the result is the same
  // sequence a serial traversal of occupied_ produces.
  for (std::size_t w = 0; w < shards; ++w) {
    assignments_.insert(assignments_.end(), shard_bufs_[w].begin(),
                        shard_bufs_[w].end());
  }
}

void Engine::start_pool() {
  const auto threads = static_cast<std::size_t>(config_.num_threads);
  workers_.reserve(threads);
  shard_bufs_.resize(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

void Engine::stop_pool() {
  if (workers_.empty()) return;
  {
    util::MutexLock lock(&pool_mu_);
    pool_stop_ = true;
    pool_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void Engine::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    ShardRange range;
    bool has_work = false;
    {
      util::MutexLock lock(&pool_mu_);
      // Explicit wait loop (not a predicate lambda): the analysis can see
      // the guarded reads happen with pool_mu_ held.
      while (!pool_stop_ && pool_epoch_ == seen_epoch) {
        pool_cv_.wait(pool_mu_);
      }
      if (pool_stop_) return;
      seen_epoch = pool_epoch_;
      if (worker_index < pool_active_shards_) {
        range = shard_ranges_[worker_index];
        has_work = true;
      }
    }
    if (has_work) {
      std::exception_ptr error;
      try {
        if (profiler_ != nullptr) {
          // shard_route_ns_[worker_index] is shard-confined, like the
          // assignment buffer the same worker fills right next to it.
          const auto t0 = std::chrono::steady_clock::now();
          route_range(range.begin, range.end, shard_bufs_[worker_index]);
          shard_route_ns_[worker_index] = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        } else {
          route_range(range.begin, range.end, shard_bufs_[worker_index]);
        }
      } catch (...) {
        error = std::current_exception();
      }
      util::MutexLock lock(&pool_mu_);
      shard_errors_[worker_index] = error;
      if (--pool_pending_ == 0) done_cv_.notify_one();
    }
  }
}

void Engine::apply_assignments() {
  for (const Assignment& a : assignments_) {
    const FlightTable::Slot s = flight_.slot_of(a.pkt);
    HP_CHECK(s != FlightTable::kNoSlot,
             "assignment for a packet that is not in flight");
    const net::NodeId to =
        neighbor_table_[static_cast<std::size_t>(a.node) *
                            static_cast<std::size_t>(num_dirs_) +
                        static_cast<std::size_t>(a.out)];
    HP_CHECK(to != net::kInvalidNode, "movement off the network");
    flight_.move(s, to, a.out, a.advances, a.num_good);
    if (a.advances) {
      ++total_advances_;
    } else {
      ++total_deflections_;
    }
    if (to == flight_.dst(s)) {
      Packet record = flight_.remove(s, now_ + 1);
      last_arrival_ = now_ + 1;
      ++delivered_;
      step_arrivals_.push_back(record);
    }
  }
  for (const Packet& p : step_arrivals_) archive_.append(p);
}

bool Engine::step() {
  if ((flight_.empty() && injector_ == nullptr) || livelocked_) return false;

  assignments_.clear();
  step_arrivals_.clear();
  {
    obs::PhaseScope scope(profiler_.get(), obs::Phase::kOccupancy);
    build_occupancy();
  }
  if (injector_ != nullptr) {
    obs::PhaseScope scope(profiler_.get(), obs::Phase::kInject);
    injecting_now_ = true;
    injector_->inject(*this, now_);
    injecting_now_ = false;
  }

  {
    obs::PhaseScope scope(profiler_.get(), obs::Phase::kRoute);
    route_all();
  }
  {
    obs::PhaseScope scope(profiler_.get(), obs::Phase::kApply);
    apply_assignments();
  }

  ++now_;

  StepRecord record;
  record.step = now_ - 1;
  record.assignments = assignments_;
  record.arrivals = step_arrivals_;
  record.in_flight_after = flight_.size();
  {
    obs::PhaseScope scope(profiler_.get(), obs::Phase::kObserve);
    for (StepObserver* obs : observers_) {
      obs->on_step(*this, record);
    }
  }
  if (profiler_ != nullptr) profiler_->note_step();

  if (config_.detect_livelock && policy_.deterministic() &&
      injector_ == nullptr && !flight_.empty()) {
    const auto repeat = livelock_.record(digest_state(flight_), now_);
    if (repeat != LivelockDetector::kNoRepeat) livelocked_ = true;
  }
  return true;
}

RunResult Engine::make_result() {
  RunResult result;
  result.completed = flight_.empty();
  result.livelocked = livelocked_;
  result.steps = result.completed ? last_arrival_ : now_;
  result.steps_executed = now_;
  result.total_deflections = total_deflections_;
  result.total_advances = total_advances_;
  result.num_packets = num_packets();
  if (config_.archive_arrivals) result.packets = snapshot_packets();
  return result;
}

RunResult Engine::run() {
  HP_REQUIRE(injector_ == nullptr,
             "run() is for batch problems; use run_for() with an injector");
  while (!flight_.empty() && !livelocked_ && now_ < config_.max_steps) {
    step();
  }
  return make_result();
}

RunResult Engine::run_for(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    if (!step()) break;
  }
  return make_result();
}

}  // namespace hp::sim
