// The synchronous hot-potato simulation engine (Section 2 model).
//
// Each step, every node that holds packets: (1) receives the packets sent
// to it in the previous step, (2) runs the routing policy's local
// computation, (3) assigns all of them distinct outgoing arcs. The engine
// enforces the model rather than trusting the policy:
//   * at most one packet traverses any directed arc per step,
//   * every in-flight packet moves every step (no buffering),
//   * packets are absorbed exactly when they reach their destination.
// Violations throw hp::CheckError.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/injection.hpp"
#include "sim/livelock.hpp"
#include "sim/observer.hpp"
#include "sim/packet.hpp"
#include "sim/policy.hpp"
#include "topology/network.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace hp::sim {

struct EngineConfig {
  /// Hard step cap for run(); exceeded ⇒ result.completed = false.
  std::uint64_t max_steps = 10'000'000;
  /// Seed for the policy's random stream.
  std::uint64_t seed = 1;
  /// Detect repeated configurations. Only treated as a livelock *proof*
  /// when the policy reports deterministic().
  bool detect_livelock = true;
};

/// Outcome of a complete run.
struct RunResult {
  bool completed = false;   ///< all packets delivered
  bool livelocked = false;  ///< proven configuration cycle (deterministic)
  /// Number of steps until the last packet reached its destination
  /// (valid when completed; equals steps_executed otherwise).
  std::uint64_t steps = 0;
  std::uint64_t steps_executed = 0;
  std::uint64_t total_deflections = 0;
  std::uint64_t total_advances = 0;
  std::size_t num_packets = 0;
  /// Final per-packet records (arrival times, deflection counts, ...).
  std::vector<Packet> packets;
};

class Engine {
 public:
  /// Injects the problem at t = 0 after validating the origin constraint.
  /// `net` and `policy` must outlive the engine.
  Engine(const net::Network& net, const workload::Problem& problem,
         RoutingPolicy& policy, EngineConfig config = {});

  /// Executes one synchronous step. Returns false (and does nothing) when
  /// no packets remain in flight and no injector is installed.
  bool step();

  /// Runs until completion, livelock, or the step cap.
  RunResult run();

  /// Runs exactly `steps` synchronous steps — the entry point for
  /// continuous-injection (steady-state) experiments, where "completion"
  /// never happens by design.
  RunResult run_for(std::uint64_t steps);

  /// Installs a continuous-injection source, invoked at the start of every
  /// step. Disables livelock detection (the configuration space is no
  /// longer closed). The injector must outlive the engine.
  void set_injector(Injector* injector);

  /// Attempts to place a new packet at `src` bound for `dst` at the
  /// current step. Fails (returning false) when `src` already holds as
  /// many packets as its out-degree — the hot-potato capacity rule. Only
  /// callable from an Injector during step(). A packet with src == dst is
  /// admitted and delivered immediately.
  bool try_inject(net::NodeId src, net::NodeId dst);

  /// Packets delivered so far (including trivial src == dst ones).
  std::uint64_t delivered() const { return delivered_; }

  /// Observers are invoked after each step, in registration order.
  /// The pointer must remain valid for the engine's lifetime.
  void add_observer(StepObserver* observer);

  const net::Network& network() const { return net_; }
  const std::vector<Packet>& packets() const { return packets_; }
  const Packet& packet(PacketId id) const {
    return packets_[static_cast<std::size_t>(id)];
  }
  std::uint64_t now() const { return now_; }
  std::size_t in_flight() const { return in_flight_; }
  bool livelocked() const { return livelocked_; }
  /// Step at which the last arrival so far happened (0 if none yet).
  std::uint64_t last_arrival_step() const { return last_arrival_; }

  /// Ids of the packets currently at `node` (order unspecified).
  std::vector<PacketId> packets_at(net::NodeId node) const;

 private:
  void inject(const workload::Problem& problem);
  void build_occupancy();
  void route_node(net::NodeId node, const std::vector<PacketId>& residents);

  const net::Network& net_;
  RoutingPolicy& policy_;
  EngineConfig config_;
  Rng rng_;

  std::vector<Packet> packets_;
  std::size_t in_flight_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t now_ = 0;
  Injector* injector_ = nullptr;
  bool injecting_now_ = false;  // try_inject only legal inside step()
  std::uint64_t last_arrival_ = 0;
  std::uint64_t total_deflections_ = 0;
  std::uint64_t total_advances_ = 0;
  bool livelocked_ = false;

  // Per-step scratch, kept as members to avoid reallocation.
  std::vector<std::vector<PacketId>> occupancy_;  // node -> resident packets
  std::vector<net::NodeId> occupied_;             // nodes with residents
  std::vector<std::uint64_t> node_stamp_;         // occupancy freshness
  std::vector<Assignment> assignments_;
  std::vector<PacketId> arrivals_;
  std::vector<std::uint8_t> arc_used_;  // node * num_dirs + dir -> used?

  LivelockDetector livelock_;
  std::vector<StepObserver*> observers_;
};

}  // namespace hp::sim
