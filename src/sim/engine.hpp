// The synchronous hot-potato simulation engine (Section 2 model).
//
// Each step, every node that holds packets: (1) receives the packets sent
// to it in the previous step, (2) runs the routing policy's local
// computation, (3) assigns all of them distinct outgoing arcs. The engine
// enforces the model rather than trusting the policy:
//   * at most one packet traverses any directed arc per step,
//   * every in-flight packet moves every step (no buffering),
//   * packets are absorbed exactly when they reach their destination.
// Violations throw hp::CheckError.
//
// Architecture (the "flight table" core):
//   * In-flight packets live in a dense struct-of-arrays FlightTable;
//     delivered packets move to an append-only ArrivalLog archive. Every
//     per-step loop walks the flight table only, so step cost is
//     O(in-flight) — independent of how many packets have ever existed,
//     which is what continuous-injection (steady-state) runs require.
//   * step() is a deterministic phase pipeline over a persistent worker
//     pool (util::PhaseBarrier): occupancy scan/bucket, batched
//     good-direction masks, routing, and the movement half of apply all
//     run as sharded epochs, while injection, arrival removal and
//     observation stay serial. Every partition boundary that can reach the
//     output is a pure function of problem state — occupancy ownership is
//     keyed by node id over a shard count fixed at construction, and every
//     other fan-out concatenates per-task buffers in task order, which
//     reproduces the serial sequence exactly. Work-stealing (barrier
//     tickets) decides only *which thread* executes a task, never what the
//     task produces, so runs are bit-for-bit identical for every
//     EngineConfig::num_threads, including 1. DESIGN.md §5 has the full
//     argument.
//   * Observers receive per-step spans (see observer.hpp): no per-step
//     copies, no references to the delivered-packet archive.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "sim/flight_table.hpp"
#include "sim/injection.hpp"
#include "sim/livelock.hpp"
#include "sim/observer.hpp"
#include "sim/packet.hpp"
#include "sim/policy.hpp"
#include "topology/network.hpp"
#include "util/inline_vector.hpp"
#include "util/phase_barrier.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace hp::obs {
class PhaseProfiler;
enum class Phase : int;
}  // namespace hp::obs

namespace hp::sim {

/// How aggressively the engine trades CPU for memory (docs/SCALE.md).
enum class MemoryProfile : std::uint8_t {
  /// Per-node degree/direction/neighbor caches (O(nodes·dirs) bytes) and
  /// 64-bit FlightTable bookkeeping columns — fastest, the default.
  kDefault = 0,
  /// No topology caches (degree/neighbors come from the Network's closed
  /// forms on demand) and compact 32-bit bookkeeping columns. Identical
  /// results; meant for million-node meshes where the caches dominate the
  /// footprint.
  kLean = 1,
};

/// Capacity-based accounting of the engine's heap footprint, grouped by
/// subsystem. Scratch capacities depend on the thread count (per-task
/// buffers), so totals are reporting data — never part of a deterministic
/// artifact.
struct EngineMemoryStats {
  std::size_t topology_bytes = 0;   ///< degree/dirs/neighbor caches
  std::size_t occupancy_bytes = 0;  ///< per-node buckets, stamps, occupied
  std::size_t flight_bytes = 0;     ///< FlightTable columns + locator
  std::size_t archive_bytes = 0;    ///< ArrivalLog in-memory side
  std::size_t scratch_bytes = 0;    ///< assignments, masks, shard buffers
  std::size_t total() const {
    return topology_bytes + occupancy_bytes + flight_bytes + archive_bytes +
           scratch_bytes;
  }
};

struct EngineConfig {
  /// Hard step cap for run(); exceeded ⇒ result.completed = false.
  std::uint64_t max_steps = 10'000'000;
  /// Seed of the per-(step, node) random streams handed to the policy.
  std::uint64_t seed = 1;
  /// Detect repeated configurations. Only treated as a livelock *proof*
  /// when the policy reports deterministic().
  bool detect_livelock = true;
  /// Total threads driving the phase pipeline (the calling thread
  /// participates; num_threads - 1 workers are spawned). 1 = fully serial.
  /// Results are bit-for-bit identical for every value; threads only buy
  /// wall-clock. Requires RoutingPolicy::route() to be safe to call
  /// concurrently for distinct nodes (true for every stateless policy in
  /// this repo).
  int num_threads = 1;
  /// Keep full per-packet records of delivered packets (RunResult.packets,
  /// Engine::archive()). Turn off for unbounded steady-state runs, where
  /// the archive would grow without limit; observers still see every
  /// arrival record via StepRecord::arrivals.
  bool archive_arrivals = true;
  /// Storage mode of the arrival archive when archive_arrivals is on:
  /// unbounded in-memory (default), spill-to-disk, or a fixed-capacity
  /// reservoir sample. See ArchiveConfig (flight_table.hpp).
  ArchiveConfig archive;
  /// Memory/CPU trade: kLean drops the O(nodes·dirs) topology caches and
  /// narrows the FlightTable bookkeeping columns to 32 bits. Results are
  /// bit-identical across profiles (the caches are pure memoization).
  MemoryProfile memory = MemoryProfile::kDefault;
  /// Wall-clock phase profiling (obs::PhaseProfiler): per-step timings of
  /// the inject/occupancy/route/apply/observe phases plus per-shard
  /// times of every sharded epoch. Off by default; when off the engine
  /// holds no profiler and each phase bracket costs one null test.
  bool profile = false;
};

/// Outcome of a complete run.
struct RunResult {
  bool completed = false;   ///< all packets delivered
  bool livelocked = false;  ///< proven configuration cycle (deterministic)
  /// Step count of the run: the step by which the last packet arrived when
  /// `completed`, otherwise the number of steps executed. 0 when nothing
  /// was ever delivered.
  std::uint64_t steps = 0;
  std::uint64_t steps_executed = 0;
  std::uint64_t total_deflections = 0;
  std::uint64_t total_advances = 0;
  std::size_t num_packets = 0;
  /// Final per-packet records in id order, materialized once from the
  /// archive + flight table (no per-run O(k) copies of live engine state).
  /// Empty when EngineConfig::archive_arrivals is false.
  std::vector<Packet> packets;
};

class Engine {
 public:
  /// Injects the problem at t = 0 after validating the origin constraint.
  /// `net` and `policy` must outlive the engine.
  Engine(const net::Network& net, const workload::Problem& problem,
         RoutingPolicy& policy, EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes one synchronous step. Returns false (and does nothing) when
  /// no packets remain in flight and no injector is installed.
  bool step();

  /// Runs until completion, livelock, or the step cap.
  RunResult run();

  /// Runs exactly `steps` synchronous steps — the entry point for
  /// continuous-injection (steady-state) experiments, where "completion"
  /// never happens by design. RunResult::steps follows the documented
  /// rule: last arrival step when the run drained, steps executed
  /// otherwise.
  RunResult run_for(std::uint64_t steps);

  /// Installs a continuous-injection source, invoked at the start of every
  /// step. Disables livelock detection (the configuration space is no
  /// longer closed). The injector must outlive the engine.
  void set_injector(Injector* injector);

  /// Attempts to place a new packet at `src` bound for `dst` at the
  /// current step. Fails (returning false) when `src` already holds as
  /// many packets as its out-degree — the hot-potato capacity rule. Only
  /// callable from an Injector during step(). A packet with src == dst is
  /// admitted and delivered immediately.
  bool try_inject(net::NodeId src, net::NodeId dst);

  /// Packets delivered so far (including trivial src == dst ones).
  std::uint64_t delivered() const { return delivered_; }

  /// Observers are invoked after each step, in registration order.
  /// The pointer must remain valid for the engine's lifetime.
  void add_observer(StepObserver* observer);

  const net::Network& network() const { return net_; }

  /// Dense store of the in-flight packets (slot order is unspecified and
  /// changes as packets arrive).
  const FlightTable& flight() const { return flight_; }

  /// Records of delivered packets, in arrival order. Empty when
  /// EngineConfig::archive_arrivals is false. Only the in-memory archive
  /// mode keeps the full set here; see arrival_log() for spill/sample.
  std::span<const Packet> archive() const { return archive_.records(); }

  /// The arrival archive itself — drain()/dropped()/count() for the
  /// spill and sample modes.
  const ArrivalLog& arrival_log() const { return archive_; }

  /// Total packets ever created (batch + injected, including trivial).
  std::size_t num_packets() const { return static_cast<std::size_t>(next_id_); }

  /// Record of one packet by id: in flight, arrived this step, or
  /// archived. Throws CheckError for ids whose record was dropped
  /// (archive_arrivals == false and not delivered this step).
  Packet packet(PacketId id) const;

  /// Destination of packet `id` without materializing the whole record.
  net::NodeId packet_dst(PacketId id) const;

  /// Full per-packet snapshot in id order (archive + in-flight). Requires
  /// archive_arrivals; O(num_packets), intended for end-of-run digestion.
  std::vector<Packet> snapshot_packets() const;

  std::uint64_t now() const { return now_; }
  std::size_t in_flight() const { return flight_.size(); }
  bool livelocked() const { return livelocked_; }
  /// Step at which the last arrival so far happened (0 if none yet).
  std::uint64_t last_arrival_step() const { return last_arrival_; }

  /// Ids of the packets currently at `node`, ascending.
  std::vector<PacketId> packets_at(net::NodeId node) const;

  /// Occupancy-ownership shards (fixed at construction from the node
  /// count, never from the thread count — part of the determinism
  /// contract; see DESIGN.md §5).
  std::size_t occupancy_shards() const { return occ_shards_; }

  /// Phase profiler, present iff EngineConfig::profile. Wall-clock data:
  /// report-only, never part of a deterministic artifact unless the
  /// caller explicitly attaches it as a trace sink.
  obs::PhaseProfiler* profiler() { return profiler_.get(); }
  const obs::PhaseProfiler* profiler() const { return profiler_.get(); }

  /// Capacity-based heap accounting by subsystem (docs/SCALE.md). The
  /// scale bench series reports total()/num_nodes as bytes/node.
  EngineMemoryStats memory_stats() const;

  const EngineConfig& config() const { return config_; }

 private:
  /// Checkpoint save/restore and the state fingerprint (checkpoint.cpp)
  /// serialize private counters and scratch-free state directly.
  friend class CheckpointIO;
  /// Residents of one node in one step; bounded by the node degree. The
  /// cache-line alignment keeps buckets of adjacent nodes — filled by
  /// different owner shards at an ownership boundary — off shared lines.
  using Bucket =
      InlineVector<PacketId, 2 * net::kMaxDim, util::kCacheLineBytes>;

  /// What one barrier epoch computes. Kinds and task *boundaries* are
  /// chosen by the main thread before the epoch opens; tickets only pick
  /// the executing thread.
  enum class TaskKind : std::uint32_t {
    kScan = 0,   ///< partition flight slots into per-owner scatter rows
    kBucket,     ///< merge scatter columns into one owner's node buckets
    kGoodMask,   ///< batched good-direction masks over flight columns
    kRoute,      ///< route a contiguous range of occupied nodes
    kMove,       ///< apply movement for a contiguous assignment range
  };

  /// Everything one task writes, on its own cache line(s). A task owns
  /// exactly one ShardState between the epoch's open and close; the
  /// barrier's release/acquire edges publish it back to the main thread.
  struct alignas(util::kCacheLineBytes) ShardState {
    std::vector<Assignment> route_buf;    ///< kRoute output
    std::vector<net::NodeId> occ_nodes;   ///< kBucket output, first-seen order
    std::vector<PacketId> arrivals;       ///< kMove: packets that arrived
    std::uint64_t advances = 0;           ///< kMove counters
    std::uint64_t deflections = 0;
    std::uint64_t ns = 0;                 ///< task wall time (profiling only)
    std::exception_ptr error;             ///< rethrown by the main thread
  };

  void inject(const workload::Problem& problem);
  void build_occupancy();
  void route_all();
  void route_range(std::size_t begin, std::size_t end,
                   std::vector<Assignment>& out);
  void route_node(net::NodeId node, const Bucket& residents,
                  std::vector<Assignment>& out);
  void apply_assignments();
  RunResult make_result();

  // Phase-pipeline plumbing (pool only spun up when num_threads > 1).
  void start_pool();
  void stop_pool();
  void worker_loop();
  /// Runs tasks 0..count-1 of `kind` over `items` elements: inline when
  /// serial, as one barrier epoch otherwise. Rethrows the first task
  /// error (in task order) and feeds per-task times to the profiler.
  void run_sharded(TaskKind kind, std::size_t count, std::size_t items,
                   obs::Phase phase);
  /// Claims and executes tickets of the current epoch until none remain.
  void drain_tasks();
  void run_task(TaskKind kind, std::size_t task);
  void scan_slots(std::size_t task, std::size_t begin, std::size_t end);
  void bucket_owner(std::size_t owner);
  void move_range(std::size_t task, std::size_t begin, std::size_t end);

  /// Owner shard of a node: contiguous node-id ranges over occ_shards_.
  std::size_t owner_of(net::NodeId node) const {
    return static_cast<std::size_t>(node) * occ_shards_ / num_nodes_;
  }
  /// Task count for an output-invariant fan-out (good masks, routing,
  /// movement): enough tasks for the tickets to balance, never so many
  /// that per-task overhead dominates. The count can depend on the thread
  /// count because these concatenations are partition-invariant.
  std::size_t sub_tasks(std::size_t items, std::size_t grain) const;

  /// Out-degree of a node: cached in the default profile, the topology's
  /// closed form in the lean one. Both paths agree bit-for-bit.
  int node_degree(net::NodeId node) const {
    return lean_ ? net_.degree(node)
                 : degree_[static_cast<std::size_t>(node)];
  }
  /// Directions with an existing arc out of `node`, ascending.
  net::DirList node_avail_dirs(net::NodeId node) const;
  /// Target of the arc `dir` out of `node` (kInvalidNode if absent).
  net::NodeId arc_target(net::NodeId node, net::Dir dir) const {
    return lean_ ? net_.neighbor(node, dir)
                 : neighbor_table_[static_cast<std::size_t>(node) *
                                       static_cast<std::size_t>(num_dirs_) +
                                   static_cast<std::size_t>(dir)];
  }

  const net::Network& net_;
  RoutingPolicy& policy_;
  EngineConfig config_;

  // Per-node topology caches, built once in the constructor (the network
  // is immutable): they keep virtual neighbor()/arc_exists() calls out of
  // the per-step loops. MemoryProfile::kLean skips them entirely (lean_)
  // and answers the same queries from the Network's closed forms.
  bool lean_ = false;
  int num_dirs_ = 0;
  std::size_t num_nodes_ = 0;
  std::vector<int> degree_;
  std::vector<net::DirList> avail_dirs_;
  std::vector<net::NodeId> neighbor_table_;  // [node * num_dirs_ + dir]

  FlightTable flight_;
  ArrivalLog archive_;
  std::uint64_t next_id_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t now_ = 0;
  Injector* injector_ = nullptr;
  bool injecting_now_ = false;  // try_inject only legal inside step()
  std::uint64_t last_arrival_ = 0;
  std::uint64_t total_deflections_ = 0;
  std::uint64_t total_advances_ = 0;
  bool livelocked_ = false;

  // Per-step scratch, kept as members to avoid reallocation.
  std::vector<Bucket> occupancy_;      // node -> resident packets, id order
  std::vector<net::NodeId> occupied_;  // nodes with residents, owner-grouped
  std::vector<std::uint64_t> node_stamp_;  // occupancy freshness
  std::vector<Assignment> assignments_;
  std::vector<Packet> step_arrivals_;  // this step's arrival records
  /// Good-direction bitmask per flight slot, batch-computed once per step
  /// (policy_.batch_good_dirs over the dense pos/dst columns).
  std::vector<std::uint32_t> good_mask_;

  // Deterministic occupancy partition: fixed at construction, a function
  // of the node count alone. occ_shards_ == 1 keeps the exact legacy
  // occupied_ ordering on small networks.
  std::size_t occ_shards_ = 1;

  // Epoch state. task_kind_/task_count_/task_items_ are written by the
  // main thread before PhaseBarrier::open and read by workers after its
  // acquire edge; each ShardState and scatter_ row/column pair is owned by
  // exactly one task per epoch (see phase_barrier.hpp for the
  // happens-before argument, and tests/phase_barrier_test.cpp + the TSan
  // CI job for the dynamic check).
  TaskKind task_kind_ = TaskKind::kScan;
  std::size_t task_count_ = 0;
  std::size_t task_items_ = 0;
  std::vector<ShardState> shards_;
  /// scatter_[r * occ_shards_ + o]: (node, id) pairs of owner o found by
  /// scan task r; written by task r, read by bucket task o next epoch.
  std::vector<std::vector<std::pair<net::NodeId, PacketId>>> scatter_;
  std::vector<std::uint64_t> epoch_ns_;  // profiler hand-off scratch

  std::unique_ptr<util::PhaseBarrier> barrier_;
  std::vector<std::thread> workers_;

  LivelockDetector livelock_;
  /// Present iff config_.profile (see EngineConfig::profile).
  std::unique_ptr<obs::PhaseProfiler> profiler_;
  /// HP_AUDIT builds: engine-owned checker that re-verifies the policy's
  /// Definition 6 / Definition 18 claims every step (null otherwise).
  std::unique_ptr<StepObserver> audit_;
  std::vector<StepObserver*> observers_;
};

}  // namespace hp::sim
