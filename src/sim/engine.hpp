// The synchronous hot-potato simulation engine (Section 2 model).
//
// Each step, every node that holds packets: (1) receives the packets sent
// to it in the previous step, (2) runs the routing policy's local
// computation, (3) assigns all of them distinct outgoing arcs. The engine
// enforces the model rather than trusting the policy:
//   * at most one packet traverses any directed arc per step,
//   * every in-flight packet moves every step (no buffering),
//   * packets are absorbed exactly when they reach their destination.
// Violations throw hp::CheckError.
//
// Architecture (the "flight table" core):
//   * In-flight packets live in a dense struct-of-arrays FlightTable;
//     delivered packets move to an append-only ArrivalLog archive. Every
//     per-step loop walks the flight table only, so step cost is
//     O(in-flight) — independent of how many packets have ever existed,
//     which is what continuous-injection (steady-state) runs require.
//   * Routing decisions at distinct nodes within a step are independent:
//     each node draws from its own per-(seed, step, node) random stream
//     and sees its residents in ascending packet-id order. The engine can
//     therefore shard the occupied-node list across worker threads
//     (EngineConfig::num_threads); per-shard assignment buffers are
//     concatenated in shard order and applied serially, so every run is
//     bit-for-bit identical for any thread count, including 1.
//   * Observers receive per-step spans (see observer.hpp): no per-step
//     copies, no references to the delivered-packet archive.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/flight_table.hpp"
#include "sim/injection.hpp"
#include "sim/livelock.hpp"
#include "sim/observer.hpp"
#include "sim/packet.hpp"
#include "sim/policy.hpp"
#include "topology/network.hpp"
#include "util/inline_vector.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "workload/workload.hpp"

namespace hp::obs {
class PhaseProfiler;
}

namespace hp::sim {

struct EngineConfig {
  /// Hard step cap for run(); exceeded ⇒ result.completed = false.
  std::uint64_t max_steps = 10'000'000;
  /// Seed of the per-(step, node) random streams handed to the policy.
  std::uint64_t seed = 1;
  /// Detect repeated configurations. Only treated as a livelock *proof*
  /// when the policy reports deterministic().
  bool detect_livelock = true;
  /// Worker threads for the routing phase. 1 = fully serial. Results are
  /// bit-for-bit identical for every value; threads only buy wall-clock.
  /// Requires RoutingPolicy::route() to be safe to call concurrently for
  /// distinct nodes (true for every stateless policy in this repo).
  int num_threads = 1;
  /// Keep full per-packet records of delivered packets (RunResult.packets,
  /// Engine::archive()). Turn off for unbounded steady-state runs, where
  /// the archive would grow without limit; observers still see every
  /// arrival record via StepRecord::arrivals.
  bool archive_arrivals = true;
  /// Wall-clock phase profiling (obs::PhaseProfiler): per-step timings of
  /// the inject/occupancy/route/apply/observe phases plus per-shard
  /// routing times. Off by default; when off the engine holds no profiler
  /// and each phase bracket costs one null test.
  bool profile = false;
};

/// Outcome of a complete run.
struct RunResult {
  bool completed = false;   ///< all packets delivered
  bool livelocked = false;  ///< proven configuration cycle (deterministic)
  /// Step count of the run: the step by which the last packet arrived when
  /// `completed`, otherwise the number of steps executed. 0 when nothing
  /// was ever delivered.
  std::uint64_t steps = 0;
  std::uint64_t steps_executed = 0;
  std::uint64_t total_deflections = 0;
  std::uint64_t total_advances = 0;
  std::size_t num_packets = 0;
  /// Final per-packet records in id order, materialized once from the
  /// archive + flight table (no per-run O(k) copies of live engine state).
  /// Empty when EngineConfig::archive_arrivals is false.
  std::vector<Packet> packets;
};

class Engine {
 public:
  /// Injects the problem at t = 0 after validating the origin constraint.
  /// `net` and `policy` must outlive the engine.
  Engine(const net::Network& net, const workload::Problem& problem,
         RoutingPolicy& policy, EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes one synchronous step. Returns false (and does nothing) when
  /// no packets remain in flight and no injector is installed.
  bool step();

  /// Runs until completion, livelock, or the step cap.
  RunResult run();

  /// Runs exactly `steps` synchronous steps — the entry point for
  /// continuous-injection (steady-state) experiments, where "completion"
  /// never happens by design. RunResult::steps follows the documented
  /// rule: last arrival step when the run drained, steps executed
  /// otherwise.
  RunResult run_for(std::uint64_t steps);

  /// Installs a continuous-injection source, invoked at the start of every
  /// step. Disables livelock detection (the configuration space is no
  /// longer closed). The injector must outlive the engine.
  void set_injector(Injector* injector);

  /// Attempts to place a new packet at `src` bound for `dst` at the
  /// current step. Fails (returning false) when `src` already holds as
  /// many packets as its out-degree — the hot-potato capacity rule. Only
  /// callable from an Injector during step(). A packet with src == dst is
  /// admitted and delivered immediately.
  bool try_inject(net::NodeId src, net::NodeId dst);

  /// Packets delivered so far (including trivial src == dst ones).
  std::uint64_t delivered() const { return delivered_; }

  /// Observers are invoked after each step, in registration order.
  /// The pointer must remain valid for the engine's lifetime.
  void add_observer(StepObserver* observer);

  const net::Network& network() const { return net_; }

  /// Dense store of the in-flight packets (slot order is unspecified and
  /// changes as packets arrive).
  const FlightTable& flight() const { return flight_; }

  /// Records of delivered packets, in arrival order. Empty when
  /// EngineConfig::archive_arrivals is false.
  std::span<const Packet> archive() const { return archive_.records(); }

  /// Total packets ever created (batch + injected, including trivial).
  std::size_t num_packets() const { return static_cast<std::size_t>(next_id_); }

  /// Record of one packet by id: in flight, arrived this step, or
  /// archived. Throws CheckError for ids whose record was dropped
  /// (archive_arrivals == false and not delivered this step).
  Packet packet(PacketId id) const;

  /// Destination of packet `id` without materializing the whole record.
  net::NodeId packet_dst(PacketId id) const;

  /// Full per-packet snapshot in id order (archive + in-flight). Requires
  /// archive_arrivals; O(num_packets), intended for end-of-run digestion.
  std::vector<Packet> snapshot_packets() const;

  std::uint64_t now() const { return now_; }
  std::size_t in_flight() const { return flight_.size(); }
  bool livelocked() const { return livelocked_; }
  /// Step at which the last arrival so far happened (0 if none yet).
  std::uint64_t last_arrival_step() const { return last_arrival_; }

  /// Ids of the packets currently at `node`, ascending.
  std::vector<PacketId> packets_at(net::NodeId node) const;

  /// Phase profiler, present iff EngineConfig::profile. Wall-clock data:
  /// report-only, never part of a deterministic artifact unless the
  /// caller explicitly attaches it as a trace sink.
  obs::PhaseProfiler* profiler() { return profiler_.get(); }
  const obs::PhaseProfiler* profiler() const { return profiler_.get(); }

 private:
  /// Residents of one node in one step; bounded by the node degree.
  using Bucket = InlineVector<PacketId, 2 * net::kMaxDim>;

  void inject(const workload::Problem& problem);
  void build_occupancy();
  void route_all() HP_EXCLUDES(pool_mu_);
  void route_range(std::size_t begin, std::size_t end,
                   std::vector<Assignment>& out);
  void route_node(net::NodeId node, const Bucket& residents,
                  std::vector<Assignment>& out);
  void apply_assignments();
  RunResult make_result();

  // Worker-pool plumbing (only spun up when config_.num_threads > 1).
  void start_pool() HP_EXCLUDES(pool_mu_);
  void stop_pool() HP_EXCLUDES(pool_mu_);
  void worker_loop(std::size_t worker_index) HP_EXCLUDES(pool_mu_);

  const net::Network& net_;
  RoutingPolicy& policy_;
  EngineConfig config_;

  // Per-node topology caches, built once in the constructor (the network
  // is immutable): they keep virtual neighbor()/arc_exists() calls out of
  // the per-step loops.
  int num_dirs_ = 0;
  std::vector<int> degree_;
  std::vector<net::DirList> avail_dirs_;
  std::vector<net::NodeId> neighbor_table_;  // [node * num_dirs_ + dir]

  FlightTable flight_;
  ArrivalLog archive_;
  std::uint64_t next_id_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t now_ = 0;
  Injector* injector_ = nullptr;
  bool injecting_now_ = false;  // try_inject only legal inside step()
  std::uint64_t last_arrival_ = 0;
  std::uint64_t total_deflections_ = 0;
  std::uint64_t total_advances_ = 0;
  bool livelocked_ = false;

  // Per-step scratch, kept as members to avoid reallocation.
  std::vector<Bucket> occupancy_;      // node -> resident packets, id order
  std::vector<net::NodeId> occupied_;  // nodes with residents
  std::vector<std::uint64_t> node_stamp_;  // occupancy freshness
  std::vector<Assignment> assignments_;
  std::vector<Packet> step_arrivals_;  // this step's arrival records

  // Routing-phase shards. Everything the main thread and the workers
  // exchange is guarded by pool_mu_ and certified by -Wthread-safety
  // (docs/STATIC_ANALYSIS.md, layer 6). The exception is shard_bufs_:
  // shard_bufs_[w] is *shard-confined* — written by worker w alone between
  // the epoch publication and its pending-decrement, and read by the main
  // thread only after pool_pending_ hits 0; the pool_mu_ handshake provides
  // the happens-before edges, so per-element guarding would be both wrong
  // (elements are accessed without the lock, by design) and uncheckable.
  struct ShardRange {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::vector<ShardRange> shard_ranges_ HP_GUARDED_BY(pool_mu_);
  std::vector<std::vector<Assignment>> shard_bufs_;  // shard-confined
  /// Routing wall-ns of the last epoch, one entry per shard. Shard-confined
  /// exactly like shard_bufs_ and only written when profiling is on.
  std::vector<std::uint64_t> shard_route_ns_;  // shard-confined
  std::vector<std::exception_ptr> shard_errors_ HP_GUARDED_BY(pool_mu_);
  std::vector<std::thread> workers_;
  util::Mutex pool_mu_;
  // condition_variable_any waits on util::Mutex directly (BasicLockable).
  std::condition_variable_any pool_cv_;  // workers wait for a new epoch
  std::condition_variable_any done_cv_;  // main waits for pending == 0
  std::uint64_t pool_epoch_ HP_GUARDED_BY(pool_mu_) = 0;
  std::size_t pool_pending_ HP_GUARDED_BY(pool_mu_) = 0;
  std::size_t pool_active_shards_ HP_GUARDED_BY(pool_mu_) = 0;
  bool pool_stop_ HP_GUARDED_BY(pool_mu_) = false;

  LivelockDetector livelock_;
  /// Present iff config_.profile (see EngineConfig::profile).
  std::unique_ptr<obs::PhaseProfiler> profiler_;
  /// HP_AUDIT builds: engine-owned checker that re-verifies the policy's
  /// Definition 6 / Definition 18 claims every step (null otherwise).
  std::unique_ptr<StepObserver> audit_;
  std::vector<StepObserver*> observers_;
};

}  // namespace hp::sim
