#include "sim/flight_table.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <type_traits>

#include "util/check.hpp"

namespace hp::sim {

namespace {

constexpr std::uint64_t kU32Max = std::numeric_limits<std::uint32_t>::max();

std::uint32_t narrow_u32(std::uint64_t v, const char* column) {
  HP_CHECK(v <= kU32Max, std::string("compact FlightTable column '") +
                             column + "' overflows 32 bits (value " +
                             std::to_string(v) + "); use ColumnWidth::kWide");
  return static_cast<std::uint32_t>(v);
}

}  // namespace

void FlightTable::push_locator(PacketId id, Slot slot) {
  const auto i = static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
  HP_CHECK(i == id_base_ + locator_.size(),
           "FlightTable ids must be issued densely and in order");
  locator_.push_back(slot);
}

void FlightTable::bump_deflections(std::size_t i) {
  if (compact_) {
    HP_CHECK(deflections32_[i] != kU32Max,
             "compact FlightTable column 'deflections' overflows 32 bits; "
             "use ColumnWidth::kWide");
    ++deflections32_[i];
  } else {
    ++deflections64_[i];
  }
}

Packet FlightTable::materialize(Slot s) const {
  const auto i = idx(s);
  Packet p;
  p.id = ids_[i];
  p.src = src_[i];
  p.dst = dst_[i];
  p.pos = pos_[i];
  p.last_move_dir = entry_dir_[i];
  p.prev_advanced = prev_advanced_[i] != 0;
  p.prev_num_good = prev_num_good_[i];
  p.injected_at = injected_at(s);
  p.arrived_at = kNotArrived;
  p.deflections = deflections(s);
  p.initial_distance = initial_distance_[i];
  return p;
}

FlightTable::Slot FlightTable::insert(const Packet& p) {
  const auto slot = static_cast<Slot>(ids_.size());
  ids_.push_back(p.id);
  src_.push_back(p.src);
  dst_.push_back(p.dst);
  pos_.push_back(p.pos);
  entry_dir_.push_back(p.last_move_dir);
  prev_advanced_.push_back(p.prev_advanced ? 1 : 0);
  prev_num_good_.push_back(static_cast<std::int8_t>(p.prev_num_good));
  if (compact_) {
    injected_at32_.push_back(narrow_u32(p.injected_at, "injected_at"));
    deflections32_.push_back(narrow_u32(p.deflections, "deflections"));
  } else {
    injected_at64_.push_back(p.injected_at);
    deflections64_.push_back(p.deflections);
  }
  initial_distance_.push_back(p.initial_distance);
  push_locator(p.id, slot);
  return slot;
}

void FlightTable::note_absent(PacketId id) { push_locator(id, kNoSlot); }

Packet FlightTable::remove(Slot s, std::uint64_t arrived_at) {
  Packet record = materialize(s);
  record.arrived_at = arrived_at;

  const auto i = idx(s);
  const auto last = ids_.size() - 1;
  const auto gone =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(record.id));
  locator_[static_cast<std::size_t>(gone - id_base_)] = kNoSlot;
  if (i != last) {
    ids_[i] = ids_[last];
    src_[i] = src_[last];
    dst_[i] = dst_[last];
    pos_[i] = pos_[last];
    entry_dir_[i] = entry_dir_[last];
    prev_advanced_[i] = prev_advanced_[last];
    prev_num_good_[i] = prev_num_good_[last];
    if (compact_) {
      injected_at32_[i] = injected_at32_[last];
      deflections32_[i] = deflections32_[last];
    } else {
      injected_at64_[i] = injected_at64_[last];
      deflections64_[i] = deflections64_[last];
    }
    initial_distance_[i] = initial_distance_[last];
    const auto moved =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(ids_[i]));
    locator_[static_cast<std::size_t>(moved - id_base_)] =
        static_cast<Slot>(i);
  }
  ids_.pop_back();
  src_.pop_back();
  dst_.pop_back();
  pos_.pop_back();
  entry_dir_.pop_back();
  prev_advanced_.pop_back();
  prev_num_good_.pop_back();
  if (compact_) {
    injected_at32_.pop_back();
    deflections32_.pop_back();
  } else {
    injected_at64_.pop_back();
    deflections64_.pop_back();
  }
  initial_distance_.pop_back();

  reclaim_locator_prefix();
  return record;
}

void FlightTable::reclaim_locator_prefix() {
  // Advance past settled ids; amortized O(1) per packet over a run.
  while (head_ < locator_.size() && locator_[head_] == kNoSlot) ++head_;
  if (head_ >= 1024 && head_ * 2 >= locator_.size()) {
    locator_.erase(locator_.begin(),
                   locator_.begin() + static_cast<std::ptrdiff_t>(head_));
    id_base_ += head_;
    head_ = 0;
  }
}

void FlightTable::reset_window(std::uint64_t id_base, std::uint64_t window) {
  HP_REQUIRE(empty() && id_base_ == 0 && locator_.empty(),
             "reset_window needs a fresh, empty FlightTable");
  HP_REQUIRE(id_base + window <= kU32Max + 1,
             "locator window exceeds the 32-bit id space");
  id_base_ = id_base;
  locator_.assign(static_cast<std::size_t>(window), kNoSlot);
  head_ = 0;
}

void FlightTable::serialize(util::BinWriter& out) const {
  out.u64(id_base_);
  out.u64(locator_.size());
  out.u64(head_);
  out.u64(size());
  for (Slot s = 0; s < end_slot(); ++s) {
    const auto i = idx(s);
    out.i32(ids_[i]);
    out.i32(src_[i]);
    out.i32(dst_[i]);
    out.i32(pos_[i]);
    out.i8(entry_dir_[i]);
    out.u8(prev_advanced_[i]);
    out.i8(prev_num_good_[i]);
    out.u64(injected_at(s));
    out.u64(deflections(s));
    out.i32(initial_distance_[i]);
  }
}

void FlightTable::deserialize(util::BinReader& in) {
  HP_REQUIRE(empty() && id_base_ == 0 && locator_.empty(),
             "deserialize needs a fresh, empty FlightTable");
  const std::uint64_t id_base = in.u64();
  const std::uint64_t window = in.u64();
  const std::uint64_t head = in.u64();
  const std::uint64_t count = in.u64();
  HP_REQUIRE(id_base + window <= kU32Max + 1 && head <= window &&
                 count <= window,
             "checkpoint is corrupt (inconsistent FlightTable window)");
  reset_window(id_base, window);
  head_ = static_cast<std::size_t>(head);
  for (std::uint64_t r = 0; r < count; ++r) {
    Packet p;
    p.id = in.i32();
    p.src = in.i32();
    p.dst = in.i32();
    p.pos = in.i32();
    p.last_move_dir = in.i8();
    p.prev_advanced = in.u8() != 0;
    p.prev_num_good = in.i8();
    p.injected_at = in.u64();
    p.deflections = in.u64();
    p.initial_distance = in.i32();

    const auto slot = static_cast<Slot>(ids_.size());
    ids_.push_back(p.id);
    src_.push_back(p.src);
    dst_.push_back(p.dst);
    pos_.push_back(p.pos);
    entry_dir_.push_back(p.last_move_dir);
    prev_advanced_.push_back(p.prev_advanced ? 1 : 0);
    prev_num_good_.push_back(static_cast<std::int8_t>(p.prev_num_good));
    if (compact_) {
      injected_at32_.push_back(narrow_u32(p.injected_at, "injected_at"));
      deflections32_.push_back(narrow_u32(p.deflections, "deflections"));
    } else {
      injected_at64_.push_back(p.injected_at);
      deflections64_.push_back(p.deflections);
    }
    initial_distance_.push_back(p.initial_distance);

    const auto i = static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.id));
    HP_REQUIRE(i >= id_base_ && i - id_base_ < locator_.size(),
               "checkpoint is corrupt (in-flight id outside the locator "
               "window)");
    Slot& entry = locator_[static_cast<std::size_t>(i - id_base_)];
    HP_REQUIRE(entry == kNoSlot,
               "checkpoint is corrupt (duplicate in-flight packet id)");
    entry = slot;
  }
}

std::size_t FlightTable::memory_bytes() const {
  auto bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  return bytes(ids_) + bytes(src_) + bytes(dst_) + bytes(pos_) +
         bytes(entry_dir_) + bytes(prev_advanced_) + bytes(prev_num_good_) +
         bytes(injected_at64_) + bytes(deflections64_) +
         bytes(injected_at32_) + bytes(deflections32_) +
         bytes(initial_distance_) + bytes(locator_);
}

// --- ArrivalLog -------------------------------------------------------------

void write_packet_record(util::BinWriter& out, const Packet& p) {
  out.i32(p.id);
  out.i32(p.src);
  out.i32(p.dst);
  out.i32(p.pos);
  out.i8(p.last_move_dir);
  out.u8(p.prev_advanced ? 1 : 0);
  out.i32(p.prev_num_good);
  out.u64(p.injected_at);
  out.u64(p.arrived_at);
  out.u64(p.deflections);
  out.i32(p.initial_distance);
}

Packet read_packet_record(util::BinReader& in) {
  Packet p;
  p.id = in.i32();
  p.src = in.i32();
  p.dst = in.i32();
  p.pos = in.i32();
  p.last_move_dir = in.i8();
  p.prev_advanced = in.u8() != 0;
  p.prev_num_good = in.i32();
  p.injected_at = in.u64();
  p.arrived_at = in.u64();
  p.deflections = in.u64();
  p.initial_distance = in.i32();
  return p;
}

void ArrivalLog::configure(const ArchiveConfig& config) {
  HP_REQUIRE(count_ == 0, "ArrivalLog::configure must precede any append");
  if (config.mode == ArchiveMode::kSpill) {
    HP_REQUIRE(!config.spill_path.empty(),
               "ArchiveMode::kSpill needs a spill_path");
    HP_REQUIRE(config.spill_buffer_records > 0,
               "spill_buffer_records must be > 0");
    std::ofstream out(config.spill_path,
                      std::ios::binary | std::ios::trunc);
    HP_REQUIRE(out.good(),
               "cannot create arrival spill file " + config.spill_path);
  }
  if (config.mode == ArchiveMode::kSample) {
    HP_REQUIRE(config.sample_capacity > 0, "sample_capacity must be > 0");
  }
  config_ = config;
  sample_rng_ = Rng(config.sample_seed);
}

void ArrivalLog::flush_spill() const {
  if (spill_buf_.empty()) return;
  std::ofstream out(config_.spill_path,
                    std::ios::binary | std::ios::app);
  HP_REQUIRE(out.good(),
             "cannot open arrival spill file " + config_.spill_path);
  util::BinWriter writer(out);
  for (const Packet& p : spill_buf_) write_packet_record(writer, p);
  HP_REQUIRE(writer.good(),
             "write to arrival spill file " + config_.spill_path + " failed");
  spill_buf_.clear();
}

void ArrivalLog::append(const Packet& p) {
  ++count_;
  if (!keep_) return;
  switch (config_.mode) {
    case ArchiveMode::kMemory: {
      const auto i =
          static_cast<std::size_t>(static_cast<std::uint32_t>(p.id));
      if (index_by_id_.size() <= i) index_by_id_.resize(i + 1, -1);
      index_by_id_[i] = static_cast<std::int64_t>(records_.size());
      records_.push_back(p);
      ++retained_;
      return;
    }
    case ArchiveMode::kSpill: {
      spill_buf_.push_back(p);
      if (spill_buf_.size() >= config_.spill_buffer_records) flush_spill();
      ++retained_;
      return;
    }
    case ArchiveMode::kSample: {
      // Algorithm R: record i (0-based) replaces a uniform reservoir entry
      // with probability capacity / (i + 1). Deterministic in the append
      // sequence alone.
      const std::uint64_t i = count_ - 1;
      if (records_.size() < config_.sample_capacity) {
        records_.push_back(p);
        ++retained_;
        return;
      }
      const std::uint64_t j = sample_rng_.uniform(i + 1);
      if (j < config_.sample_capacity) {
        records_[static_cast<std::size_t>(j)] = p;
      }
      return;
    }
  }
}

std::vector<Packet> ArrivalLog::drain() const {
  switch (config_.mode) {
    case ArchiveMode::kMemory:
      return {records_.begin(), records_.end()};
    case ArchiveMode::kSpill: {
      flush_spill();
      std::vector<Packet> out;
      std::ifstream in(config_.spill_path, std::ios::binary);
      HP_REQUIRE(in.good(),
                 "cannot open arrival spill file " + config_.spill_path);
      util::BinReader reader(in, "arrival spill file");
      while (in.peek() != std::char_traits<char>::eof()) {
        out.push_back(read_packet_record(reader));
      }
      return out;
    }
    case ArchiveMode::kSample: {
      // The reservoir is not in arrival order (replacement overwrites in
      // place); id order is the canonical presentation.
      std::vector<Packet> out(records_.begin(), records_.end());
      std::sort(out.begin(), out.end(),
                [](const Packet& a, const Packet& b) { return a.id < b.id; });
      return out;
    }
  }
  return {};
}

const Packet* ArrivalLog::find(PacketId id) const {
  switch (config_.mode) {
    case ArchiveMode::kMemory: {
      const auto i =
          static_cast<std::size_t>(static_cast<std::uint32_t>(id));
      if (i >= index_by_id_.size() || index_by_id_[i] < 0) return nullptr;
      return &records_[static_cast<std::size_t>(index_by_id_[i])];
    }
    case ArchiveMode::kSpill: {
      for (const Packet& p : spill_buf_) {
        if (p.id == id) return &p;
      }
      std::ifstream in(config_.spill_path, std::ios::binary);
      if (!in.good()) return nullptr;
      util::BinReader reader(in, "arrival spill file");
      while (in.peek() != std::char_traits<char>::eof()) {
        const Packet p = read_packet_record(reader);
        if (p.id == id) {
          find_scratch_ = p;
          return &find_scratch_;
        }
      }
      return nullptr;
    }
    case ArchiveMode::kSample: {
      for (const Packet& p : records_) {
        if (p.id == id) return &p;
      }
      return nullptr;
    }
  }
  return nullptr;
}

void ArrivalLog::serialize(util::BinWriter& out) const {
  HP_REQUIRE(!keep_ || config_.mode == ArchiveMode::kMemory,
             "checkpointing needs the in-memory arrival archive (or "
             "archive_arrivals off); spill and sample archives hold state "
             "outside the checkpoint");
  out.u8(keep_ ? 1 : 0);
  out.u64(count_);
  if (!keep_) return;
  out.u64(records_.size());
  for (const Packet& p : records_) write_packet_record(out, p);
}

void ArrivalLog::deserialize(util::BinReader& in) {
  HP_REQUIRE(count_ == 0, "ArrivalLog::deserialize needs a fresh log");
  HP_REQUIRE(!keep_ || config_.mode == ArchiveMode::kMemory,
             "checkpoint restore needs the in-memory arrival archive (or "
             "archive_arrivals off)");
  const bool kept = in.u8() != 0;
  HP_REQUIRE(kept == keep_,
             "checkpoint was written with archive_arrivals = " +
                 std::string(kept ? "true" : "false") +
                 " but this engine has it = " +
                 std::string(keep_ ? "true" : "false"));
  const std::uint64_t count = in.u64();
  if (!keep_) {
    count_ = count;
    return;
  }
  const std::uint64_t n = in.u64();
  HP_REQUIRE(n == count,
             "checkpoint is corrupt (arrival record count mismatch)");
  for (std::uint64_t i = 0; i < n; ++i) append(read_packet_record(in));
  HP_REQUIRE(count_ == count,
             "checkpoint is corrupt (arrival records do not replay)");
}

std::size_t ArrivalLog::memory_bytes() const {
  return records_.capacity() * sizeof(Packet) +
         spill_buf_.capacity() * sizeof(Packet) +
         index_by_id_.capacity() * sizeof(std::int64_t);
}

}  // namespace hp::sim
