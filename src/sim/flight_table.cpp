#include "sim/flight_table.hpp"

#include "util/check.hpp"

namespace hp::sim {

void FlightTable::push_locator(PacketId id, Slot slot) {
  const auto i = static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
  HP_CHECK(i == id_base_ + locator_.size(),
           "FlightTable ids must be issued densely and in order");
  locator_.push_back(slot);
}

Packet FlightTable::materialize(Slot s) const {
  const auto i = idx(s);
  Packet p;
  p.id = ids_[i];
  p.src = src_[i];
  p.dst = dst_[i];
  p.pos = pos_[i];
  p.last_move_dir = entry_dir_[i];
  p.prev_advanced = prev_advanced_[i] != 0;
  p.prev_num_good = prev_num_good_[i];
  p.injected_at = injected_at_[i];
  p.arrived_at = kNotArrived;
  p.deflections = deflections_[i];
  p.initial_distance = initial_distance_[i];
  return p;
}

FlightTable::Slot FlightTable::insert(const Packet& p) {
  const auto slot = static_cast<Slot>(ids_.size());
  ids_.push_back(p.id);
  src_.push_back(p.src);
  dst_.push_back(p.dst);
  pos_.push_back(p.pos);
  entry_dir_.push_back(p.last_move_dir);
  prev_advanced_.push_back(p.prev_advanced ? 1 : 0);
  prev_num_good_.push_back(static_cast<std::int8_t>(p.prev_num_good));
  injected_at_.push_back(p.injected_at);
  deflections_.push_back(p.deflections);
  initial_distance_.push_back(p.initial_distance);
  push_locator(p.id, slot);
  return slot;
}

void FlightTable::note_absent(PacketId id) { push_locator(id, kNoSlot); }

Packet FlightTable::remove(Slot s, std::uint64_t arrived_at) {
  Packet record = materialize(s);
  record.arrived_at = arrived_at;

  const auto i = idx(s);
  const auto last = ids_.size() - 1;
  const auto gone =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(record.id));
  locator_[static_cast<std::size_t>(gone - id_base_)] = kNoSlot;
  if (i != last) {
    ids_[i] = ids_[last];
    src_[i] = src_[last];
    dst_[i] = dst_[last];
    pos_[i] = pos_[last];
    entry_dir_[i] = entry_dir_[last];
    prev_advanced_[i] = prev_advanced_[last];
    prev_num_good_[i] = prev_num_good_[last];
    injected_at_[i] = injected_at_[last];
    deflections_[i] = deflections_[last];
    initial_distance_[i] = initial_distance_[last];
    const auto moved =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(ids_[i]));
    locator_[static_cast<std::size_t>(moved - id_base_)] =
        static_cast<Slot>(i);
  }
  ids_.pop_back();
  src_.pop_back();
  dst_.pop_back();
  pos_.pop_back();
  entry_dir_.pop_back();
  prev_advanced_.pop_back();
  prev_num_good_.pop_back();
  injected_at_.pop_back();
  deflections_.pop_back();
  initial_distance_.pop_back();

  reclaim_locator_prefix();
  return record;
}

void FlightTable::reclaim_locator_prefix() {
  // Advance past settled ids; amortized O(1) per packet over a run.
  while (head_ < locator_.size() && locator_[head_] == kNoSlot) ++head_;
  if (head_ >= 1024 && head_ * 2 >= locator_.size()) {
    locator_.erase(locator_.begin(),
                   locator_.begin() + static_cast<std::ptrdiff_t>(head_));
    id_base_ += head_;
    head_ = 0;
  }
}

void ArrivalLog::append(const Packet& p) {
  ++count_;
  if (!keep_) return;
  const auto i = static_cast<std::size_t>(static_cast<std::uint32_t>(p.id));
  if (index_by_id_.size() <= i) index_by_id_.resize(i + 1, -1);
  index_by_id_[i] = static_cast<std::int64_t>(records_.size());
  records_.push_back(p);
}

const Packet* ArrivalLog::find(PacketId id) const {
  const auto i = static_cast<std::size_t>(static_cast<std::uint32_t>(id));
  if (i >= index_by_id_.size() || index_by_id_[i] < 0) return nullptr;
  return &records_[static_cast<std::size_t>(index_by_id_[i])];
}

}  // namespace hp::sim
