// FlightTable: dense struct-of-arrays storage for the packets currently in
// flight, plus the append-only ArrivalLog archive of delivered packets.
//
// The engine's per-step cost must be O(in-flight), not O(packets ever
// created) — under continuous injection the total packet count grows
// without bound while the in-flight population stays at the network's
// carrying capacity. The FlightTable keeps exactly the in-flight packets in
// contiguous parallel arrays (position, destination, entry arc, history
// bits), removes a packet in O(1) by swap-remove when it arrives, and
// maintains a stable PacketId → slot index so observers and the engine can
// address packets by id. Full per-packet records of delivered packets live
// in the ArrivalLog, which the engine never touches on the hot path.
//
// Ids are assigned densely and monotonically. The id → slot locator is a
// sliding window: once every id below a watermark has left flight, the
// prefix is reclaimed, so locator memory is O(in-flight + id spread of the
// in-flight set), not O(ids ever issued).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/packet.hpp"
#include "topology/types.hpp"

namespace hp::sim {

class FlightTable {
 public:
  /// Index of an in-flight packet in the dense arrays. Slots are NOT
  /// stable across remove(); use PacketId + slot_of() to re-address.
  using Slot = std::int32_t;
  static constexpr Slot kNoSlot = -1;

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  Slot end_slot() const { return static_cast<Slot>(ids_.size()); }

  PacketId id(Slot s) const { return ids_[idx(s)]; }
  net::NodeId src(Slot s) const { return src_[idx(s)]; }
  net::NodeId dst(Slot s) const { return dst_[idx(s)]; }
  net::NodeId pos(Slot s) const { return pos_[idx(s)]; }
  /// Arc through which the packet entered pos(); kInvalidDir right after
  /// injection.
  net::Dir entry_dir(Slot s) const { return entry_dir_[idx(s)]; }
  bool prev_advanced(Slot s) const { return prev_advanced_[idx(s)] != 0; }
  int prev_num_good(Slot s) const { return prev_num_good_[idx(s)]; }
  std::uint64_t injected_at(Slot s) const { return injected_at_[idx(s)]; }
  std::uint64_t deflections(Slot s) const { return deflections_[idx(s)]; }
  int initial_distance(Slot s) const { return initial_distance_[idx(s)]; }

  /// Raw column bases for batch passes over slots [0, size()) — the
  /// engine's good-direction evaluation streams these directly. Invalidated
  /// by insert()/remove() like any slot.
  const net::NodeId* pos_data() const { return pos_.data(); }
  const net::NodeId* dst_data() const { return dst_.data(); }

  /// Slot currently holding packet `id`, or kNoSlot if the packet is not
  /// in flight (arrived, or never existed).
  Slot slot_of(PacketId id) const {
    const auto i = static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
    if (i < id_base_ || i - id_base_ >= locator_.size()) return kNoSlot;
    return locator_[static_cast<std::size_t>(i - id_base_)];
  }

  /// Adds a packet to flight. `p.id` must be the next id after every id
  /// this table has ever seen (ids are issued densely by the engine).
  Slot insert(const Packet& p);

  /// Records that the next id was issued but never entered flight (a
  /// trivial src == dst packet, delivered at injection).
  void note_absent(PacketId id);

  /// Applies one step of movement to a packet: new position, the arc it
  /// moved through, and the history bits for the next step's Type A / B
  /// classification. Increments the deflection count when !advanced.
  void move(Slot s, net::NodeId to, net::Dir via, bool advanced,
            int num_good) {
    const auto i = idx(s);
    pos_[i] = to;
    entry_dir_[i] = via;
    prev_advanced_[i] = advanced ? 1 : 0;
    prev_num_good_[i] = static_cast<std::int8_t>(num_good);
    if (!advanced) ++deflections_[i];
  }

  /// Full record of an in-flight packet (arrived_at = kNotArrived).
  Packet materialize(Slot s) const;

  /// Removes an arrived packet by swap-remove and returns its final
  /// record. O(1); invalidates the last slot.
  Packet remove(Slot s, std::uint64_t arrived_at);

 private:
  std::size_t idx(Slot s) const { return static_cast<std::size_t>(s); }
  void push_locator(PacketId id, Slot slot);
  void reclaim_locator_prefix();

  // Parallel arrays indexed by slot.
  std::vector<PacketId> ids_;
  std::vector<net::NodeId> src_;
  std::vector<net::NodeId> dst_;
  std::vector<net::NodeId> pos_;
  std::vector<net::Dir> entry_dir_;
  std::vector<std::uint8_t> prev_advanced_;
  std::vector<std::int8_t> prev_num_good_;
  std::vector<std::uint64_t> injected_at_;
  std::vector<std::uint64_t> deflections_;
  std::vector<std::int32_t> initial_distance_;

  // id → slot window: locator_[id - id_base_]. Entries [0, head_) are all
  // kNoSlot; the prefix is erased once it dominates the window.
  std::vector<Slot> locator_;
  std::uint64_t id_base_ = 0;
  std::size_t head_ = 0;
};

/// Append-only archive of delivered packets. When record-keeping is off
/// (steady-state runs that would otherwise accumulate unbounded memory) it
/// degrades to a counter.
class ArrivalLog {
 public:
  void set_keep_records(bool keep) { keep_ = keep; }
  bool keeps_records() const { return keep_; }

  void append(const Packet& p);

  /// All archived records, in arrival order (empty when keeping is off).
  std::span<const Packet> records() const { return records_; }

  /// Archived record of packet `id`, or nullptr if unknown / not kept.
  const Packet* find(PacketId id) const;

  std::uint64_t count() const { return count_; }

 private:
  bool keep_ = true;
  std::uint64_t count_ = 0;
  std::vector<Packet> records_;
  std::vector<std::int64_t> index_by_id_;  // id -> index into records_
};

}  // namespace hp::sim
