// FlightTable: dense struct-of-arrays storage for the packets currently in
// flight, plus the append-only ArrivalLog archive of delivered packets.
//
// The engine's per-step cost must be O(in-flight), not O(packets ever
// created) — under continuous injection the total packet count grows
// without bound while the in-flight population stays at the network's
// carrying capacity. The FlightTable keeps exactly the in-flight packets in
// contiguous parallel arrays (position, destination, entry arc, history
// bits), removes a packet in O(1) by swap-remove when it arrives, and
// maintains a stable PacketId → slot index so observers and the engine can
// address packets by id. Full per-packet records of delivered packets live
// in the ArrivalLog, which the engine never touches on the hot path.
//
// Ids are assigned densely and monotonically. The id → slot locator is a
// sliding window: once every id below a watermark has left flight, the
// prefix is reclaimed, so locator memory is O(in-flight + id spread of the
// in-flight set), not O(ids ever issued).
//
// Scale mode (docs/SCALE.md): the id/coordinate columns are 32-bit in every
// profile; ColumnWidth::kCompact additionally narrows the two 64-bit
// bookkeeping columns (injected_at, deflections) to 32 bits with overflow
// checks, and the ArrivalLog can spill records to disk or keep a
// fixed-size reservoir sample instead of an unbounded in-memory vector.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "topology/types.hpp"
#include "util/binio.hpp"
#include "util/rng.hpp"

namespace hp::sim {

/// Width of the FlightTable's 64-bit bookkeeping columns. kCompact stores
/// injected_at / deflections as 32-bit (8 bytes/packet saved) and throws
/// hp::CheckError on overflow; every other column is 32-bit in both modes.
enum class ColumnWidth { kWide = 0, kCompact = 1 };

class FlightTable {
 public:
  /// Index of an in-flight packet in the dense arrays. Slots are NOT
  /// stable across remove(); use PacketId + slot_of() to re-address.
  using Slot = std::int32_t;
  static constexpr Slot kNoSlot = -1;

  explicit FlightTable(ColumnWidth width = ColumnWidth::kWide)
      : compact_(width == ColumnWidth::kCompact) {}

  ColumnWidth column_width() const {
    return compact_ ? ColumnWidth::kCompact : ColumnWidth::kWide;
  }

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  Slot end_slot() const { return static_cast<Slot>(ids_.size()); }

  PacketId id(Slot s) const { return ids_[idx(s)]; }
  net::NodeId src(Slot s) const { return src_[idx(s)]; }
  net::NodeId dst(Slot s) const { return dst_[idx(s)]; }
  net::NodeId pos(Slot s) const { return pos_[idx(s)]; }
  /// Arc through which the packet entered pos(); kInvalidDir right after
  /// injection.
  net::Dir entry_dir(Slot s) const { return entry_dir_[idx(s)]; }
  bool prev_advanced(Slot s) const { return prev_advanced_[idx(s)] != 0; }
  int prev_num_good(Slot s) const { return prev_num_good_[idx(s)]; }
  std::uint64_t injected_at(Slot s) const {
    return compact_ ? injected_at32_[idx(s)] : injected_at64_[idx(s)];
  }
  std::uint64_t deflections(Slot s) const {
    return compact_ ? deflections32_[idx(s)] : deflections64_[idx(s)];
  }
  int initial_distance(Slot s) const { return initial_distance_[idx(s)]; }

  /// Raw column bases for batch passes over slots [0, size()) — the
  /// engine's good-direction evaluation streams these directly. Invalidated
  /// by insert()/remove() like any slot.
  const net::NodeId* pos_data() const { return pos_.data(); }
  const net::NodeId* dst_data() const { return dst_.data(); }

  /// Slot currently holding packet `id`, or kNoSlot if the packet is not
  /// in flight (arrived, or never existed).
  Slot slot_of(PacketId id) const {
    const auto i = static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
    if (i < id_base_ || i - id_base_ >= locator_.size()) return kNoSlot;
    return locator_[static_cast<std::size_t>(i - id_base_)];
  }

  /// Adds a packet to flight. `p.id` must be the next id after every id
  /// this table has ever seen (ids are issued densely by the engine).
  Slot insert(const Packet& p);

  /// Records that the next id was issued but never entered flight (a
  /// trivial src == dst packet, delivered at injection).
  void note_absent(PacketId id);

  /// Applies one step of movement to a packet: new position, the arc it
  /// moved through, and the history bits for the next step's Type A / B
  /// classification. Increments the deflection count when !advanced.
  void move(Slot s, net::NodeId to, net::Dir via, bool advanced,
            int num_good) {
    const auto i = idx(s);
    pos_[i] = to;
    entry_dir_[i] = via;
    prev_advanced_[i] = advanced ? 1 : 0;
    prev_num_good_[i] = static_cast<std::int8_t>(num_good);
    if (!advanced) bump_deflections(i);
  }

  /// Full record of an in-flight packet (arrived_at = kNotArrived).
  Packet materialize(Slot s) const;

  /// Removes an arrived packet by swap-remove and returns its final
  /// record. O(1); invalidates the last slot.
  Packet remove(Slot s, std::uint64_t arrived_at);

  /// Repositions an EMPTY table's locator window so that the next id it
  /// accepts is `id_base + window` (cast to PacketId through uint32).
  /// Checkpoint restore and the 32-bit id-wrap tests use this to reproduce
  /// a mid-run window without replaying every id since 0.
  void reset_window(std::uint64_t id_base, std::uint64_t window);

  /// Serializes the complete table state (columns in slot order + locator
  /// window) — part of the engine checkpoint format (docs/SCALE.md). The
  /// byte stream is ColumnWidth-independent: bookkeeping columns travel as
  /// 64-bit and narrow again on restore if the target table is compact.
  void serialize(util::BinWriter& out) const;

  /// Restores state written by serialize() into an empty, fresh table.
  /// Corrupt input throws hp::CheckError.
  void deserialize(util::BinReader& in);

  /// Heap bytes currently reserved by the table (capacity-based).
  std::size_t memory_bytes() const;

 private:
  std::size_t idx(Slot s) const { return static_cast<std::size_t>(s); }
  void push_locator(PacketId id, Slot slot);
  void reclaim_locator_prefix();
  void bump_deflections(std::size_t i);

  bool compact_;

  // Parallel arrays indexed by slot. The injected_at / deflections columns
  // exist in exactly one width, selected at construction.
  std::vector<PacketId> ids_;
  std::vector<net::NodeId> src_;
  std::vector<net::NodeId> dst_;
  std::vector<net::NodeId> pos_;
  std::vector<net::Dir> entry_dir_;
  std::vector<std::uint8_t> prev_advanced_;
  std::vector<std::int8_t> prev_num_good_;
  std::vector<std::uint64_t> injected_at64_;
  std::vector<std::uint64_t> deflections64_;
  std::vector<std::uint32_t> injected_at32_;
  std::vector<std::uint32_t> deflections32_;
  std::vector<std::int32_t> initial_distance_;

  // id → slot window: locator_[id - id_base_]. Entries [0, head_) are all
  // kNoSlot; the prefix is erased once it dominates the window.
  std::vector<Slot> locator_;
  std::uint64_t id_base_ = 0;
  std::size_t head_ = 0;
};

/// How the ArrivalLog stores full records when record-keeping is on.
enum class ArchiveMode : std::uint8_t {
  kMemory = 0,  ///< unbounded in-memory vector + O(1) id index (default)
  kSpill = 1,   ///< bounded buffer, flushed to a binary spill file
  kSample = 2,  ///< fixed-capacity deterministic reservoir sample
};

struct ArchiveConfig {
  ArchiveMode mode = ArchiveMode::kMemory;
  /// Spill file path; required (non-empty) for ArchiveMode::kSpill. The
  /// file is truncated when the log is configured.
  std::string spill_path;
  /// Records buffered in memory between spill flushes.
  std::size_t spill_buffer_records = 4096;
  /// Reservoir capacity for ArchiveMode::kSample (must be > 0).
  std::size_t sample_capacity = 4096;
  /// Seed of the reservoir's replacement stream. Sampling is a pure
  /// function of (seed, append sequence), so it is thread-count invariant.
  std::uint64_t sample_seed = 1;
};

/// Append-only archive of delivered packets. When record-keeping is off
/// (steady-state runs that would otherwise accumulate unbounded memory) it
/// degrades to a counter; spill / sample modes bound the in-memory record
/// set for scale runs while keeping counts exact.
class ArrivalLog {
 public:
  void set_keep_records(bool keep) { keep_ = keep; }
  bool keeps_records() const { return keep_; }

  /// Selects the storage mode. Must be called before the first append.
  void configure(const ArchiveConfig& config);
  ArchiveMode mode() const { return config_.mode; }

  void append(const Packet& p);

  /// In-memory records in arrival order. Only meaningful for kMemory
  /// (kSpill/kSample hold a subset in memory — use drain()/dropped()).
  std::span<const Packet> records() const { return records_; }

  /// Every retained record, in arrival order: the whole archive for
  /// kMemory, spilled + buffered records for kSpill, and the current
  /// reservoir (in id order) for kSample. O(archived); flushes the spill
  /// buffer first so the file stays the single source of truth.
  std::vector<Packet> drain() const;

  /// Archived record of packet `id`, or nullptr if unknown / not kept /
  /// sampled out. kSpill scans the spill file (O(archived)); the returned
  /// pointer is invalidated by the next find() in that mode.
  const Packet* find(PacketId id) const;

  std::uint64_t count() const { return count_; }

  /// Exact number of appended records not retained (dropped by keep=false,
  /// or displaced / never admitted by the kSample reservoir). Always 0 for
  /// kMemory and kSpill with keeping on.
  std::uint64_t dropped() const { return count_ - retained_; }

  /// Heap bytes currently reserved by the in-memory side of the log.
  std::size_t memory_bytes() const;

  /// Checkpoint I/O (docs/SCALE.md). Only a count-only log or the
  /// in-memory mode serializes; kSpill / kSample are rejected with
  /// hp::CheckError (their retained set lives outside the checkpoint).
  void serialize(util::BinWriter& out) const;
  void deserialize(util::BinReader& in);

 private:
  void flush_spill() const;

  bool keep_ = true;
  ArchiveConfig config_;
  std::uint64_t count_ = 0;
  std::uint64_t retained_ = 0;
  std::vector<Packet> records_;            // kMemory archive / kSample reservoir
  mutable std::vector<Packet> spill_buf_;  // kSpill: records not yet on disk
  std::vector<std::int64_t> index_by_id_;  // kMemory: id -> index into records_
  Rng sample_rng_;                         // kSample replacement stream
  /// kSpill find() scratch: find() stays const (the engine queries through
  /// const references) but must surface a record read back from disk.
  mutable Packet find_scratch_;
};

/// Fixed-layout binary Packet record (50 bytes), shared by the ArrivalLog
/// spill file and the checkpoint format.
void write_packet_record(util::BinWriter& out, const Packet& p);
Packet read_packet_record(util::BinReader& in);

}  // namespace hp::sim
