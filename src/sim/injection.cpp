#include "sim/injection.hpp"

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace hp::sim {

BernoulliInjector::BernoulliInjector(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
  HP_REQUIRE(rate >= 0.0 && rate <= 1.0, "injection rate must be in [0,1]");
}

void BernoulliInjector::inject(Engine& engine, std::uint64_t /*step*/) {
  const auto& net = engine.network();
  const auto n = static_cast<net::NodeId>(net.num_nodes());
  for (net::NodeId v = 0; v < n; ++v) {
    if (!rng_.bernoulli(rate_)) continue;
    ++offered_;
    // Uniform destination other than the source itself.
    net::NodeId dst = v;
    while (dst == v) {
      dst = static_cast<net::NodeId>(rng_.uniform(net.num_nodes()));
    }
    if (engine.try_inject(v, dst)) ++admitted_;
  }
}

}  // namespace hp::sim
