// Continuous packet injection — the steady-state operating mode of
// deflection networks.
//
// The paper analyzes batch routing, but its motivating systems (multihop
// lightwave networks [AS], [Ma], [Sz], [ZA]; the mesh/ring analyses of
// [GG]) run deflection routing with continuous arrivals. An Injector is
// invoked by the engine at the beginning of every step and may place new
// packets at nodes with free out-slots (the hot-potato capacity rule: a
// node can never hold more packets than its out-degree).
#pragma once

#include <cstdint>

#include "topology/types.hpp"
#include "util/rng.hpp"

namespace hp::sim {

class Engine;

class Injector {
 public:
  virtual ~Injector() = default;

  /// Called once per step before routing. Implementations call
  /// Engine::try_inject(src, dst); the engine enforces the capacity rule
  /// and reports whether the packet was admitted.
  virtual void inject(Engine& engine, std::uint64_t step) = 0;
};

/// Independent Bernoulli arrivals: each node attempts to source a packet
/// with probability `rate` per step, destination uniform over all nodes
/// (excluding the source). Attempts at saturated nodes are dropped and
/// counted — the blocked-arrival rate is itself a standard deflection-
/// network metric.
class BernoulliInjector : public Injector {
 public:
  BernoulliInjector(double rate, std::uint64_t seed);

  void inject(Engine& engine, std::uint64_t step) override;

  std::uint64_t offered() const { return offered_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t blocked() const { return offered_ - admitted_; }
  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
};

}  // namespace hp::sim
