#include "sim/livelock.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/binio.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hp::sim {

namespace {

/// Strong 128-bit hash of one packet's routing state. The two words are
/// independent splitmix64 chains over an injective two-word encoding of
/// (id, position, entry arc, history bits).
StateDigest hash_packet_state(PacketId id, net::NodeId pos, net::Dir dir,
                              bool prev_advanced, int prev_num_good) {
  const std::uint64_t w1 =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(pos));
  const std::uint64_t w2 =
      (static_cast<std::uint64_t>(static_cast<std::uint8_t>(dir)) << 16) |
      (static_cast<std::uint64_t>(prev_advanced) << 8) |
      static_cast<std::uint64_t>(static_cast<std::uint8_t>(prev_num_good + 1));

  std::uint64_t lo = 0x243f6a8885a308d3ULL ^ (w1 * 0x9ddfea08eb382d69ULL);
  lo = splitmix64(lo);
  lo ^= w2 * 0x9ddfea08eb382d69ULL;
  lo = splitmix64(lo);

  std::uint64_t hi = 0x13198a2e03707344ULL ^ (~w1 * 0x9ddfea08eb382d69ULL);
  hi = splitmix64(hi);
  hi ^= ~w2 * 0x9ddfea08eb382d69ULL;
  hi = splitmix64(hi);
  return {lo, hi};
}

}  // namespace

StateDigest digest_state(const FlightTable& flight) {
  StateDigest d{0, 0};
  for (FlightTable::Slot s = 0; s < flight.end_slot(); ++s) {
    const StateDigest h =
        hash_packet_state(flight.id(s), flight.pos(s), flight.entry_dir(s),
                          flight.prev_advanced(s), flight.prev_num_good(s));
    d.lo += h.lo;  // commutative: traversal order must not matter
    d.hi += h.hi;
  }
  return d;
}

StateDigest digest_state(const std::vector<Packet>& packets) {
  StateDigest d{0, 0};
  for (const Packet& p : packets) {
    if (p.arrived()) continue;
    const StateDigest h = hash_packet_state(p.id, p.pos, p.last_move_dir,
                                            p.prev_advanced, p.prev_num_good);
    d.lo += h.lo;
    d.hi += h.hi;
  }
  return d;
}

std::uint64_t LivelockDetector::record(const StateDigest& digest,
                                       std::uint64_t step) {
  auto [it, inserted] = seen_.try_emplace(digest.lo, Entry{digest.hi, step});
  if (inserted) return kNoRepeat;
  if (it->second.hi == digest.hi) return it->second.step;
  // A 64-bit half-collision with distinct upper halves: genuinely distinct
  // states. Keep the first entry; this can at worst delay detection.
  return kNoRepeat;
}

void LivelockDetector::serialize(util::BinWriter& w) const {
  std::vector<std::pair<std::uint64_t, Entry>> entries;
  entries.reserve(seen_.size());
  // The sort below makes the byte stream independent of bucket order.
  for (const auto& [lo, entry] : seen_) entries.emplace_back(lo, entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(entries.size());
  for (const auto& [lo, entry] : entries) {
    w.u64(lo);
    w.u64(entry.hi);
    w.u64(entry.step);
  }
}

void LivelockDetector::deserialize(util::BinReader& r) {
  HP_REQUIRE(seen_.empty(),
             "LivelockDetector::deserialize needs a fresh detector");
  const std::uint64_t n = r.u64();
  seen_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t lo = r.u64();
    Entry e;
    e.hi = r.u64();
    e.step = r.u64();
    HP_REQUIRE(seen_.emplace(lo, e).second,
               "duplicate livelock digest in checkpoint");
  }
}

}  // namespace hp::sim
