#include "sim/livelock.hpp"

#include "util/rng.hpp"

namespace hp::sim {

namespace {

void mix(std::uint64_t& chain, std::uint64_t value) {
  std::uint64_t s = chain ^ (value * 0x9ddfea08eb382d69ULL);
  chain = splitmix64(s);
}

}  // namespace

StateDigest digest_state(const std::vector<Packet>& packets) {
  StateDigest d{0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL};
  for (const Packet& p : packets) {
    if (p.arrived()) continue;
    // Injective two-word encoding of the per-packet state.
    const std::uint64_t w1 =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.id)) << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.pos));
    const std::uint64_t w2 =
        (static_cast<std::uint64_t>(static_cast<std::uint8_t>(p.last_move_dir))
         << 16) |
        (static_cast<std::uint64_t>(p.prev_advanced) << 8) |
        static_cast<std::uint64_t>(
            static_cast<std::uint8_t>(p.prev_num_good + 1));
    mix(d.lo, w1);
    mix(d.lo, w2);
    mix(d.hi, ~w1);
    mix(d.hi, ~w2);
  }
  return d;
}

std::uint64_t LivelockDetector::record(const StateDigest& digest,
                                       std::uint64_t step) {
  auto [it, inserted] = seen_.try_emplace(digest.lo, Entry{digest.hi, step});
  if (inserted) return kNoRepeat;
  if (it->second.hi == digest.hi) return it->second.step;
  // A 64-bit half-collision with distinct upper halves: genuinely distinct
  // states. Keep the first entry; this can at worst delay detection.
  return kNoRepeat;
}

}  // namespace hp::sim
