// Livelock detection by configuration hashing.
//
// The state of a synchronous hot-potato system is exactly the multiset of
// in-flight packets with their positions and one step of history. For a
// deterministic policy the next state is a function of the current state,
// so a repeated state proves an infinite loop (livelock) — the situation
// Section 1.2 warns about for unrestricted greedy routing.
//
// The digest is a commutative combination of strong per-packet hashes, so
// it is independent of the order in which the in-flight set is traversed —
// the flight table's slot order changes as packets arrive (swap-remove),
// and the digest must not.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/flight_table.hpp"
#include "sim/packet.hpp"

namespace hp::util {
class BinWriter;
class BinReader;
}  // namespace hp::util

namespace hp::sim {

/// 128-bit configuration fingerprint: a sum of independent 128-bit
/// per-packet hashes. The collision probability over any realistic run
/// length is negligible.
struct StateDigest {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const StateDigest&, const StateDigest&) = default;
};

/// Computes the digest of the current configuration: every in-flight
/// packet's (id, position, last move, history bits). Order-independent.
StateDigest digest_state(const FlightTable& flight);

/// Same digest computed from explicit packet records (arrived packets are
/// ignored). Used by tests and tools that hold plain Packet vectors.
StateDigest digest_state(const std::vector<Packet>& packets);

/// Remembers digests of visited configurations and reports repeats.
class LivelockDetector {
 public:
  /// Records the configuration at time `step`. Returns the step at which
  /// the same configuration was first seen, or kNoRepeat if new.
  std::uint64_t record(const StateDigest& digest, std::uint64_t step);

  static constexpr std::uint64_t kNoRepeat = ~std::uint64_t{0};

  std::size_t states_seen() const { return seen_.size(); }

  /// Writes the seen-state map to a checkpoint, sorted by digest key so
  /// the byte stream is independent of bucket order.
  void serialize(util::BinWriter& w) const;
  /// Restores the map from a checkpoint. The detector must be fresh.
  void deserialize(util::BinReader& r);

 private:
  struct Entry {
    std::uint64_t hi;
    std::uint64_t step;
  };
  // hp-lint: allow(unordered-member) lookup/insert in the hot path; the
  // only iteration (checkpoint serialize) sorts by key first. The digest
  // keying this map is a commutative sum over the in-flight set (see
  // digest_state), so no result ever depends on bucket order.
  std::unordered_map<std::uint64_t, Entry> seen_;
};

}  // namespace hp::sim
