// Step observers: how the analysis layer watches a run.
//
// The potential-function machinery of Sections 3–4 is implemented as
// observers that audit every step of a real execution — Property 8 at every
// node, the Lemma 12 two-step drop, greediness per Definition 6, and so on.
//
// The interface is a *streaming* one: the engine hands each observer, once
// per step, spans into its own per-step buffers — the routing decisions
// grouped by node and the full records of the packets delivered by this
// step's movement. Nothing is copied per step and nothing references the
// ever-growing set of delivered packets, so observers compose with
// continuous-injection runs of unbounded length. Spans are valid only for
// the duration of the on_step call; observers that need history must copy
// what they keep.
#pragma once

#include <cstdint>
#include <span>

#include "sim/packet.hpp"
#include "topology/types.hpp"

namespace hp::sim {

class Engine;

/// One packet's routing decision in one step, with the pre-move facts the
/// analysis needs. Assignments for the same node are contiguous in the
/// step record.
struct Assignment {
  PacketId pkt = 0;
  net::NodeId node = net::kInvalidNode;  ///< node the packet was routed from
  net::Dir out = net::kInvalidDir;       ///< chosen outgoing direction
  bool advances = false;                 ///< arc was good for the packet
  int num_good = 0;          ///< good directions at `node` (pre-move)
  /// Bit i set iff direction i was good for this packet at `node`.
  std::uint32_t good_mask = 0;
  bool was_type_a = false;   ///< restricted Type A at start of step (§4.1)
  bool prev_advanced = false;
  int prev_num_good = -1;
};

/// Everything that happened in one engine step, streamed by reference.
struct StepRecord {
  /// Time at the beginning of the step; movement happens between `step`
  /// and `step + 1`.
  std::uint64_t step = 0;
  /// All routing decisions, grouped contiguously by node.
  std::span<const Assignment> assignments;
  /// Final records of the packets that reached their destination by this
  /// movement (arrived_at == step + 1). They are absorbed and do not
  /// appear in later steps; this span is the last time the engine offers
  /// their full record on the hot path.
  std::span<const Packet> arrivals;
  /// Packets still in flight after the movement was applied.
  std::size_t in_flight_after = 0;
};

class StepObserver {
 public:
  virtual ~StepObserver() = default;

  /// Called once per step, after movement has been applied. The engine's
  /// flight table reflects post-move state; pre-move positions are in the
  /// record's assignments. The record's spans die with this call.
  virtual void on_step(const Engine& engine, const StepRecord& record) = 0;
};

}  // namespace hp::sim
