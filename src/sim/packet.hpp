// Packet state for the synchronous hot-potato model (Section 2).
#pragma once

#include <cstdint>

#include "topology/types.hpp"

namespace hp::sim {

using PacketId = std::int32_t;

inline constexpr std::uint64_t kNotArrived = ~std::uint64_t{0};

/// One packet in flight (or already delivered). Besides position, the
/// packet carries the two bits of history the paper's Type A / Type B
/// classification (§4.1) needs: whether it advanced in the previous step
/// and how many good directions it had then.
struct Packet {
  PacketId id = 0;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;

  /// Current node while in flight; meaningless after arrival.
  net::NodeId pos = net::kInvalidNode;

  /// Direction label of the packet's movement in the previous step, i.e.
  /// the arc through which it entered `pos`. kInvalidDir right after
  /// injection (the packet did not arrive through any arc).
  net::Dir last_move_dir = net::kInvalidDir;

  /// True iff the packet got closer to its destination in the previous
  /// step (it "advanced", Definition 5). False right after injection.
  bool prev_advanced = false;

  /// Number of good directions the packet had at the node it occupied at
  /// the beginning of the previous step; -1 right after injection.
  int prev_num_good = -1;

  /// Bookkeeping for experiments.
  std::uint64_t injected_at = 0;
  std::uint64_t arrived_at = kNotArrived;
  std::uint64_t deflections = 0;
  int initial_distance = 0;

  bool arrived() const { return arrived_at != kNotArrived; }

  /// True iff the packet was a *restricted* packet of Type A at the
  /// beginning of the current step (§4.1): it was restricted (exactly one
  /// good direction) in the previous step and advanced in it. The caller
  /// supplies the current number of good directions; a Type A packet is
  /// still restricted now (an advancing restricted packet in the mesh
  /// stays aligned with its destination until arrival).
  bool is_type_a(int num_good_now) const {
    return num_good_now == 1 && prev_num_good == 1 && prev_advanced;
  }
};

}  // namespace hp::sim
