// Routing policy interface: the per-node local computation of Section 2.
//
// Each step, every node that holds packets performs a local computation on
// the packets that just arrived (their destinations and entry arcs — never
// their sources, matching the paper's model note) and assigns every packet
// a distinct outgoing arc. Hot-potato discipline: there is no buffering, so
// every packet is assigned an arc every step.
#pragma once

#include <span>
#include <string>

#include "sim/packet.hpp"
#include "topology/network.hpp"
#include "util/rng.hpp"

namespace hp::sim {

/// What a policy may see about one resident packet. Sources are
/// deliberately absent (the algorithms in the paper never consult them).
struct PacketView {
  PacketId id = 0;
  net::NodeId dst = net::kInvalidNode;
  /// Arc (direction label) through which the packet entered this node;
  /// kInvalidDir if it was injected here this step.
  net::Dir entry_dir = net::kInvalidDir;
  /// Good directions at this node (Definition 5). Empty never occurs:
  /// packets at their destination are absorbed before routing.
  net::DirList good;
  /// Same set as `good`, as a bitmask (bit d ⇔ direction d is good).
  std::uint32_t good_mask = 0;
  /// History bits for the Type A / Type B classification of §4.1.
  bool prev_advanced = false;
  int prev_num_good = -1;

  int num_good() const { return static_cast<int>(good.size()); }
  bool restricted() const { return good.size() == 1; }
  bool type_a() const {
    return restricted() && prev_num_good == 1 && prev_advanced;
  }
};

/// Per-node, per-step context handed to the policy.
struct NodeContext {
  const net::Network& net;
  net::NodeId node;
  std::uint64_t step;
  /// Directions with an existing outgoing arc at this node, ascending.
  net::DirList avail_dirs;
  /// Policy-private random stream (deterministic per seed).
  Rng& rng;
};

/// A hot-potato routing algorithm: one decision rule applied at every node
/// in every step (the paper's "uniform, simple" algorithms).
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual std::string name() const = 0;

  /// Assigns packets[i] the outgoing direction out[i]. The engine verifies
  /// that directions are pairwise distinct and correspond to existing arcs.
  /// packets.size() never exceeds the node degree (an invariant of the
  /// model: each packet entered through a distinct arc, and injection
  /// respects the out-degree origin constraint).
  virtual void route(const NodeContext& ctx,
                     std::span<const PacketView> packets,
                     std::span<net::Dir> out) = 0;

  /// True iff route() is a deterministic function of its arguments (it
  /// never draws from ctx.rng). The engine only trusts repeated-state
  /// detection as a livelock proof for deterministic policies.
  virtual bool deterministic() const { return false; }

  /// Conformance claims, audited at runtime when the library is built with
  /// HP_AUDIT (see docs/STATIC_ANALYSIS.md): the engine attaches the
  /// matching core:: checker to every run of a claiming policy and throws
  /// hp::CheckError on the first violation. Claims are promises about the
  /// algorithm *class*, not about one run — only claim what holds for every
  /// input.
  /// Definition 6: whenever a packet is deflected, each of its good arcs is
  /// used by another advancing packet.
  virtual bool claims_greedy() const { return false; }
  /// Definition 18: a nonrestricted packet never deflects a restricted one.
  virtual bool claims_restricted_preference() const { return false; }

  /// Batched good-direction masks for `count` packets: out_masks[i] gets
  /// bit d set iff direction d is good for a packet at at[i] bound for
  /// dst[i]. The engine calls this once per step over the dense flight
  /// columns (possibly concurrently over disjoint ranges) and hands each
  /// packet's mask back through PacketView::good_mask, so route() never
  /// pays a per-packet virtual topology call. Override only to *redefine*
  /// goodness (Definition 5); the default delegates to the topology's
  /// closed-form batch evaluation and is what every policy in this repo
  /// uses.
  virtual void batch_good_dirs(const net::Network& net,
                               const net::NodeId* at, const net::NodeId* dst,
                               std::uint32_t* out_masks,
                               std::size_t count) const {
    net.good_masks(at, dst, out_masks, count);
  }
};

}  // namespace hp::sim
