#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace hp::sim {

void TraceRecorder::on_step(const Engine& engine, const StepRecord& record) {
  Snapshot snap;
  snap.step = record.step + 1;  // positions are post-move
  const FlightTable& flight = engine.flight();
  snap.positions.reserve(flight.size());
  for (FlightTable::Slot s = 0; s < flight.end_slot(); ++s) {
    snap.positions.emplace_back(flight.id(s), flight.pos(s));
  }
  // Slot order varies with arrivals; id order keeps snapshots stable.
  std::sort(snap.positions.begin(), snap.positions.end());
  snapshots_.push_back(std::move(snap));
}

std::string render_grid(const net::Mesh& mesh,
                        const TraceRecorder::Snapshot& snapshot,
                        int bad_threshold) {
  HP_REQUIRE(mesh.dim() == 2, "render_grid requires a 2-D mesh");
  std::vector<int> counts(mesh.num_nodes(), 0);
  for (const auto& [pkt, pos] : snapshot.positions) {
    ++counts[static_cast<std::size_t>(pos)];
  }
  std::ostringstream os;
  os << "t=" << snapshot.step << "\n";
  // Render row y from top (y = side-1) to bottom for conventional display.
  for (int y = mesh.side() - 1; y >= 0; --y) {
    for (int x = 0; x < mesh.side(); ++x) {
      net::Coord c;
      c.push_back(x);
      c.push_back(y);
      const int count = counts[static_cast<std::size_t>(mesh.node_at(c))];
      if (count == 0) {
        os << " . ";
      } else if (count > bad_threshold) {
        os << "[" << count << "]";
      } else {
        os << " " << count << " ";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace hp::sim
