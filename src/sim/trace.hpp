// Execution tracing: per-step snapshots of packet positions plus an ASCII
// renderer for two-dimensional meshes. Used by the example binaries to
// visualize deflection dynamics, bad-node volumes and surface arcs
// (the concepts in Figures 3 and 4 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/observer.hpp"
#include "topology/mesh.hpp"

namespace hp::sim {

/// Observer that records, for every step, each in-flight packet's position
/// (post-move). Memory is O(steps × packets); intended for small demos.
class TraceRecorder : public StepObserver {
 public:
  struct Snapshot {
    std::uint64_t step = 0;
    std::vector<std::pair<PacketId, net::NodeId>> positions;
  };

  void on_step(const Engine& engine, const StepRecord& record) override;

  const std::vector<Snapshot>& snapshots() const { return snapshots_; }

 private:
  std::vector<Snapshot> snapshots_;
};

/// Renders one snapshot of a 2-D mesh as an ASCII grid. Each cell shows the
/// number of packets at that node ('.' for zero); cells holding more than
/// `bad_threshold` packets — the paper's bad nodes (Definition 9, threshold
/// d = 2) — are bracketed, e.g. "[3]".
std::string render_grid(const net::Mesh& mesh,
                        const TraceRecorder::Snapshot& snapshot,
                        int bad_threshold = 2);

}  // namespace hp::sim
