#include "stats/recorder.hpp"

#include "util/csv.hpp"

namespace hp::stats {

void RunRecorder::on_step(const sim::Engine& engine,
                          const sim::StepRecord& record) {
  StepRow row;
  row.step = record.step;
  row.in_flight = static_cast<std::int64_t>(record.assignments.size());
  row.arrived = static_cast<std::int64_t>(record.arrivals.size());
  for (const sim::Assignment& a : record.assignments) {
    if (a.advances) {
      ++row.advanced;
    } else {
      ++row.deflected;
    }
    row.total_distance +=
        engine.network().distance(a.node, engine.packet_dst(a.pkt));
  }
  rows_.push_back(row);
}

void RunRecorder::write_csv(std::ostream& out) const {
  CsvWriter csv(out, {"step", "in_flight", "advanced", "deflected", "arrived",
                      "total_distance"});
  for (const StepRow& r : rows_) {
    csv.row()
        .add(r.step)
        .add(r.in_flight)
        .add(r.advanced)
        .add(r.deflected)
        .add(r.arrived)
        .add(r.total_distance);
  }
}

LatencySummary summarize_latency(const sim::RunResult& result) {
  LatencySummary summary;
  for (const sim::Packet& p : result.packets) {
    if (!p.arrived()) continue;
    ++summary.delivered;
    summary.latency.add(static_cast<double>(p.arrived_at));
    summary.stretch.add(static_cast<double>(p.arrived_at) /
                        static_cast<double>(std::max(1, p.initial_distance)));
    summary.deflections.add(static_cast<double>(p.deflections));
  }
  return summary;
}

DistanceProfile profile_by_distance(const sim::RunResult& result) {
  DistanceProfile profile;
  for (const sim::Packet& p : result.packets) {
    if (!p.arrived()) continue;
    const auto d = static_cast<std::size_t>(p.initial_distance);
    if (profile.by_distance.size() <= d) profile.by_distance.resize(d + 1);
    profile.by_distance[d].add(static_cast<double>(p.arrived_at));
  }
  return profile;
}

}  // namespace hp::stats
