// Run-level statistics recording: per-step time series and per-packet
// latency summaries, with CSV export for the experiment harnesses.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/engine.hpp"
#include "sim/observer.hpp"
#include "util/stats.hpp"

namespace hp::stats {

/// Observer recording per-step aggregate counters.
class RunRecorder : public sim::StepObserver {
 public:
  struct StepRow {
    std::uint64_t step = 0;
    std::int64_t in_flight = 0;   ///< packets routed this step
    std::int64_t advanced = 0;
    std::int64_t deflected = 0;
    std::int64_t arrived = 0;
    std::int64_t total_distance = 0;  ///< Σ dist-to-destination, pre-move
  };

  void on_step(const sim::Engine& engine,
               const sim::StepRecord& record) override;

  const std::vector<StepRow>& rows() const { return rows_; }

  /// Writes the series as CSV (step, in_flight, advanced, deflected,
  /// arrived, total_distance).
  void write_csv(std::ostream& out) const;

 private:
  std::vector<StepRow> rows_;
};

/// Per-packet latency summary of a finished run.
struct LatencySummary {
  hp::Samples latency;        ///< arrival step per delivered packet
  hp::Samples stretch;        ///< latency / max(1, initial distance)
  hp::Samples deflections;    ///< deflections per delivered packet
  std::size_t delivered = 0;
};

LatencySummary summarize_latency(const sim::RunResult& result);

/// Mean arrival time bucketed by initial distance — the §1 motivation
/// experiment (greedy routes short-distance packets fast). Index i holds
/// the mean latency of packets with initial distance i (NaN-free: empty
/// buckets report zero count).
struct DistanceProfile {
  std::vector<hp::RunningStat> by_distance;
};

DistanceProfile profile_by_distance(const sim::RunResult& result);

}  // namespace hp::stats
