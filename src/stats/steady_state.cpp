#include "stats/steady_state.hpp"

#include "sim/engine.hpp"
#include "sim/injection.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace hp::stats {

namespace {

/// Streams the measurement window's statistics off the step records: the
/// in-flight population, and per-arrival latency/deflections as packets are
/// delivered. Nothing is retained per packet, so measurement windows of any
/// length run in O(in-flight) memory (the engine's arrival archive is off).
class WindowProbe : public sim::StepObserver {
 public:
  explicit WindowProbe(std::uint64_t warmup) : warmup_(warmup) {}

  void on_step(const sim::Engine& /*engine*/,
               const sim::StepRecord& record) override {
    if (record.step < warmup_) return;
    in_flight_.add(static_cast<double>(record.assignments.size()));
    for (const sim::Packet& p : record.arrivals) {
      // record.arrivals carries arrived_at == record.step + 1 > warmup_:
      // exactly the arrivals inside the measurement window.
      ++delivered_;
      deflections_ += p.deflections;
      if (p.injected_at >= warmup_) {
        latency_.add(static_cast<double>(p.arrived_at - p.injected_at));
      }
    }
  }

  const RunningStat& in_flight() const { return in_flight_; }
  const Samples& latency() const { return latency_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t deflections() const { return deflections_; }

 private:
  std::uint64_t warmup_;
  RunningStat in_flight_;
  Samples latency_;
  std::uint64_t delivered_ = 0;
  std::uint64_t deflections_ = 0;
};

}  // namespace

SteadyStateReport measure_steady_state(const net::Network& network,
                                       sim::RoutingPolicy& policy,
                                       double rate, std::uint64_t warmup,
                                       std::uint64_t measure,
                                       std::uint64_t seed) {
  HP_REQUIRE(measure > 0, "empty measurement window");

  workload::Problem empty;
  empty.name = "steady-state";
  sim::EngineConfig config;
  config.seed = seed;
  config.detect_livelock = false;
  config.archive_arrivals = false;  // unbounded run: O(in-flight) memory
  sim::Engine engine(network, empty, policy, config);
  sim::BernoulliInjector injector(rate, seed ^ 0x5bd1e995u);
  engine.set_injector(&injector);
  WindowProbe probe(warmup);
  engine.add_observer(&probe);

  engine.run_for(warmup + measure);

  SteadyStateReport report;
  report.offered_rate = rate;
  report.admit_fraction =
      injector.offered() == 0
          ? 1.0
          : static_cast<double>(injector.admitted()) /
                static_cast<double>(injector.offered());

  report.delivered_measured = probe.delivered();
  report.throughput = static_cast<double>(probe.delivered()) /
                      static_cast<double>(measure) /
                      static_cast<double>(network.num_nodes());
  if (!probe.latency().empty()) {
    report.mean_latency = probe.latency().mean();
    report.p99_latency = probe.latency().percentile(0.99);
  }
  report.mean_in_flight = probe.in_flight().mean();
  report.deflections_per_delivered =
      probe.delivered() == 0
          ? 0.0
          : static_cast<double>(probe.deflections()) /
                static_cast<double>(probe.delivered());
  return report;
}

}  // namespace hp::stats
