#include "stats/steady_state.hpp"

#include "sim/engine.hpp"
#include "sim/injection.hpp"
#include "stats/window.hpp"
#include "util/check.hpp"

namespace hp::stats {

SteadyStateReport measure_steady_state(const net::Network& network,
                                       sim::RoutingPolicy& policy,
                                       double rate, std::uint64_t warmup,
                                       std::uint64_t measure,
                                       std::uint64_t seed) {
  HP_REQUIRE(measure > 0, "empty measurement window");

  workload::Problem empty;
  empty.name = "steady-state";
  sim::EngineConfig config;
  config.seed = seed;
  config.detect_livelock = false;
  config.archive_arrivals = false;  // unbounded run: O(in-flight) memory
  sim::Engine engine(network, empty, policy, config);
  sim::BernoulliInjector injector(rate, seed ^ 0x5bd1e995u);
  engine.set_injector(&injector);
  // The shared window observer streams the measurement window's stats off
  // the step records in O(in-flight) memory; steps before `warmup` and
  // latencies of warmup-injected packets are excluded.
  WindowStats probe;
  probe.begin_window(/*start_step=*/warmup, /*injected_floor=*/warmup);
  engine.add_observer(&probe);

  engine.run_for(warmup + measure);

  SteadyStateReport report;
  report.offered_rate = rate;
  report.admit_fraction =
      injector.offered() == 0
          ? 1.0
          : static_cast<double>(injector.admitted()) /
                static_cast<double>(injector.offered());

  report.delivered_measured = probe.delivered();
  report.throughput = static_cast<double>(probe.delivered()) /
                      static_cast<double>(measure) /
                      static_cast<double>(network.num_nodes());
  if (!probe.latency().empty()) {
    report.mean_latency = probe.latency().mean();
    report.p99_latency = probe.latency().percentile(0.99);
  }
  report.mean_in_flight = probe.population().mean();
  report.deflections_per_delivered =
      probe.delivered() == 0
          ? 0.0
          : static_cast<double>(probe.deflections()) /
                static_cast<double>(probe.delivered());
  return report;
}

}  // namespace hp::stats
