#include "stats/steady_state.hpp"

#include "sim/engine.hpp"
#include "sim/injection.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace hp::stats {

namespace {

/// Tracks the number of in-flight packets each step within a window.
class InFlightProbe : public sim::StepObserver {
 public:
  explicit InFlightProbe(std::uint64_t from_step) : from_(from_step) {}
  void on_step(const sim::Engine& /*engine*/,
               const sim::StepRecord& record) override {
    if (record.step >= from_) {
      in_flight_.add(static_cast<double>(record.assignments.size()));
    }
  }
  const RunningStat& stat() const { return in_flight_; }

 private:
  std::uint64_t from_;
  RunningStat in_flight_;
};

}  // namespace

SteadyStateReport measure_steady_state(const net::Network& network,
                                       sim::RoutingPolicy& policy,
                                       double rate, std::uint64_t warmup,
                                       std::uint64_t measure,
                                       std::uint64_t seed) {
  HP_REQUIRE(measure > 0, "empty measurement window");

  workload::Problem empty;
  empty.name = "steady-state";
  sim::EngineConfig config;
  config.seed = seed;
  config.detect_livelock = false;
  sim::Engine engine(network, empty, policy, config);
  sim::BernoulliInjector injector(rate, seed ^ 0x5bd1e995u);
  engine.set_injector(&injector);
  InFlightProbe probe(warmup);
  engine.add_observer(&probe);

  engine.run_for(warmup + measure);

  SteadyStateReport report;
  report.offered_rate = rate;
  report.admit_fraction =
      injector.offered() == 0
          ? 1.0
          : static_cast<double>(injector.admitted()) /
                static_cast<double>(injector.offered());

  Samples latency;
  std::uint64_t deflections = 0;
  std::uint64_t delivered_in_window = 0;
  for (const sim::Packet& p : engine.packets()) {
    if (!p.arrived()) continue;
    if (p.arrived_at <= warmup) continue;
    ++delivered_in_window;
    deflections += p.deflections;
    if (p.injected_at >= warmup) {
      latency.add(static_cast<double>(p.arrived_at - p.injected_at));
    }
  }
  report.delivered_measured = delivered_in_window;
  report.throughput = static_cast<double>(delivered_in_window) /
                      static_cast<double>(measure) /
                      static_cast<double>(network.num_nodes());
  if (!latency.empty()) {
    report.mean_latency = latency.mean();
    report.p99_latency = latency.percentile(0.99);
  }
  report.mean_in_flight = probe.stat().mean();
  report.deflections_per_delivered =
      delivered_in_window == 0
          ? 0.0
          : static_cast<double>(deflections) /
                static_cast<double>(delivered_in_window);
  return report;
}

}  // namespace hp::stats
