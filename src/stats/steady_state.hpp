// Steady-state measurement of deflection networks under continuous
// Bernoulli arrivals — the operating regime of the paper's motivating
// systems ([GG], [Ma]): throughput, latency and blocked-arrival rate as a
// function of the offered load.
#pragma once

#include <cstdint>

#include "sim/policy.hpp"
#include "topology/network.hpp"

namespace hp::stats {

struct SteadyStateReport {
  double offered_rate = 0;    ///< configured per-node arrival probability
  double admit_fraction = 0;  ///< admitted / offered (1 − blocking rate)
  double throughput = 0;      ///< deliveries per step per node
  double mean_latency = 0;    ///< over packets injected after warmup
  double p99_latency = 0;
  double mean_in_flight = 0;  ///< average packets in the network per step
  double deflections_per_delivered = 0;
  std::uint64_t delivered_measured = 0;
};

/// Runs `policy` on `network` with per-node Bernoulli(rate) arrivals for
/// `warmup + measure` steps; statistics cover the measurement window only
/// (latency is attributed to packets injected inside it).
SteadyStateReport measure_steady_state(const net::Network& network,
                                       sim::RoutingPolicy& policy,
                                       double rate, std::uint64_t warmup,
                                       std::uint64_t measure,
                                       std::uint64_t seed);

}  // namespace hp::stats
