#include "stats/sweep.hpp"

#include "util/check.hpp"

namespace hp::stats {

EngineTrafficSystem::EngineTrafficSystem(const net::Network& net,
                                         sim::RoutingPolicy& policy,
                                         const workload::TrafficConfig& traffic,
                                         std::uint64_t seed,
                                         sim::EngineConfig config)
    : net_(net) {
  empty_.name = "traffic";
  config.seed = seed;
  config.detect_livelock = false;
  config.archive_arrivals = false;  // unbounded run: O(in-flight) memory
  engine_ = std::make_unique<sim::Engine>(net, empty_, policy, config);
  injector_ = std::make_unique<workload::TrafficInjector>(
      net, traffic, /*rate=*/0.0, seed ^ 0x9e3779b97f4a7c15ULL);
  engine_->set_injector(injector_.get());
  engine_->add_observer(&window_);
}

EngineTrafficSystem::~EngineTrafficSystem() = default;

sim::WindowMeasurement EngineTrafficSystem::run_window(
    double rate, std::uint64_t warmup_steps, std::uint64_t measure_steps) {
  HP_REQUIRE(measure_steps > 0, "empty measurement window");
  injector_->set_rate(rate);
  const std::uint64_t start = engine_->now() + warmup_steps;
  const double nodes = static_cast<double>(net_.num_nodes());

  sim::WindowMeasurement m;
  m.offered_rate = rate;
  m.start_backlog = static_cast<double>(engine_->in_flight()) / nodes;

  // Warmup relaxes the system at the new rate (draining any backlog a
  // previous unstable window left behind — the capacity rule bounds it by
  // Σ degrees, so a short warmup suffices); the window observer skips the
  // warmup steps and attributes latency only to window-injected packets.
  window_.begin_window(/*start_step=*/start, /*injected_floor=*/start);
  injector_->reset_counters();
  engine_->run_for(warmup_steps + measure_steps);

  // offered/admitted counters cover warmup + window at the *same* rate, so
  // the fraction is the rate's own admission behavior either way.
  m.admit_fraction = injector_->offered() == 0
                         ? 1.0
                         : static_cast<double>(injector_->admitted()) /
                               static_cast<double>(injector_->offered());
  m.admitted_rate = static_cast<double>(injector_->admitted()) /
                    static_cast<double>(warmup_steps + measure_steps) / nodes;
  m.throughput = static_cast<double>(window_.delivered()) /
                 static_cast<double>(measure_steps) / nodes;
  if (!window_.latency().empty()) {
    m.mean_latency = window_.latency().mean();
    m.p99_latency = window_.latency().percentile(0.99);
  }
  m.mean_population = window_.population().mean();
  m.peak_in_flight = static_cast<double>(window_.peak_in_flight());
  m.end_backlog = static_cast<double>(engine_->in_flight()) / nodes;
  m.delivered = window_.delivered();
  return m;
}

SweepCellResult run_sweep_cell(const net::Network& net,
                               sim::RoutingPolicy& policy,
                               const workload::TrafficConfig& traffic,
                               const SweepConfig& config) {
  SweepCellResult result;
  {
    sim::EngineConfig engine_config;
    engine_config.num_threads = config.num_threads;
    EngineTrafficSystem system(net, policy, traffic, config.seed,
                               engine_config);
    result.probe = sim::AdmissionController(config.probe).probe(system);
  }
  if (result.probe.saturation_rate <= 0.0) return result;

  for (double fraction : config.load_fractions) {
    const double rate = fraction * result.probe.saturation_rate;
    sim::EngineConfig engine_config;
    engine_config.num_threads = config.num_threads;
    // Fresh engine per point: the curve samples independent operating
    // points, not the probe's path. Same seed everywhere — points differ
    // only in the offered rate.
    EngineTrafficSystem system(net, policy, traffic, config.seed,
                               engine_config);
    const sim::WindowMeasurement m =
        system.run_window(rate, config.curve_warmup, config.curve_measure);
    LoadPoint point;
    point.load_fraction = fraction;
    point.offered_rate = rate;
    point.throughput = m.throughput;
    point.admit_fraction = m.admit_fraction;
    point.mean_latency = m.mean_latency;
    point.p99_latency = m.p99_latency;
    point.mean_population = m.mean_population;
    point.peak_in_flight = static_cast<std::size_t>(m.peak_in_flight);
    point.delivered = m.delivered;
    result.curve.push_back(point);
  }
  return result;
}

}  // namespace hp::stats
