// Saturation sweeps: the load × workload × policy grid.
//
// One sweep *cell* fixes (topology, policy, traffic shape) and answers
// two questions: (1) what is the maximum sustainable offered load —
// probed closed-loop by the sim::AdmissionController against a live
// engine — and (2) what do throughput and the latency distribution look
// like across the offered-load grid 0.1–1.0 of that saturation point
// (the CONGA-style utilization axis). Everything is virtual-time and
// seed-deterministic, so a committed BENCH_sweep.json regenerates
// bit-identically and bench_compare can gate it tightly.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/admission.hpp"
#include "sim/engine.hpp"
#include "sim/policy.hpp"
#include "stats/window.hpp"
#include "topology/network.hpp"
#include "workload/traffic.hpp"

namespace hp::stats {

/// Adapts an Engine under continuous TrafficInjector arrivals to the
/// controller's LoadableSystem interface. The engine persists across
/// windows (warm system); each run_window retunes the injector, lets the
/// system relax for the warmup, then measures.
class EngineTrafficSystem final : public sim::LoadableSystem {
 public:
  /// `net` and `policy` must outlive the system. `config.archive_arrivals`
  /// is forced off (unbounded run) and `config.detect_livelock` is
  /// irrelevant (injector-driven runs disable it).
  EngineTrafficSystem(const net::Network& net, sim::RoutingPolicy& policy,
                      const workload::TrafficConfig& traffic,
                      std::uint64_t seed, sim::EngineConfig config = {});
  ~EngineTrafficSystem() override;

  EngineTrafficSystem(const EngineTrafficSystem&) = delete;
  EngineTrafficSystem& operator=(const EngineTrafficSystem&) = delete;

  sim::WindowMeasurement run_window(double rate, std::uint64_t warmup_steps,
                                    std::uint64_t measure_steps) override;

  const sim::Engine& engine() const { return *engine_; }
  const workload::TrafficInjector& injector() const { return *injector_; }

 private:
  const net::Network& net_;
  std::unique_ptr<workload::TrafficInjector> injector_;
  std::unique_ptr<sim::Engine> engine_;
  WindowStats window_;
  workload::Problem empty_;
};

/// One point of a cell's offered-load curve.
struct LoadPoint {
  double load_fraction = 0;  ///< of the probed saturation rate
  double offered_rate = 0;   ///< packets per node per step
  double throughput = 0;     ///< delivered packets per node per step
  double admit_fraction = 1;
  double mean_latency = 0;
  double p99_latency = 0;
  double mean_population = 0;
  std::size_t peak_in_flight = 0;
  std::uint64_t delivered = 0;
};

struct SweepConfig {
  sim::ProbeConfig probe;
  /// Offered-load grid as fractions of the probed saturation rate.
  std::vector<double> load_fractions = {0.1, 0.2, 0.3, 0.4, 0.5,
                                        0.6, 0.7, 0.8, 0.9, 1.0};
  std::uint64_t curve_warmup = 300;
  std::uint64_t curve_measure = 1200;
  std::uint64_t seed = 1;
  int num_threads = 1;
};

struct SweepCellResult {
  sim::ProbeResult probe;
  std::vector<LoadPoint> curve;
};

/// Probes the cell's saturation point, then measures every load fraction
/// on a fresh engine (points are independent, not path-dependent). A cell
/// whose probe never sustained any rate gets an empty curve.
SweepCellResult run_sweep_cell(const net::Network& net,
                               sim::RoutingPolicy& policy,
                               const workload::TrafficConfig& traffic,
                               const SweepConfig& config);

}  // namespace hp::stats
