#include "stats/window.hpp"

#include <algorithm>

namespace hp::stats {

void WindowStats::begin_window(std::uint64_t start_step,
                               std::uint64_t injected_floor) {
  start_step_ = start_step;
  injected_floor_ = injected_floor;
  population_ = RunningStat();
  in_flight_after_ = RunningStat();
  latency_ = Samples();
  peak_ = 0;
  steps_ = 0;
  delivered_ = 0;
  deflections_ = 0;
}

void WindowStats::on_step(const sim::Engine& /*engine*/,
                          const sim::StepRecord& record) {
  if (record.step < start_step_) return;
  ++steps_;
  population_.add(static_cast<double>(record.assignments.size()));
  in_flight_after_.add(static_cast<double>(record.in_flight_after));
  peak_ = std::max(peak_, record.in_flight_after);
  for (const sim::Packet& p : record.arrivals) {
    // record.arrivals carries arrived_at == record.step + 1 > start_step_:
    // exactly the arrivals inside the window.
    ++delivered_;
    deflections_ += p.deflections;
    if (p.injected_at >= injected_floor_) {
      latency_.add(static_cast<double>(p.arrived_at - p.injected_at));
    }
  }
}

}  // namespace hp::stats
