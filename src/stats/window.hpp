// Per-window step statistics, shared by every measurement harness that
// slices a continuous-injection run into fixed step windows: the
// steady-state reporter (steady_state.cpp), the closed-loop admission
// controller's engine adapter (sweep.cpp), and the bench drivers. One
// observer instance stays attached across windows; begin_window() rolls
// it over at a boundary. Everything here is virtual-time only, so the
// numbers are bit-identical across engine thread counts.
#pragma once

#include <cstdint>

#include "sim/observer.hpp"
#include "util/stats.hpp"

namespace hp::stats {

class WindowStats final : public sim::StepObserver {
 public:
  /// Starts a fresh window. Steps before `start_step` are ignored (warmup
  /// exclusion when the observer is attached before the window opens);
  /// latency samples are taken only from packets injected at or after
  /// `injected_floor`, so cross-window stragglers inflate nothing.
  void begin_window(std::uint64_t start_step = 0,
                    std::uint64_t injected_floor = 0);

  void on_step(const sim::Engine& engine,
               const sim::StepRecord& record) override;

  /// Pre-move population: packets routed in the step (each packet counts
  /// once per step it spent in the network — the L of Little's law).
  const RunningStat& population() const { return population_; }
  /// Post-move in-flight count (after this step's absorptions).
  const RunningStat& in_flight_after() const { return in_flight_after_; }
  std::size_t peak_in_flight() const { return peak_; }

  const Samples& latency() const { return latency_; }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t deflections() const { return deflections_; }

 private:
  std::uint64_t start_step_ = 0;
  std::uint64_t injected_floor_ = 0;
  RunningStat population_;
  RunningStat in_flight_after_;
  Samples latency_;
  std::size_t peak_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t deflections_ = 0;
};

}  // namespace hp::stats
