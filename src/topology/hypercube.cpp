#include "topology/hypercube.hpp"

#include <bit>
#include <sstream>

#include "util/check.hpp"

namespace hp::net {

Hypercube::Hypercube(int dim) : dim_(dim) {
  // 2 * kMaxDim bounds the DirList capacity shared with the mesh code.
  HP_REQUIRE(dim >= 1 && dim <= 2 * kMaxDim, "hypercube dimension out of range");
}

NodeId Hypercube::neighbor(NodeId node, Dir dir) const {
  HP_REQUIRE(dir >= 0 && dir < num_dirs(), "direction out of range");
  return node ^ (NodeId{1} << dir);
}

Dir Hypercube::reverse_dir(Dir dir) const {
  HP_REQUIRE(dir >= 0 && dir < num_dirs(), "direction out of range");
  return dir;
}

int Hypercube::distance(NodeId a, NodeId b) const {
  return std::popcount(static_cast<std::uint32_t>(a ^ b));
}

std::string Hypercube::name() const {
  std::ostringstream os;
  os << "hypercube-" << dim_ << "d";
  return os.str();
}

}  // namespace hp::net
