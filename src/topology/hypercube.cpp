#include "topology/hypercube.hpp"

#include <bit>
#include <sstream>

#include "util/check.hpp"

namespace hp::net {

Hypercube::Hypercube(int dim) : dim_(dim) {
  // 2 * kMaxDim bounds the DirList capacity shared with the mesh code.
  HP_REQUIRE(dim >= 1 && dim <= 2 * kMaxDim, "hypercube dimension out of range");
}

NodeId Hypercube::neighbor(NodeId node, Dir dir) const {
  HP_REQUIRE(dir >= 0 && dir < num_dirs(), "direction out of range");
  return node ^ (NodeId{1} << dir);
}

Dir Hypercube::reverse_dir(Dir dir) const {
  HP_REQUIRE(dir >= 0 && dir < num_dirs(), "direction out of range");
  return dir;
}

int Hypercube::distance(NodeId a, NodeId b) const {
  return std::popcount(static_cast<std::uint32_t>(a ^ b));
}

DirList Hypercube::good_dirs(NodeId at, NodeId dst) const {
  DirList out;
  const auto diff = static_cast<std::uint32_t>(at ^ dst);
  for (int d = 0; d < dim_; ++d) {
    if ((diff >> d) & 1u) out.push_back(static_cast<Dir>(d));
  }
  return out;
}

bool Hypercube::is_good_dir(NodeId at, NodeId dst, Dir dir) const {
  HP_REQUIRE(dir >= 0 && dir < num_dirs(), "direction out of range");
  return ((static_cast<std::uint32_t>(at ^ dst) >> dir) & 1u) != 0;
}

void Hypercube::good_masks(const NodeId* at, const NodeId* dst,
                           std::uint32_t* out, std::size_t count) const {
  const std::uint32_t all = (std::uint32_t{1} << dim_) - 1u;
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::uint32_t>(at[i] ^ dst[i]) & all;
  }
}

std::string Hypercube::name() const {
  std::ostringstream os;
  os << "hypercube-" << dim_ << "d";
  return os.str();
}

}  // namespace hp::net
