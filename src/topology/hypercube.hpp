// The m-dimensional hypercube on 2^m nodes.
//
// Not part of the paper's mesh analysis, but required by the related-work
// baselines we reproduce: Hajek's greedy hot-potato algorithm runs on the
// hypercube with the 2k + n evacuation bound, and the Borodin–Hopcroft
// greedy algorithm was originally stated for this topology.
#pragma once

#include <string>

#include "topology/network.hpp"

namespace hp::net {

class Hypercube : public Network {
 public:
  explicit Hypercube(int dim);

  std::size_t num_nodes() const override { return std::size_t{1} << dim_; }
  int num_dirs() const override { return dim_; }
  NodeId neighbor(NodeId node, Dir dir) const override;
  /// Hypercube arcs are their own reverses: flipping bit i twice returns.
  Dir reverse_dir(Dir dir) const override;
  int distance(NodeId a, NodeId b) const override;
  int diameter() const override { return dim_; }
  std::string name() const override;

  /// Every hypercube node has exactly one arc per address bit.
  int degree(NodeId) const override { return dim_; }

  /// Good directions are exactly the differing address bits.
  DirList good_dirs(NodeId at, NodeId dst) const override;
  int num_good_dirs(NodeId at, NodeId dst) const override {
    return distance(at, dst);
  }
  bool is_good_dir(NodeId at, NodeId dst, Dir dir) const override;
  /// The address difference *is* the mask.
  std::uint32_t good_mask(NodeId at, NodeId dst) const override {
    return static_cast<std::uint32_t>(at ^ dst) &
           ((std::uint32_t{1} << dim_) - 1u);
  }
  void good_masks(const NodeId* at, const NodeId* dst, std::uint32_t* out,
                  std::size_t count) const override;

  int dim() const { return dim_; }

 private:
  int dim_;
};

}  // namespace hp::net
