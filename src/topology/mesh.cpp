#include "topology/mesh.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace hp::net {

Mesh::Mesh(int dim, int side, bool wrap) : dim_(dim), side_(side), wrap_(wrap) {
  HP_REQUIRE(dim >= 1 && dim <= kMaxDim, "mesh dimension out of range");
  HP_REQUIRE(side >= 2, "mesh side must be at least 2");
  std::int64_t nodes = 1;
  for (int a = 0; a < dim; ++a) {
    stride_[a] = nodes;
    nodes *= side;
    HP_REQUIRE(nodes <= (1LL << 30), "mesh too large for NodeId");
  }
  num_nodes_ = static_cast<std::size_t>(nodes);
}

int Mesh::coord(NodeId node, int axis) const {
  return static_cast<int>((node / stride_[axis]) % side_);
}

int Mesh::degree(NodeId node) const {
  if (wrap_) return 2 * dim_;
  int deg = 2 * dim_;
  for (int a = 0; a < dim_; ++a) {
    const int pos = coord(node, a);
    if (pos == 0) --deg;
    if (pos == side_ - 1) --deg;
  }
  return deg;
}

Coord Mesh::coords(NodeId node) const {
  HP_REQUIRE(node >= 0 && node < static_cast<NodeId>(num_nodes_),
             "node id out of range");
  Coord c;
  for (int a = 0; a < dim_; ++a) c.push_back(coord(node, a));
  return c;
}

NodeId Mesh::node_at(const Coord& c) const {
  HP_REQUIRE(static_cast<int>(c.size()) == dim_,
             "coordinate arity does not match mesh dimension");
  std::int64_t id = 0;
  for (int a = 0; a < dim_; ++a) {
    HP_REQUIRE(c[static_cast<std::size_t>(a)] >= 0 &&
                   c[static_cast<std::size_t>(a)] < side_,
               "coordinate out of range");
    id += c[static_cast<std::size_t>(a)] * stride_[a];
  }
  return static_cast<NodeId>(id);
}

NodeId Mesh::neighbor(NodeId node, Dir dir) const {
  HP_REQUIRE(dir >= 0 && dir < num_dirs(), "direction out of range");
  const int axis = axis_of(dir);
  const int sign = sign_of(dir);
  const int pos = coord(node, axis);
  int next = pos + sign;
  if (next < 0 || next >= side_) {
    if (!wrap_) return kInvalidNode;
    next = (next + side_) % side_;
  }
  return node + static_cast<NodeId>((next - pos) * stride_[axis]);
}

Dir Mesh::reverse_dir(Dir dir) const {
  HP_REQUIRE(dir >= 0 && dir < num_dirs(), "direction out of range");
  return static_cast<Dir>(dir ^ 1);
}

int Mesh::distance(NodeId a, NodeId b) const {
  int total = 0;
  for (int axis = 0; axis < dim_; ++axis) {
    int delta = std::abs(coord(a, axis) - coord(b, axis));
    if (wrap_) delta = std::min(delta, side_ - delta);
    total += delta;
  }
  return total;
}

DirList Mesh::good_dirs(NodeId at, NodeId dst) const {
  DirList out;
  std::int64_t va = at;
  std::int64_t vb = dst;
  for (int axis = 0; axis < dim_; ++axis) {
    const int ca = static_cast<int>(va % side_);
    const int cb = static_cast<int>(vb % side_);
    va /= side_;
    vb /= side_;
    if (ca == cb) continue;
    if (!wrap_) {
      // Moving toward dst along this axis never leaves the mesh.
      out.push_back(dir_of(axis, cb > ca ? +1 : -1));
    } else {
      const int fwd = cb > ca ? cb - ca : cb - ca + side_;
      const int bwd = side_ - fwd;
      // Antipodal coordinates (fwd == bwd) are closer both ways.
      if (fwd <= bwd) out.push_back(static_cast<Dir>(2 * axis));
      if (bwd <= fwd) out.push_back(static_cast<Dir>(2 * axis + 1));
    }
  }
  return out;
}

std::uint32_t Mesh::good_mask(NodeId at, NodeId dst) const {
  std::uint32_t mask = 0;
  std::int64_t va = at;
  std::int64_t vb = dst;
  if (!wrap_) {
    // Branch-free per axis: exactly one of the two comparisons sets a bit
    // on axes where the coordinates differ, neither where they agree.
    for (int axis = 0; axis < dim_; ++axis) {
      const int ca = static_cast<int>(va % side_);
      const int cb = static_cast<int>(vb % side_);
      va /= side_;
      vb /= side_;
      mask |= static_cast<std::uint32_t>(cb > ca) << (2 * axis);
      mask |= static_cast<std::uint32_t>(cb < ca) << (2 * axis + 1);
    }
    return mask;
  }
  for (int axis = 0; axis < dim_; ++axis) {
    const int ca = static_cast<int>(va % side_);
    const int cb = static_cast<int>(vb % side_);
    va /= side_;
    vb /= side_;
    if (ca == cb) continue;
    const int fwd = cb > ca ? cb - ca : cb - ca + side_;
    const int bwd = side_ - fwd;
    // Antipodal coordinates (fwd == bwd) are closer both ways.
    if (fwd <= bwd) mask |= std::uint32_t{1} << (2 * axis);
    if (bwd <= fwd) mask |= std::uint32_t{1} << (2 * axis + 1);
  }
  return mask;
}

void Mesh::good_masks(const NodeId* at, const NodeId* dst, std::uint32_t* out,
                      std::size_t count) const {
  if (wrap_) {
    for (std::size_t i = 0; i < count; ++i) out[i] = good_mask(at[i], dst[i]);
    return;
  }
  // Dense non-wrap path: a short fixed-trip-count inner loop of div/mod and
  // compares per element, no branches on data — the routing phase's hottest
  // arithmetic, laid out for the vectorizer.
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t mask = 0;
    std::int64_t va = at[i];
    std::int64_t vb = dst[i];
    for (int axis = 0; axis < dim_; ++axis) {
      const int ca = static_cast<int>(va % side_);
      const int cb = static_cast<int>(vb % side_);
      va /= side_;
      vb /= side_;
      mask |= static_cast<std::uint32_t>(cb > ca) << (2 * axis);
      mask |= static_cast<std::uint32_t>(cb < ca) << (2 * axis + 1);
    }
    out[i] = mask;
  }
}

int Mesh::num_good_dirs(NodeId at, NodeId dst) const {
  int count = 0;
  std::int64_t va = at;
  std::int64_t vb = dst;
  for (int axis = 0; axis < dim_; ++axis) {
    const int ca = static_cast<int>(va % side_);
    const int cb = static_cast<int>(vb % side_);
    va /= side_;
    vb /= side_;
    if (ca == cb) continue;
    if (!wrap_) {
      ++count;
    } else {
      count += (2 * (cb > ca ? cb - ca : cb - ca + side_) == side_) ? 2 : 1;
    }
  }
  return count;
}

bool Mesh::is_good_dir(NodeId at, NodeId dst, Dir dir) const {
  HP_REQUIRE(dir >= 0 && dir < num_dirs(), "direction out of range");
  const int axis = axis_of(dir);
  const int ca = coord(at, axis);
  const int cb = coord(dst, axis);
  if (ca == cb) return false;
  if (!wrap_) return sign_of(dir) == (cb > ca ? +1 : -1);
  const int fwd = cb > ca ? cb - ca : cb - ca + side_;
  const int bwd = side_ - fwd;
  return sign_of(dir) > 0 ? fwd <= bwd : bwd <= fwd;
}

int Mesh::diameter() const {
  const int per_axis = wrap_ ? side_ / 2 : side_ - 1;
  return dim_ * per_axis;
}

std::string Mesh::name() const {
  std::ostringstream os;
  os << (wrap_ ? "torus" : "mesh") << "-" << dim_ << "d-" << side_;
  return os.str();
}

NodeId Mesh::two_neighbor(NodeId node, Dir dir) const {
  const NodeId mid = neighbor(node, dir);
  if (mid == kInvalidNode) return kInvalidNode;
  return neighbor(mid, dir);
}

int Mesh::parity_class(NodeId node) const {
  int cls = 0;
  for (int axis = 0; axis < dim_; ++axis) {
    cls |= (coord(node, axis) & 1) << axis;
  }
  return cls;
}

}  // namespace hp::net
