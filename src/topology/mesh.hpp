// The d-dimensional mesh (Definition 1) and its optional torus variant.
//
// Nodes are d-dimensional vectors over {0, …, n−1} (the paper uses 1-based
// coordinates; we use 0-based, which changes nothing). Two nodes are
// adjacent iff their L1 distance is 1. Directions follow Definition 3:
// label 2a is "+" along axis a, label 2a+1 is "−" along axis a.
//
// The mesh also exposes the 2-neighbor relation (Definition 4) and the 2^d
// parity equivalence classes of its transitive closure, which the surface-
// arc analysis of Section 3 relies on.
#pragma once

#include <string>

#include "topology/network.hpp"

namespace hp::net {

class Mesh : public Network {
 public:
  /// A `dim`-dimensional mesh with `side` nodes per axis. With wrap=true
  /// every axis closes into a ring (the torus used by several related-work
  /// baselines); the paper's analysis itself concerns wrap=false.
  Mesh(int dim, int side, bool wrap = false);

  std::size_t num_nodes() const override { return num_nodes_; }
  int num_dirs() const override { return 2 * dim_; }
  NodeId neighbor(NodeId node, Dir dir) const override;
  Dir reverse_dir(Dir dir) const override;
  int distance(NodeId a, NodeId b) const override;
  int diameter() const override;
  std::string name() const override;

  /// Closed form: 2·dim on a torus; otherwise one arc per axis end the
  /// node does not sit on. Agrees with the base probe loop bit-for-bit.
  int degree(NodeId node) const override;

  // Closed-form goodness tests: one coordinate decode instead of the base
  // class's per-direction neighbor() + distance() probes. Must agree with
  // the base implementation bit-for-bit (same directions, same order).
  DirList good_dirs(NodeId at, NodeId dst) const override;
  int num_good_dirs(NodeId at, NodeId dst) const override;
  bool is_good_dir(NodeId at, NodeId dst, Dir dir) const override;
  std::uint32_t good_mask(NodeId at, NodeId dst) const override;
  void good_masks(const NodeId* at, const NodeId* dst, std::uint32_t* out,
                  std::size_t count) const override;

  int dim() const { return dim_; }
  int side() const { return side_; }
  bool wraps() const { return wrap_; }

  /// Axis and sign of a direction label. sign is +1 for "+", −1 for "−".
  static int axis_of(Dir dir) { return dir / 2; }
  static int sign_of(Dir dir) { return (dir % 2 == 0) ? +1 : -1; }
  /// Direction label for (axis, sign).
  static Dir dir_of(int axis, int sign) {
    return static_cast<Dir>(2 * axis + (sign < 0 ? 1 : 0));
  }

  /// Coordinate vector of a node; component a is the position on axis a.
  Coord coords(NodeId node) const;

  /// Node at a coordinate vector. All components must lie in [0, side).
  NodeId node_at(const Coord& c) const;

  /// Coordinate of `node` along one axis, without materializing the vector.
  int coord(NodeId node, int axis) const;

  /// The 2-neighbor of `node` in direction `dir` (Definition 4): the node
  /// two hops away along `dir`, or kInvalidNode if that walks off the mesh.
  /// Only meaningful for wrap=false (the analysis setting).
  NodeId two_neighbor(NodeId node, Dir dir) const;

  /// Index in [0, 2^dim) of the equivalence class of `node` under the
  /// transitive closure of the 2-neighbor relation — the vector of
  /// coordinate parities. Nodes are in the same class iff all their
  /// coordinate parities agree.
  int parity_class(NodeId node) const;

 private:
  int dim_;
  int side_;
  bool wrap_;
  std::size_t num_nodes_;
  // stride_[a] = side^a, so coordinate a of node v is (v / stride_[a]) % side.
  std::int64_t stride_[kMaxDim];
};

}  // namespace hp::net
