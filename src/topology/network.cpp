#include "topology/network.hpp"

namespace hp::net {

int Network::degree(NodeId node) const {
  int deg = 0;
  for (Dir d = 0; d < num_dirs(); ++d) {
    if (arc_exists(node, d)) ++deg;
  }
  return deg;
}

DirList Network::good_dirs(NodeId at, NodeId dst) const {
  DirList out;
  const int here = distance(at, dst);
  for (Dir d = 0; d < num_dirs(); ++d) {
    const NodeId nb = neighbor(at, d);
    if (nb != kInvalidNode && distance(nb, dst) < here) out.push_back(d);
  }
  return out;
}

int Network::num_good_dirs(NodeId at, NodeId dst) const {
  int count = 0;
  const int here = distance(at, dst);
  for (Dir d = 0; d < num_dirs(); ++d) {
    const NodeId nb = neighbor(at, d);
    if (nb != kInvalidNode && distance(nb, dst) < here) ++count;
  }
  return count;
}

bool Network::is_good_dir(NodeId at, NodeId dst, Dir dir) const {
  const NodeId nb = neighbor(at, dir);
  return nb != kInvalidNode && distance(nb, dst) < distance(at, dst);
}

std::uint32_t Network::good_mask(NodeId at, NodeId dst) const {
  std::uint32_t mask = 0;
  const int here = distance(at, dst);
  for (Dir d = 0; d < num_dirs(); ++d) {
    const NodeId nb = neighbor(at, d);
    if (nb != kInvalidNode && distance(nb, dst) < here) {
      mask |= std::uint32_t{1} << d;
    }
  }
  return mask;
}

void Network::good_masks(const NodeId* at, const NodeId* dst,
                         std::uint32_t* out, std::size_t count) const {
  for (std::size_t i = 0; i < count; ++i) out[i] = good_mask(at[i], dst[i]);
}

std::size_t Network::num_arcs() const {
  std::size_t arcs = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(num_nodes()); ++v) {
    arcs += static_cast<std::size_t>(degree(v));
  }
  return arcs;
}

}  // namespace hp::net
