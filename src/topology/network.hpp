// Abstract synchronous network topology (Section 2 of the paper).
//
// A network is a graph of processors whose arcs come in antiparallel pairs
// and are partitioned into directions. The routing layers only interact
// with topologies through this interface, so the same greedy algorithms
// run unchanged on meshes, tori, and hypercubes.
#pragma once

#include <string>

#include "topology/types.hpp"

namespace hp::net {

class Network {
 public:
  virtual ~Network() = default;

  /// Total number of processors.
  virtual std::size_t num_nodes() const = 0;

  /// Number of direction labels (2d for the d-dim mesh, m for the
  /// m-dimensional hypercube). Every arc belongs to exactly one direction.
  virtual int num_dirs() const = 0;

  /// The node reached by following direction `dir` out of `node`, or
  /// kInvalidNode if no such arc exists (e.g. off the edge of a mesh).
  virtual NodeId neighbor(NodeId node, Dir dir) const = 0;

  /// The direction of the antiparallel arc: following `reverse_dir(d)`
  /// from `neighbor(v, d)` returns to `v`.
  virtual Dir reverse_dir(Dir dir) const = 0;

  /// Length of the shortest path between two nodes.
  virtual int distance(NodeId a, NodeId b) const = 0;

  /// Maximum distance between any two nodes.
  virtual int diameter() const = 0;

  /// Human-readable topology name for logs and tables.
  virtual std::string name() const = 0;

  /// Out-degree of `node` (number of directions with an existing arc).
  /// The base implementation probes every direction with neighbor();
  /// topologies override it with closed forms — the engine's lean memory
  /// profile calls this per injection / per routed node instead of keeping
  /// an O(nodes) cache (docs/SCALE.md).
  virtual int degree(NodeId node) const;

  /// True iff an arc in direction `dir` leaves `node`.
  bool arc_exists(NodeId node, Dir dir) const {
    return neighbor(node, dir) != kInvalidNode;
  }

  /// Good directions for a packet located at `at` with destination `dst`
  /// (Definition 5): directions whose arc enters a node strictly closer to
  /// `dst`, in ascending direction order. Empty iff at == dst. The base
  /// implementation probes every direction with neighbor() + distance();
  /// topologies override it with closed-form versions — this is the
  /// hottest call in the routing phase (once per packet per step).
  virtual DirList good_dirs(NodeId at, NodeId dst) const;

  /// Number of good directions, without materializing the list.
  virtual int num_good_dirs(NodeId at, NodeId dst) const;

  /// Good directions as a bitmask: bit d set iff direction d is good for a
  /// packet at `at` bound for `dst`. Zero iff at == dst. The base version
  /// probes directions like good_dirs(); topologies override it with
  /// branchless closed forms.
  virtual std::uint32_t good_mask(NodeId at, NodeId dst) const;

  /// Batch form of good_mask() over parallel position/destination arrays —
  /// the engine's once-per-step evaluation over the dense flight columns.
  /// Overrides keep the per-element work branch-free so the loop
  /// vectorizes; the base version just loops good_mask().
  virtual void good_masks(const NodeId* at, const NodeId* dst,
                          std::uint32_t* out, std::size_t count) const;

  /// True if direction `dir` is good for a packet at `at` headed to `dst`.
  virtual bool is_good_dir(NodeId at, NodeId dst, Dir dir) const;

  /// Total number of directed arcs in the network.
  std::size_t num_arcs() const;
};

}  // namespace hp::net
