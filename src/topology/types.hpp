// Basic identifier types shared across the topology and simulation layers.
#pragma once

#include <bit>
#include <cstdint>

#include "util/inline_vector.hpp"

namespace hp::net {

/// Node identifier: a dense index in [0, num_nodes).
using NodeId = std::int32_t;

/// Direction label. For a d-dimensional mesh there are 2d directions
/// (Definition 3 of the paper): label 2a is "+" in axis a, label 2a+1 is
/// "−" in axis a. For an m-dimensional hypercube there are m labels, one
/// per address bit.
using Dir = std::int8_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr Dir kInvalidDir = -1;

/// Maximum mesh dimension supported (ample for the paper's d-dim results).
inline constexpr int kMaxDim = 8;

/// A coordinate vector in the mesh; component i is the position along
/// axis i, in [0, side).
using Coord = InlineVector<std::int32_t, kMaxDim>;

/// Directions incident to one node; sized for the largest degree we
/// support (2 * kMaxDim mesh directions or up to 16 hypercube bits).
using DirList = InlineVector<Dir, 2 * kMaxDim>;

/// Expands a direction bitmask (bit d ⇔ direction d) into an ascending
/// DirList — the same order every good_dirs() implementation produces.
inline DirList dirlist_from_mask(std::uint32_t mask) {
  DirList out;
  while (mask != 0) {
    out.push_back(static_cast<Dir>(std::countr_zero(mask)));
    mask &= mask - 1;
  }
  return out;
}

}  // namespace hp::net
