// Little-endian binary stream I/O for versioned on-disk artifacts
// (checkpoints, ArrivalLog spill files).
//
// Every multi-byte value is written least-significant byte first,
// independent of host endianness, so an artifact written on one machine
// restores bit-identically on any other. BinWriter/BinReader additionally
// maintain a running FNV-1a digest of every byte that passes through them:
// the writer appends it as a trailer and the reader verifies it, so any
// single-byte corruption of the payload is detected as a clear error
// instead of undefined behavior.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "util/check.hpp"

namespace hp::util {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// One FNV-1a step over a single byte.
constexpr std::uint64_t fnv1a_byte(std::uint64_t hash, std::uint8_t byte) {
  return (hash ^ byte) * kFnvPrime;
}

/// FNV-1a over a 64-bit value, one byte at a time (LE order).
constexpr std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash = fnv1a_byte(hash, static_cast<std::uint8_t>(value >> (8 * i)));
  }
  return hash;
}

/// Little-endian writer with a running FNV-1a digest of the payload.
class BinWriter {
 public:
  explicit BinWriter(std::ostream& out) : out_(out) {}

  void u8(std::uint8_t v) { put(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) put(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) put(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    for (const char c : s) put(static_cast<std::uint8_t>(c));
  }

  /// Digest of everything written so far.
  std::uint64_t digest() const { return digest_; }

  /// Writes the current digest as a trailer (the trailer itself is not
  /// digested, so the matching BinReader::verify_digest sees the same
  /// payload hash).
  void write_digest_trailer() {
    const std::uint64_t d = digest_;
    for (int i = 0; i < 8; ++i) {
      out_.put(static_cast<char>(static_cast<std::uint8_t>(d >> (8 * i))));
    }
  }

  /// True iff every write so far reached the stream.
  bool good() const { return out_.good(); }

 private:
  void put(std::uint8_t byte) {
    out_.put(static_cast<char>(byte));
    digest_ = fnv1a_byte(digest_, byte);
  }

  std::ostream& out_;
  std::uint64_t digest_ = kFnvOffset;
};

/// Little-endian reader mirroring BinWriter. Every read HP_REQUIREs that
/// the stream still has bytes, so a truncated artifact fails with a clear
/// error at the first missing byte.
class BinReader {
 public:
  /// `what` names the artifact in error messages ("checkpoint", ...).
  BinReader(std::istream& in, std::string what)
      : in_(in), what_(std::move(what)) {}

  std::uint8_t u8() { return take(); }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(take()) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(take()) << (8 * i);
    }
    return v;
  }

  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::string str(std::size_t max_len = 4096) {
    const std::uint32_t len = u32();
    HP_REQUIRE(len <= max_len, what_ + " is corrupt (string length " +
                                   std::to_string(len) + " exceeds limit)");
    std::string s;
    s.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(take()));
    }
    return s;
  }

  std::uint64_t digest() const { return digest_; }

  /// Reads the digest trailer and checks it against the payload digest.
  void verify_digest_trailer() {
    const std::uint64_t expected = digest_;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
      const int c = in_.get();
      HP_REQUIRE(c != std::char_traits<char>::eof(),
                 what_ + " is truncated (missing checksum trailer)");
      stored |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(c))
                << (8 * i);
    }
    HP_REQUIRE(stored == expected,
               what_ + " is corrupt (checksum mismatch)");
  }

 private:
  std::uint8_t take() {
    const int c = in_.get();
    HP_REQUIRE(c != std::char_traits<char>::eof(),
               what_ + " is truncated or corrupt (unexpected end of data)");
    const auto byte = static_cast<std::uint8_t>(c);
    digest_ = fnv1a_byte(digest_, byte);
    return byte;
  }

  std::istream& in_;
  std::string what_;
  std::uint64_t digest_ = kFnvOffset;
};

}  // namespace hp::util
