#include "util/check.hpp"

#include <sstream>

namespace hp::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& detail) {
  std::ostringstream os;
  os << "HP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!detail.empty()) {
    os << " — " << detail;
  }
  throw CheckError(os.str());
}

}  // namespace hp::detail
