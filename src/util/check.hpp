// Runtime invariant checking for the hotpotato library.
//
// The simulation engine enforces model invariants (one packet per directed
// arc per step, packets leave the step after arrival, ...) with HP_CHECK.
// Violations throw hp::CheckError so tests can assert on them; they are
// never silently ignored, in any build type.
#pragma once

#include <stdexcept>
#include <string>

namespace hp {

/// Thrown when a checked invariant fails. Carries the failing expression,
/// source location, and an optional human-readable detail message.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& detail);
}  // namespace detail

}  // namespace hp

/// Always-on invariant check. `msg` is a string (or string expression)
/// appended to the failure message.
#define HP_CHECK(expr, msg)                                         \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::hp::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                               \
  } while (false)

/// Precondition check for public API entry points.
#define HP_REQUIRE(expr, msg) HP_CHECK(expr, msg)
