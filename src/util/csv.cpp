#include "util/csv.hpp"

#include <sstream>

#include "util/check.hpp"

namespace hp {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), arity_(header.size()) {
  HP_REQUIRE(!header.empty(), "CSV header must be nonempty");
  write_row(header);
  header_written_ = true;
}

CsvWriter::Row& CsvWriter::Row::add(std::string_view value) {
  fields_.emplace_back(value);
  return *this;
}

CsvWriter::Row& CsvWriter::Row::add(double value) {
  std::ostringstream os;
  os << value;
  fields_.push_back(os.str());
  return *this;
}

CsvWriter::Row& CsvWriter::Row::add(std::int64_t value) {
  fields_.push_back(std::to_string(value));
  return *this;
}

CsvWriter::Row& CsvWriter::Row::add(std::uint64_t value) {
  fields_.push_back(std::to_string(value));
  return *this;
}

CsvWriter::Row::~Row() noexcept(false) {
  writer_.write_row(fields_);
  ++writer_.rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  HP_CHECK(!header_written_ || fields.size() == arity_,
           "CSV row arity mismatch with header");
  bool first = true;
  for (const auto& f : fields) {
    if (!first) out_ << ',';
    out_ << escape(f);
    first = false;
  }
  out_ << '\n';
}

std::string CsvWriter::escape(std::string_view value) {
  const bool needs_quote =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(value);
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace hp
