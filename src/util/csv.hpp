// Minimal CSV emitter for experiment output (per-step time series, sweep
// results). Values containing commas/quotes/newlines are quoted per RFC 4180.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hp {

class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer. The header row is
  /// emitted immediately; every subsequent row must have the same arity.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Appends one row. Mixed field types supported via overloaded add().
  class Row {
   public:
    explicit Row(CsvWriter& writer) : writer_(writer) {}
    Row& add(std::string_view value);
    Row& add(double value);
    Row& add(std::int64_t value);
    Row& add(std::uint64_t value);
    /// Commits the row; checked against the header arity (throws
    /// hp::CheckError on mismatch, hence noexcept(false)).
    ~Row() noexcept(false);
    Row(const Row&) = delete;
    Row& operator=(const Row&) = delete;

   private:
    CsvWriter& writer_;
    std::vector<std::string> fields_;
  };

  Row row() { return Row(*this); }
  std::size_t rows_written() const { return rows_; }

 private:
  friend class Row;
  void write_row(const std::vector<std::string>& fields);
  static std::string escape(std::string_view value);

  std::ostream& out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

}  // namespace hp
