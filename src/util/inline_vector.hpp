// Fixed-capacity vector with inline storage.
//
// The hot paths of the simulator manipulate tiny collections whose size is
// bounded by the node degree (at most 2d packets or arcs per node, d ≤ 8 in
// practice). InlineVector keeps them on the stack with zero allocation.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>
#include <type_traits>

#include "util/check.hpp"

namespace hp {

/// A contiguous sequence with capacity fixed at compile time and size
/// tracked at run time. Supports trivially-destructible and nontrivial T.
/// Exceeding capacity is a checked error (throws hp::CheckError).
/// `Align` raises the storage alignment above T's natural one — the engine
/// aligns per-node buckets to cache lines so adjacent nodes written by
/// different shards never share a line.
template <typename T, std::size_t N, std::size_t Align = alignof(T)>
class InlineVector {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two no weaker than alignof(T)");
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVector() = default;

  InlineVector(std::initializer_list<T> items) {
    HP_REQUIRE(items.size() <= N, "InlineVector initializer too long");
    for (const T& item : items) push_back(item);
  }

  InlineVector(const InlineVector& other) {
    for (const T& item : other) push_back(item);
  }

  InlineVector& operator=(const InlineVector& other) {
    if (this != &other) {
      clear();
      for (const T& item : other) push_back(item);
    }
    return *this;
  }

  InlineVector(InlineVector&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    for (T& item : other) push_back(std::move(item));
    other.clear();
  }

  InlineVector& operator=(InlineVector&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      clear();
      for (T& item : other) push_back(std::move(item));
      other.clear();
    }
    return *this;
  }

  ~InlineVector() { clear(); }

  static constexpr std::size_t capacity() { return N; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == N; }

  T* data() { return reinterpret_cast<T*>(storage_.data()); }
  const T* data() const { return reinterpret_cast<const T*>(storage_.data()); }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  T& operator[](std::size_t i) {
    HP_CHECK(i < size_, "InlineVector index out of range");
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    HP_CHECK(i < size_, "InlineVector index out of range");
    return data()[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    HP_CHECK(size_ < N, "InlineVector overflow");
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    HP_CHECK(size_ > 0, "pop_back on empty InlineVector");
    --size_;
    data()[size_].~T();
  }

  /// Removes the element at index i, preserving order of the rest.
  void erase_at(std::size_t i) {
    HP_CHECK(i < size_, "erase_at out of range");
    for (std::size_t j = i + 1; j < size_; ++j) {
      data()[j - 1] = std::move(data()[j]);
    }
    pop_back();
  }

  void clear() {
    while (size_ > 0) pop_back();
  }

  bool contains(const T& value) const {
    return std::find(begin(), end(), value) != end();
  }

  friend bool operator==(const InlineVector& a, const InlineVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  alignas(Align) std::array<std::byte, sizeof(T) * N> storage_;
  std::size_t size_ = 0;
};

}  // namespace hp
