// Schedule explorer for the hp::model cooperative shim.
//
// Three modes over the same Scheduler (util/model_sync.hpp):
//
//   check_exhaustive  iterative-deepening DFS over thread and notify-victim
//                     decisions with a preemption bound (a context switch
//                     away from a still-runnable thread consumes budget;
//                     switches at blocking/finishing points are free —
//                     empirically almost all concurrency bugs need very few
//                     preemptions). Pruned by sleep sets (a fully-explored
//                     sibling's thread stays asleep in later branches until
//                     a conflicting operation wakes it) and by a state-hash
//                     subsumption table keyed on (shared state, per-thread
//                     progress, candidate set) and valued with the largest
//                     remaining budget already explored from that state.
//   check_random      seed-replayable uniform random walks, unbounded
//                     preemptions — the deep-schedule complement to the
//                     bounded exhaustive pass.
//   replay            re-runs one recorded decision list, with the event
//                     log enabled; every failing Result carries such a
//                     list, so any violation reproduces deterministically.
//
// A Result's `decisions` plus the deterministic setup callback are the
// whole reproducer: object ids and thread ids depend only on construction
// and spawn order.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/model_sync.hpp"
#include "util/rng.hpp"

namespace hp::model {

struct Options {
  std::uint32_t preemption_bound = 2;
  bool iterative = true;      // explore bounds 0..preemption_bound in turn
  bool state_pruning = true;  // state-hash subsumption table
  std::uint64_t max_executions = 1ULL << 20;
  std::uint64_t max_ops_per_execution = 1ULL << 16;
};

struct Result {
  bool ok = true;
  bool complete = false;  // the bounded space was exhausted within caps
  std::uint64_t executions = 0;
  std::uint64_t pruned = 0;
  Violation violation;
  std::vector<Decision> decisions;  // replayable schedule of the failure
  std::uint64_t seed = 0;           // random mode only
  std::string trace;                // event log of the replayed failure

  /// One-line human summary (multi-line on failure, with the trace).
  std::string summary() const {
    if (ok) {
      return "ok: " + std::to_string(executions) + " executions (" +
             std::to_string(pruned) + " pruned), " +
             (complete ? "space exhausted" : "budget capped");
    }
    std::string s = "VIOLATION [" + violation.kind + "] " +
                    violation.message + "\n  after " +
                    std::to_string(executions) +
                    " executions\n  replay: " + format_decisions(decisions);
    if (!trace.empty()) {
      s += "\n  schedule:\n" + trace;
    }
    return s;
  }

  static std::string format_decisions(const std::vector<Decision>& ds) {
    std::string out;
    for (const Decision& d : ds) {
      if (!out.empty()) {
        out += ",";
      }
      out += std::to_string(d.index);
      if (d.add_sleep != 0) {
        out += "s" + std::to_string(d.add_sleep);
      }
    }
    return out.empty() ? "(empty)" : out;
  }
};

namespace detail {

/// DFS state shared across the executions of one preemption bound.
class Explorer {
 public:
  Explorer(std::uint32_t bound, const Options& opts)
      : bound_(bound), opts_(opts) {}

  /// Scheduler decision callback. Replays the committed prefix, then
  /// extends the path depth-first (first affordable candidate — index 0
  /// is "continue the current thread" whenever that thread is enabled).
  Decision on_choice(const ChoicePoint& cp) {
    if (depth_ < path_.size()) {
      Node& nd = path_[depth_];
      if (cp.candidates.size() != nd.num_candidates) {
        // The setup is not deterministic; exploration is meaningless.
        error_ = "candidate set changed between replays of one prefix";
        return Decision{kPruneIndex, 0};
      }
      depth_ += 1;
      if (cp.candidates[nd.chosen].preempt) {
        budget_ -= 1;
      }
      const bool thread_node = cp.kind == ChoicePoint::Kind::kThread;
      return Decision{nd.chosen, thread_node ? nd.explored_actors : 0};
    }
    if (cp.kind == ChoicePoint::Kind::kThread && opts_.state_pruning) {
      std::uint64_t actors = 0;
      for (const Candidate& c : cp.candidates) {
        actors |= 1ULL << c.actor;
      }
      const std::uint64_t key = hash_mix(cp.state_hash, actors);
      auto it = table_.find(key);
      if (it != table_.end() && it->second >= budget_) {
        return Decision{kPruneIndex, 0};  // subtree already covered
      }
      table_[key] = budget_;
    }
    Node nd;
    nd.kind = cp.kind;
    nd.num_candidates = static_cast<std::uint32_t>(cp.candidates.size());
    nd.budget_before = budget_;
    for (std::uint32_t i = 0; i < nd.num_candidates; ++i) {
      nd.preempt |= static_cast<std::uint64_t>(cp.candidates[i].preempt)
                    << i;
      nd.actors[i] = cp.candidates[i].actor;
    }
    const std::uint32_t first = first_affordable(nd, 0);
    if (first == kPruneIndex) {
      return Decision{kPruneIndex, 0};  // only preemptions left, budget 0
    }
    nd.chosen = first;
    if (((nd.preempt >> first) & 1ULL) != 0) {
      budget_ -= 1;
    }
    path_.push_back(nd);
    depth_ += 1;
    return Decision{first, 0};
  }

  void begin_execution() {
    depth_ = 0;
    budget_ = bound_;
  }

  /// Drops any stale tail (an execution can end above the previous
  /// frontier after a prune) and backtracks: marks the deepest node's
  /// branch explored and advances it to its next affordable candidate.
  /// Returns false when the whole bounded space is exhausted.
  bool advance() {
    path_.resize(depth_);
    while (!path_.empty()) {
      Node& nd = path_.back();
      nd.explored_mask |= 1ULL << nd.chosen;
      if (nd.kind == ChoicePoint::Kind::kThread) {
        nd.explored_actors |= 1ULL << nd.actors[nd.chosen];
      }
      const std::uint32_t next = first_affordable(nd, nd.chosen + 1);
      if (next != kPruneIndex) {
        nd.chosen = next;
        return true;
      }
      path_.pop_back();
    }
    return false;
  }

  /// The decision list of the execution that just ran (for Result).
  std::vector<Decision> decisions() const {
    std::vector<Decision> out;
    out.reserve(depth_);
    for (std::size_t i = 0; i < depth_; ++i) {
      const Node& nd = path_[i];
      const bool thread_node = nd.kind == ChoicePoint::Kind::kThread;
      // explored_actors is exactly the sleep mask this run applied: new
      // nodes carry 0, replayed nodes their fully-explored siblings.
      out.push_back(
          Decision{nd.chosen, thread_node ? nd.explored_actors : 0});
    }
    return out;
  }

  const std::string& error() const { return error_; }

 private:
  static constexpr std::uint32_t kPruneIndex = ~std::uint32_t{0};

  struct Node {
    ChoicePoint::Kind kind = ChoicePoint::Kind::kThread;
    std::uint32_t num_candidates = 0;
    std::uint32_t chosen = 0;
    std::uint32_t budget_before = 0;
    std::uint64_t preempt = 0;          // bit i: candidate i is a preemption
    std::uint64_t explored_mask = 0;    // candidate indexes fully explored
    std::uint64_t explored_actors = 0;  // their thread ids (sleep re-arm)
    std::array<std::uint32_t, kMaxThreads> actors{};
  };

  std::uint32_t first_affordable(const Node& nd, std::uint32_t from) const {
    for (std::uint32_t i = from; i < nd.num_candidates; ++i) {
      if (((nd.explored_mask >> i) & 1ULL) != 0) {
        continue;
      }
      if (((nd.preempt >> i) & 1ULL) != 0 && nd.budget_before == 0) {
        continue;
      }
      return i;
    }
    return kPruneIndex;
  }

  std::uint32_t bound_;
  const Options& opts_;
  std::vector<Node> path_;
  std::size_t depth_ = 0;
  std::uint32_t budget_ = 0;
  std::map<std::uint64_t, std::uint32_t> table_;
  std::string error_;
};

}  // namespace detail

/// Re-runs one recorded schedule with the event log enabled. The returned
/// Result mirrors the original failure (or comes back ok if the decisions
/// do not reproduce one — which, for a Result produced by this header,
/// indicates a nondeterministic setup).
inline Result replay(const std::function<void()>& setup,
                     const std::vector<Decision>& decisions,
                     const Options& opts = Options{}) {
  std::size_t at = 0;
  DecisionFn chooser = [&decisions, &at](const ChoicePoint& cp) {
    if (at >= decisions.size() ||
        decisions[at].index >= cp.candidates.size()) {
      return Decision{0, 0};  // off-trace: degrade to default scheduling
    }
    return decisions[at++];
  };
  Scheduler sched(chooser);
  sched.set_max_ops(opts.max_ops_per_execution);
  sched.record_events(true);
  const Scheduler::Outcome out = sched.run_execution(setup);
  Result res;
  res.executions = 1;
  res.ok = !out.violated;
  res.complete = true;
  res.violation = out.violation;
  res.decisions = decisions;
  for (const std::string& e : out.events) {
    res.trace += "    " + e + "\n";
  }
  return res;
}

/// Exhaustive bounded exploration: every schedule of `setup`'s threads up
/// to `opts.preemption_bound` preemptions (iteratively deepened from 0).
/// On a violation the Result carries the replayable decision list and the
/// replayed event trace.
inline Result check_exhaustive(const std::function<void()>& setup,
                               const Options& opts = Options{}) {
  Result res;
  const std::uint32_t first_bound =
      opts.iterative ? 0 : opts.preemption_bound;
  for (std::uint32_t bound = first_bound; bound <= opts.preemption_bound;
       ++bound) {
    detail::Explorer ex(bound, opts);
    DecisionFn chooser = [&ex](const ChoicePoint& cp) {
      return ex.on_choice(cp);
    };
    Scheduler sched(chooser);
    sched.set_max_ops(opts.max_ops_per_execution);
    for (;;) {
      if (res.executions >= opts.max_executions) {
        return res;  // ok so far but incomplete (complete stays false)
      }
      ex.begin_execution();
      const Scheduler::Outcome out = sched.run_execution(setup);
      res.executions += 1;
      if (out.pruned) {
        res.pruned += 1;
      }
      if (!ex.error().empty()) {
        res.ok = false;
        res.violation = Violation{"nondeterminism", ex.error()};
        return res;
      }
      if (out.violated) {
        res.ok = false;
        res.violation = out.violation;
        res.decisions = ex.decisions();
        res.trace = replay(setup, res.decisions, opts).trace;
        return res;
      }
      if (!ex.advance()) {
        break;  // this bound is exhausted
      }
    }
  }
  res.complete = true;
  return res;
}

/// Seed-replayable random walks: `executions` uniform schedules with
/// unbounded preemptions. A failure records both the seed and the exact
/// decision list (the list alone replays it).
inline Result check_random(const std::function<void()>& setup,
                           std::uint64_t seed, std::uint64_t executions,
                           const Options& opts = Options{}) {
  Result res;
  res.seed = seed;
  hp::Rng rng(seed);
  std::vector<Decision> current;
  DecisionFn chooser = [&rng, &current](const ChoicePoint& cp) {
    const std::uint32_t n =
        static_cast<std::uint32_t>(cp.candidates.size());
    const Decision d{static_cast<std::uint32_t>(rng.uniform(n)), 0};
    current.push_back(d);
    return d;
  };
  Scheduler sched(chooser);
  sched.set_max_ops(opts.max_ops_per_execution);
  for (std::uint64_t i = 0; i < executions; ++i) {
    current.clear();
    const Scheduler::Outcome out = sched.run_execution(setup);
    res.executions += 1;
    if (out.violated) {
      res.ok = false;
      res.violation = out.violation;
      res.decisions = current;
      res.trace = replay(setup, res.decisions, opts).trace;
      return res;
    }
  }
  res.complete = true;
  return res;
}

}  // namespace hp::model
