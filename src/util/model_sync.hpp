// Model-checking shim for the engine's lock-free synchronization.
//
// hp::model supplies drop-in substitutes for the std::atomic subset the
// phase pipeline uses (load/store/fetch_add/fetch_sub/wait/notify) plus a
// race-detecting plain cell (model::var). Every operation is a *yield
// point* of a cooperative scheduler: exactly one logical thread runs at a
// time, and at each yield point a decision callback — the model checker in
// util/model_checker.hpp, or a replayer — picks which thread runs next.
// Running the identical protocol source (BasicPhaseBarrier<ModelSync>)
// under every schedule the checker enumerates turns the happens-before
// comments in phase_barrier.hpp into machine-checked facts.
//
// What the shim tracks per operation:
//   - vector clocks: a release store copies the writer's clock into the
//     object, a relaxed store clears it (it breaks the release sequence),
//     read-modify-writes join (they continue the sequence), and acquire
//     loads join the object clock into the reader. model::var reads and
//     writes are checked against those clocks, so a missing release or
//     acquire shows up as a data race even though the cooperative
//     execution itself is sequentially consistent.
//   - wake sets: wait() parks the thread in the object's waiter list
//     (after atomically re-checking the value, like the futex it models);
//     notify_one picks a victim — a scheduler decision like any other —
//     and notify_all wakes the whole set. No spurious wakeups: a schedule
//     in which nobody wakes a parked thread ends in a detected deadlock,
//     which is exactly the lost-wakeup class of bug.
//   - state hashes: object values plus each thread's (op count, observed
//     value history) feed the checker's pruning table.
//
// The scheduler itself uses ordinary mutex/condvar handoff between pooled
// OS threads; only one is ever runnable, so shim state needs no atomics of
// its own. Pool threads persist across executions — an execution costs a
// few condvar handoffs, not thread creation.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace hp::model {

inline constexpr std::uint32_t kMaxThreads = 8;
inline constexpr std::uint32_t kNoObj = ~std::uint32_t{0};
inline constexpr std::uint32_t kNoThread = ~std::uint32_t{0};

/// Vector clock over logical thread ids.
using VClock = std::array<std::uint32_t, kMaxThreads>;

inline void clock_join(VClock& into, const VClock& from) {
  for (std::uint32_t i = 0; i < kMaxThreads; ++i) {
    if (from[i] > into[i]) {
      into[i] = from[i];
    }
  }
}

inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL);
  return hp::splitmix64(s);
}

/// What a thread is about to do at a yield point. `writes` covers anything
/// that can affect another thread (stores, RMWs, notifies): two pending
/// operations conflict when they touch the same object and either writes.
enum class OpKind : std::uint8_t {
  kStart,      // thread not yet run
  kLoad,       // atomic load
  kStore,      // atomic store
  kRmw,        // fetch_add / fetch_sub
  kWaitCheck,  // atomic wait: value check, parks if unchanged
  kWake,       // returning from a wait after being notified
  kNotify,     // notify_one / notify_all
  kYield,      // Sync::relax() or explicit yield
  kFinish,     // body returned
};

struct PendingOp {
  OpKind kind = OpKind::kStart;
  std::uint32_t obj = kNoObj;
  bool writes = false;
};

inline bool ops_conflict(const PendingOp& a, const PendingOp& b) {
  return a.obj != kNoObj && a.obj == b.obj && (a.writes || b.writes);
}

struct Candidate {
  std::uint32_t actor = 0;   // thread id (or waiter id for victim choices)
  bool preempt = false;      // switching here consumes preemption budget
  PendingOp op;              // the actor's pending operation
};

/// A scheduler decision: which runnable thread proceeds (kThread) or which
/// waiter a notify_one wakes (kVictim). Candidates exclude sleeping
/// threads; `state_hash` summarizes shared + per-thread state for pruning.
struct ChoicePoint {
  enum class Kind : std::uint8_t { kThread, kVictim };
  Kind kind = Kind::kThread;
  std::uint64_t state_hash = 0;
  std::vector<Candidate> candidates;
};

/// The decision callback's answer. `add_sleep` is a thread-id bitmask the
/// scheduler folds into its sleep set before executing the choice — the
/// checker uses it to re-arm sleep sets when replaying a backtracked
/// prefix (already-explored siblings sleep through the new branch).
struct Decision {
  std::uint32_t index = 0;
  std::uint64_t add_sleep = 0;
};

using DecisionFn = std::function<Decision(const ChoicePoint&)>;

struct Violation {
  std::string kind;     // "deadlock", "data-race", "assert", ...
  std::string message;
};

/// Thrown through shim calls to unwind a logical thread when the execution
/// aborts (violation found, subtree pruned, or op budget exhausted).
struct AbortExecution {};

class Scheduler;

/// The running scheduler, set for the duration of Scheduler::run_execution
/// so shim objects constructed by the setup callback can register.
inline Scheduler* g_scheduler = nullptr;

/// Base of every shim object: registration id, release clock, and a value
/// hash for state fingerprints.
class ObjBase {
 public:
  ObjBase();
  ObjBase(const ObjBase&) = delete;
  ObjBase& operator=(const ObjBase&) = delete;
  virtual ~ObjBase() = default;

  virtual std::uint64_t value_hash() const = 0;

  std::uint32_t obj_id() const { return id_; }
  VClock& release_clock() { return rel_clock_; }
  const VClock& release_clock() const { return rel_clock_; }

 private:
  std::uint32_t id_ = kNoObj;
  VClock rel_clock_{};
};

class Scheduler {
 public:
  struct Outcome {
    bool violated = false;
    bool pruned = false;
    Violation violation;
    std::uint64_t ops = 0;
    std::vector<std::string> events;  // only when record_events(true)
  };

  explicit Scheduler(DecisionFn chooser) : chooser_(std::move(chooser)) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  ~Scheduler() {
    std::unique_lock<std::mutex> lk(mu_);
    shutdown_ = true;
    cv_.notify_all();
    lk.unlock();
    for (Pooled& p : pool_) {
      if (p.os_thread.joinable()) {
        p.os_thread.join();
      }
    }
  }

  void set_max_ops(std::uint64_t cap) { max_ops_ = cap; }
  void record_events(bool on) { record_events_ = on; }

  /// Registers a logical thread body. Only valid inside the setup callback
  /// of run_execution (spawn order defines thread ids).
  void spawn(std::function<void()> body) {
    if (bodies_.size() >= kMaxThreads) {
      fail("config", "spawned more than kMaxThreads threads");
    }
    bodies_.push_back(std::move(body));
  }

  /// Runs one execution: `setup` constructs the shared state and spawns
  /// the logical threads; the scheduler then drives them to completion
  /// under the decision callback.
  Outcome run_execution(const std::function<void()>& setup) {
    begin_execution();
    g_scheduler = this;
    setup();  // registers objects + bodies; runs on the driver "thread"
    start_threads();
    wait_all_finished();
    g_scheduler = nullptr;
    Outcome out;
    out.violated = violated_;
    out.pruned = pruned_;
    out.violation = violation_;
    out.ops = ops_;
    out.events = std::move(events_);
    bodies_.clear();  // frees the user state captured by the lambdas
    objects_.clear();
    waiters_.clear();
    return out;
  }

  // --- shim entry points (called by atomic<T> / var<T>, turn held) --------

  std::uint32_t register_object(ObjBase* obj) {
    const std::uint32_t id = static_cast<std::uint32_t>(objects_.size());
    objects_.push_back(obj);
    waiters_.emplace_back();
    return id;
  }

  /// Announce the next operation and hand the decision to the checker; on
  /// return the calling thread owns the turn again and performs the op.
  void op_point(const PendingOp& op) {
    std::unique_lock<std::mutex> lk(mu_);
    throw_if_aborting();
    const std::uint32_t self = current_;
    Thread& th = threads_[self];
    th.pending = op;
    th.state = St::kRunnable;
    if (!choose_next_locked(self)) {
      wait_for_turn(lk, self);
    }
    th.state = St::kRunning;
    account_op_locked();
  }

  /// Parks the current thread in `obj`'s wait set (the value re-check has
  /// already happened under the turn). Returns once a notify wakes it.
  void park_on(std::uint32_t obj) {
    std::unique_lock<std::mutex> lk(mu_);
    throw_if_aborting();
    const std::uint32_t self = current_;
    Thread& th = threads_[self];
    th.state = St::kBlocked;
    th.pending = PendingOp{OpKind::kWake, obj, false};
    waiters_[obj].push_back(self);
    log_event(self, "park", obj, 0);
    (void)choose_next_locked(self);  // self is blocked: always a handoff
    wait_for_turn(lk, self);
    th.state = St::kRunning;
    account_op_locked();
  }

  /// Executes a notify under the turn: wakes all waiters, or — when
  /// `all` is false and several threads are parked — asks the checker to
  /// pick the victim (an explored decision like any schedule choice).
  void do_notify(std::uint32_t obj, bool all) {
    std::unique_lock<std::mutex> lk(mu_);
    std::vector<std::uint32_t>& ws = waiters_[obj];
    if (ws.empty()) {
      return;
    }
    if (all || ws.size() == 1) {
      for (std::uint32_t w : ws) {
        wake(w);
      }
      ws.clear();
      return;
    }
    ChoicePoint cp;
    cp.kind = ChoicePoint::Kind::kVictim;
    cp.state_hash = state_hash_locked();
    for (std::uint32_t w : ws) {
      cp.candidates.push_back(Candidate{w, false, threads_[w].pending});
    }
    const Decision d = chooser_(cp);
    if (d.index >= ws.size()) {
      fail_locked("config", "victim decision index out of range");
    }
    const std::uint32_t victim = ws[d.index];
    ws.erase(ws.begin() + static_cast<std::ptrdiff_t>(d.index));
    wake(victim);
  }

  /// Records a property violation and aborts the execution (throws).
  [[noreturn]] void fail(const std::string& kind, const std::string& msg) {
    std::unique_lock<std::mutex> lk(mu_);
    fail_locked(kind, msg);
  }

  // --- clock / race machinery (turn held, no lock needed) -----------------

  VClock& thread_clock() { return threads_[current_].clock; }

  std::uint32_t current() const { return current_; }

  /// Bumps the current thread's own clock component (after a release).
  void advance_clock() {
    VClock& c = threads_[current_].clock;
    c[current_] += 1;
  }

  void observe_value(std::uint64_t v) {
    Thread& th = threads_[current_];
    th.obs_hash = hash_mix(th.obs_hash, v);
  }

  void log_op(const char* what, std::uint32_t obj, std::uint64_t v) {
    if (record_events_) {
      std::unique_lock<std::mutex> lk(mu_);
      log_event(current_, what, obj, v);
    }
  }

  bool in_setup() const { return !started_; }

 private:
  enum class St : std::uint8_t {
    kIdle,      // pool slot with no body this execution
    kRunnable,  // parked at a yield point, has a pending op
    kRunning,   // owns the turn
    kBlocked,   // in some object's wait set
    kFinished,  // body returned (or unwound by abort)
  };

  struct Thread {
    St state = St::kIdle;
    PendingOp pending;
    VClock clock{};
    std::uint64_t ops = 0;
    std::uint64_t obs_hash = 0;
  };

  struct Pooled {
    std::thread os_thread;
  };

  void begin_execution() {
    // Pool threads from the previous execution are parked in cv_.wait;
    // lock so their (possibly spurious) predicate evaluations never see a
    // half-reset state.
    std::unique_lock<std::mutex> lk(mu_);
    bodies_.clear();
    objects_.clear();
    waiters_.clear();
    events_.clear();
    violated_ = false;
    pruned_ = false;
    aborting_ = false;
    started_ = false;
    violation_ = Violation{};
    ops_ = 0;
    sleep_ = 0;
    current_ = kNoThread;
    for (Thread& t : threads_) {
      t = Thread{};
      t.clock = VClock{};
    }
  }

  void start_threads() {
    std::unique_lock<std::mutex> lk(mu_);
    started_ = true;
    live_ = static_cast<std::uint32_t>(bodies_.size());
    ensure_pool(live_);
    for (std::uint32_t i = 0; i < live_; ++i) {
      Thread& t = threads_[i];
      t.state = St::kRunnable;
      t.pending = PendingOp{OpKind::kStart, kNoObj, false};
      t.clock[i] = 1;
    }
    if (live_ == 0) {
      return;
    }
    try {
      // The initial handoff is a decision point like any other.
      (void)choose_next_locked(kNoThread);
    } catch (const AbortExecution&) {
      // Pruned/violated before anything ran; threads unwind via aborting_.
    }
    // Persistent pool threads sit inside cv_.wait between executions; a
    // fresh thread checks the predicate on entry, a reused one must be
    // woken here or every party deadlocks on execution two.
    cv_.notify_all();
  }

  void wait_all_finished() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return finished_ == live_; });
    finished_ = 0;
    live_ = 0;
  }

  void ensure_pool(std::uint32_t n) {
    while (pool_.size() < n) {
      const std::uint32_t tid = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
      pool_.back().os_thread = std::thread([this, tid] { pool_main(tid); });
    }
  }

  void pool_main(std::uint32_t tid) {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [&] {
        return shutdown_ ||
               (threads_[tid].state == St::kRunnable &&
                (current_ == tid || aborting_));
      });
      if (shutdown_) {
        return;
      }
      if (aborting_) {
        // Execution aborted before this thread's body ever ran.
        finish_thread(tid, false);
        continue;
      }
      threads_[tid].state = St::kRunning;
      std::function<void()> body = bodies_[tid];
      lk.unlock();
      bool clean = true;
      try {
        body();
      } catch (const AbortExecution&) {
        clean = false;
      } catch (...) {
        lk.lock();
        if (!aborting_) {
          record_violation("exception",
                           "uncaught exception escaped a model thread body");
          aborting_ = true;
        }
        cv_.notify_all();
        clean = false;
        lk.unlock();
      }
      lk.lock();
      finish_thread(tid, clean);
    }
  }

  /// PRE: mu_ held. Marks `tid` finished; if the execution continues, the
  /// turn is handed to the next choice (a finishing thread is exactly the
  /// deadlock-detection point: it may leave only parked threads behind).
  void finish_thread(std::uint32_t tid, bool clean) {
    Thread& th = threads_[tid];
    th.state = St::kFinished;
    th.pending = PendingOp{OpKind::kFinish, kNoObj, false};
    finished_ += 1;
    if (finished_ == live_) {
      cv_.notify_all();  // wake the driver
      return;
    }
    if (clean && !aborting_) {
      try {
        (void)choose_next_locked(kNoThread);
      } catch (const AbortExecution&) {
        // Deadlock or prune recorded; survivors unwind via aborting_.
      }
    }
    cv_.notify_all();
  }

  /// PRE: mu_ held. Blocks `self` until it owns the turn again (or the
  /// execution aborts, in which case this throws to unwind the body).
  void wait_for_turn(std::unique_lock<std::mutex>& lk, std::uint32_t self) {
    cv_.notify_all();
    cv_.wait(lk, [&] {
      return aborting_ ||
             (current_ == self && threads_[self].state == St::kRunnable);
    });
    throw_if_aborting();
  }

  /// PRE: mu_ held. Builds the candidate set (runnable threads minus the
  /// sleep set), asks the checker, and publishes the chosen thread as
  /// current_. Returns true when `self` keeps the turn (no switch).
  /// `self == kNoThread` means the caller does not rejoin (driver start /
  /// finished thread). Throws AbortExecution on deadlock or prune.
  bool choose_next_locked(std::uint32_t self) {
    std::vector<Candidate> cands;
    const bool self_enabled =
        self != kNoThread && threads_[self].state == St::kRunnable;
    if (self_enabled && (sleep_ & (1ULL << self)) == 0) {
      cands.push_back(Candidate{self, false, threads_[self].pending});
    }
    std::uint32_t enabled = self_enabled ? 1 : 0;
    for (std::uint32_t i = 0; i < live_; ++i) {
      if (i == self || threads_[i].state != St::kRunnable) {
        continue;
      }
      enabled += 1;
      if ((sleep_ & (1ULL << i)) == 0) {
        cands.push_back(Candidate{i, self_enabled, threads_[i].pending});
      }
    }
    if (enabled == 0) {
      // Nothing can run. If threads are parked, no schedule can wake them:
      // a lost wakeup. (All-finished never reaches here; see finish_thread.)
      std::string who;
      for (std::uint32_t i = 0; i < live_; ++i) {
        if (threads_[i].state == St::kBlocked) {
          who += (who.empty() ? "t" : ",t") + std::to_string(i);
        }
      }
      record_violation("deadlock",
                       "threads {" + who +
                           "} are parked in wait() and every other thread "
                           "has finished: lost wakeup");
      abort_all();
    }
    if (cands.empty()) {
      // Enabled threads exist but all sleep: this branch was fully covered
      // when its siblings were explored. Silent prune.
      pruned_ = true;
      abort_all();
    }
    std::uint32_t target;
    if (cands.size() == 1) {
      target = cands[0].actor;  // no branching: not a recorded decision
    } else {
      ChoicePoint cp;
      cp.kind = ChoicePoint::Kind::kThread;
      cp.state_hash = state_hash_locked();
      cp.candidates = std::move(cands);
      const Decision d = chooser_(cp);
      if (d.index >= cp.candidates.size()) {
        pruned_ = true;  // checker asked to cut this execution
        abort_all();
      }
      sleep_ |= d.add_sleep;
      target = cp.candidates[d.index].actor;
    }
    // The chosen op executes next: wake sleepers that conflict with it.
    unsleep_conflicts(threads_[target].pending);
    if (target == self) {
      return true;  // continue without a context switch — the common case
    }
    current_ = target;
    return false;
  }

  void unsleep_conflicts(const PendingOp& op) {
    if (sleep_ == 0) {
      return;
    }
    for (std::uint32_t i = 0; i < live_; ++i) {
      if ((sleep_ & (1ULL << i)) != 0 &&
          ops_conflict(threads_[i].pending, op)) {
        sleep_ &= ~(1ULL << i);
      }
    }
  }

  void wake(std::uint32_t tid) {
    threads_[tid].state = St::kRunnable;
    log_event(current_, "wake", kNoObj, tid);
  }

  /// PRE: mu_ held; current thread owns the turn.
  void account_op_locked() {
    Thread& th = threads_[current_];
    th.ops += 1;
    ops_ += 1;
    if (ops_ > max_ops_) {
      fail_locked("op-budget",
                  "execution exceeded max_ops (livelock or runaway spin)");
    }
  }

  void throw_if_aborting() {
    if (aborting_) {
      throw AbortExecution{};
    }
  }

  [[noreturn]] void fail_locked(const std::string& kind,
                                const std::string& msg) {
    record_violation(kind, msg);
    abort_all();
  }

  void record_violation(const std::string& kind, const std::string& msg) {
    if (!violated_) {
      violated_ = true;
      violation_ = Violation{kind, msg};
    }
  }

  [[noreturn]] void abort_all() {
    aborting_ = true;
    cv_.notify_all();
    throw AbortExecution{};
  }

  std::uint64_t state_hash_locked() const {
    std::uint64_t h = 0;
    for (const ObjBase* o : objects_) {
      h = hash_mix(h, o->value_hash());
    }
    for (std::uint32_t i = 0; i < live_; ++i) {
      const Thread& t = threads_[i];
      h = hash_mix(h, static_cast<std::uint64_t>(t.state));
      h = hash_mix(h, static_cast<std::uint64_t>(t.pending.kind));
      h = hash_mix(h, t.pending.obj);
      h = hash_mix(h, t.ops);
      h = hash_mix(h, t.obs_hash);
    }
    return h;
  }

  void log_event(std::uint32_t tid, const char* what, std::uint32_t obj,
                 std::uint64_t v) {
    if (!record_events_ || events_.size() >= kMaxEvents) {
      return;
    }
    std::string line = "t" + std::to_string(tid) + " " + what;
    if (obj != kNoObj) {
      line += " obj#" + std::to_string(obj);
    }
    line += " = " + std::to_string(v);
    events_.push_back(std::move(line));
  }

  static constexpr std::size_t kMaxEvents = 4096;

  DecisionFn chooser_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pooled> pool_;
  std::vector<std::function<void()>> bodies_;
  std::vector<ObjBase*> objects_;
  std::vector<std::vector<std::uint32_t>> waiters_;
  std::array<Thread, kMaxThreads> threads_{};
  std::vector<std::string> events_;
  Violation violation_;
  std::uint64_t sleep_ = 0;  // bitmask of sleeping thread ids
  std::uint64_t ops_ = 0;
  std::uint64_t max_ops_ = 1ULL << 16;
  std::uint32_t current_ = kNoThread;
  std::uint32_t live_ = 0;
  std::uint32_t finished_ = 0;
  bool started_ = false;
  bool violated_ = false;
  bool pruned_ = false;
  bool aborting_ = false;
  bool shutdown_ = false;
  bool record_events_ = false;
};

inline ObjBase::ObjBase() {
  id_ = g_scheduler->register_object(this);
}

/// Registers a logical thread with the running scheduler (setup phase).
inline void spawn(std::function<void()> body) {
  g_scheduler->spawn(std::move(body));
}

/// Property assertion for harness bodies: a failure aborts the execution
/// and surfaces as a replayable violation.
inline void model_assert(bool ok, const char* msg) {
  if (!ok) {
    g_scheduler->fail("assert", msg);
  }
}

namespace detail {

inline bool is_release(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

inline bool is_acquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

}  // namespace detail

/// Modeled std::atomic<T> (integral T). Every member is a scheduler yield
/// point; release/acquire edges maintain the vector clocks that drive
/// model::var race detection.
template <class T>
class atomic : public ObjBase {
 public:
  atomic() = default;
  explicit atomic(T v) : value_(v) {}

  T load(std::memory_order mo) const {
    Scheduler& s = *g_scheduler;
    s.op_point(PendingOp{OpKind::kLoad, obj_id(), false});
    if (detail::is_acquire(mo)) {
      clock_join(s.thread_clock(), release_clock());
    }
    s.observe_value(static_cast<std::uint64_t>(value_));
    s.log_op("load", obj_id(), static_cast<std::uint64_t>(value_));
    return value_;
  }

  void store(T v, std::memory_order mo) {
    Scheduler& s = *g_scheduler;
    s.op_point(PendingOp{OpKind::kStore, obj_id(), true});
    value_ = v;
    if (detail::is_release(mo)) {
      release_clock() = s.thread_clock();
      s.advance_clock();
    } else {
      release_clock() = VClock{};  // a relaxed store breaks the sequence
    }
    s.log_op("store", obj_id(), static_cast<std::uint64_t>(v));
  }

  T fetch_add(T d, std::memory_order mo) { return rmw(d, mo, true); }
  T fetch_sub(T d, std::memory_order mo) { return rmw(d, mo, false); }

  /// Atomic check-then-park, like the futex this models: the value test
  /// and the parking happen without any other thread running in between.
  /// Returns on notify (no spurious wakeups — a schedule where no notify
  /// arrives must deadlock, which is the checker's lost-wakeup property).
  void wait(T old, std::memory_order mo) const {
    Scheduler& s = *g_scheduler;
    s.op_point(PendingOp{OpKind::kWaitCheck, obj_id(), false});
    if (value_ != old) {
      if (detail::is_acquire(mo)) {
        clock_join(s.thread_clock(), release_clock());
      }
      s.observe_value(static_cast<std::uint64_t>(value_));
      return;
    }
    s.park_on(obj_id());
    if (detail::is_acquire(mo)) {
      clock_join(s.thread_clock(), release_clock());
    }
    s.observe_value(static_cast<std::uint64_t>(value_));
  }

  void notify_one() {
    Scheduler& s = *g_scheduler;
    s.op_point(PendingOp{OpKind::kNotify, obj_id(), true});
    s.log_op("notify_one", obj_id(), static_cast<std::uint64_t>(value_));
    s.do_notify(obj_id(), false);
  }

  void notify_all() {
    Scheduler& s = *g_scheduler;
    s.op_point(PendingOp{OpKind::kNotify, obj_id(), true});
    s.log_op("notify_all", obj_id(), static_cast<std::uint64_t>(value_));
    s.do_notify(obj_id(), true);
  }

  std::uint64_t value_hash() const override {
    return static_cast<std::uint64_t>(value_);
  }

 private:
  T rmw(T d, std::memory_order mo, bool add) {
    Scheduler& s = *g_scheduler;
    s.op_point(PendingOp{OpKind::kRmw, obj_id(), true});
    const T old = value_;
    value_ = add ? static_cast<T>(value_ + d) : static_cast<T>(value_ - d);
    if (detail::is_acquire(mo)) {
      clock_join(s.thread_clock(), release_clock());
    }
    if (detail::is_release(mo)) {
      // Join, not overwrite: an RMW continues the release sequence.
      clock_join(release_clock(), s.thread_clock());
      s.advance_clock();
    }
    s.observe_value(static_cast<std::uint64_t>(old));
    s.log_op(add ? "fetch_add" : "fetch_sub", obj_id(),
             static_cast<std::uint64_t>(value_));
    return old;
  }

  T value_{};
};

/// Race-detected plain memory cell. Reads and writes are not yield points
/// (loom-style: schedules branch only at synchronization operations), but
/// each access is checked against the vector clocks: a read must happen
/// after the last write, a write after every prior access. A broken
/// release/acquire chain in the protocol under test therefore surfaces as
/// a "data-race" violation even though the cooperative interleaving is
/// sequentially consistent.
template <class T>
class var : public ObjBase {
 public:
  var() = default;
  explicit var(T v) : value_(v) {}

  T read() const {
    Scheduler& s = *g_scheduler;
    if (!s.in_setup()) {
      const std::uint32_t me = s.current();
      const VClock& c = s.thread_clock();
      if (write_at_ != 0 && c[writer_] < write_at_) {
        s.fail("data-race", race_msg("read", "write", writer_));
      }
      read_at_[me] = c[me];
      s.observe_value(static_cast<std::uint64_t>(value_));
    }
    return value_;
  }

  void write(T v) {
    Scheduler& s = *g_scheduler;
    if (!s.in_setup()) {
      const std::uint32_t me = s.current();
      VClock& c = s.thread_clock();
      if (write_at_ != 0 && c[writer_] < write_at_) {
        s.fail("data-race", race_msg("write", "write", writer_));
      }
      for (std::uint32_t i = 0; i < kMaxThreads; ++i) {
        if (read_at_[i] != 0 && c[i] < read_at_[i]) {
          s.fail("data-race", race_msg("write", "read", i));
        }
      }
      writer_ = me;
      c[me] += 1;
      write_at_ = c[me];
      read_at_ = VClock{};
      s.log_op("var-write", obj_id(), static_cast<std::uint64_t>(v));
    }
    value_ = v;
  }

  std::uint64_t value_hash() const override {
    return static_cast<std::uint64_t>(value_);
  }

 private:
  std::string race_msg(const char* mine, const char* theirs,
                       std::uint32_t who) const {
    return std::string(mine) + " of obj#" + std::to_string(obj_id()) +
           " races with a " + theirs + " by t" + std::to_string(who) +
           " (no happens-before edge)";
  }

  T value_{};
  std::uint32_t writer_ = 0;
  std::uint32_t write_at_ = 0;  // writer_'s clock at the last write
  mutable VClock read_at_{};    // per-thread clock at its last read
};

/// Synchronization policy plugging the shim into BasicPhaseBarrier. The
/// zero spin window makes every waiting path park immediately: spinning
/// under a cooperative scheduler only lengthens schedules without adding
/// behaviors, and parking is the path the lost-wakeup property targets.
struct ModelSync {
  template <class T>
  using Atomic = ::hp::model::atomic<T>;

  static constexpr int kSpinLimit = 0;

  static void relax() {
    g_scheduler->op_point(PendingOp{OpKind::kYield, kNoObj, false});
  }
};

}  // namespace hp::model
