// Lock-free epoch barrier + ticket dispatcher for the engine's phase
// pipeline.
//
// The pre-rework engine coordinated its worker pool with a mutex/condvar
// epoch handshake: every sharded phase paid two lock acquisitions plus a
// condvar broadcast on the main thread and one lock round-trip per worker.
// BENCH_engine.json showed that handshake (plus routing-only sharding)
// costing more than the parallelism bought — t4 ran *slower* than t1 at
// n = 256. This barrier replaces it with three cache-line-isolated atomics:
//
//   epoch_    (serial << 1) | stop — bumped by the main thread to publish a
//             parallel phase; workers spin briefly, then futex-wait
//             (std::atomic::wait) so an idle pool burns no CPU.
//   tickets_  work-stealing cursor. Tasks are *fixed deterministic shards*
//             (their boundaries never depend on the thread count); the
//             ticket only decides which thread executes which shard, which
//             is invisible in the output because every shard writes its own
//             buffer and the main thread concatenates in shard order.
//   active_   workers still inside the epoch. The last leave() wakes the
//             main thread; close() returning is the moment every shard
//             write is visible (release fetch_sub → acquire load).
//
// Roles: exactly one main thread calls open()/next_task()/close()/
// shutdown(); every worker loops wait_open() → next_task()* → leave().
// open()/close() must strictly alternate — the pairing is enforced
// statically by modelling the open epoch as a capability (HP_ACQUIRE/
// HP_RELEASE below), the compile-time counterpart of the TSan stress test
// in tests/phase_barrier_test.cpp.
//
// The barrier is a template over a `Sync` policy so the identical protocol
// code runs against either real atomics (RealSync, the production alias
// below) or the hp::model shim (util/model_sync.hpp), whose cooperative
// scheduler explores thread interleavings exhaustively. The capability
// analysis cannot see atomics themselves, so the happens-before argument in
// the comments above each member is checked three ways: dynamically under
// -fsanitize=thread in CI, structurally by the phase-effects analyzer, and
// exhaustively (every schedule up to a preemption bound) by the model
// checker in tests/model/ (docs/STATIC_ANALYSIS.md, layer 8).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "util/thread_annotations.hpp"

namespace hp::util {

/// Destructive-interference granularity used to keep each shard's hot state
/// (and each barrier atomic) on its own cache line. A constant rather than
/// std::hardware_destructive_interference_size: the engine's committed
/// artifacts must not depend on the build machine.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Pause hint for spin loops; falls back to yielding the timeslice where no
/// cheap hint exists (also the right move on single-core hosts).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Production synchronization policy: plain std::atomic, a real pause hint,
/// and a spin window sized for epochs that arrive back-to-back inside one
/// engine step. The model checker substitutes hp::model::ModelSync, whose
/// every operation is a scheduler decision point (util/model_sync.hpp).
struct RealSync {
  template <class T>
  using Atomic = std::atomic<T>;

  /// Spin iterations before parking. Small on purpose: when a sibling
  /// phase is imminent the epoch flips within a few hundred cycles, and
  /// when it is not (engine in a serial phase, or oversubscribed on few
  /// cores) parking promptly is strictly better than burning the core.
  static constexpr int kSpinLimit = 1 << 10;

  static void relax() { cpu_relax(); }
};

/// RealSync with an empty spin window: every waiting path parks in
/// atomic::wait immediately. Used by tests that must deterministically
/// exercise the futex parking path (shutdown-while-parked) with real
/// threads instead of relying on a sleep to outlast the spin window.
struct ParkEagerSync {
  template <class T>
  using Atomic = std::atomic<T>;
  static constexpr int kSpinLimit = 0;
  static void relax() { cpu_relax(); }
};

template <class Sync>
class HP_CAPABILITY("barrier") BasicPhaseBarrier {
 public:
  template <class T>
  using Atomic = typename Sync::template Atomic<T>;

  /// Sentinel returned by next_task() once the epoch's tasks are exhausted.
  static constexpr std::uint32_t kNoTask = ~std::uint32_t{0};

  /// What a worker learns from wait_open(): which epoch it is in, the
  /// phase tag the main thread published, and whether to shut down.
  struct Epoch {
    std::uint64_t serial = 0;
    std::uint32_t tag = 0;
    bool stop = false;
  };

  explicit BasicPhaseBarrier(std::uint32_t num_workers)
      : workers_(num_workers) {}

  BasicPhaseBarrier(const BasicPhaseBarrier&) = delete;
  BasicPhaseBarrier& operator=(const BasicPhaseBarrier&) = delete;

  std::uint32_t num_workers() const { return workers_; }

  // --- main-thread side ----------------------------------------------------

  /// Publishes a new epoch of `num_tasks` tickets tagged `tag` and wakes
  /// every worker. The relaxed stores below are ordered by the release
  /// bump of epoch_: a worker that acquire-loads the new serial sees them.
  void open(std::uint32_t num_tasks, std::uint32_t tag) HP_ACQUIRE() {
    num_tasks_.store(num_tasks, std::memory_order_relaxed);
    tag_.store(tag, std::memory_order_relaxed);
    tickets_.store(0, std::memory_order_relaxed);
    // hp-lint: allow(atomic-store-no-notify) nobody can be parked on
    // active_ here: close() is the only waiter, it runs on this same
    // thread after open(), and the previous close() already saw zero.
    active_.store(workers_, std::memory_order_relaxed);
    epoch_.fetch_add(2, std::memory_order_release);
    epoch_.notify_all();
  }

  /// Blocks until every worker has left the current epoch. Reading
  /// active_ == 0 with acquire synchronizes with each worker's release
  /// fetch_sub (they form one release sequence), so every task's writes
  /// are visible once this returns.
  void close() HP_RELEASE() {
    std::uint32_t live = active_.load(std::memory_order_acquire);
    int spins = 0;
    while (live != 0) {
      if (++spins <= Sync::kSpinLimit) {
        Sync::relax();
      } else {
        active_.wait(live, std::memory_order_acquire);
        spins = 0;
      }
      live = active_.load(std::memory_order_acquire);
    }
  }

  /// Publishes a final epoch whose stop bit makes every wait_open() return
  /// Epoch::stop — the pool's shutdown broadcast.
  void shutdown() {
    epoch_.fetch_add(2 | 1, std::memory_order_release);
    epoch_.notify_all();
  }

  // --- shared (main participates in its own epochs) ------------------------

  /// Claims the next unclaimed task of the epoch, or kNoTask when drained.
  /// fetch_add gives every ticket exactly one owner, so a task's shard
  /// state needs no further synchronization until close().
  std::uint32_t next_task() {
    const std::uint32_t t = tickets_.fetch_add(1, std::memory_order_relaxed);
    return t < num_tasks_.load(std::memory_order_relaxed) ? t : kNoTask;
  }

  // --- worker side ----------------------------------------------------------

  /// Blocks until an epoch newer than `seen_serial` is published. Spins
  /// with a pause hint first (epochs arrive back-to-back inside one engine
  /// step), then parks on the futex so an idle pool costs nothing.
  Epoch wait_open(std::uint64_t seen_serial) const {
    std::uint64_t raw = epoch_.load(std::memory_order_acquire);
    int spins = 0;
    while ((raw >> 1) == seen_serial) {
      if (++spins <= Sync::kSpinLimit) {
        Sync::relax();
      } else {
        epoch_.wait(raw, std::memory_order_acquire);
        spins = 0;
      }
      raw = epoch_.load(std::memory_order_acquire);
    }
    Epoch e;
    e.serial = raw >> 1;
    e.stop = (raw & 1) != 0;
    e.tag = tag_.load(std::memory_order_relaxed);
    return e;
  }

  /// Announces that this worker is done with the epoch (its tickets are
  /// drained). Release: every write the worker made on behalf of its tasks
  /// happens-before the main thread's close().
  void leave() {
    if (active_.fetch_sub(1, std::memory_order_release) == 1) {
      active_.notify_one();
    }
  }

 private:
  const std::uint32_t workers_;
  alignas(kCacheLineBytes) Atomic<std::uint64_t> epoch_{0};
  alignas(kCacheLineBytes) Atomic<std::uint32_t> tickets_{0};
  alignas(kCacheLineBytes) Atomic<std::uint32_t> active_{0};
  Atomic<std::uint32_t> num_tasks_{0};
  Atomic<std::uint32_t> tag_{0};
};

/// The engine's barrier: the protocol above over real atomics.
using PhaseBarrier = BasicPhaseBarrier<RealSync>;

}  // namespace hp::util
