#include "util/rng.hpp"

// Header-only implementation; this translation unit exists so the target
// always has at least one object file for the module and to hold any
// future out-of-line additions.
namespace hp {}
