// Deterministic pseudo-random number generation.
//
// The simulator must be reproducible: every randomized routing policy and
// workload generator draws from an hp::Rng seeded explicitly. We implement
// xoshiro256++ (Blackman & Vigna) seeded through splitmix64, which has good
// statistical quality, a tiny state, and is trivially splittable for
// independent sub-streams.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <utility>

namespace hp {

/// splitmix64 step — used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64 so that any
  /// 64-bit seed (including 0) yields a well-mixed nonzero state.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t s = seed;
    for (auto& w : state_) w = splitmix64(s);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire-style
  /// rejection to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double real() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return real() < p; }

  /// Fisher–Yates shuffle of a span, in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = uniform(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element of a nonempty span.
  template <typename T>
  T& pick(std::span<T> items) {
    return items[uniform(items.size())];
  }

  /// Returns an independently seeded generator derived from this one.
  /// Useful for giving each run / node / worker its own stream.
  Rng split() { return Rng(next_u64() ^ 0xa0761d6478bd642fULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace hp
