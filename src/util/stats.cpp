#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace hp {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  HP_REQUIRE(!values_.empty(), "mean of empty sample set");
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::min() const {
  HP_REQUIRE(!values_.empty(), "min of empty sample set");
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  HP_REQUIRE(!values_.empty(), "max of empty sample set");
  ensure_sorted();
  return values_.back();
}

double Samples::percentile(double p) const {
  HP_REQUIRE(!values_.empty(), "percentile of empty sample set");
  HP_REQUIRE(p >= 0.0 && p <= 1.0, "percentile rank out of [0,1]");
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(values_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return values_[std::min(idx, values_.size() - 1)];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  HP_REQUIRE(hi > lo, "histogram range must be nonempty");
  HP_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = peak == 0 ? std::size_t{0}
                               : static_cast<std::size_t>(
                                     static_cast<double>(counts_[i]) *
                                     static_cast<double>(width) /
                                     static_cast<double>(peak));
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(std::max<std::size_t>(bar, 1), '#') << " " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace hp
