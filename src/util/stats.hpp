// Lightweight descriptive statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hp {

/// Streaming summary statistics (Welford's algorithm for variance).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects samples and answers percentile queries. Intended for modest
/// sample counts (per-packet latencies, per-run times).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// p in [0, 1]; nearest-rank percentile. Requires at least one sample.
  double percentile(double p) const;
  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used for latency-vs-distance style breakdowns.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Renders a compact ASCII bar chart, one line per nonempty bin.
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hp
