// Annotated synchronization primitives for the thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so guarding state with them is invisible to `clang++ -Wthread-safety`.
// These thin wrappers (the abseil Mutex/MutexLock shape) restore the
// attributes with zero runtime cost; std::condition_variable_any accepts
// Mutex directly as its BasicLockable, so the engine's epoch handshake
// needs no unique_lock escape hatch.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace hp::util {

/// std::mutex with capability annotations.
class HP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HP_ACQUIRE() { mu_.lock(); }
  void unlock() HP_RELEASE() { mu_.unlock(); }
  bool try_lock() HP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex (std::lock_guard with annotations).
class HP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HP_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() HP_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace hp::util
