#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace hp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  HP_REQUIRE(!header_.empty(), "table header must be nonempty");
}

TablePrinter::Row& TablePrinter::Row::add(std::string_view value) {
  cells_.emplace_back(value);
  return *this;
}

TablePrinter::Row& TablePrinter::Row::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  cells_.push_back(os.str());
  return *this;
}

TablePrinter::Row& TablePrinter::Row::add(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TablePrinter::Row& TablePrinter::Row::add(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TablePrinter::Row::~Row() noexcept(false) {
  HP_CHECK(cells_.size() == table_.header_.size(),
           "table row arity mismatch with header");
  table_.rows_.push_back(std::move(cells_));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      out << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace hp
