// Aligned plain-text tables for bench output — the experiment binaries print
// paper-style result rows with this.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hp {

/// Collects rows of string cells and prints them with right-aligned numeric
/// columns under a header, e.g.
///
///     n     k   steps   bound   ratio
///    16   256     143   7239    0.020
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  class Row {
   public:
    explicit Row(TablePrinter& table) : table_(table) {}
    Row& add(std::string_view value);
    Row& add(double value, int precision = 3);
    Row& add(std::int64_t value);
    Row& add(std::uint64_t value);
    /// Commits the row; throws hp::CheckError on arity mismatch.
    ~Row() noexcept(false);
    Row(const Row&) = delete;
    Row& operator=(const Row&) = delete;

   private:
    TablePrinter& table_;
    std::vector<std::string> cells_;
  };

  Row row() { return Row(*this); }

  /// Renders the header and all rows, space-padded, two spaces between
  /// columns, to `out`.
  void print(std::ostream& out) const;
  std::size_t num_rows() const { return rows_.size(); }

 private:
  friend class Row;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hp
