// Clang thread-safety (capability) annotations, HP_-prefixed.
//
// These expand to Clang's attributes when compiling with a compiler that
// understands them and to nothing otherwise (gcc builds are unaffected).
// Together with the annotated util::Mutex wrapper (util/sync.hpp) they turn
// `clang++ -Wthread-safety -Werror` into a *static* race detector over the
// sharded engine's pool state — the compile-time counterpart of the TSan CI
// job, in the same way the determinism lint is the compile-time counterpart
// of the golden-fingerprint tests. The macro set and spellings follow the
// Clang Thread Safety Analysis documentation; HP_ACQUIRED_BEFORE/AFTER
// additionally need -Wthread-safety-beta to be enforced.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define HP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HP_THREAD_ANNOTATION(x)  // no-op
#endif

#define HP_CAPABILITY(x) HP_THREAD_ANNOTATION(capability(x))
#define HP_SCOPED_CAPABILITY HP_THREAD_ANNOTATION(scoped_lockable)

#define HP_GUARDED_BY(x) HP_THREAD_ANNOTATION(guarded_by(x))
#define HP_PT_GUARDED_BY(x) HP_THREAD_ANNOTATION(pt_guarded_by(x))

#define HP_ACQUIRED_BEFORE(...) \
  HP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HP_ACQUIRED_AFTER(...) \
  HP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define HP_REQUIRES(...) \
  HP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HP_ACQUIRE(...) \
  HP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HP_RELEASE(...) \
  HP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HP_TRY_ACQUIRE(...) \
  HP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define HP_EXCLUDES(...) HP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define HP_RETURN_CAPABILITY(x) HP_THREAD_ANNOTATION(lock_returned(x))
#define HP_NO_THREAD_SAFETY_ANALYSIS \
  HP_THREAD_ANNOTATION(no_thread_safety_analysis)

// Marker for the phase-effects analyzer (scripts/analysis/phase_effects.py):
// placed on — or directly above — a statement in a *parallel* phase that
// writes state the analyzer cannot prove owner-derived. The reason string is
// mandatory and explains why the write is nonetheless safe (e.g. a barrier
// ticket hands the slot exactly one owner). Compiles to nothing; the
// statement form keeps it legal anywhere a statement is.
#define HP_SHARED_WRITE(reason) static_assert(true, "")
