#include "workload/generators.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace hp::workload {

namespace {

std::vector<int> degree_capacity(const net::Network& net) {
  std::vector<int> cap(net.num_nodes());
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(net.num_nodes()); ++v) {
    cap[static_cast<std::size_t>(v)] = net.degree(v);
  }
  return cap;
}

int reverse_bits(int x, int bits) {
  int out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | ((x >> i) & 1);
  }
  return out;
}

}  // namespace

Problem random_many_to_many(const net::Network& net, std::size_t k, Rng& rng) {
  std::vector<int> cap = degree_capacity(net);
  const std::size_t total_cap =
      static_cast<std::size_t>(std::accumulate(cap.begin(), cap.end(), 0));
  HP_REQUIRE(k <= total_cap,
             "more packets than total origin capacity (Σ out-degrees)");
  Problem problem;
  problem.name = "random-m2m-k" + std::to_string(k);
  const auto n = static_cast<std::uint64_t>(net.num_nodes());
  while (problem.packets.size() < k) {
    const auto src = static_cast<net::NodeId>(rng.uniform(n));
    if (cap[static_cast<std::size_t>(src)] == 0) continue;
    --cap[static_cast<std::size_t>(src)];
    const auto dst = static_cast<net::NodeId>(rng.uniform(n));
    problem.packets.push_back({src, dst});
  }
  return problem;
}

Problem random_permutation(const net::Network& net, Rng& rng) {
  const auto n = static_cast<net::NodeId>(net.num_nodes());
  std::vector<net::NodeId> dest(static_cast<std::size_t>(n));
  std::iota(dest.begin(), dest.end(), 0);
  rng.shuffle(std::span<net::NodeId>(dest));
  Problem problem;
  problem.name = "random-permutation";
  for (net::NodeId v = 0; v < n; ++v) {
    problem.packets.push_back({v, dest[static_cast<std::size_t>(v)]});
  }
  return problem;
}

Problem transpose(const net::Mesh& mesh) {
  HP_REQUIRE(mesh.dim() == 2, "transpose is a 2-D permutation");
  Problem problem;
  problem.name = "transpose";
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(mesh.num_nodes());
       ++v) {
    net::Coord c = mesh.coords(v);
    net::Coord t;
    t.push_back(c[1]);
    t.push_back(c[0]);
    problem.packets.push_back({v, mesh.node_at(t)});
  }
  return problem;
}

Problem bit_reversal(const net::Mesh& mesh) {
  HP_REQUIRE(mesh.dim() == 2, "bit_reversal is a 2-D permutation");
  const int n = mesh.side();
  HP_REQUIRE((n & (n - 1)) == 0, "bit_reversal needs a power-of-two side");
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  Problem problem;
  problem.name = "bit-reversal";
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(mesh.num_nodes());
       ++v) {
    net::Coord c = mesh.coords(v);
    net::Coord r;
    r.push_back(reverse_bits(c[0], bits));
    r.push_back(reverse_bits(c[1], bits));
    problem.packets.push_back({v, mesh.node_at(r)});
  }
  return problem;
}

Problem inversion(const net::Mesh& mesh) {
  Problem problem;
  problem.name = "inversion";
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(mesh.num_nodes());
       ++v) {
    net::Coord c = mesh.coords(v);
    net::Coord m;
    for (int a = 0; a < mesh.dim(); ++a) {
      m.push_back(mesh.side() - 1 - c[static_cast<std::size_t>(a)]);
    }
    problem.packets.push_back({v, mesh.node_at(m)});
  }
  return problem;
}

Problem single_target(const net::Network& net, std::size_t k,
                      net::NodeId target, Rng& rng) {
  std::vector<int> cap = degree_capacity(net);
  Problem problem;
  problem.name = "single-target-k" + std::to_string(k);
  const auto n = static_cast<std::uint64_t>(net.num_nodes());
  while (problem.packets.size() < k) {
    const auto src = static_cast<net::NodeId>(rng.uniform(n));
    if (cap[static_cast<std::size_t>(src)] == 0) continue;
    --cap[static_cast<std::size_t>(src)];
    problem.packets.push_back({src, target});
  }
  return problem;
}

Problem hotspot(const net::Network& net, std::size_t k, int hotspots,
                Rng& rng) {
  HP_REQUIRE(hotspots >= 1, "need at least one hotspot");
  const auto n = static_cast<std::uint64_t>(net.num_nodes());
  std::vector<net::NodeId> spots;
  for (int i = 0; i < hotspots; ++i) {
    spots.push_back(static_cast<net::NodeId>(rng.uniform(n)));
  }
  std::vector<int> cap = degree_capacity(net);
  Problem problem;
  problem.name = "hotspot-" + std::to_string(hotspots);
  while (problem.packets.size() < k) {
    const auto src = static_cast<net::NodeId>(rng.uniform(n));
    if (cap[static_cast<std::size_t>(src)] == 0) continue;
    --cap[static_cast<std::size_t>(src)];
    problem.packets.push_back(
        {src, spots[rng.uniform(spots.size())]});
  }
  return problem;
}

Problem corner_to_corner(const net::Mesh& mesh, Rng& rng) {
  HP_REQUIRE(mesh.dim() == 2, "corner_to_corner is a 2-D workload");
  const int n = mesh.side();
  const int q = n / 2;
  HP_REQUIRE(q >= 1, "mesh too small for quadrants");
  Problem problem;
  problem.name = "corner-to-corner";
  for (int x = 0; x < q; ++x) {
    for (int y = 0; y < q; ++y) {
      net::Coord src;
      src.push_back(x);
      src.push_back(y);
      net::Coord dst;
      dst.push_back(n - q + static_cast<int>(rng.uniform(
                                static_cast<std::uint64_t>(q))));
      dst.push_back(n - q + static_cast<int>(rng.uniform(
                                static_cast<std::uint64_t>(q))));
      problem.packets.push_back({mesh.node_at(src), mesh.node_at(dst)});
    }
  }
  return problem;
}

Problem saturated_random(const net::Network& net, int per_node, Rng& rng) {
  HP_REQUIRE(per_node >= 1, "per_node must be positive");
  Problem problem;
  problem.name = "saturated-" + std::to_string(per_node);
  const auto n = static_cast<std::uint64_t>(net.num_nodes());
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(net.num_nodes()); ++v) {
    const int count = std::min(per_node, net.degree(v));
    for (int i = 0; i < count; ++i) {
      problem.packets.push_back(
          {v, static_cast<net::NodeId>(rng.uniform(n))});
    }
  }
  return problem;
}

Problem tornado(const net::Mesh& torus) {
  HP_REQUIRE(torus.wraps(), "tornado traffic is defined on the torus");
  const int n = torus.side();
  const int shift = n / 2 - 1;
  HP_REQUIRE(shift >= 1, "torus too small for tornado traffic");
  Problem problem;
  problem.name = "tornado";
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(torus.num_nodes());
       ++v) {
    net::Coord c = torus.coords(v);
    net::Coord t = c;
    t[0] = (c[0] + shift) % n;
    problem.packets.push_back({v, torus.node_at(t)});
  }
  return problem;
}

Problem rows_to_random_columns(const net::Mesh& mesh, Rng& rng) {
  HP_REQUIRE(mesh.dim() == 2, "rows_to_random_columns is a 2-D workload");
  const int n = mesh.side();
  std::vector<int> row_to_col(static_cast<std::size_t>(n));
  std::iota(row_to_col.begin(), row_to_col.end(), 0);
  rng.shuffle(std::span<int>(row_to_col));
  Problem problem;
  problem.name = "rows-to-random-columns";
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(mesh.num_nodes());
       ++v) {
    net::Coord c = mesh.coords(v);
    net::Coord t;
    t.push_back(row_to_col[static_cast<std::size_t>(c[1])]);
    t.push_back(c[0]);
    problem.packets.push_back({v, mesh.node_at(t)});
  }
  return problem;
}

}  // namespace hp::workload
