// Workload generators for the experiment suite.
//
// The paper's bounds are worst-case over all many-to-many problems; the
// generators below span the standard stress patterns plus the adversarial
// shapes used by the experiments (Section "expected shapes" of DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace hp::workload {

/// k packets with uniformly random origins (respecting the out-degree
/// origin constraint) and uniformly random destinations.
Problem random_many_to_many(const net::Network& net, std::size_t k, Rng& rng);

/// A uniformly random permutation: every node sends one packet, every node
/// receives one packet (k = num_nodes).
Problem random_permutation(const net::Network& net, Rng& rng);

/// Matrix transposition on a 2-D mesh: (x, y) → (y, x).
Problem transpose(const net::Mesh& mesh);

/// Bit-reversal permutation on a 2-D mesh whose side is a power of two:
/// each coordinate's bit pattern is reversed.
Problem bit_reversal(const net::Mesh& mesh);

/// Mirror/inversion permutation: (x₁, …, x_d) → (n−1−x₁, …, n−1−x_d),
/// the classic long-distance stress case (every packet travels d·|…| far).
Problem inversion(const net::Mesh& mesh);

/// All k packets destined to a single node (default: the center), origins
/// drawn at random. The single-target scenario of [BTS]/[BNS].
Problem single_target(const net::Network& net, std::size_t k,
                      net::NodeId target, Rng& rng);

/// k packets destined to `hotspots` randomly chosen nodes (congestion
/// concentrates around few receivers).
Problem hotspot(const net::Network& net, std::size_t k, int hotspots,
                Rng& rng);

/// Every node of one corner quadrant sends one packet to a random node of
/// the opposite quadrant — maximal directional congestion on a 2-D mesh.
Problem corner_to_corner(const net::Mesh& mesh, Rng& rng);

/// Every node sends `per_node` packets to uniformly random destinations
/// (per_node ≤ min degree; per_node = 4 reproduces the Remark's 16n² case
/// on interior-heavy meshes — corner/edge nodes get their degree's worth).
Problem saturated_random(const net::Network& net, int per_node, Rng& rng);

/// Row-to-column mapping on a 2-D mesh: node (x, y) sends to (y, x) of a
/// random row permutation — keeps per-column destination multiplicity m
/// controllable for the [BRST]-style comparisons.
Problem rows_to_random_columns(const net::Mesh& mesh, Rng& rng);

/// Tornado traffic on a torus: node (x, y, …) sends to the node halfway
/// around its first ring, (x + ⌊n/2⌋ − 1 mod n, y, …) — the classic
/// adversarial pattern for wrap-around networks (every packet travels the
/// near-maximal row distance in the same rotational direction).
Problem tornado(const net::Mesh& torus);

}  // namespace hp::workload
