#include "workload/io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace hp::workload {

void write_problem(std::ostream& out, const Problem& problem) {
  out << "problem " << (problem.name.empty() ? "unnamed" : problem.name)
      << "\n";
  for (const auto& spec : problem.packets) {
    out << "packet " << spec.src << " " << spec.dst << "\n";
  }
}

Problem read_problem(std::istream& in) {
  Problem problem;
  bool saw_header = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank line
    const std::string where = " at line " + std::to_string(line_no);
    if (keyword == "problem") {
      HP_CHECK(!saw_header, "duplicate 'problem' header" + where);
      HP_CHECK(static_cast<bool>(fields >> problem.name),
               "'problem' needs a name" + where);
      saw_header = true;
    } else if (keyword == "packet") {
      long long src = 0, dst = 0;
      HP_CHECK(static_cast<bool>(fields >> src >> dst),
               "'packet' needs <src> <dst>" + where);
      problem.packets.push_back({static_cast<net::NodeId>(src),
                                 static_cast<net::NodeId>(dst)});
    } else {
      HP_CHECK(false, "unknown keyword '" + keyword + "'" + where);
    }
    std::string extra;
    HP_CHECK(!(fields >> extra), "trailing tokens" + where);
  }
  HP_CHECK(saw_header, "missing 'problem' header");
  return problem;
}

void save_problem(const std::string& path, const Problem& problem) {
  std::ofstream out(path);
  HP_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  write_problem(out, problem);
  HP_CHECK(out.good(), "write to '" + path + "' failed");
}

Problem load_problem(const std::string& path) {
  std::ifstream in(path);
  HP_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
  return read_problem(in);
}

}  // namespace hp::workload
