// Text serialization of routing problems.
//
// Format (line-oriented, '#' comments allowed):
//   problem <name>
//   packet <src> <dst>
//   packet <src> <dst>
//   ...
//
// Used by the hpsim CLI (--save/--load) and for freezing instances found
// by the livelock and hard-instance searches.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/workload.hpp"

namespace hp::workload {

/// Writes `problem` in the text format above.
void write_problem(std::ostream& out, const Problem& problem);

/// Parses a problem from the text format. Throws hp::CheckError on a
/// malformed document. Node-id validity against a concrete network is the
/// caller's job (Problem::validate).
Problem read_problem(std::istream& in);

/// Convenience wrappers over files.
void save_problem(const std::string& path, const Problem& problem);
Problem load_problem(const std::string& path);

}  // namespace hp::workload
