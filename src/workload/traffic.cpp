#include "workload/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "sim/engine.hpp"
#include "topology/mesh.hpp"
#include "util/check.hpp"
#include "workload/generators.hpp"

namespace hp::workload {

DestPattern pattern_from_name(const std::string& name) {
  if (name == "uniform") return DestPattern::kUniform;
  if (name == "hotspot") return DestPattern::kHotspot;
  if (name == "transpose") return DestPattern::kTranspose;
  if (name == "bit-reversal") return DestPattern::kBitReversal;
  throw CheckError("unknown traffic pattern: " + name);
}

const char* pattern_name(DestPattern pattern) {
  switch (pattern) {
    case DestPattern::kUniform:
      return "uniform";
    case DestPattern::kHotspot:
      return "hotspot";
    case DestPattern::kTranspose:
      return "transpose";
    case DestPattern::kBitReversal:
      return "bit-reversal";
  }
  return "?";
}

ParetoSampler::ParetoSampler(double alpha, double scale)
    : alpha_(alpha), scale_(scale) {
  HP_REQUIRE(alpha > 1.0,
             "Pareto shape must exceed 1: alpha <= 1 has an infinite mean, "
             "so no offered packet rate corresponds to a flow arrival rate");
  HP_REQUIRE(scale > 0.0, "Pareto scale (minimum flow size) must be positive");
}

double ParetoSampler::sample_real(Rng& rng) const {
  // Inverse CDF: x_m · (1 − U)^(−1/α) with U uniform in [0, 1); 1 − U is
  // in (0, 1], so the draw is finite and ≥ x_m.
  return scale_ * std::pow(1.0 - rng.real(), -1.0 / alpha_);
}

std::uint64_t ParetoSampler::sample_size(Rng& rng, std::uint64_t cap) const {
  HP_REQUIRE(cap >= 1, "flow-size cap must be at least one packet");
  const double x = std::ceil(sample_real(rng));
  if (!(x < static_cast<double>(cap))) return cap;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(x));
}

TrafficInjector::TrafficInjector(const net::Network& net,
                                 const TrafficConfig& config, double rate,
                                 std::uint64_t seed)
    : net_(net), config_(config), rng_(seed) {
  const auto n = static_cast<std::size_t>(net.num_nodes());
  flow_dst_.assign(n, net::kInvalidNode);
  flow_left_.assign(n, 0);

  const auto* mesh = dynamic_cast<const net::Mesh*>(&net);
  switch (config_.pattern) {
    case DestPattern::kUniform:
      break;
    case DestPattern::kHotspot: {
      HP_REQUIRE(config_.hotspots >= 1, "need at least one hotspot");
      HP_REQUIRE(static_cast<std::size_t>(config_.hotspots) <= n,
                 "more hotspots than nodes");
      // Distinct receivers, drawn once; ascending order keeps the set a
      // pure function of (seed, node count).
      std::vector<net::NodeId> all(n);
      for (std::size_t v = 0; v < n; ++v) {
        all[v] = static_cast<net::NodeId>(v);
      }
      rng_.shuffle(std::span<net::NodeId>(all));
      spots_.assign(all.begin(), all.begin() + config_.hotspots);
      std::sort(spots_.begin(), spots_.end());
      break;
    }
    case DestPattern::kTranspose: {
      HP_REQUIRE(mesh != nullptr && mesh->dim() == 2,
                 "transpose traffic needs a 2-D mesh");
      fixed_dst_.assign(n, net::kInvalidNode);
      for (const PacketSpec& spec : transpose(*mesh).packets) {
        if (spec.dst != spec.src) {
          fixed_dst_[static_cast<std::size_t>(spec.src)] = spec.dst;
        }
      }
      break;
    }
    case DestPattern::kBitReversal: {
      HP_REQUIRE(mesh != nullptr && mesh->dim() == 2,
                 "bit-reversal traffic needs a 2-D mesh");
      fixed_dst_.assign(n, net::kInvalidNode);
      for (const PacketSpec& spec : bit_reversal(*mesh).packets) {
        if (spec.dst != spec.src) {
          fixed_dst_[static_cast<std::size_t>(spec.src)] = spec.dst;
        }
      }
      break;
    }
  }
  set_rate(rate);
}

void TrafficInjector::set_rate(double rate) {
  HP_REQUIRE(rate >= 0.0 && rate <= 1.0,
             "offered rate must be in [0, 1] packets per node per step");
  rate_ = rate;
  double mean_flow = 1.0;
  if (config_.pareto) {
    mean_flow = ParetoSampler(config_.pareto_alpha, config_.pareto_scale)
                    .mean();
  }
  flow_rate_ = std::min(1.0, rate_ / mean_flow);
}

void TrafficInjector::reset_counters() {
  offered_ = 0;
  admitted_ = 0;
}

net::NodeId TrafficInjector::fixed_dst(net::NodeId src) const {
  if (fixed_dst_.empty()) return net::kInvalidNode;
  return fixed_dst_[static_cast<std::size_t>(src)];
}

net::NodeId TrafficInjector::draw_dst(net::NodeId src) {
  switch (config_.pattern) {
    case DestPattern::kUniform: {
      net::NodeId dst = src;
      while (dst == src) {
        dst = static_cast<net::NodeId>(rng_.uniform(net_.num_nodes()));
      }
      return dst;
    }
    case DestPattern::kHotspot: {
      // A hot node sending to itself would be zero-cost traffic; skip the
      // flow when the receiver set leaves it no other choice.
      if (spots_.size() == 1 && spots_[0] == src) return net::kInvalidNode;
      net::NodeId dst = src;
      while (dst == src) {
        dst = spots_[rng_.uniform(spots_.size())];
      }
      return dst;
    }
    case DestPattern::kTranspose:
    case DestPattern::kBitReversal:
      return fixed_dst(src);  // kInvalidNode on the diagonal: no flow
  }
  return net::kInvalidNode;
}

std::uint64_t TrafficInjector::draw_flow_size() {
  if (!config_.pareto) return 1;
  return ParetoSampler(config_.pareto_alpha, config_.pareto_scale)
      .sample_size(rng_, config_.max_flow_packets);
}

void TrafficInjector::inject(sim::Engine& engine, std::uint64_t /*step*/) {
  const auto n = static_cast<net::NodeId>(net_.num_nodes());
  for (net::NodeId v = 0; v < n; ++v) {
    const auto s = static_cast<std::size_t>(v);
    if (flow_left_[s] == 0) {
      // Idle source: flow arrivals are Bernoulli(flow_rate). The draw
      // happens every step for every idle node, so the stream of random
      // numbers — and with it the whole run — is a pure function of the
      // seed, independent of admission outcomes.
      if (!rng_.bernoulli(flow_rate_)) continue;
      const net::NodeId dst = draw_dst(v);
      if (dst == net::kInvalidNode) continue;  // pattern skips this node
      flow_dst_[s] = dst;
      flow_left_[s] = draw_flow_size();
    }
    // Active source: offer one packet per step; blocked offers retry next
    // step (the flow is not dropped), so blocked/offered measures how hard
    // the network is pushing back.
    ++offered_;
    if (engine.try_inject(v, flow_dst_[s])) {
      ++admitted_;
      --flow_left_[s];
    }
  }
}

}  // namespace hp::workload
