// Continuous-injection traffic shapes for the saturation-sweep subsystem.
//
// The batch generators (generators.hpp) describe one-shot many-to-many
// problems; this module describes *open-loop sources* for steady-state
// runs: every node is an independent on/off source whose destinations
// follow a configurable spatial pattern (uniform, hotspot, transpose,
// bit-reversal — the CONGA-style datacenter grid axes) and whose flow
// sizes are either unit (Bernoulli packet arrivals) or heavy-tailed
// Pareto, the standard model for datacenter flow-size distributions.
// Everything is seed-deterministic through hp::Rng, so sweep cells are
// reproducible and bit-identical across engine thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/injection.hpp"
#include "topology/network.hpp"
#include "util/rng.hpp"

namespace hp::workload {

/// Spatial destination pattern of a continuous traffic source.
enum class DestPattern {
  kUniform,      ///< uniform over all nodes except the source
  kHotspot,      ///< uniform over a small fixed set of hot receivers
  kTranspose,    ///< fixed (x, y) → (y, x) on a 2-D mesh
  kBitReversal,  ///< fixed bit-reversed coordinates (power-of-two side)
};

/// Parses "uniform" | "hotspot" | "transpose" | "bit-reversal" (throws
/// CheckError otherwise) / renders the canonical name back.
DestPattern pattern_from_name(const std::string& name);
const char* pattern_name(DestPattern pattern);

/// Pareto(α, x_m) sampler by inverse-CDF: P(X > x) = (x_m / x)^α for
/// x ≥ x_m. Flow sizes need a finite mean to convert a target packet rate
/// into a flow arrival rate, so shapes α ≤ 1 (infinite mean) are rejected
/// at construction.
class ParetoSampler {
 public:
  ParetoSampler(double alpha, double scale);

  /// One continuous draw (≥ scale).
  double sample_real(Rng& rng) const;

  /// One flow size in whole packets: the continuous draw rounded up,
  /// clamped to [1, cap]. cap bounds the heavy tail so a single flow
  /// cannot exceed a sweep window.
  std::uint64_t sample_size(Rng& rng, std::uint64_t cap) const;

  double alpha() const { return alpha_; }
  double scale() const { return scale_; }
  /// Analytic mean α·x_m/(α − 1); finite by the constructor guard.
  double mean() const { return alpha_ * scale_ / (alpha_ - 1.0); }

 private:
  double alpha_;
  double scale_;
};

/// Everything that shapes a traffic source, minus the offered rate (the
/// rate is the knob the admission controller turns, so it stays mutable
/// on the injector itself).
struct TrafficConfig {
  DestPattern pattern = DestPattern::kUniform;
  /// kHotspot: number of hot receiver nodes (drawn once from the seed).
  int hotspots = 4;
  /// Heavy-tailed Pareto flow sizes; false = every flow is one packet,
  /// which reduces the source to patterned Bernoulli arrivals.
  bool pareto = false;
  double pareto_alpha = 1.6;
  double pareto_scale = 1.0;
  /// Tail clamp for one flow, in packets.
  std::uint64_t max_flow_packets = std::uint64_t{1} << 16;
};

/// Continuous patterned traffic source. Each node is an on/off source:
/// idle nodes start a flow with per-step probability rate / E[flow size]
/// (so the long-run *offered packet rate* per node is `rate`); a node
/// with an active flow offers exactly one packet per step toward the
/// flow's destination until the flow is exhausted, retrying (not
/// dropping) when the hot-potato capacity rule blocks admission — the
/// blocked fraction is the saturation signal the admission controller
/// reads. Destinations come from the configured pattern; fixed
/// permutation patterns skip their diagonal nodes (dst == src) instead
/// of offering zero-cost traffic.
class TrafficInjector final : public sim::Injector {
 public:
  /// Patterns that need mesh coordinates (transpose, bit-reversal) throw
  /// CheckError unless `net` is a suitable 2-D mesh. `rate` is the
  /// offered packets per node per step, in [0, 1].
  TrafficInjector(const net::Network& net, const TrafficConfig& config,
                  double rate, std::uint64_t seed);

  void inject(sim::Engine& engine, std::uint64_t step) override;

  /// Retunes the offered rate between windows (flow state and the RNG
  /// stream carry over — the closed probe loop keeps the system warm).
  void set_rate(double rate);
  double rate() const { return rate_; }

  std::uint64_t offered() const { return offered_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t blocked() const { return offered_ - admitted_; }
  /// Zeroes the offered/admitted counters at a window boundary.
  void reset_counters();

  const TrafficConfig& config() const { return config_; }
  /// kHotspot: the receiver set (ascending). Empty otherwise.
  const std::vector<net::NodeId>& hotspot_nodes() const { return spots_; }
  /// Fixed-pattern destination of `src`; kInvalidNode when the pattern is
  /// randomized or `src` is a skipped diagonal node.
  net::NodeId fixed_dst(net::NodeId src) const;

 private:
  net::NodeId draw_dst(net::NodeId src);
  std::uint64_t draw_flow_size();

  const net::Network& net_;
  TrafficConfig config_;
  double rate_ = 0;
  double flow_rate_ = 0;  ///< per-step flow-start probability per node
  Rng rng_;
  std::vector<net::NodeId> fixed_dst_;  ///< fixed patterns, else empty
  std::vector<net::NodeId> spots_;      ///< kHotspot receivers, ascending
  std::vector<net::NodeId> flow_dst_;   ///< per-node active-flow target
  std::vector<std::uint64_t> flow_left_;  ///< per-node packets remaining
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
};

}  // namespace hp::workload
