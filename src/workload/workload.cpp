#include "workload/workload.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hp::workload {

int Problem::max_distance(const net::Network& net) const {
  int best = 0;
  for (const auto& p : packets) {
    best = std::max(best, net.distance(p.src, p.dst));
  }
  return best;
}

void Problem::validate(const net::Network& net) const {
  const auto n = static_cast<net::NodeId>(net.num_nodes());
  std::vector<int> origins(net.num_nodes(), 0);
  for (const auto& p : packets) {
    HP_CHECK(p.src >= 0 && p.src < n, "packet origin out of range");
    HP_CHECK(p.dst >= 0 && p.dst < n, "packet destination out of range");
    ++origins[static_cast<std::size_t>(p.src)];
  }
  for (net::NodeId v = 0; v < n; ++v) {
    HP_CHECK(origins[static_cast<std::size_t>(v)] <= net.degree(v),
             "node '" + std::to_string(v) +
                 "' originates more packets than its out-degree");
  }
}

}  // namespace hp::workload
