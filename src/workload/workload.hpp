// Routing problems: the many-to-many batch model of Section 2.
//
// A problem is a multiset of (origin, destination) pairs, all injected at
// time t = 0. The model constraint: no node is the origin of more packets
// than its out-degree. A node may be the destination of arbitrarily many
// packets, and nodes need not send or receive anything.
#pragma once

#include <string>
#include <vector>

#include "topology/network.hpp"

namespace hp::workload {

struct PacketSpec {
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
};

struct Problem {
  std::string name;
  std::vector<PacketSpec> packets;

  std::size_t size() const { return packets.size(); }

  /// Maximum origin→destination distance over all packets (d_max in the
  /// related-work bounds).
  int max_distance(const net::Network& net) const;

  /// Verifies the many-to-many constraints against `net`: valid node ids
  /// and at most out-degree packets per origin. Throws hp::CheckError on
  /// violation.
  void validate(const net::Network& net) const;
};

}  // namespace hp::workload
