// Closed-loop admission controller tests: the stability verdict, probe
// convergence on synthetic known-capacity systems, guaranteed termination
// on pathological systems, and byte-identical probe trajectories across
// engine thread counts and reruns.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "routing/greedy_variants.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/admission.hpp"
#include "stats/sweep.hpp"
#include "topology/mesh.hpp"
#include "util/check.hpp"
#include "workload/traffic.hpp"

namespace hp {
namespace {

/// Synthetic system with a sharp capacity edge: any rate at or below the
/// capacity is perfectly served, anything above collapses. No state, no
/// randomness — the probe's behavior against it is pure controller logic.
class SharpCapacitySystem final : public sim::LoadableSystem {
 public:
  explicit SharpCapacitySystem(double capacity) : capacity_(capacity) {}

  sim::WindowMeasurement run_window(double rate, std::uint64_t,
                                    std::uint64_t) override {
    ++windows_;
    sim::WindowMeasurement m;
    m.offered_rate = rate;
    if (rate <= capacity_) {
      m.throughput = rate;
      m.admit_fraction = 1.0;
      m.admitted_rate = rate;
    } else {
      m.throughput = 0.5 * capacity_;
      m.admit_fraction = 0.5;
      m.admitted_rate = rate;
    }
    m.mean_latency = 4.0;
    return m;
  }

  int windows() const { return windows_; }

 private:
  double capacity_;
  int windows_ = 0;
};

/// A system that never delivers anything: every window is unstable.
class BlackHoleSystem final : public sim::LoadableSystem {
 public:
  sim::WindowMeasurement run_window(double rate, std::uint64_t,
                                    std::uint64_t) override {
    ++windows_;
    sim::WindowMeasurement m;
    m.offered_rate = rate;
    m.throughput = 0.0;
    m.admit_fraction = 0.0;
    return m;
  }

  int windows() const { return windows_; }

 private:
  int windows_ = 0;
};

TEST(Admission, StableVerdict) {
  sim::AdmissionController controller;
  const double floor = controller.config().stable_fraction;

  sim::WindowMeasurement m;
  m.offered_rate = 0.0;
  EXPECT_TRUE(controller.stable(m));  // nothing offered, nothing owed

  m.offered_rate = 0.5;
  m.admit_fraction = 1.0;
  m.admitted_rate = 0.5;
  m.throughput = 0.5;
  EXPECT_TRUE(controller.stable(m));

  m.admit_fraction = floor - 0.01;  // capacity rule pushing back
  EXPECT_FALSE(controller.stable(m));

  m.admit_fraction = 1.0;
  m.throughput = 0.5 * (floor - 0.01);  // deliveries not keeping up
  EXPECT_FALSE(controller.stable(m));

  m.throughput = 0.5 * floor;  // exactly at the floor counts as stable
  EXPECT_TRUE(controller.stable(m));

  // The comparison base is the *realized* admitted rate: a pattern whose
  // sources produce less than the nominal knob (e.g. a transpose
  // diagonal never sends) is still stable when deliveries match what was
  // actually admitted.
  m.admitted_rate = 0.4;
  m.throughput = 0.4;
  EXPECT_TRUE(controller.stable(m));
}

TEST(Admission, ConfigValidation) {
  auto with = [](auto mutate) {
    sim::ProbeConfig config;
    mutate(config);
    return config;
  };
  EXPECT_THROW(sim::AdmissionController(
                   with([](sim::ProbeConfig& c) { c.min_rate = 0.0; })),
               CheckError);
  EXPECT_THROW(sim::AdmissionController(with([](sim::ProbeConfig& c) {
                 c.max_rate = c.min_rate;
               })),
               CheckError);
  EXPECT_THROW(sim::AdmissionController(
                   with([](sim::ProbeConfig& c) { c.growth = 1.0; })),
               CheckError);
  EXPECT_THROW(sim::AdmissionController(
                   with([](sim::ProbeConfig& c) { c.tolerance = 0.0; })),
               CheckError);
  EXPECT_THROW(sim::AdmissionController(
                   with([](sim::ProbeConfig& c) { c.stable_fraction = 1.5; })),
               CheckError);
  EXPECT_THROW(sim::AdmissionController(
                   with([](sim::ProbeConfig& c) { c.window_steps = 0; })),
               CheckError);
  EXPECT_THROW(sim::AdmissionController(
                   with([](sim::ProbeConfig& c) { c.max_windows = 0; })),
               CheckError);
}

TEST(Admission, ConvergesOnKnownCapacity) {
  for (double capacity : {0.013, 0.21, 0.47, 0.93}) {
    SharpCapacitySystem system(capacity);
    sim::AdmissionController controller;
    const auto result = controller.probe(system);

    EXPECT_TRUE(result.converged) << "capacity " << capacity;
    EXPECT_LE(result.saturation_rate, capacity);
    // The bracket closed to hi − lo ≤ tol·hi with hi just above capacity,
    // so lo lands within tolerance of the true edge.
    EXPECT_GE(result.saturation_rate,
              capacity * (1.0 - controller.config().tolerance) * 0.999)
        << "capacity " << capacity;
    EXPECT_DOUBLE_EQ(result.throughput_at_saturation, result.saturation_rate);
    EXPECT_EQ(result.windows, system.windows());
    EXPECT_LE(result.windows, controller.config().max_windows);
  }
}

TEST(Admission, CeilingStableSystemConvergesToMaxRate) {
  SharpCapacitySystem system(/*capacity=*/2.0);  // above the probe ceiling
  sim::AdmissionController controller;
  const auto result = controller.probe(system);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.saturation_rate, controller.config().max_rate);
}

TEST(Admission, BracketIsMonotoneAndConsistent) {
  SharpCapacitySystem system(/*capacity=*/0.37);
  sim::AdmissionController controller;
  const auto result = controller.probe(system);

  double prev_lo = 0.0;
  double prev_hi = std::numeric_limits<double>::infinity();
  int expected_window = 0;
  for (const auto& step : result.trajectory) {
    EXPECT_EQ(step.window, expected_window++);
    EXPECT_GE(step.lo, prev_lo);                  // lo never retreats
    EXPECT_LE(step.hi, prev_hi);                  // hi never retreats
    EXPECT_LT(step.lo, step.hi);                  // bracket stays open
    EXPECT_EQ(step.stable, controller.stable(step.measurement));
    EXPECT_DOUBLE_EQ(step.rate, step.measurement.offered_rate);
    prev_lo = step.lo;
    prev_hi = step.hi;
  }
  EXPECT_DOUBLE_EQ(result.saturation_rate, prev_lo);
}

TEST(Admission, BlackHoleReportsNonConvergenceAndTerminates) {
  BlackHoleSystem system;
  sim::AdmissionController controller;
  const auto result = controller.probe(system);

  EXPECT_FALSE(result.converged);
  EXPECT_DOUBLE_EQ(result.saturation_rate, 0.0);
  EXPECT_DOUBLE_EQ(result.throughput_at_saturation, 0.0);
  // Terminates via the dead-floor exit well before the hard cap: bisection
  // halves the bracket from initial_rate down to min_rate.
  EXPECT_LT(result.windows, controller.config().max_windows);
  EXPECT_EQ(result.windows, system.windows());
  for (const auto& step : result.trajectory) EXPECT_FALSE(step.stable);
}

// --- engine-backed determinism ---------------------------------------------

/// Full-precision serialization of a probe trajectory. Two runs are
/// equivalent iff their serializations are byte-identical.
std::string serialize(const sim::ProbeResult& result) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf), "converged=%d saturation=%.17g windows=%d\n",
                result.converged ? 1 : 0, result.saturation_rate,
                result.windows);
  out += buf;
  for (const auto& step : result.trajectory) {
    const auto& m = step.measurement;
    std::snprintf(buf, sizeof(buf),
                  "w=%d rate=%.17g stable=%d lo=%.17g hi=%.17g "
                  "tp=%.17g admit=%.17g adm_rate=%.17g lat=%.17g p99=%.17g "
                  "pop=%.17g peak=%.17g backlog=%.17g/%.17g delivered=%llu\n",
                  step.window, step.rate, step.stable ? 1 : 0, step.lo,
                  step.hi, m.throughput, m.admit_fraction, m.admitted_rate,
                  m.mean_latency,
                  m.p99_latency, m.mean_population, m.peak_in_flight,
                  m.start_backlog, m.end_backlog,
                  static_cast<unsigned long long>(m.delivered));
    out += buf;
  }
  return out;
}

sim::ProbeResult probe_mesh(int num_threads, bool pareto) {
  net::Mesh mesh(2, 6);
  routing::RestrictedPriorityPolicy policy;
  workload::TrafficConfig traffic;
  traffic.pattern = workload::DestPattern::kTranspose;
  traffic.pareto = pareto;
  sim::EngineConfig engine_config;
  engine_config.num_threads = num_threads;
  stats::EngineTrafficSystem system(mesh, policy, traffic, /*seed=*/7,
                                    engine_config);
  sim::ProbeConfig probe_config;
  probe_config.window_steps = 300;
  probe_config.warmup_steps = 100;
  return sim::AdmissionController(probe_config).probe(system);
}

TEST(Admission, ProbeTrajectoryIsThreadCountInvariant) {
  for (bool pareto : {false, true}) {
    const std::string baseline = serialize(probe_mesh(1, pareto));
    EXPECT_GT(baseline.size(), 0u);
    for (int threads : {2, 4, 8}) {
      EXPECT_EQ(baseline, serialize(probe_mesh(threads, pareto)))
          << "threads=" << threads << " pareto=" << pareto;
    }
  }
}

TEST(Admission, ProbeTrajectoryIsRerunStable) {
  const std::string first = serialize(probe_mesh(1, true));
  const std::string second = serialize(probe_mesh(1, true));
  EXPECT_EQ(first, second);
}

TEST(Admission, EngineProbeConvergesToPlausibleRate) {
  const auto result = probe_mesh(1, false);
  EXPECT_TRUE(result.converged);
  // Transpose on a 6×6 mesh must sustain something strictly positive but
  // cannot exceed the 1 packet/node/step injection ceiling.
  EXPECT_GT(result.saturation_rate, 0.01);
  EXPECT_LE(result.saturation_rate, 1.0);
  EXPECT_GT(result.throughput_at_saturation, 0.0);
  EXPECT_GT(result.latency_at_saturation, 0.0);
}

TEST(Sweep, CellCurveIsConsistent) {
  net::Mesh mesh(2, 6);
  routing::GreedyRandomPolicy policy;
  workload::TrafficConfig traffic;  // uniform, fixed flow sizes
  stats::SweepConfig config;
  config.probe.window_steps = 300;
  config.probe.warmup_steps = 100;
  config.curve_warmup = 150;
  config.curve_measure = 600;
  config.load_fractions = {0.25, 0.5, 1.0};
  const auto cell = stats::run_sweep_cell(mesh, policy, traffic, config);

  ASSERT_TRUE(cell.probe.converged);
  ASSERT_EQ(cell.curve.size(), config.load_fractions.size());
  for (std::size_t i = 0; i < cell.curve.size(); ++i) {
    const auto& point = cell.curve[i];
    EXPECT_DOUBLE_EQ(point.load_fraction, config.load_fractions[i]);
    EXPECT_DOUBLE_EQ(point.offered_rate,
                     config.load_fractions[i] * cell.probe.saturation_rate);
    EXPECT_GT(point.throughput, 0.0);
    EXPECT_GT(point.delivered, 0u);
    EXPECT_GT(point.peak_in_flight, 0u);
    EXPECT_LE(point.admit_fraction, 1.0);
    EXPECT_GE(point.p99_latency, point.mean_latency * 0.99);
  }
  // Offered rate rises along the curve; delivered throughput follows while
  // the system is below saturation.
  EXPECT_GT(cell.curve.back().throughput, cell.curve.front().throughput);
}

}  // namespace
}  // namespace hp
