// Closed-form bound tests: Theorem 17, Theorem 20, the Remark, the
// Section 5 d-dim bound, and the related-work reference bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "util/check.hpp"

namespace hp::core {
namespace {

TEST(Thm17, MatchesClosedForm) {
  // d = 2: (8)^{1/2} √k M.
  EXPECT_NEAR(thm17_bound(2, 9.0, 10.0),
              std::sqrt(8.0) * 3.0 * 10.0, 1e-9);
  // d = 1: (4)^0 · k · M = k·M.
  EXPECT_DOUBLE_EQ(thm17_bound(1, 5.0, 3.0), 15.0);
}

TEST(Thm20, IsThm17WithMEquals4n) {
  // Theorem 20 = Theorem 17 at d = 2, M = 4n.
  for (int n : {4, 16, 64}) {
    for (double k : {1.0, 10.0, 1000.0}) {
      EXPECT_NEAR(thm20_bound(n, k), thm17_bound(2, k, 4.0 * n), 1e-6);
    }
  }
}

TEST(Thm20, ClosedForm8Sqrt2) {
  EXPECT_NEAR(thm20_bound(10, 4.0), 8.0 * std::sqrt(2.0) * 10.0 * 2.0, 1e-9);
}

TEST(Thm20, MonotoneInBothArguments) {
  EXPECT_LT(thm20_bound(8, 10.0), thm20_bound(16, 10.0));
  EXPECT_LT(thm20_bound(8, 10.0), thm20_bound(8, 20.0));
}

TEST(Remark, ParitySplitBounds) {
  // Full permutation: 8√2·n·√(n²) would be 8√2·n²; the parity split
  // sharpens it to 8n². Four packets per node: 16n².
  EXPECT_DOUBLE_EQ(remark_permutation_bound(16), 8.0 * 256.0);
  EXPECT_DOUBLE_EQ(remark_four_per_node_bound(16), 16.0 * 256.0);
  // The split really is stronger than the generic bound.
  EXPECT_LT(remark_permutation_bound(16), thm20_bound(16, 256.0));
}

TEST(DdimBound, ReducesSensiblyAtD2) {
  // At d = 2 the Section 5 formula is 4^{2.5}·2^{0.5}·√k·n = 8√2·…·…
  // — consistent with Theorem 20 up to the same constant.
  EXPECT_NEAR(ddim_bound(2, 16, 100.0), thm20_bound(16, 100.0) * 4.0, 1e-6);
  // (The d-dim machinery loses an extra factor of 4 at d = 2; the paper's
  // 2-D analysis is tighter.)
}

TEST(DdimBound, MatchesThm17WithCapM) {
  for (int d : {2, 3, 4}) {
    for (int n : {4, 8}) {
      for (double k : {1.0, 64.0}) {
        EXPECT_NEAR(ddim_bound(d, n, k),
                    thm17_bound(d, k, ddim_potential_cap(d, n)),
                    1e-6 * ddim_bound(d, n, k));
      }
    }
  }
}

TEST(DdimBound, GrowsExponentiallyInD) {
  EXPECT_GT(ddim_bound(4, 8, 64.0) / ddim_bound(3, 8, 64.0), 4.0);
}

TEST(ReferenceBounds, BrassilCruzAndHajek) {
  EXPECT_DOUBLE_EQ(brassil_cruz_bound(14, 63.0, 10.0), 14 + 63 + 18);
  EXPECT_DOUBLE_EQ(hajek_bound(100.0, 10), 210.0);
  EXPECT_DOUBLE_EQ(bts_bound(5.0, 7), 15.0);
}

TEST(LowerBounds, SingleTargetAbsorption) {
  // 100 packets into a degree-4 node from max distance 6: at least
  // max(6, ceil(100/4)) = 25 steps.
  EXPECT_DOUBLE_EQ(single_target_lower_bound(100.0, 6, 4), 25.0);
  EXPECT_DOUBLE_EQ(single_target_lower_bound(3.0, 9, 4), 9.0);
  EXPECT_DOUBLE_EQ(distance_lower_bound(12), 12.0);
}

TEST(Phi0, UpperBound) {
  EXPECT_DOUBLE_EQ(phi0_upper(10.0, 4.0 * 16), 640.0);
}

TEST(Bounds, RejectBadArguments) {
  EXPECT_THROW(thm17_bound(0, 1.0, 1.0), CheckError);
  EXPECT_THROW(thm17_bound(2, -1.0, 1.0), CheckError);
  EXPECT_THROW(single_target_lower_bound(1.0, 1, 0), CheckError);
}

}  // namespace
}  // namespace hp::core
