// Tests for the Definition 6 / Definition 18 runtime checkers and the
// restricted-packet census (§4.1 taxonomy, Figures 5–6 concepts).
#include <gtest/gtest.h>

#include "core/checkers.hpp"
#include "routing/greedy_variants.hpp"
#include "routing/perverse.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "test_support.hpp"
#include "util/check.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using test::make_problem;
using test::xy;

/// A policy that violates greediness on purpose: it deflects every packet
/// that did not get its FIRST good arc, even when other good arcs are free.
class NonGreedyPolicy : public sim::RoutingPolicy {
 public:
  std::string name() const override { return "non-greedy"; }
  bool deterministic() const override { return true; }
  void route(const sim::NodeContext& ctx,
             std::span<const sim::PacketView> packets,
             std::span<net::Dir> out) override {
    std::uint32_t used = 0;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      out[i] = net::kInvalidDir;
      const net::Dir first = packets[i].good.front();
      if (((used >> first) & 1u) == 0) {
        out[i] = first;
        used |= std::uint32_t{1} << first;
      }
    }
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (out[i] != net::kInvalidDir) continue;
      // Deliberately pick a BAD arc even if another good one is free.
      for (net::Dir d : ctx.avail_dirs) {
        if (((used >> d) & 1u) == 0 && !packets[i].good.contains(d)) {
          out[i] = d;
          used |= std::uint32_t{1} << d;
          break;
        }
      }
      if (out[i] == net::kInvalidDir) {
        for (net::Dir d : ctx.avail_dirs) {
          if (((used >> d) & 1u) == 0) {
            out[i] = d;
            used |= std::uint32_t{1} << d;
            break;
          }
        }
      }
    }
  }
};

/// NonGreedyPolicy that LIES about conforming to Definition 6. Under
/// HP_AUDIT the engine attaches the GreedyChecker to any claiming policy,
/// so the false claim must abort the run — the audit gate's negative path.
class LyingGreedyPolicy : public NonGreedyPolicy {
 public:
  std::string name() const override { return "lying-greedy"; }
  bool claims_greedy() const override { return true; }
};

/// Genuinely greedy (FurthestFirst inherits the Definition 6 discipline)
/// but falsely claims the Definition 18 restricted preference it does not
/// implement.
class LyingPreferencePolicy : public routing::FurthestFirstPolicy {
 public:
  std::string name() const override { return "lying-preference"; }
  bool claims_restricted_preference() const override { return true; }
};

TEST(AuditGate, FalseGreedyClaimAbortsTheRun) {
#ifndef HP_AUDIT
  GTEST_SKIP() << "HP_AUDIT is off: claims are not audited in this build";
#else
  // Same scenario FlagsNonGreedyPolicy proves violates Definition 6; with
  // the false claim the engine itself must throw on the first step.
  net::Mesh mesh(2, 8);
  const auto mid = mesh.node_at(xy(3, 3));
  auto problem = make_problem(
      {{mid, mesh.node_at(xy(6, 6))}, {mid, mesh.node_at(xy(6, 5))}});
  LyingGreedyPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  EXPECT_THROW(engine.step(), CheckError);
#endif
}

TEST(AuditGate, FalsePreferenceClaimAbortsTheRun) {
#ifndef HP_AUDIT
  GTEST_SKIP() << "HP_AUDIT is off: claims are not audited in this build";
#else
  // Same scenario FlagsPolicyIgnoringRestrictedPackets proves violates
  // Definition 18 while staying greedy: only the preference claim is a lie.
  net::Mesh mesh(2, 8);
  const auto mid = mesh.node_at(xy(3, 3));
  auto problem = make_problem(
      {{mid, mesh.node_at(xy(5, 3))},    // restricted east, dist 2
       {mid, mesh.node_at(xy(7, 7))}});  // unrestricted, dist 8 (wins)
  LyingPreferencePolicy policy;
  sim::Engine engine(mesh, problem, policy);
  EXPECT_THROW(engine.step(), CheckError);
#endif
}

TEST(GreedyChecker, CleanOnGreedyPolicies) {
  net::Mesh mesh(2, 8);
  Rng rng(1);
  auto problem = workload::random_many_to_many(mesh, 60, rng);
  routing::RestrictedPriorityPolicy policy;
  auto run = test::run_checked(mesh, problem, policy);
  ASSERT_TRUE(run.result.completed);
  EXPECT_TRUE(run.greedy_violations.empty());
  EXPECT_TRUE(run.preference_violations.empty());
}

TEST(GreedyChecker, FlagsNonGreedyPolicy) {
  // Two packets at one node, both with two good dirs that overlap in one:
  // the non-greedy policy deflects the loser onto a bad arc while its
  // second good arc stays free.
  net::Mesh mesh(2, 8);
  const auto mid = mesh.node_at(xy(3, 3));
  auto problem = make_problem(
      {{mid, mesh.node_at(xy(6, 6))},    // good: {+x, +y}
       {mid, mesh.node_at(xy(6, 5))}});  // good: {+x, +y}
  NonGreedyPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::GreedyChecker checker;
  engine.add_observer(&checker);
  engine.step();
  EXPECT_FALSE(checker.violations().empty());
}

TEST(GreedyChecker, CountsDeflections) {
  net::Mesh mesh(2, 8);
  const auto mid = mesh.node_at(xy(3, 3));
  const auto east = mesh.node_at(xy(6, 3));
  auto problem = make_problem({{mid, east}, {mid, east}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::GreedyChecker checker;
  engine.add_observer(&checker);
  engine.step();
  EXPECT_EQ(checker.deflections_checked(), 1u);
  EXPECT_TRUE(checker.violations().empty());
}

TEST(PreferenceChecker, FlagsPolicyIgnoringRestrictedPackets) {
  // furthest-first: a far nonrestricted packet can deflect a near
  // restricted one — legal greedy, but outside the Definition 18 class.
  net::Mesh mesh(2, 8);
  const auto mid = mesh.node_at(xy(3, 3));
  auto problem = make_problem(
      {{mid, mesh.node_at(xy(5, 3))},    // restricted east, dist 2
       {mid, mesh.node_at(xy(7, 7))}});  // unrestricted, dist 8 (wins)
  routing::FurthestFirstPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::RestrictedPreferenceChecker checker;
  core::GreedyChecker greedy;
  engine.add_observer(&checker);
  engine.add_observer(&greedy);
  engine.step();
  // The far packet takes east (its first good arc by construction order?)
  // — it has {+x,+y}; sequential picks +x first, deflecting the
  // restricted packet: Definition 18 violation, but still greedy.
  EXPECT_FALSE(checker.violations().empty());
  EXPECT_TRUE(greedy.violations().empty());
}

TEST(PreferenceChecker, CleanForRestrictedPriority) {
  net::Mesh mesh(2, 10);
  Rng rng(5);
  auto problem = workload::saturated_random(mesh, 2, rng);
  routing::RestrictedPriorityPolicy policy;
  auto run = test::run_checked(mesh, problem, policy);
  ASSERT_TRUE(run.result.completed);
  EXPECT_TRUE(run.preference_violations.empty());
}

TEST(PreferenceChecker, PerverseGreedyIsGreedyButNotPreferring) {
  net::Mesh mesh(2, 8);
  Rng rng(9);
  auto problem = workload::random_many_to_many(mesh, 80, rng);
  routing::PerverseGreedyPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::GreedyChecker greedy;
  core::RestrictedPreferenceChecker preference;
  engine.add_observer(&greedy);
  engine.add_observer(&preference);
  sim::RunResult result = engine.run();
  EXPECT_TRUE(greedy.violations().empty())
      << "perverse-greedy must still satisfy Definition 6";
  // It virtually always tramples restricted packets somewhere on a run
  // this size; if not, the run was conflict-free and the test is vacuous.
  if (preference.restricted_deflections() > 0) {
    SUCCEED();
  }
}

TEST(Census, CountsClassesAndAdvancement) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 3)), mesh.node_at(xy(5, 3))},    // restricted
       {mesh.node_at(xy(0, 0)), mesh.node_at(xy(4, 4))}});  // unrestricted
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::RestrictedCensus census;
  engine.add_observer(&census);
  engine.step();
  ASSERT_EQ(census.series().size(), 1u);
  const auto& counts = census.series()[0];
  EXPECT_EQ(counts.type_b, 1);        // restricted at injection: Type B
  EXPECT_EQ(counts.type_a, 0);
  EXPECT_EQ(counts.unrestricted, 1);
  EXPECT_EQ(counts.advancing, 2);
  EXPECT_EQ(counts.deflected, 0);

  engine.step();
  const auto& counts2 = census.series()[1];
  EXPECT_EQ(counts2.type_a, 1);  // restricted packet advanced: now Type A
}

TEST(Census, GoodDirHistogramAccumulates) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(3, 3))}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::RestrictedCensus census;
  engine.add_observer(&census);
  engine.run();
  // The packet starts with 2 good dirs and is routed 6 times in total.
  std::uint64_t total = 0;
  for (auto c : census.good_dir_histogram()) total += c;
  EXPECT_EQ(total, 6u);
  EXPECT_GT(census.good_dir_histogram()[2], 0u);
}

}  // namespace
}  // namespace hp
