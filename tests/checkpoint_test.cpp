// Checkpoint/restore round-trips (docs/SCALE.md): a run interrupted at
// step k and restored into a fresh engine must continue bit-for-bit — same
// fingerprint, same statistics, same archive — for every thread count and
// memory profile, and every corrupt or mismatched checkpoint must fail
// with a clear error instead of undefined behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "routing/perverse.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/checkpoint.hpp"
#include "sim/engine.hpp"
#include "test_support.hpp"
#include "topology/mesh.hpp"
#include "util/check.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using test::make_problem;
using test::xy;

using routing::RestrictedPriorityPolicy;
using TieBreak = RestrictedPriorityPolicy::TieBreak;

workload::Problem restored_problem() {
  workload::Problem p;
  p.name = "restored";
  return p;
}

RestrictedPriorityPolicy::Params random_params() {
  RestrictedPriorityPolicy::Params params;
  params.tie_break = TieBreak::kRandom;
  params.deflect = routing::DeflectRule::kRandom;
  return params;
}

/// The seed scenario every round-trip test below interrupts: a saturated
/// random workload on the 8×8 mesh.
workload::Problem scenario(const net::Network& net) {
  Rng rng(7);
  return workload::saturated_random(net, 2, rng);
}

sim::EngineConfig scenario_config(int threads) {
  sim::EngineConfig config;
  config.seed = 7;
  config.num_threads = threads;
  return config;
}

TEST(CheckpointRoundTrip, BitIdenticalAcrossThreadsAndPolicies) {
  constexpr std::uint64_t kTotal = 30;
  constexpr std::uint64_t kSplit = 9;
  net::Mesh mesh(2, 8);

  for (const bool random_policy : {false, true}) {
    const auto params = random_policy ? random_params()
                                      : RestrictedPriorityPolicy::Params{};
    for (const int threads : {1, 2, 4, 8}) {
      // Uninterrupted reference run.
      auto full_problem = scenario(mesh);
      RestrictedPriorityPolicy full_policy(params);
      sim::Engine full(mesh, full_problem, full_policy,
                       scenario_config(threads));
      full.run_for(kTotal);
      const std::uint64_t want = sim::state_fingerprint(full);

      // Same run, interrupted at kSplit.
      auto head_problem = scenario(mesh);
      RestrictedPriorityPolicy head_policy(params);
      sim::Engine head(mesh, head_problem, head_policy,
                       scenario_config(threads));
      head.run_for(kSplit);
      std::ostringstream sink;
      sim::save_checkpoint(head, sink);

      auto tail_problem = restored_problem();
      RestrictedPriorityPolicy tail_policy(params);
      sim::Engine tail(mesh, tail_problem, tail_policy,
                       scenario_config(threads));
      std::istringstream source(sink.str());
      sim::restore_checkpoint(tail, source);
      EXPECT_EQ(tail.now(), kSplit);
      EXPECT_EQ(tail.in_flight(), head.in_flight());
      EXPECT_EQ(sim::state_fingerprint(tail), sim::state_fingerprint(head));

      tail.run_for(kTotal - kSplit);
      EXPECT_EQ(sim::state_fingerprint(tail), want)
          << "threads " << threads << " random_policy " << random_policy;
      EXPECT_EQ(tail.delivered(), full.delivered());
      EXPECT_EQ(tail.now(), full.now());
    }
  }
}

TEST(CheckpointRoundTrip, CheckpointBytesAreThreadCountInvariant) {
  net::Mesh mesh(2, 8);
  std::string baseline;
  for (const int threads : {1, 2, 4, 8}) {
    auto problem = scenario(mesh);
    RestrictedPriorityPolicy policy;
    sim::Engine engine(mesh, problem, policy, scenario_config(threads));
    engine.run_for(11);
    std::ostringstream sink;
    sim::save_checkpoint(engine, sink);
    if (threads == 1) {
      baseline = sink.str();
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(sink.str(), baseline) << "threads " << threads;
    }
  }
}

TEST(CheckpointRoundTrip, CompletedRunStatisticsSurvive) {
  net::Mesh mesh(2, 8);
  Rng rng_a(3);
  Rng rng_b(3);
  auto full_problem = workload::random_permutation(mesh, rng_a);
  auto head_problem = workload::random_permutation(mesh, rng_b);

  RestrictedPriorityPolicy full_policy;
  sim::Engine full(mesh, full_problem, full_policy, scenario_config(1));
  const auto want = full.run();
  ASSERT_TRUE(want.completed);

  RestrictedPriorityPolicy head_policy;
  sim::Engine head(mesh, head_problem, head_policy, scenario_config(1));
  head.run_for(want.steps / 2);
  std::ostringstream sink;
  sim::save_checkpoint(head, sink);

  auto tail_problem = restored_problem();
  RestrictedPriorityPolicy tail_policy;
  sim::Engine tail(mesh, tail_problem, tail_policy, scenario_config(1));
  std::istringstream source(sink.str());
  sim::restore_checkpoint(tail, source);
  const auto got = tail.run();

  EXPECT_TRUE(got.completed);
  EXPECT_EQ(got.steps, want.steps);
  EXPECT_EQ(got.total_deflections, want.total_deflections);
  EXPECT_EQ(got.total_advances, want.total_advances);
  ASSERT_EQ(got.packets.size(), want.packets.size());
  for (std::size_t i = 0; i < want.packets.size(); ++i) {
    EXPECT_EQ(got.packets[i].id, want.packets[i].id);
    EXPECT_EQ(got.packets[i].arrived_at, want.packets[i].arrived_at);
    EXPECT_EQ(got.packets[i].deflections, want.packets[i].deflections);
  }
}

TEST(CheckpointRoundTrip, ArchiveRecordsSurvive) {
  net::Mesh mesh(2, 8);
  auto head_problem = scenario(mesh);
  RestrictedPriorityPolicy head_policy;
  sim::Engine head(mesh, head_problem, head_policy, scenario_config(1));
  head.run_for(12);
  ASSERT_GT(head.archive().size(), 0u) << "scenario must deliver by step 12";

  std::ostringstream sink;
  sim::save_checkpoint(head, sink);
  auto tail_problem = restored_problem();
  RestrictedPriorityPolicy tail_policy;
  sim::Engine tail(mesh, tail_problem, tail_policy, scenario_config(1));
  std::istringstream source(sink.str());
  sim::restore_checkpoint(tail, source);

  const auto a = head.archive();
  const auto b = tail.archive();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrived_at, b[i].arrived_at);
    EXPECT_EQ(a[i].deflections, b[i].deflections);
  }
  // The id index was rebuilt, not just the records.
  EXPECT_NE(tail.arrival_log().find(a[0].id), nullptr);
}

TEST(CheckpointRoundTrip, CrossProfileRestoreIsBitIdentical) {
  // A checkpoint written by a default-profile engine restores into a lean
  // one (and back): the wire format is column-width independent.
  constexpr std::uint64_t kTotal = 24;
  constexpr std::uint64_t kSplit = 7;
  net::Mesh mesh(2, 8);

  auto full_problem = scenario(mesh);
  RestrictedPriorityPolicy full_policy;
  sim::Engine full(mesh, full_problem, full_policy, scenario_config(1));
  full.run_for(kTotal);
  const std::uint64_t want = sim::state_fingerprint(full);

  for (const bool head_lean : {false, true}) {
    auto head_problem = scenario(mesh);
    RestrictedPriorityPolicy head_policy;
    auto head_config = scenario_config(1);
    head_config.memory = head_lean ? sim::MemoryProfile::kLean
                                   : sim::MemoryProfile::kDefault;
    sim::Engine head(mesh, head_problem, head_policy, head_config);
    head.run_for(kSplit);
    std::ostringstream sink;
    sim::save_checkpoint(head, sink);

    auto tail_problem = restored_problem();
    RestrictedPriorityPolicy tail_policy;
    auto tail_config = scenario_config(1);
    tail_config.memory = head_lean ? sim::MemoryProfile::kDefault
                                   : sim::MemoryProfile::kLean;
    sim::Engine tail(mesh, tail_problem, tail_policy, tail_config);
    std::istringstream source(sink.str());
    sim::restore_checkpoint(tail, source);
    tail.run_for(kTotal - kSplit);
    EXPECT_EQ(sim::state_fingerprint(tail), want)
        << "head_lean " << head_lean;
  }
}

TEST(CheckpointRoundTrip, SpansALivelockDetection) {
  // The frozen greedy livelock from livelock_test.cpp (found by
  // livelock_search on the 4×4 torus, search seed 8): interrupting before
  // the detector fires must not lose the seen-state map — the restored
  // run proves the cycle at exactly the same step.
  net::Mesh torus(2, 4, /*wrap=*/true);
  const auto specs = std::vector<workload::PacketSpec>{
      {torus.node_at(xy(2, 2)), torus.node_at(xy(2, 2))},
      {torus.node_at(xy(2, 1)), torus.node_at(xy(2, 2))},
      {torus.node_at(xy(0, 1)), torus.node_at(xy(2, 1))},
      {torus.node_at(xy(3, 2)), torus.node_at(xy(3, 1))},
      {torus.node_at(xy(3, 2)), torus.node_at(xy(0, 2))},
      {torus.node_at(xy(1, 2)), torus.node_at(xy(3, 2))},
      {torus.node_at(xy(3, 2)), torus.node_at(xy(1, 2))},
      {torus.node_at(xy(1, 2)), torus.node_at(xy(2, 2))},
  };
  sim::EngineConfig config;
  config.max_steps = 50'000;

  auto full_problem = make_problem(specs);
  routing::PerverseGreedyPolicy full_policy;
  sim::Engine full(torus, full_problem, full_policy, config);
  const auto want = full.run();
  ASSERT_TRUE(want.livelocked);
  ASSERT_GT(want.steps_executed, 1u);
  const std::uint64_t split = want.steps_executed / 2;

  auto head_problem = make_problem(specs);
  routing::PerverseGreedyPolicy head_policy;
  sim::Engine head(torus, head_problem, head_policy, config);
  head.run_for(split);
  ASSERT_FALSE(head.livelocked());
  std::ostringstream sink;
  sim::save_checkpoint(head, sink);

  auto tail_problem = restored_problem();
  routing::PerverseGreedyPolicy tail_policy;
  sim::Engine tail(torus, tail_problem, tail_policy, config);
  std::istringstream source(sink.str());
  sim::restore_checkpoint(tail, source);
  const auto got = tail.run();
  EXPECT_TRUE(got.livelocked);
  // steps_executed is the absolute step clock: the restored run must
  // prove the cycle at exactly the step the uninterrupted one did — the
  // seen-state map crossed the checkpoint intact.
  EXPECT_EQ(got.steps_executed, want.steps_executed);
  EXPECT_EQ(sim::state_fingerprint(tail), sim::state_fingerprint(full));
}

// --- failure modes ----------------------------------------------------------

/// A valid checkpoint of the standard scenario at step 9, as raw bytes.
std::string scenario_checkpoint(const net::Network& net) {
  auto problem = scenario(net);
  RestrictedPriorityPolicy policy;
  sim::Engine engine(net, problem, policy, scenario_config(1));
  engine.run_for(9);
  std::ostringstream sink;
  sim::save_checkpoint(engine, sink);
  return sink.str();
}

void expect_restore_fails(const net::Network& net, const std::string& bytes,
                          sim::EngineConfig config = scenario_config(1)) {
  auto problem = restored_problem();
  RestrictedPriorityPolicy policy;
  sim::Engine engine(net, problem, policy, config);
  std::istringstream source(bytes);
  EXPECT_THROW(sim::restore_checkpoint(engine, source), CheckError);
}

TEST(CheckpointFailure, TruncatedFileIsRejected) {
  net::Mesh mesh(2, 8);
  const std::string bytes = scenario_checkpoint(mesh);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{6}, bytes.size() / 2, bytes.size() - 1}) {
    expect_restore_fails(mesh, bytes.substr(0, keep));
  }
}

TEST(CheckpointFailure, CorruptedBytesAreRejected) {
  net::Mesh mesh(2, 8);
  const std::string bytes = scenario_checkpoint(mesh);
  // Flip the magic, a header byte, and the digest trailer in turn.
  for (const std::size_t at : {std::size_t{0}, std::size_t{12},
                               bytes.size() - 1}) {
    std::string bad = bytes;
    bad[at] = static_cast<char>(bad[at] ^ 0x5a);
    expect_restore_fails(mesh, bad);
  }
}

TEST(CheckpointFailure, VersionSkewIsRejected) {
  net::Mesh mesh(2, 8);
  std::string bytes = scenario_checkpoint(mesh);
  bytes[4] = static_cast<char>(sim::kCheckpointVersion + 1);  // version word
  expect_restore_fails(mesh, bytes);
}

TEST(CheckpointFailure, TopologyMismatchIsRejected) {
  net::Mesh mesh(2, 8);
  const std::string bytes = scenario_checkpoint(mesh);
  net::Mesh torus(2, 8, /*wrap=*/true);
  expect_restore_fails(torus, bytes);
}

TEST(CheckpointFailure, SeedMismatchIsRejected) {
  net::Mesh mesh(2, 8);
  const std::string bytes = scenario_checkpoint(mesh);
  auto config = scenario_config(1);
  config.seed = 8;
  expect_restore_fails(mesh, bytes, config);
}

TEST(CheckpointFailure, PolicyMismatchIsRejected) {
  net::Mesh mesh(2, 8);
  const std::string bytes = scenario_checkpoint(mesh);
  auto problem = restored_problem();
  routing::PerverseGreedyPolicy policy;
  sim::Engine engine(mesh, problem, policy, scenario_config(1));
  std::istringstream source(bytes);
  EXPECT_THROW(sim::restore_checkpoint(engine, source), CheckError);
}

TEST(CheckpointFailure, ArchiveFlagMismatchIsRejected) {
  net::Mesh mesh(2, 8);
  const std::string bytes = scenario_checkpoint(mesh);
  auto config = scenario_config(1);
  config.archive_arrivals = false;
  expect_restore_fails(mesh, bytes, config);
}

TEST(CheckpointFailure, RestoreNeedsAFreshEngine) {
  net::Mesh mesh(2, 8);
  const std::string bytes = scenario_checkpoint(mesh);
  // An engine that already injected its problem is not fresh.
  auto problem = scenario(mesh);
  RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy, scenario_config(1));
  std::istringstream source(bytes);
  EXPECT_THROW(sim::restore_checkpoint(engine, source), CheckError);
}

TEST(CheckpointFailure, SpillArchiveCannotCheckpoint) {
  net::Mesh mesh(2, 8);
  auto problem = scenario(mesh);
  RestrictedPriorityPolicy policy;
  auto config = scenario_config(1);
  config.archive.mode = sim::ArchiveMode::kSpill;
  config.archive.spill_path = testing::TempDir() + "hp_ckpt_spill.bin";
  sim::Engine engine(mesh, problem, policy, config);
  engine.run_for(9);
  std::ostringstream sink;
  EXPECT_THROW(sim::save_checkpoint(engine, sink), CheckError);
  // The fingerprint stays defined even when checkpointing is not.
  EXPECT_NE(sim::state_fingerprint(engine), 0u);
}

}  // namespace
}  // namespace hp
