// Higher-dimensional mesh routing: the Section 5 setting (d ≥ 3), with
// the generalized potential audit, bound checks and hypercube audits.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/checkers.hpp"
#include "core/potential.hpp"
#include "routing/ddim_priority.hpp"
#include "routing/greedy_variants.hpp"
#include "routing/restricted_priority.hpp"
#include "test_support.hpp"
#include "topology/hypercube.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

class DdimSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(DdimSweep, BoundAndGreedinessHold) {
  const auto [d, n, k] = GetParam();
  net::Mesh mesh(d, n);
  if (k > mesh.num_arcs()) GTEST_SKIP() << "over origin capacity";
  Rng rng(static_cast<std::uint64_t>(d) * 100 + n + k);
  auto problem = workload::random_many_to_many(mesh, k, rng);
  routing::DdimPriorityPolicy policy;
  sim::EngineConfig config;
  config.max_steps = 500'000;
  auto run = test::run_checked(mesh, problem, policy, config);
  ASSERT_TRUE(run.result.completed) << mesh.name();
  EXPECT_TRUE(run.greedy_violations.empty());
  EXPECT_LE(static_cast<double>(run.result.steps),
            core::ddim_bound(d, n, static_cast<double>(k)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DdimSweep,
    ::testing::Values(std::tuple{3, 4, std::size_t{32}},
                      std::tuple{3, 4, std::size_t{128}},
                      std::tuple{3, 6, std::size_t{216}},
                      std::tuple{4, 3, std::size_t{81}},
                      std::tuple{4, 4, std::size_t{256}},
                      std::tuple{5, 3, std::size_t{100}}));

class DdimPotentialSweep : public ::testing::TestWithParam<int> {};

TEST_P(DdimPotentialSweep, NaivePotentialLiftIsAlmostButNotQuiteEnough) {
  // Empirical Property 8 status of the naive d-dim lift of the §4.2 rules
  // (the paper's own d-dim potential is different — M = 4^d·n^{d−1} — and
  // unpublished; see DESIGN.md). Measured finding, frozen here: for d ≥ 3
  // the lift *occasionally* violates Property 8 (a deflected packet with
  // 2…d−1 good directions is covered by advancers that carry no spare
  // potential), with small magnitude (slack ≥ −2·d) and low rate. This is
  // exactly the gap that forces Section 5's heavier construction. The C_p
  // chain invariant (C ≥ 2 in flight) and the Φ accounting stay intact.
  const int d = GetParam();
  const int n = d == 3 ? 5 : 3;
  net::Mesh mesh(d, n);
  std::size_t total_violations = 0;
  std::uint64_t total_node_steps = 0;
  std::int64_t min_slack = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 7919 + static_cast<std::uint64_t>(d));
    auto problem =
        workload::random_many_to_many(mesh, mesh.num_nodes(), rng);
    routing::DdimPriorityPolicy policy;
    sim::Engine engine(mesh, problem, policy);
    core::PotentialTracker::Config config;
    config.c_init = 2 * n;
    config.d = d;
    core::PotentialTracker potential(mesh, engine, config);
    engine.add_observer(&potential);
    const auto result = engine.run();
    ASSERT_TRUE(result.completed);
    total_violations += potential.property8_violations().size();
    total_node_steps += result.total_advances + result.total_deflections;
    min_slack = std::min(min_slack, potential.min_slack());
    EXPECT_GE(potential.min_c(), 2);  // the chain argument IS dimension-free
    EXPECT_EQ(potential.phi(), 0);
  }
  // Violations exist but are rare and shallow — the quantitative shape of
  // the gap (update EXPERIMENTS.md if this ever shifts).
  EXPECT_LT(static_cast<double>(total_violations),
            0.001 * static_cast<double>(total_node_steps))
      << "d=" << d;
  EXPECT_GE(min_slack, -2 * d) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Dims, DdimPotentialSweep,
                         ::testing::Values(3, 4, 5));

TEST(DdimRouting, RestrictedPriorityAlsoWorksInThreeD) {
  // The 2-D policy class is well-defined for any d (restricted = exactly
  // one good direction); it just lacks the §5 max-advancing guarantee.
  net::Mesh mesh(3, 5);
  Rng rng(31);
  auto problem = workload::random_many_to_many(mesh, 200, rng);
  routing::RestrictedPriorityPolicy policy;
  auto run = test::run_checked(mesh, problem, policy);
  ASSERT_TRUE(run.result.completed);
  EXPECT_TRUE(run.greedy_violations.empty());
  EXPECT_TRUE(run.preference_violations.empty());
}

TEST(DdimRouting, FiveDimensionalPaperExample) {
  // The packet from the Definition 5 example (0-based): at ⟨0,2,1,5,0⟩
  // going to ⟨3,2,7,1,0⟩ — three good directions; a lone packet routes in
  // exactly its distance 3 + 6 + 4 = 13.
  net::Mesh mesh(5, 9);
  net::Coord at;
  for (int x : {0, 2, 1, 5, 0}) at.push_back(x);
  net::Coord to;
  for (int x : {3, 2, 7, 1, 0}) to.push_back(x);
  auto problem =
      test::make_problem({{mesh.node_at(at), mesh.node_at(to)}});
  routing::DdimPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 13u);
}

TEST(HypercubeRouting, AuditCleanUnderIdPriority) {
  net::Hypercube cube(6);
  Rng rng(61);
  auto problem = workload::random_many_to_many(cube, 128, rng);
  routing::IdPriorityPolicy policy;
  auto run = test::run_checked(cube, problem, policy);
  ASSERT_TRUE(run.result.completed);
  EXPECT_TRUE(run.greedy_violations.empty());
  EXPECT_LE(static_cast<double>(run.result.steps),
            core::hajek_bound(128.0, 6));
}

TEST(HypercubeRouting, SingleTargetSaturatesInArcs) {
  net::Hypercube cube(6);  // in-degree 6
  Rng rng(62);
  auto problem = workload::single_target(cube, 120, 0, rng);
  routing::IdPriorityPolicy policy;
  sim::Engine engine(cube, problem, policy);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  EXPECT_GE(static_cast<double>(result.steps),
            core::single_target_lower_bound(120.0,
                                            problem.max_distance(cube), 6));
}

}  // namespace
}  // namespace hp
