// Bit-for-bit determinism regression for the flight-table engine.
//
// The golden table below was captured from the pre-refactor engine (the
// per-step-rescan implementation) on the same corpus: any drift in steps,
// total deflections, or the FNV-1a hash of per-packet arrival times means
// the refactor changed observable behaviour. The same corpus must also be
// invariant under EngineConfig::num_threads — sharded routing is required
// to be indistinguishable from serial routing.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/engine_metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/ddim_priority.hpp"
#include "routing/greedy_variants.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "sim/injection.hpp"
#include "sim/livelock.hpp"
#include "topology/mesh.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

std::unique_ptr<sim::RoutingPolicy> make_policy(int kind) {
  using RP = routing::RestrictedPriorityPolicy;
  switch (kind) {
    case 0:
      return std::make_unique<RP>();
    case 1: {
      RP::Params params;
      params.tie_break = RP::TieBreak::kTypeAFirst;
      return std::make_unique<RP>(params);
    }
    case 2: {
      RP::Params params;
      params.maximize_advancing = true;
      return std::make_unique<RP>(params);
    }
    case 3:
      return std::make_unique<routing::DdimPriorityPolicy>();
    case 4:
      return std::make_unique<routing::FurthestFirstPolicy>();
    default:
      return std::make_unique<routing::ClosestFirstPolicy>();
  }
}

workload::Problem make_workload(const net::Mesh& mesh, int kind) {
  switch (kind) {
    case 0: {
      Rng rng(101);
      return workload::random_permutation(mesh, rng);
    }
    case 1: {
      Rng rng(202);
      return workload::random_many_to_many(mesh, 300, rng);
    }
    default:
      return workload::transpose(mesh);
  }
}

/// FNV-1a over per-packet arrival times in id order: a full fingerprint of
/// the run's observable outcome.
std::uint64_t arrival_hash(const std::vector<sim::Packet>& packets) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const sim::Packet& p : packets) {
    h ^= p.arrived_at;
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct GoldenRow {
  int policy;
  int workload;
  std::uint64_t steps;
  std::uint64_t deflections;
  std::uint64_t hash;
};

// Captured from the pre-refactor engine: Mesh(2, 16), seed 42.
constexpr GoldenRow kGolden[] = {
    {0, 0, 27u, 31u, 0x6dc57b3dd5683dc3ULL},
    {0, 1, 26u, 90u, 0x8962c6cab27ffc4eULL},
    {0, 2, 30u, 0u, 0x910ceafb7bcc3185ULL},
    {1, 0, 27u, 29u, 0x68c247a0659a23fbULL},
    {1, 1, 26u, 90u, 0x52fdc9572631d386ULL},
    {1, 2, 30u, 0u, 0x910ceafb7bcc3185ULL},
    {2, 0, 27u, 29u, 0x6254d844e4e56a0bULL},
    {2, 1, 28u, 85u, 0x4c04136730e1affcULL},
    {2, 2, 30u, 0u, 0x910ceafb7bcc3185ULL},
    {3, 0, 27u, 29u, 0x6254d844e4e56a0bULL},
    {3, 1, 28u, 85u, 0x4c04136730e1affcULL},
    {3, 2, 30u, 0u, 0x910ceafb7bcc3185ULL},
    {4, 0, 27u, 33u, 0x72d202a2a423a813ULL},
    {4, 1, 26u, 131u, 0xfbb7fff39e52568cULL},
    {4, 2, 30u, 0u, 0x910ceafb7bcc3185ULL},
    {5, 0, 27u, 30u, 0x143bff478ba69a39ULL},
    {5, 1, 28u, 93u, 0x2730ed9276c09a50ULL},
    {5, 2, 30u, 0u, 0x910ceafb7bcc3185ULL},
};

sim::RunResult run_corpus(int policy_kind, int workload_kind,
                          int num_threads) {
  net::Mesh mesh(2, 16);
  auto problem = make_workload(mesh, workload_kind);
  auto policy = make_policy(policy_kind);
  sim::EngineConfig config;
  config.seed = 42;
  config.num_threads = num_threads;
  sim::Engine engine(mesh, problem, *policy, config);
  return engine.run();
}

class GoldenCorpus : public ::testing::TestWithParam<int> {};

TEST_P(GoldenCorpus, SerialMatchesPreRefactorEngine) {
  const GoldenRow& row = kGolden[static_cast<std::size_t>(GetParam())];
  const auto result = run_corpus(row.policy, row.workload, 1);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.steps, row.steps);
  EXPECT_EQ(result.total_deflections, row.deflections);
  EXPECT_EQ(arrival_hash(result.packets), row.hash);
}

TEST_P(GoldenCorpus, ThreadCountIsUnobservable) {
  const GoldenRow& row = kGolden[static_cast<std::size_t>(GetParam())];
  for (int threads : {2, 4, 8}) {
    const auto result = run_corpus(row.policy, row.workload, threads);
    ASSERT_TRUE(result.completed) << "threads=" << threads;
    EXPECT_EQ(result.steps, row.steps) << "threads=" << threads;
    EXPECT_EQ(result.total_deflections, row.deflections)
        << "threads=" << threads;
    EXPECT_EQ(arrival_hash(result.packets), row.hash)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRows, GoldenCorpus,
                         ::testing::Range(0, static_cast<int>(std::size(
                                                 kGolden))));

TEST(Determinism, RandomPolicyIsThreadCountInvariant) {
  // Randomized policies draw from per-(seed, step, node) streams, so the
  // trajectory is a function of the seed alone — not of the thread count.
  net::Mesh mesh(2, 16);
  Rng rng(303);
  auto problem = workload::random_many_to_many(mesh, 400, rng);
  std::vector<std::uint64_t> hashes;
  for (int threads : {1, 2, 4, 8}) {
    routing::GreedyRandomPolicy policy;
    sim::EngineConfig config;
    config.seed = 7;
    config.num_threads = threads;
    sim::Engine engine(mesh, problem, policy, config);
    const auto result = engine.run();
    ASSERT_TRUE(result.completed);
    hashes.push_back(arrival_hash(result.packets) ^
                     (result.steps * 0x9e3779b97f4a7c15ULL) ^
                     result.total_deflections);
  }
  for (std::size_t i = 1; i < hashes.size(); ++i) {
    EXPECT_EQ(hashes[i], hashes[0]);
  }
}

TEST(Determinism, InjectedRunsReproduceAcrossThreadCounts) {
  // Continuous injection: same seed ⇒ same admitted packets, same
  // trajectory, same mid-flight configuration — for every thread count.
  net::Mesh mesh(2, 8);
  workload::Problem empty;
  struct Outcome {
    std::uint64_t delivered;
    std::uint64_t deflections;
    sim::StateDigest digest;
  };
  std::vector<Outcome> outcomes;
  for (int threads : {1, 2, 4, 8}) {
    routing::RestrictedPriorityPolicy policy;
    sim::EngineConfig config;
    config.seed = 5;
    config.num_threads = threads;
    config.archive_arrivals = false;
    sim::Engine engine(mesh, empty, policy, config);
    sim::BernoulliInjector injector(0.3, 77);
    engine.set_injector(&injector);
    const auto result = engine.run_for(400);
    outcomes.push_back(Outcome{engine.delivered(), result.total_deflections,
                               sim::digest_state(engine.flight())});
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].delivered, outcomes[0].delivered);
    EXPECT_EQ(outcomes[i].deflections, outcomes[0].deflections);
    EXPECT_EQ(outcomes[i].digest, outcomes[0].digest);
  }
  EXPECT_GT(outcomes[0].delivered, 0u);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct ObsArtifacts {
  std::string metrics_json;
  std::string metrics_csv;
  std::string trace_json;
};

/// The issue's acceptance scenario: a saturated 32×32 mesh (4 packets per
/// node) with the full observability stack attached. Every artifact must
/// be a pure function of (workload, policy, seed) — not of the thread
/// count and not of the rerun.
ObsArtifacts run_observed(int num_threads) {
  net::Mesh mesh(2, 32);
  Rng rng(909);
  auto problem = workload::saturated_random(mesh, 4, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::EngineConfig config;
  config.seed = 11;
  config.num_threads = num_threads;
  sim::Engine engine(mesh, problem, policy, config);

  obs::MetricsRegistry registry;
  obs::EngineMetrics metrics(registry);
  obs::TraceRing ring(std::size_t{1} << 16);
  obs::TraceObserver tracer(ring);
  engine.add_observer(&metrics);
  engine.add_observer(&tracer);
  const auto result = engine.run();
  EXPECT_TRUE(result.completed);

  ObsArtifacts artifacts;
  std::ostringstream json, csv, trace;
  registry.write_json(json);
  registry.write_csv(csv);
  obs::write_chrome_trace(trace, ring);
  artifacts.metrics_json = json.str();
  artifacts.metrics_csv = csv.str();
  artifacts.trace_json = trace.str();
  return artifacts;
}

TEST(ObsDeterminism, SnapshotsAreThreadCountInvariant) {
  const ObsArtifacts serial = run_observed(1);
  for (int threads : {2, 4, 8}) {
    const ObsArtifacts sharded = run_observed(threads);
    EXPECT_EQ(sharded.metrics_json, serial.metrics_json)
        << "threads=" << threads;
    EXPECT_EQ(sharded.metrics_csv, serial.metrics_csv)
        << "threads=" << threads;
    EXPECT_EQ(sharded.trace_json, serial.trace_json)
        << "threads=" << threads;
  }
}

TEST(ObsDeterminism, SnapshotsReproduceAcrossReruns) {
  const ObsArtifacts first = run_observed(1);
  const ObsArtifacts second = run_observed(1);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.metrics_csv, second.metrics_csv);
  EXPECT_EQ(first.trace_json, second.trace_json);
}

TEST(ObsDeterminism, MetricsFingerprintIsGolden) {
  // Golden byte-level fingerprints of the full artifacts, re-captured at
  // the phase-pipeline engine rework (the 32×32 mesh runs with 4 occupancy
  // shards, whose owner-grouped node ordering permutes within-step event
  // order): any formatting or metric drift (renamed keys, number
  // formatting, event ordering) trips this even if the run itself is
  // unchanged. The values must hold for every num_threads — the
  // SnapshotsAreThreadCountInvariant test above pins that.
  const ObsArtifacts artifacts = run_observed(1);
  EXPECT_EQ(fnv1a(artifacts.metrics_json), 0x69cb7dc7a661713fULL);
  EXPECT_EQ(fnv1a(artifacts.trace_json), 0xef5e00be19eb958cULL);
}

}  // namespace
}  // namespace hp
