// Engine mechanics: the Section 2 model — synchronous steps, hot-potato
// discipline, one packet per directed arc, absorption, injection rules,
// observers, and state digests.
#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "sim/engine.hpp"
#include "sim/livelock.hpp"
#include "test_support.hpp"
#include "topology/mesh.hpp"
#include "util/check.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using test::FirstGoodPolicy;
using test::make_problem;
using test::xy;

TEST(Engine, SinglePacketWalksShortestPath) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(5, 3))}});
  FirstGoodPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  const sim::RunResult result = engine.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 8u);  // L1 distance, no one to conflict with
  EXPECT_EQ(result.total_deflections, 0u);
  EXPECT_EQ(result.packets[0].arrived_at, 8u);
}

TEST(Engine, PacketAtItsDestinationCostsZeroSteps) {
  net::Mesh mesh(2, 4);
  auto problem = make_problem({{5, 5}});
  FirstGoodPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  EXPECT_EQ(engine.in_flight(), 0u);
  const sim::RunResult result = engine.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_EQ(result.packets[0].arrived_at, 0u);
}

TEST(Engine, StepReturnsFalseWhenIdle) {
  net::Mesh mesh(2, 4);
  auto problem = make_problem({{0, 0}});
  FirstGoodPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  EXPECT_FALSE(engine.step());
}

TEST(Engine, TwoPacketsCrossOnAntiparallelArcs) {
  // a: (0,0)→(1,0), b: (1,0)→(0,0). They swap in one step — antiparallel
  // arcs are distinct links, so this is legal and collision-free.
  net::Mesh mesh(2, 4);
  auto problem = make_problem({{mesh.node_at(xy(0, 0)), mesh.node_at(xy(1, 0))},
                               {mesh.node_at(xy(1, 0)), mesh.node_at(xy(0, 0))}});
  FirstGoodPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  const auto result = engine.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 1u);
}

TEST(Engine, DeflectionHappensWhenArcsContended) {
  // Two packets at the same node want the same single good arc: one is
  // deflected (hot-potato: it must still move somewhere).
  net::Mesh mesh(2, 4);
  const auto src = mesh.node_at(xy(1, 1));
  const auto dst = mesh.node_at(xy(3, 1));  // east twice: east is the only
                                            // good direction for both
  auto problem = make_problem({{src, dst}, {src, dst}});
  FirstGoodPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  const auto result = engine.run();
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.total_deflections, 1u);
  EXPECT_GT(result.steps, 2u);  // loser pays a detour
}

TEST(Engine, HotPotatoNoPacketStaysPut) {
  net::Mesh mesh(2, 6);
  Rng rng(17);
  workload::Problem problem;
  problem.name = "random";
  for (int i = 0; i < 20; ++i) {
    problem.packets.push_back(
        {static_cast<net::NodeId>(rng.uniform(mesh.num_nodes())),
         static_cast<net::NodeId>(rng.uniform(mesh.num_nodes()))});
  }
  // Dedupe origins over capacity.
  problem = test::make_problem(std::move(problem.packets));
  std::vector<int> uses(mesh.num_nodes(), 0);
  std::erase_if(problem.packets, [&](const workload::PacketSpec& s) {
    return ++uses[static_cast<std::size_t>(s.src)] >
           mesh.degree(s.src);
  });

  FirstGoodPolicy policy;
  sim::Engine engine(mesh, problem, policy);

  class NoStay : public sim::StepObserver {
   public:
    void on_step(const sim::Engine& engine,
                 const sim::StepRecord& record) override {
      for (const sim::Assignment& a : record.assignments) {
        const sim::Packet& p = engine.packet(a.pkt);
        if (!p.arrived()) {
          EXPECT_NE(p.pos, a.node) << "packet failed to leave its node";
        }
      }
    }
  } no_stay;
  engine.add_observer(&no_stay);
  EXPECT_TRUE(engine.run().completed);
}

TEST(Engine, RejectsOverloadedOrigins) {
  net::Mesh mesh(2, 4);
  const auto corner = mesh.node_at(xy(0, 0));  // degree 2
  auto problem =
      make_problem({{corner, 5}, {corner, 6}, {corner, 7}});
  FirstGoodPolicy policy;
  EXPECT_THROW(sim::Engine(mesh, problem, policy), CheckError);
}

TEST(Engine, RejectsInvalidNodeIds) {
  net::Mesh mesh(2, 4);
  FirstGoodPolicy policy;
  EXPECT_THROW(
      sim::Engine(mesh, make_problem({{-1, 3}}), policy),
      CheckError);
  EXPECT_THROW(
      sim::Engine(mesh, make_problem({{0, 99}}), policy),
      CheckError);
}

TEST(Engine, CatchesPolicyArcCollision) {
  // A malicious policy that routes every packet through direction 0.
  class BadPolicy : public sim::RoutingPolicy {
   public:
    std::string name() const override { return "collider"; }
    void route(const sim::NodeContext& ctx,
               std::span<const sim::PacketView> /*packets*/,
               std::span<net::Dir> out) override {
      for (auto& d : out) d = ctx.avail_dirs.front();
    }
  };
  net::Mesh mesh(2, 4);
  const auto mid = mesh.node_at(xy(1, 1));
  auto problem = make_problem({{mid, 0}, {mid, 15}});
  BadPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  EXPECT_THROW(engine.run(), CheckError);
}

TEST(Engine, CatchesPolicyRoutingOffMesh) {
  class OffMeshPolicy : public sim::RoutingPolicy {
   public:
    std::string name() const override { return "off-mesh"; }
    void route(const sim::NodeContext& /*ctx*/,
               std::span<const sim::PacketView> /*packets*/,
               std::span<net::Dir> out) override {
      for (auto& d : out) d = net::Mesh::dir_of(0, -1);  // "−x" at x=0
    }
  };
  net::Mesh mesh(2, 4);
  auto problem = make_problem({{mesh.node_at(xy(0, 1)), 15}});
  OffMeshPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  EXPECT_THROW(engine.run(), CheckError);
}

TEST(Engine, MaxStepsCapsRun) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(7, 7))}});
  FirstGoodPolicy policy;
  sim::EngineConfig config;
  config.max_steps = 3;
  sim::Engine engine(mesh, problem, policy, config);
  const auto result = engine.run();
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.steps_executed, 3u);
}

TEST(Engine, ObserverSeesEveryStepGroupedByNode) {
  net::Mesh mesh(2, 6);
  auto problem = make_problem({{0, 20}, {7, 3}, {30, 2}});
  FirstGoodPolicy policy;
  sim::Engine engine(mesh, problem, policy);

  class GroupCheck : public sim::StepObserver {
   public:
    std::uint64_t steps = 0;
    void on_step(const sim::Engine& /*engine*/,
                 const sim::StepRecord& record) override {
      ++steps;
      // Node groups must be contiguous: once a node id changes it must
      // never reappear later in the record.
      std::set<net::NodeId> seen;
      net::NodeId current = net::kInvalidNode;
      for (const auto& a : record.assignments) {
        if (a.node != current) {
          EXPECT_TRUE(seen.insert(a.node).second)
              << "node group split across the record";
          current = a.node;
        }
      }
    }
  } check;
  engine.add_observer(&check);
  const auto result = engine.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(check.steps, result.steps_executed);
}

TEST(Engine, AssignmentFlagsAreConsistent) {
  net::Mesh mesh(2, 6);
  Rng rng(5);
  workload::Problem problem;
  for (int i = 0; i < 12; ++i) {
    problem.packets.push_back(
        {static_cast<net::NodeId>(i), static_cast<net::NodeId>(35 - i)});
  }
  FirstGoodPolicy policy;
  sim::Engine engine(mesh, problem, policy);

  class FlagCheck : public sim::StepObserver {
   public:
    explicit FlagCheck(const net::Mesh& m) : mesh_(m) {}
    void on_step(const sim::Engine& engine,
                 const sim::StepRecord& record) override {
      for (const auto& a : record.assignments) {
        const sim::Packet& p = engine.packet(a.pkt);
        // good_mask ↔ num_good agreement
        EXPECT_EQ(std::popcount(a.good_mask), a.num_good);
        // advances ↔ the chosen arc is in the mask
        EXPECT_EQ(((a.good_mask >> a.out) & 1u) != 0, a.advances);
        // post-move position is the neighbor along the chosen arc
        EXPECT_EQ(p.pos, mesh_.neighbor(a.node, a.out));
      }
    }
   private:
    const net::Mesh& mesh_;
  } check(mesh);
  engine.add_observer(&check);
  EXPECT_TRUE(engine.run().completed);
}

TEST(Engine, DeterministicPoliciesReproduce) {
  net::Mesh mesh(2, 8);
  Rng rng(99);
  auto problem = workload::random_many_to_many(mesh, 40, rng);
  FirstGoodPolicy p1, p2;
  sim::Engine e1(mesh, problem, p1), e2(mesh, problem, p2);
  const auto r1 = e1.run(), r2 = e2.run();
  EXPECT_EQ(r1.steps, r2.steps);
  EXPECT_EQ(r1.total_deflections, r2.total_deflections);
  for (std::size_t i = 0; i < r1.packets.size(); ++i) {
    EXPECT_EQ(r1.packets[i].arrived_at, r2.packets[i].arrived_at);
  }
}

TEST(StateDigest, DistinguishesConfigurations) {
  std::vector<sim::Packet> a(2), b(2);
  a[0].id = 0; a[0].pos = 3; a[1].id = 1; a[1].pos = 5;
  b = a;
  b[1].pos = 6;
  EXPECT_EQ(sim::digest_state(a), sim::digest_state(a));
  EXPECT_FALSE(sim::digest_state(a) == sim::digest_state(b));
}

TEST(StateDigest, IgnoresArrivedPackets) {
  std::vector<sim::Packet> a(2);
  a[0].id = 0; a[0].pos = 3;
  a[1].id = 1; a[1].pos = 5; a[1].arrived_at = 7;
  auto b = a;
  b[1].pos = 9;  // arrived packet's stale position must not matter
  EXPECT_EQ(sim::digest_state(a), sim::digest_state(b));
}

TEST(LivelockDetector, ReportsRepeats) {
  sim::LivelockDetector det;
  sim::StateDigest d1{1, 2}, d2{3, 4};
  EXPECT_EQ(det.record(d1, 10), sim::LivelockDetector::kNoRepeat);
  EXPECT_EQ(det.record(d2, 11), sim::LivelockDetector::kNoRepeat);
  EXPECT_EQ(det.record(d1, 12), 10u);
}

}  // namespace
}  // namespace hp
