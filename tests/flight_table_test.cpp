// FlightTable column widths and the ArrivalLog storage modes
// (docs/SCALE.md): wide/compact equivalence on the engine scenario
// corpus, overflow boundaries of the compact columns and the 32-bit id
// space, and spill/sample archives against the in-memory baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "routing/restricted_priority.hpp"
#include "sim/checkpoint.hpp"
#include "sim/engine.hpp"
#include "sim/flight_table.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "util/check.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using sim::Packet;
using sim::PacketId;

constexpr std::uint32_t kU32Max = std::numeric_limits<std::uint32_t>::max();

Packet flying(PacketId id, net::NodeId src, net::NodeId dst,
              net::NodeId pos) {
  Packet p;
  p.id = id;
  p.src = src;
  p.dst = dst;
  p.pos = pos;
  return p;
}

// --- wide / compact equivalence --------------------------------------------

TEST(ColumnWidth, InsertMoveRemoveAgreeAcrossWidths) {
  sim::FlightTable wide(sim::ColumnWidth::kWide);
  sim::FlightTable compact(sim::ColumnWidth::kCompact);
  for (auto* t : {&wide, &compact}) {
    for (PacketId id = 0; id < 8; ++id) {
      Packet p = flying(id, id, 40 + id, id);
      p.injected_at = static_cast<std::uint64_t>(id) * 3;
      p.deflections = static_cast<std::uint64_t>(id);
      t->insert(p);
    }
    t->move(3, 11, 2, /*advanced=*/false, 1);  // one deflection bump
    t->move(5, 12, 0, /*advanced=*/true, 2);
  }
  ASSERT_EQ(wide.size(), compact.size());
  for (sim::FlightTable::Slot s = 0; s < wide.end_slot(); ++s) {
    const Packet a = wide.materialize(s);
    const Packet b = compact.materialize(s);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.pos, b.pos);
    EXPECT_EQ(a.injected_at, b.injected_at);
    EXPECT_EQ(a.deflections, b.deflections);
    EXPECT_EQ(a.prev_advanced, b.prev_advanced);
  }
  const Packet ra = wide.remove(2, 9);
  const Packet rb = compact.remove(2, 9);
  EXPECT_EQ(ra.id, rb.id);
  EXPECT_EQ(ra.arrived_at, rb.arrived_at);
  EXPECT_EQ(wide.slot_of(ra.id), sim::FlightTable::kNoSlot);
  EXPECT_EQ(compact.slot_of(rb.id), sim::FlightTable::kNoSlot);
}

TEST(ColumnWidth, LeanEngineMatchesDefaultOnScenarioCorpus) {
  // The memory profile must never change results: same fingerprint, same
  // run statistics, on every topology × workload × policy combination of
  // the corpus (the seed scenarios the determinism suite pins).
  struct Scenario {
    const char* name;
    int kind;  // 0 = mesh, 1 = torus, 2 = hypercube
  };
  for (const auto& sc : {Scenario{"mesh", 0}, Scenario{"torus", 1},
                         Scenario{"hypercube", 2}}) {
    std::unique_ptr<net::Network> network;
    if (sc.kind == 2) {
      network = std::make_unique<net::Hypercube>(5);
    } else {
      network = std::make_unique<net::Mesh>(2, 8, sc.kind == 1);
    }
    for (const std::uint64_t seed : {1ULL, 7ULL}) {
      Rng rng_a(seed);
      Rng rng_b(seed);
      auto problem_a = workload::saturated_random(*network, 2, rng_a);
      auto problem_b = workload::saturated_random(*network, 2, rng_b);

      routing::RestrictedPriorityPolicy policy_a;
      routing::RestrictedPriorityPolicy policy_b;
      sim::EngineConfig wide_config;
      wide_config.seed = seed;
      sim::EngineConfig lean_config = wide_config;
      lean_config.memory = sim::MemoryProfile::kLean;

      sim::Engine wide(*network, problem_a, policy_a, wide_config);
      sim::Engine lean(*network, problem_b, policy_b, lean_config);
      EXPECT_EQ(wide.flight().column_width(), sim::ColumnWidth::kWide);
      EXPECT_EQ(lean.flight().column_width(), sim::ColumnWidth::kCompact);

      const auto ra = wide.run();
      const auto rb = lean.run();
      EXPECT_EQ(ra.completed, rb.completed) << sc.name;
      EXPECT_EQ(ra.steps, rb.steps) << sc.name;
      EXPECT_EQ(ra.total_deflections, rb.total_deflections) << sc.name;
      EXPECT_EQ(sim::state_fingerprint(wide), sim::state_fingerprint(lean))
          << sc.name << " seed " << seed;
    }
  }
}

TEST(ColumnWidth, LeanProfileShrinksTheFootprint) {
  net::Mesh mesh(2, 32);
  Rng rng_a(3);
  Rng rng_b(3);
  auto problem_a = workload::saturated_random(mesh, 4, rng_a);
  auto problem_b = workload::saturated_random(mesh, 4, rng_b);
  routing::RestrictedPriorityPolicy pa;
  routing::RestrictedPriorityPolicy pb;
  sim::EngineConfig dc;
  dc.archive_arrivals = false;
  sim::EngineConfig lc = dc;
  lc.memory = sim::MemoryProfile::kLean;
  sim::Engine wide(mesh, problem_a, pa, dc);
  sim::Engine lean(mesh, problem_b, pb, lc);
  const auto ws = wide.memory_stats();
  const auto ls = lean.memory_stats();
  EXPECT_EQ(ls.topology_bytes, 0u);
  EXPECT_GT(ws.topology_bytes, 0u);
  EXPECT_LT(ls.flight_bytes, ws.flight_bytes);
  EXPECT_LT(ls.total(), ws.total());
}

// --- overflow boundaries ----------------------------------------------------

TEST(ColumnWidth, CompactInjectedAtOverflowIsCheckedNotTruncated) {
  sim::FlightTable compact(sim::ColumnWidth::kCompact);
  Packet p = flying(0, 1, 2, 1);
  p.injected_at = std::uint64_t{kU32Max} + 1;
  EXPECT_THROW(compact.insert(p), CheckError);

  sim::FlightTable wide(sim::ColumnWidth::kWide);
  EXPECT_NO_THROW(wide.insert(p));
  EXPECT_EQ(wide.injected_at(0), std::uint64_t{kU32Max} + 1);
}

TEST(ColumnWidth, CompactDeflectionCounterSaturatesWithAnError) {
  sim::FlightTable compact(sim::ColumnWidth::kCompact);
  Packet p = flying(0, 1, 2, 1);
  p.deflections = kU32Max;  // representable, but the next bump is not
  compact.insert(p);
  EXPECT_THROW(compact.move(0, 3, 1, /*advanced=*/false, 1), CheckError);
  // Advancing moves do not touch the counter and stay fine.
  EXPECT_NO_THROW(compact.move(0, 3, 1, /*advanced=*/true, 1));
}

TEST(FlightTableIds, NodeIdAtInt32MaxRoundTrips) {
  constexpr net::NodeId big = std::numeric_limits<net::NodeId>::max();
  sim::FlightTable table;
  table.insert(flying(0, big, big - 1, big));
  EXPECT_EQ(table.pos(0), big);
  EXPECT_EQ(table.src(0), big);
  const Packet out = table.remove(0, 1);
  EXPECT_EQ(out.pos, big);
}

TEST(FlightTableIds, IdsCrossTheInt32SignBoundary) {
  // Ids are dense uint32 sequence numbers stored in an int32: past 2^31−1
  // they wrap negative, and the locator window must keep resolving them.
  const std::uint64_t base = (std::uint64_t{1} << 31) - 2;
  sim::FlightTable table;
  table.reset_window(base, 0);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto id =
        static_cast<PacketId>(static_cast<std::uint32_t>(base + i));
    table.insert(flying(id, 1, 2, 1));
  }
  EXPECT_EQ(table.size(), 4u);
  const auto wrapped =
      static_cast<PacketId>(static_cast<std::uint32_t>(base + 2));
  EXPECT_LT(wrapped, 0);  // genuinely negative int32
  const auto slot = table.slot_of(wrapped);
  ASSERT_NE(slot, sim::FlightTable::kNoSlot);
  EXPECT_EQ(table.id(slot), wrapped);
  const Packet out = table.remove(slot, 5);
  EXPECT_EQ(out.id, wrapped);
  EXPECT_EQ(table.slot_of(wrapped), sim::FlightTable::kNoSlot);
}

TEST(FlightTableIds, FullUint32WrapIsRejected) {
  // The id space ends at 2^32 − 1: the id after that would alias id 0, so
  // insert refuses it rather than corrupting the locator.
  const std::uint64_t last = kU32Max;
  sim::FlightTable table;
  table.reset_window(last, 0);
  table.insert(flying(static_cast<PacketId>(static_cast<std::uint32_t>(last)),
                      1, 2, 1));
  EXPECT_THROW(table.insert(flying(0, 1, 2, 1)), CheckError);
}

TEST(FlightTableIds, ResetWindowDemandsAFreshTable) {
  sim::FlightTable table;
  table.insert(flying(0, 1, 2, 1));
  EXPECT_THROW(table.reset_window(100, 0), CheckError);
  sim::FlightTable fresh;
  EXPECT_THROW(fresh.reset_window(kU32Max, 2), CheckError);  // past 2^32
}

// --- serialization ----------------------------------------------------------

TEST(FlightTableSerialize, RoundTripsAcrossColumnWidths) {
  sim::FlightTable wide(sim::ColumnWidth::kWide);
  for (PacketId id = 0; id < 6; ++id) {
    Packet p = flying(id, id, 30 + id, 2 * id);
    p.injected_at = static_cast<std::uint64_t>(id);
    p.deflections = static_cast<std::uint64_t>(3 * id);
    wide.insert(p);
  }
  wide.remove(1, 7);  // leave a hole so the locator window is non-trivial

  std::ostringstream sink;
  util::BinWriter w(sink);
  wide.serialize(w);

  for (const auto width :
       {sim::ColumnWidth::kWide, sim::ColumnWidth::kCompact}) {
    std::istringstream source(sink.str());
    util::BinReader r(source, "checkpoint");
    sim::FlightTable restored(width);
    restored.deserialize(r);
    ASSERT_EQ(restored.size(), wide.size());
    for (sim::FlightTable::Slot s = 0; s < wide.end_slot(); ++s) {
      const Packet a = wide.materialize(s);
      const Packet b = restored.materialize(s);
      EXPECT_EQ(a.id, b.id);
      EXPECT_EQ(a.pos, b.pos);
      EXPECT_EQ(a.injected_at, b.injected_at);
      EXPECT_EQ(a.deflections, b.deflections);
    }
    // The restored window accepts exactly the next dense id.
    EXPECT_NO_THROW(restored.insert(flying(6, 0, 1, 0)));
  }
}

TEST(FlightTableSerialize, TruncatedStreamFailsClearly) {
  sim::FlightTable table;
  table.insert(flying(0, 1, 2, 1));
  std::ostringstream sink;
  util::BinWriter w(sink);
  table.serialize(w);
  const std::string bytes = sink.str();
  std::istringstream source(bytes.substr(0, bytes.size() / 2));
  util::BinReader r(source, "checkpoint");
  sim::FlightTable restored;
  EXPECT_THROW(restored.deserialize(r), CheckError);
}

// --- ArrivalLog modes -------------------------------------------------------

std::vector<Packet> arrivals(int n) {
  std::vector<Packet> out;
  for (PacketId id = 0; id < n; ++id) {
    Packet p = flying(id, id, id + 1, id + 1);
    p.arrived_at = static_cast<std::uint64_t>(id) + 3;
    p.deflections = static_cast<std::uint64_t>(id % 5);
    out.push_back(p);
  }
  return out;
}

TEST(ArrivalLogSpill, SpillAndMemoryAgreeOnDrainAndFind) {
  const auto packets = arrivals(100);

  sim::ArrivalLog memory;
  sim::ArrivalLog spill;
  sim::ArchiveConfig config;
  config.mode = sim::ArchiveMode::kSpill;
  config.spill_path = testing::TempDir() + "hp_spill_test.bin";
  config.spill_buffer_records = 7;  // odd, so flushes straddle drains
  spill.configure(config);

  for (const Packet& p : packets) {
    memory.append(p);
    spill.append(p);
  }
  EXPECT_EQ(spill.count(), memory.count());
  EXPECT_EQ(spill.dropped(), 0u);

  const auto a = memory.drain();
  const auto b = spill.drain();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrived_at, b[i].arrived_at);
    EXPECT_EQ(a[i].deflections, b[i].deflections);
  }

  for (const PacketId id : {PacketId{0}, PacketId{42}, PacketId{99}}) {
    const Packet* ma = memory.find(id);
    const Packet* mb = spill.find(id);
    ASSERT_NE(ma, nullptr);
    ASSERT_NE(mb, nullptr);
    EXPECT_EQ(ma->arrived_at, mb->arrived_at);
  }
  EXPECT_EQ(spill.find(1000), nullptr);
}

TEST(ArrivalLogSpill, EngineRunWithSpillMatchesMemoryArchive) {
  net::Mesh mesh(2, 8);
  Rng rng_a(5);
  Rng rng_b(5);
  auto pa = workload::random_permutation(mesh, rng_a);
  auto pb = workload::random_permutation(mesh, rng_b);
  routing::RestrictedPriorityPolicy pol_a;
  routing::RestrictedPriorityPolicy pol_b;

  sim::EngineConfig mem_config;
  sim::EngineConfig spill_config;
  spill_config.archive.mode = sim::ArchiveMode::kSpill;
  spill_config.archive.spill_path =
      testing::TempDir() + "hp_spill_engine_test.bin";
  spill_config.archive.spill_buffer_records = 13;

  sim::Engine with_memory(mesh, pa, pol_a, mem_config);
  sim::Engine with_spill(mesh, pb, pol_b, spill_config);
  const auto ra = with_memory.run();
  const auto rb = with_spill.run();
  EXPECT_EQ(ra.steps, rb.steps);
  EXPECT_TRUE(rb.packets.empty()) << "spill mode must not snapshot";

  const auto archived_a = with_memory.arrival_log().drain();
  const auto archived_b = with_spill.arrival_log().drain();
  ASSERT_EQ(archived_a.size(), archived_b.size());
  for (std::size_t i = 0; i < archived_a.size(); ++i) {
    EXPECT_EQ(archived_a[i].id, archived_b[i].id);
    EXPECT_EQ(archived_a[i].arrived_at, archived_b[i].arrived_at);
  }
}

TEST(ArrivalLogSample, ReservoirIsExactAboutWhatItDropped) {
  const auto packets = arrivals(100);
  sim::ArrivalLog log;
  sim::ArchiveConfig config;
  config.mode = sim::ArchiveMode::kSample;
  config.sample_capacity = 16;
  config.sample_seed = 9;
  log.configure(config);
  for (const Packet& p : packets) log.append(p);

  EXPECT_EQ(log.count(), 100u);
  EXPECT_EQ(log.dropped(), 84u);  // exact: count − retained
  const auto kept = log.drain();
  ASSERT_EQ(kept.size(), 16u);
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_LT(kept[i - 1].id, kept[i].id);  // id order, no duplicates
  }
}

TEST(ArrivalLogSample, SamplingIsDeterministicInTheSeed) {
  const auto packets = arrivals(200);
  auto run = [&](std::uint64_t seed) {
    sim::ArrivalLog log;
    sim::ArchiveConfig config;
    config.mode = sim::ArchiveMode::kSample;
    config.sample_capacity = 8;
    config.sample_seed = seed;
    log.configure(config);
    for (const Packet& p : packets) log.append(p);
    return log.drain();
  };
  const auto a = run(4);
  const auto b = run(4);
  const auto c = run(5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  bool any_difference = a.size() != c.size();
  for (std::size_t i = 0; !any_difference && i < a.size(); ++i) {
    any_difference = a[i].id != c[i].id;
  }
  EXPECT_TRUE(any_difference) << "different seeds should sample differently";
}

TEST(ArrivalLog, CountOnlyModeDropsEverythingButCountsExactly) {
  sim::ArrivalLog log;
  log.set_keep_records(false);
  for (const Packet& p : arrivals(10)) log.append(p);
  EXPECT_EQ(log.count(), 10u);
  EXPECT_EQ(log.dropped(), 10u);
  EXPECT_TRUE(log.drain().empty());
}

TEST(ArrivalLog, ConfigureAfterAppendIsRejected) {
  sim::ArrivalLog log;
  log.append(arrivals(1)[0]);
  sim::ArchiveConfig config;
  config.mode = sim::ArchiveMode::kSample;
  EXPECT_THROW(log.configure(config), CheckError);
}

TEST(ArrivalLog, SpillNeedsAPath) {
  sim::ArrivalLog log;
  sim::ArchiveConfig config;
  config.mode = sim::ArchiveMode::kSpill;
  EXPECT_THROW(log.configure(config), CheckError);
}

}  // namespace
}  // namespace hp
