// Fuzz and exhaustive-enumeration suites.
//
// * ArbitraryPolicy — a random-but-VALID hot-potato policy (any injective
//   packet→arc assignment is legal in the model). The engine must uphold
//   its invariants under every such policy; the Definition 6 checker must
//   classify it correctly; and evacuation is NOT guaranteed, so runs are
//   capped rather than asserted complete.
// * Exhaustive small-mesh checks: every single-packet instance routes in
//   exactly its distance; every two-packet shared-origin instance on the
//   3×3 mesh satisfies Theorem 20 and the Property 8 audit.
// * Observability writers — random-string JSON escaping, trace-ring
//   wraparound against a deque reference model, histogram edge bins.
#include <gtest/gtest.h>

#include <deque>
#include <sstream>
#include <string>

#include "core/bounds.hpp"
#include "core/checkers.hpp"
#include "core/potential.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using test::make_problem;

/// Assigns every packet a uniformly random free arc — valid hot-potato,
/// wildly non-greedy.
class ArbitraryPolicy : public sim::RoutingPolicy {
 public:
  std::string name() const override { return "arbitrary"; }
  void route(const sim::NodeContext& ctx,
             std::span<const sim::PacketView> packets,
             std::span<net::Dir> out) override {
    net::DirList free = ctx.avail_dirs;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const std::size_t pick = ctx.rng.uniform(free.size());
      out[i] = free[pick];
      free.erase_at(pick);
    }
  }
};

/// Counts conservation: packets in = packets arrived + packets in flight.
class ConservationCheck : public sim::StepObserver {
 public:
  void on_step(const sim::Engine& engine,
               const sim::StepRecord& /*record*/) override {
    std::size_t arrived = 0, flying = 0;
    for (const sim::Packet& p : engine.snapshot_packets()) {
      if (p.arrived()) {
        ++arrived;
      } else {
        ++flying;
      }
    }
    EXPECT_EQ(arrived + flying, engine.num_packets());
    EXPECT_EQ(flying, engine.in_flight());
    EXPECT_EQ(arrived, engine.delivered());
  }
};

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, ArbitraryPolicyNeverBreaksTheModel) {
  const std::uint64_t seed = GetParam();
  net::Mesh mesh(2, 6);
  Rng rng(seed);
  const std::size_t k = 1 + rng.uniform(80);
  auto problem = workload::random_many_to_many(mesh, k, rng);
  ArbitraryPolicy policy;
  sim::EngineConfig config;
  config.seed = seed;
  config.max_steps = 3000;  // no termination guarantee for arbitrary routing
  sim::Engine engine(mesh, problem, policy, config);
  ConservationCheck conservation;
  engine.add_observer(&conservation);
  // Must not throw: the engine accepts any valid assignment and keeps all
  // of its invariants.
  const auto result = engine.run();
  EXPECT_EQ(result.num_packets, k);
  EXPECT_EQ(result.total_advances + result.total_deflections,
            static_cast<std::uint64_t>(result.steps_executed) == 0
                ? 0
                : result.total_advances + result.total_deflections);
}

TEST_P(FuzzSweep, GreedyCheckerFlagsArbitraryRouting) {
  // With enough packets the arbitrary policy will eventually deflect a
  // packet whose good arc stayed free — Definition 6 violation.
  const std::uint64_t seed = GetParam();
  net::Mesh mesh(2, 6);
  Rng rng(seed * 31 + 1);
  auto problem = workload::saturated_random(mesh, 2, rng);
  ArbitraryPolicy policy;
  sim::EngineConfig config;
  config.seed = seed;
  config.max_steps = 500;
  sim::Engine engine(mesh, problem, policy, config);
  core::GreedyChecker checker;
  engine.add_observer(&checker);
  engine.run();
  EXPECT_FALSE(checker.violations().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{21}));

TEST(Exhaustive, EverySinglePacketInstanceRoutesInExactlyItsDistance) {
  net::Mesh mesh(2, 4);
  routing::RestrictedPriorityPolicy policy;
  for (net::NodeId s = 0; s < static_cast<net::NodeId>(mesh.num_nodes());
       ++s) {
    for (net::NodeId t = 0; t < static_cast<net::NodeId>(mesh.num_nodes());
         ++t) {
      sim::Engine engine(mesh, make_problem({{s, t}}), policy);
      const auto result = engine.run();
      ASSERT_TRUE(result.completed);
      EXPECT_EQ(result.steps, static_cast<std::uint64_t>(mesh.distance(s, t)))
          << s << "→" << t;
      EXPECT_EQ(result.total_deflections, 0u);
    }
  }
}

TEST(Exhaustive, AllTwoPacketSharedOriginInstancesAuditClean) {
  // Every (origin, dst1, dst2) with an interior origin on the 3×3 mesh:
  // 9 × 9 = 81 destination pairs from the center — full enumeration of the
  // smallest contention scenarios, all must satisfy Theorem 20 and pass
  // the Property 8 audit.
  net::Mesh mesh(2, 3);
  const net::NodeId center = 4;  // (1,1): the only degree-4 node
  for (net::NodeId d1 = 0; d1 < 9; ++d1) {
    for (net::NodeId d2 = 0; d2 < 9; ++d2) {
      routing::RestrictedPriorityPolicy policy;
      sim::Engine engine(mesh, make_problem({{center, d1}, {center, d2}}),
                         policy);
      core::PotentialTracker::Config config;
      config.c_init = 2 * mesh.side();
      config.d = 2;
      core::PotentialTracker potential(mesh, engine, config);
      engine.add_observer(&potential);
      const auto result = engine.run();
      ASSERT_TRUE(result.completed) << "d1=" << d1 << " d2=" << d2;
      EXPECT_LE(static_cast<double>(result.steps),
                core::thm20_bound(3, 2.0));
      EXPECT_TRUE(potential.property8_violations().empty())
          << "d1=" << d1 << " d2=" << d2;
      EXPECT_TRUE(potential.structure_violations().empty())
          << "d1=" << d1 << " d2=" << d2;
    }
  }
}

/// Inverse of obs::json_escape for the escapes it emits; the fuzz test
/// checks escape→unescape is the identity on arbitrary byte strings.
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s.at(i)) {
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 'b':
        out.push_back('\b');
        break;
      case 'f':
        out.push_back('\f');
        break;
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case 'u': {
        const int code = std::stoi(s.substr(i + 1, 4), nullptr, 16);
        out.push_back(static_cast<char>(code));
        i += 4;
        break;
      }
      default:
        ADD_FAILURE() << "unknown escape \\" << s[i];
    }
  }
  return out;
}

TEST_P(FuzzSweep, JsonEscapeRoundTripsArbitraryBytes) {
  Rng rng(GetParam() * 97 + 5);
  for (int iter = 0; iter < 50; ++iter) {
    std::string input;
    const std::size_t len = rng.uniform(64);
    for (std::size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.uniform(256)));
    }
    const std::string escaped = obs::json_escape(input);
    // The escaped form is safe to embed in a JSON string literal: no raw
    // control bytes, and every quote sits behind a backslash.
    bool backslash = false;
    for (char c : escaped) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
      if (!backslash) {
        EXPECT_NE(c, '"');
      }
      backslash = !backslash && c == '\\';
    }
    EXPECT_EQ(json_unescape(escaped), input);
  }
}

TEST_P(FuzzSweep, TraceRingMatchesDequeModel) {
  Rng rng(GetParam() * 131 + 7);
  const std::size_t capacity = 1 + rng.uniform(16);
  obs::TraceRing ring(capacity);
  std::deque<std::uint64_t> model;  // retained timestamps, oldest first
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
  for (int op = 0; op < 400; ++op) {
    if (rng.uniform(50) == 0) {
      ring.clear();
      model.clear();
      dropped = 0;
      continue;
    }
    obs::TraceEvent e;
    e.ts = pushed++;
    ring.push(e);
    model.push_back(e.ts);
    if (model.size() > capacity) {
      model.pop_front();
      ++dropped;
    }
    ASSERT_EQ(ring.size(), model.size());
    ASSERT_EQ(ring.dropped(), dropped);
  }
  for (std::size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ(ring.at(i).ts, model[i]);
  }
}

TEST(ObsFuzz, DistributionEdgeBinsClampOutOfRangeSamples) {
  obs::MetricsRegistry registry;
  obs::Distribution& d = registry.distribution("edge", 0.0, 10.0, 5);
  d.add(-1e18);  // far below lo: first bin
  d.add(0.0);    // exactly lo: first bin
  d.add(9.999);  // inside: last bin
  d.add(10.0);   // exactly hi: clamps to last bin
  d.add(1e18);   // far above hi: last bin
  EXPECT_EQ(d.histogram().bin_count(0), 2u);
  EXPECT_EQ(d.histogram().bin_count(4), 3u);
  EXPECT_EQ(d.stat().count(), 5u);
  EXPECT_DOUBLE_EQ(d.stat().min(), -1e18);
  EXPECT_DOUBLE_EQ(d.stat().max(), 1e18);
  // The snapshot serializes the extremes exactly (shortest round-trip).
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_NE(out.str().find("1e+18"), std::string::npos);
}

TEST(Exhaustive, AllCornerPairInstancesOnTinyMesh) {
  // Both packets start at a degree-2 corner — the boundary case of the
  // Lemma 19 analysis (nodes near the edge of the mesh are explicitly
  // covered by Property 8's "every node" quantifier).
  net::Mesh mesh(2, 3);
  const net::NodeId corner = 0;
  for (net::NodeId d1 = 0; d1 < 9; ++d1) {
    for (net::NodeId d2 = 0; d2 < 9; ++d2) {
      routing::RestrictedPriorityPolicy policy;
      sim::Engine engine(mesh, make_problem({{corner, d1}, {corner, d2}}),
                         policy);
      core::PotentialTracker::Config config;
      config.c_init = 2 * mesh.side();
      config.d = 2;
      core::PotentialTracker potential(mesh, engine, config);
      engine.add_observer(&potential);
      const auto result = engine.run();
      ASSERT_TRUE(result.completed) << "d1=" << d1 << " d2=" << d2;
      EXPECT_TRUE(potential.property8_violations().empty())
          << "d1=" << d1 << " d2=" << d2;
    }
  }
}

}  // namespace
}  // namespace hp
