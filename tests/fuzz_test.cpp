// Fuzz and exhaustive-enumeration suites.
//
// * ArbitraryPolicy — a random-but-VALID hot-potato policy (any injective
//   packet→arc assignment is legal in the model). The engine must uphold
//   its invariants under every such policy; the Definition 6 checker must
//   classify it correctly; and evacuation is NOT guaranteed, so runs are
//   capped rather than asserted complete.
// * Exhaustive small-mesh checks: every single-packet instance routes in
//   exactly its distance; every two-packet shared-origin instance on the
//   3×3 mesh satisfies Theorem 20 and the Property 8 audit.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/checkers.hpp"
#include "core/potential.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using test::make_problem;

/// Assigns every packet a uniformly random free arc — valid hot-potato,
/// wildly non-greedy.
class ArbitraryPolicy : public sim::RoutingPolicy {
 public:
  std::string name() const override { return "arbitrary"; }
  void route(const sim::NodeContext& ctx,
             std::span<const sim::PacketView> packets,
             std::span<net::Dir> out) override {
    net::DirList free = ctx.avail_dirs;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const std::size_t pick = ctx.rng.uniform(free.size());
      out[i] = free[pick];
      free.erase_at(pick);
    }
  }
};

/// Counts conservation: packets in = packets arrived + packets in flight.
class ConservationCheck : public sim::StepObserver {
 public:
  void on_step(const sim::Engine& engine,
               const sim::StepRecord& /*record*/) override {
    std::size_t arrived = 0, flying = 0;
    for (const sim::Packet& p : engine.snapshot_packets()) {
      if (p.arrived()) {
        ++arrived;
      } else {
        ++flying;
      }
    }
    EXPECT_EQ(arrived + flying, engine.num_packets());
    EXPECT_EQ(flying, engine.in_flight());
    EXPECT_EQ(arrived, engine.delivered());
  }
};

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, ArbitraryPolicyNeverBreaksTheModel) {
  const std::uint64_t seed = GetParam();
  net::Mesh mesh(2, 6);
  Rng rng(seed);
  const std::size_t k = 1 + rng.uniform(80);
  auto problem = workload::random_many_to_many(mesh, k, rng);
  ArbitraryPolicy policy;
  sim::EngineConfig config;
  config.seed = seed;
  config.max_steps = 3000;  // no termination guarantee for arbitrary routing
  sim::Engine engine(mesh, problem, policy, config);
  ConservationCheck conservation;
  engine.add_observer(&conservation);
  // Must not throw: the engine accepts any valid assignment and keeps all
  // of its invariants.
  const auto result = engine.run();
  EXPECT_EQ(result.num_packets, k);
  EXPECT_EQ(result.total_advances + result.total_deflections,
            static_cast<std::uint64_t>(result.steps_executed) == 0
                ? 0
                : result.total_advances + result.total_deflections);
}

TEST_P(FuzzSweep, GreedyCheckerFlagsArbitraryRouting) {
  // With enough packets the arbitrary policy will eventually deflect a
  // packet whose good arc stayed free — Definition 6 violation.
  const std::uint64_t seed = GetParam();
  net::Mesh mesh(2, 6);
  Rng rng(seed * 31 + 1);
  auto problem = workload::saturated_random(mesh, 2, rng);
  ArbitraryPolicy policy;
  sim::EngineConfig config;
  config.seed = seed;
  config.max_steps = 500;
  sim::Engine engine(mesh, problem, policy, config);
  core::GreedyChecker checker;
  engine.add_observer(&checker);
  engine.run();
  EXPECT_FALSE(checker.violations().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{21}));

TEST(Exhaustive, EverySinglePacketInstanceRoutesInExactlyItsDistance) {
  net::Mesh mesh(2, 4);
  routing::RestrictedPriorityPolicy policy;
  for (net::NodeId s = 0; s < static_cast<net::NodeId>(mesh.num_nodes());
       ++s) {
    for (net::NodeId t = 0; t < static_cast<net::NodeId>(mesh.num_nodes());
         ++t) {
      sim::Engine engine(mesh, make_problem({{s, t}}), policy);
      const auto result = engine.run();
      ASSERT_TRUE(result.completed);
      EXPECT_EQ(result.steps, static_cast<std::uint64_t>(mesh.distance(s, t)))
          << s << "→" << t;
      EXPECT_EQ(result.total_deflections, 0u);
    }
  }
}

TEST(Exhaustive, AllTwoPacketSharedOriginInstancesAuditClean) {
  // Every (origin, dst1, dst2) with an interior origin on the 3×3 mesh:
  // 9 × 9 = 81 destination pairs from the center — full enumeration of the
  // smallest contention scenarios, all must satisfy Theorem 20 and pass
  // the Property 8 audit.
  net::Mesh mesh(2, 3);
  const net::NodeId center = 4;  // (1,1): the only degree-4 node
  for (net::NodeId d1 = 0; d1 < 9; ++d1) {
    for (net::NodeId d2 = 0; d2 < 9; ++d2) {
      routing::RestrictedPriorityPolicy policy;
      sim::Engine engine(mesh, make_problem({{center, d1}, {center, d2}}),
                         policy);
      core::PotentialTracker::Config config;
      config.c_init = 2 * mesh.side();
      config.d = 2;
      core::PotentialTracker potential(mesh, engine, config);
      engine.add_observer(&potential);
      const auto result = engine.run();
      ASSERT_TRUE(result.completed) << "d1=" << d1 << " d2=" << d2;
      EXPECT_LE(static_cast<double>(result.steps),
                core::thm20_bound(3, 2.0));
      EXPECT_TRUE(potential.property8_violations().empty())
          << "d1=" << d1 << " d2=" << d2;
      EXPECT_TRUE(potential.structure_violations().empty())
          << "d1=" << d1 << " d2=" << d2;
    }
  }
}

TEST(Exhaustive, AllCornerPairInstancesOnTinyMesh) {
  // Both packets start at a degree-2 corner — the boundary case of the
  // Lemma 19 analysis (nodes near the edge of the mesh are explicitly
  // covered by Property 8's "every node" quantifier).
  net::Mesh mesh(2, 3);
  const net::NodeId corner = 0;
  for (net::NodeId d1 = 0; d1 < 9; ++d1) {
    for (net::NodeId d2 = 0; d2 < 9; ++d2) {
      routing::RestrictedPriorityPolicy policy;
      sim::Engine engine(mesh, make_problem({{corner, d1}, {corner, d2}}),
                         policy);
      core::PotentialTracker::Config config;
      config.c_init = 2 * mesh.side();
      config.d = 2;
      core::PotentialTracker potential(mesh, engine, config);
      engine.add_observer(&potential);
      const auto result = engine.run();
      ASSERT_TRUE(result.completed) << "d1=" << d1 << " d2=" << d2;
      EXPECT_TRUE(potential.property8_violations().empty())
          << "d1=" << d1 << " d2=" << d2;
    }
  }
}

}  // namespace
}  // namespace hp
