// Brute-force equivalence for PR 5's batched good-direction fast path:
// `good_mask` / `good_masks` must agree bit-for-bit with the per-packet
// `good_dirs` probe over randomized (position, destination) pairs on
// meshes, tori, and hypercubes — including the at == dst empty case.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/network.hpp"
#include "topology/types.hpp"
#include "util/rng.hpp"

namespace hp::net {
namespace {

std::uint32_t mask_from_dirs(const DirList& dirs) {
  std::uint32_t mask = 0;
  for (const Dir d : dirs) {
    mask |= 1u << static_cast<unsigned>(d);
  }
  return mask;
}

// Draws `count` random pairs (plus a few forced at == dst pairs) and checks
// every good-direction view of the topology against the good_dirs() probe:
// the scalar mask, the batched masks, the popcount, the canonical
// mask-to-list order, and the per-direction predicate.
void expect_equivalence(const Network& net, std::uint64_t seed,
                        std::size_t count) {
  Rng rng(seed);
  const auto n = static_cast<std::uint64_t>(net.num_nodes());
  std::vector<NodeId> at(count);
  std::vector<NodeId> dst(count);
  for (std::size_t i = 0; i < count; ++i) {
    at[i] = static_cast<NodeId>(rng.uniform(n));
    dst[i] = (i % 16 == 0) ? at[i] : static_cast<NodeId>(rng.uniform(n));
  }

  std::vector<std::uint32_t> batch(count);
  net.good_masks(at.data(), dst.data(), batch.data(), count);

  for (std::size_t i = 0; i < count; ++i) {
    const DirList dirs = net.good_dirs(at[i], dst[i]);
    const std::uint32_t ref = mask_from_dirs(dirs);
    ASSERT_EQ(net.good_mask(at[i], dst[i]), ref)
        << net.name() << " at=" << at[i] << " dst=" << dst[i];
    ASSERT_EQ(batch[i], ref)
        << net.name() << " at=" << at[i] << " dst=" << dst[i];
    ASSERT_EQ(net.num_good_dirs(at[i], dst[i]),
              static_cast<int>(dirs.size()));
    ASSERT_EQ(dirlist_from_mask(ref), dirs)
        << net.name() << ": good_dirs must come out in mask bit order";
    for (Dir d = 0; d < static_cast<Dir>(net.num_dirs()); ++d) {
      ASSERT_EQ(net.is_good_dir(at[i], dst[i], d), (ref >> d & 1u) != 0);
    }
    if (at[i] == dst[i]) {
      ASSERT_EQ(ref, 0u) << "arrived packets have no good direction";
    }
  }
}

TEST(GoodMaskEquivalence, Mesh2D) {
  expect_equivalence(Mesh(2, 7), 0xA11CE1u, 512);
}

TEST(GoodMaskEquivalence, Mesh3D) {
  expect_equivalence(Mesh(3, 5), 0xB0B0Bu, 512);
}

TEST(GoodMaskEquivalence, Mesh4DSmallSide) {
  expect_equivalence(Mesh(4, 3), 0xC4C4u, 512);
}

TEST(GoodMaskEquivalence, Torus2D) {
  expect_equivalence(Mesh(2, 6, /*wrap=*/true), 0xD00Du, 512);
}

TEST(GoodMaskEquivalence, Torus3DOddSide) {
  // Odd side: no antipodal tie on any axis; even side (above) has them.
  expect_equivalence(Mesh(3, 5, /*wrap=*/true), 0xE55Eu, 512);
}

TEST(GoodMaskEquivalence, Hypercube) {
  expect_equivalence(Hypercube(6), 0xF00Fu, 512);
}

TEST(GoodMaskEquivalence, HypercubeMaxDim) {
  expect_equivalence(Hypercube(10), 0xFACEu, 512);
}

TEST(GoodMaskEquivalence, ExhaustiveTinyMesh) {
  // Every (at, dst) pair of a 3x3 mesh and torus, no sampling at all.
  for (const bool wrap : {false, true}) {
    const Mesh m(2, 3, wrap);
    const auto n = static_cast<NodeId>(m.num_nodes());
    std::vector<NodeId> at;
    std::vector<NodeId> dst;
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        at.push_back(a);
        dst.push_back(b);
      }
    }
    std::vector<std::uint32_t> batch(at.size());
    m.good_masks(at.data(), dst.data(), batch.data(), at.size());
    for (std::size_t i = 0; i < at.size(); ++i) {
      const std::uint32_t ref = mask_from_dirs(m.good_dirs(at[i], dst[i]));
      ASSERT_EQ(m.good_mask(at[i], dst[i]), ref);
      ASSERT_EQ(batch[i], ref);
    }
  }
}

}  // namespace
}  // namespace hp::net
