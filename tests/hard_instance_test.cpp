// Hard-instance search tests.
#include <gtest/gtest.h>

#include "core/hard_instance.hpp"
#include "routing/greedy_variants.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace hp::core {
namespace {

PolicyFactory restricted_factory() {
  return [] {
    return std::make_unique<routing::RestrictedPriorityPolicy>();
  };
}

TEST(HardSearch, FindsAtLeastAsSlowAsBaseline) {
  net::Mesh mesh(2, 5);
  HardSearchConfig config;
  config.evaluations = 60;
  config.restarts = 2;
  config.seed = 11;
  const auto result = search_hard_permutation(mesh, restricted_factory(),
                                              config);
  EXPECT_EQ(result.evaluations, 60u);
  EXPECT_GE(result.worst_steps, result.baseline_steps);
  EXPECT_EQ(result.trajectory.size(), 60u);
  // Trajectory is the best-so-far curve: nondecreasing.
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i], result.trajectory[i - 1]);
  }
}

TEST(HardSearch, WorstInstanceIsAPermutation) {
  net::Mesh mesh(2, 4);
  HardSearchConfig config;
  config.evaluations = 30;
  config.restarts = 1;
  const auto result = search_hard_permutation(mesh, restricted_factory(),
                                              config);
  ASSERT_EQ(result.worst.size(), mesh.num_nodes());
  std::vector<int> dst_count(mesh.num_nodes(), 0);
  for (const auto& s : result.worst.packets) {
    ++dst_count[static_cast<std::size_t>(s.dst)];
  }
  for (int c : dst_count) EXPECT_EQ(c, 1);
}

TEST(HardSearch, WorstInstanceReproduces) {
  net::Mesh mesh(2, 4);
  HardSearchConfig config;
  config.evaluations = 30;
  config.restarts = 1;
  config.seed = 5;
  const auto result = search_hard_permutation(mesh, restricted_factory(),
                                              config);
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, result.worst, policy);
  const auto rerun = engine.run();
  ASSERT_TRUE(rerun.completed);
  EXPECT_EQ(rerun.steps, result.worst_steps);
}

TEST(HardSearch, RejectsRandomizedPolicies) {
  net::Mesh mesh(2, 4);
  HardSearchConfig config;
  config.evaluations = 4;
  config.restarts = 1;
  EXPECT_THROW(
      search_hard_permutation(
          mesh, [] { return std::make_unique<routing::GreedyRandomPolicy>(); },
          config),
      CheckError);
}

TEST(HardSearch, RejectsBadBudget) {
  net::Mesh mesh(2, 4);
  HardSearchConfig config;
  config.evaluations = 2;
  config.restarts = 5;
  EXPECT_THROW(search_hard_permutation(mesh, restricted_factory(), config),
               CheckError);
}

}  // namespace
}  // namespace hp::core
