#!/usr/bin/env python3
"""CLI tests for hpsim's observability flags.

Covers what the C++ suites cannot: flag parsing, the output-file round
trip (the emitted metrics/trace files parse as JSON and carry the schema
the docs promise), rejection of conflicting flags, and byte-identical
artifacts across --threads values.

Usage: hpsim_cli_test.py /path/to/hpsim
"""

import json
import pathlib
import subprocess
import sys
import tempfile

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"  {status}: {name}" + (f" — {detail}" if detail and not ok else ""))
    if not ok:
        FAILURES.append(name)


def run(hpsim, *args, cwd=None):
    return subprocess.run(
        [hpsim, *args], cwd=cwd, capture_output=True, text=True, timeout=300
    )


def batch_args(*extra):
    return [
        "--topology", "mesh", "--n", "8", "--workload", "saturated",
        "--policy", "restricted", "--seed", "3", *extra,
    ]


def test_metrics_and_trace_roundtrip(hpsim, tmp):
    metrics = tmp / "run.metrics.json"
    trace = tmp / "run.trace.json"
    proc = run(hpsim, *batch_args("--metrics", str(metrics),
                                  "--trace", str(trace), "--profile"))
    check("batch run exits 0", proc.returncode == 0, proc.stderr)
    check("profile report on stderr", "engine phase profile" in proc.stderr)

    doc = json.loads(metrics.read_text())
    check("metrics schema", doc.get("schema") == "hp-metrics-v1")
    check("metrics counters present",
          {"engine.steps", "packets.delivered"} <= set(doc.get("counters", {})))
    check("metrics distributions present",
          "packet.latency" in doc.get("distributions", {}))
    lat = doc["distributions"]["packet.latency"]
    check("latency bins populated", sum(lat["bins"]) == lat["count"])

    tdoc = json.loads(trace.read_text())
    check("trace has events", len(tdoc.get("traceEvents", [])) > 0)
    phases = {e.get("ph") for e in tdoc["traceEvents"]}
    check("trace has spans and counters", {"X", "C"} <= phases)


def test_metrics_csv_roundtrip(hpsim, tmp):
    csv_path = tmp / "run.metrics.csv"
    proc = run(hpsim, *batch_args("--metrics", str(csv_path)))
    check("csv run exits 0", proc.returncode == 0, proc.stderr)
    lines = csv_path.read_text().splitlines()
    check("csv header",
          lines and lines[0] == "kind,name,value,count,mean,min,max,sum")
    check("csv has rows", len(lines) > 1)


def test_thread_count_invariance(hpsim, tmp):
    artifacts = []
    for threads in ("1", "4"):
        metrics = tmp / f"t{threads}.metrics.json"
        trace = tmp / f"t{threads}.trace.json"
        proc = run(hpsim, *batch_args("--threads", threads,
                                      "--metrics", str(metrics),
                                      "--trace", str(trace)))
        check(f"threads={threads} run exits 0", proc.returncode == 0,
              proc.stderr)
        artifacts.append((metrics.read_bytes(), trace.read_bytes()))
    check("metrics bytes identical across threads",
          artifacts[0][0] == artifacts[1][0])
    check("trace bytes identical across threads",
          artifacts[0][1] == artifacts[1][1])


def test_conflicting_flags(hpsim, tmp):
    for flag in (["--metrics", str(tmp / "x.json")],
                 ["--trace", str(tmp / "x.trace")],
                 ["--profile"]):
        proc = run(hpsim, "--inject", "0.01", "--inject-steps", "50", *flag)
        check(f"--inject rejects {flag[0]}", proc.returncode == 2,
              f"exit={proc.returncode}")
        check(f"{flag[0]} conflict names the flags",
              "--inject" in proc.stderr)


def test_missing_values(hpsim):
    for flag in ("--metrics", "--trace"):
        proc = run(hpsim, flag)
        check(f"{flag} without value exits 2", proc.returncode == 2,
              f"exit={proc.returncode}")


def probe_args(*extra):
    return [
        "--topology", "mesh", "--n", "6", "--workload", "uniform",
        "--policy", "restricted", "--seed", "3", *extra,
    ]


def test_probe_mode(hpsim):
    proc = run(hpsim, "--probe", *probe_args())
    check("probe run exits 0", proc.returncode == 0, proc.stderr)
    check("probe prints trajectory header",
          "window" in proc.stdout and "stable" in proc.stdout)
    check("probe prints saturation", "saturation rate" in proc.stdout)
    check("probe converged", "converged       : yes" in proc.stdout)

    pareto = run(hpsim, "--probe", *probe_args("--pareto"))
    check("probe --pareto exits 0", pareto.returncode == 0, pareto.stderr)
    check("probe --pareto labels the traffic",
          "pareto flows" in pareto.stdout)
    check("pareto changes the trajectory", pareto.stdout != proc.stdout)


def test_sweep_cell_mode(hpsim):
    proc = run(hpsim, "--sweep-cell", *probe_args())
    check("sweep-cell run exits 0", proc.returncode == 0, proc.stderr)
    check("sweep-cell prints the load curve",
          "load" in proc.stdout and "peak_in_flight" in proc.stdout)
    curve_rows = [
        line for line in proc.stdout.splitlines()
        if line.strip().startswith("0.") or line.strip().startswith("1.0")
    ]
    check("sweep-cell curve has 10 load points", len(curve_rows) == 10,
          f"got {len(curve_rows)}")


def test_probe_determinism_across_threads(hpsim):
    outputs = []
    for threads in ("1", "4"):
        proc = run(hpsim, "--probe", *probe_args("--threads", threads))
        check(f"probe --threads {threads} exits 0", proc.returncode == 0,
              proc.stderr)
        outputs.append(proc.stdout)
    check("probe output identical across threads",
          outputs[0] == outputs[1])


def test_probe_conflicts(hpsim, tmp):
    # Same convention as --inject vs the batch-only observability flags:
    # incompatible modes exit 2 and the message names the flags.
    for mode in ("--probe", "--sweep-cell"):
        for flag in (["--metrics", str(tmp / "x.json")],
                     ["--trace", str(tmp / "x.trace")],
                     ["--profile"], ["--csv"], ["--audit"],
                     ["--inject", "0.1"]):
            proc = run(hpsim, mode, *probe_args(), *flag)
            check(f"{mode} rejects {flag[0]}", proc.returncode == 2,
                  f"exit={proc.returncode}")
            check(f"{mode} {flag[0]} conflict names the mode",
                  mode in proc.stderr)
    both = run(hpsim, "--probe", "--sweep-cell", *probe_args())
    check("--probe --sweep-cell exits 2", both.returncode == 2,
          f"exit={both.returncode}")
    lone = run(hpsim, "--pareto", *probe_args())
    check("--pareto alone exits 2", lone.returncode == 2,
          f"exit={lone.returncode}")
    batch_pattern = run(hpsim, "--probe", *batch_args())
    check("--probe rejects batch workload names",
          batch_pattern.returncode == 2, f"exit={batch_pattern.returncode}")


def summary_tail(stdout):
    """The summary lines a restored run must reproduce exactly."""
    return [
        line for line in stdout.splitlines()
        if line.startswith(("steps", "deflections", "state fingerprint"))
    ]


def test_checkpoint_roundtrip(hpsim, tmp):
    ckpt = tmp / "run.ckpt"
    full = run(hpsim, *batch_args("--fingerprint"))
    check("fingerprint run exits 0", full.returncode == 0, full.stderr)
    check("fingerprint line printed",
          any(line.startswith("state fingerprint : 0x")
              for line in full.stdout.splitlines()))

    mid = run(hpsim, *batch_args("--checkpoint", str(ckpt),
                                 "--checkpoint-at", "5", "--fingerprint"))
    check("checkpointed run exits 0", mid.returncode == 0, mid.stderr)
    check("checkpoint file written", ckpt.is_file() and ckpt.stat().st_size > 0)
    check("mid-run checkpoint leaves the run unchanged",
          summary_tail(mid.stdout) == summary_tail(full.stdout))

    restored = run(hpsim, "--topology", "mesh", "--n", "8",
                   "--policy", "restricted", "--seed", "3",
                   "--restore", str(ckpt), "--fingerprint")
    check("restored run exits 0", restored.returncode == 0, restored.stderr)
    check("restored run matches the uninterrupted one",
          summary_tail(restored.stdout) == summary_tail(full.stdout))

    lean = run(hpsim, "--topology", "mesh", "--n", "8",
               "--policy", "restricted", "--seed", "3",
               "--restore", str(ckpt), "--fingerprint", "--scale")
    check("--scale restore exits 0", lean.returncode == 0, lean.stderr)
    check("--scale restore is bit-identical",
          summary_tail(lean.stdout) == summary_tail(full.stdout))


def test_scale_profile_invariance(hpsim):
    default = run(hpsim, *batch_args("--fingerprint"))
    lean = run(hpsim, *batch_args("--fingerprint", "--scale"))
    check("--scale batch run exits 0", lean.returncode == 0, lean.stderr)
    check("--scale run is bit-identical to the default profile",
          summary_tail(lean.stdout) == summary_tail(default.stdout))


def test_checkpoint_conflicts(hpsim, tmp):
    ckpt = tmp / "x.ckpt"
    for mode in ("--probe", "--sweep-cell"):
        for flag in (["--checkpoint", str(ckpt)], ["--restore", str(ckpt)],
                     ["--fingerprint"], ["--scale"]):
            proc = run(hpsim, mode, *probe_args(), *flag)
            check(f"{mode} rejects {flag[0]}", proc.returncode == 2,
                  f"exit={proc.returncode}")
            check(f"{mode} {flag[0]} conflict names the mode",
                  mode in proc.stderr)
    inject = run(hpsim, "--inject", "0.01", "--inject-steps", "50",
                 "--checkpoint", str(ckpt))
    check("--inject rejects --checkpoint", inject.returncode == 2,
          f"exit={inject.returncode}")
    orphan = run(hpsim, *batch_args("--checkpoint-at", "5"))
    check("--checkpoint-at without --checkpoint exits 2",
          orphan.returncode == 2, f"exit={orphan.returncode}")
    mixed = run(hpsim, *batch_args("--restore", str(ckpt),
                                   "--load", str(tmp / "y.json")))
    check("--restore rejects --load", mixed.returncode == 2,
          f"exit={mixed.returncode}")


def test_restore_mismatch_rejected(hpsim, tmp):
    ckpt = tmp / "mismatch.ckpt"
    written = run(hpsim, *batch_args("--checkpoint", str(ckpt),
                                     "--checkpoint-at", "5"))
    check("checkpoint for mismatch test exits 0", written.returncode == 0,
          written.stderr)
    wrong = run(hpsim, "--topology", "torus", "--n", "8",
                "--policy", "restricted", "--seed", "3",
                "--restore", str(ckpt))
    check("restore into a different topology exits 2",
          wrong.returncode == 2, f"exit={wrong.returncode}")
    check("topology mismatch error names both networks",
          "mesh" in wrong.stderr and "torus" in wrong.stderr)
    truncated = tmp / "truncated.ckpt"
    truncated.write_bytes(ckpt.read_bytes()[:20])
    cut = run(hpsim, "--topology", "mesh", "--n", "8",
              "--policy", "restricted", "--seed", "3",
              "--restore", str(truncated))
    check("truncated checkpoint exits 2", cut.returncode == 2,
          f"exit={cut.returncode}")
    check("truncation error is clear", "truncat" in cut.stderr)


def main():
    if len(sys.argv) != 2:
        print("usage: hpsim_cli_test.py /path/to/hpsim", file=sys.stderr)
        return 2
    hpsim = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = pathlib.Path(tmpdir)
        test_metrics_and_trace_roundtrip(hpsim, tmp)
        test_metrics_csv_roundtrip(hpsim, tmp)
        test_thread_count_invariance(hpsim, tmp)
        test_conflicting_flags(hpsim, tmp)
        test_missing_values(hpsim)
        test_probe_mode(hpsim)
        test_sweep_cell_mode(hpsim)
        test_probe_determinism_across_threads(hpsim)
        test_probe_conflicts(hpsim, tmp)
        test_checkpoint_roundtrip(hpsim, tmp)
        test_scale_profile_invariance(hpsim)
        test_checkpoint_conflicts(hpsim, tmp)
        test_restore_mismatch_rejected(hpsim, tmp)
    if FAILURES:
        print(f"{len(FAILURES)} failure(s): {', '.join(FAILURES)}")
        return 1
    print("all hpsim CLI checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
