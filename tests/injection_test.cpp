// Continuous-injection tests: the capacity rule, latency accounting,
// steady-state measurement, and model invariants under ongoing arrivals.
#include <gtest/gtest.h>

#include "core/checkers.hpp"
#include "routing/greedy_variants.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "sim/injection.hpp"
#include "stats/steady_state.hpp"
#include "test_support.hpp"

namespace hp {
namespace {

using test::make_problem;
using test::xy;

/// Injector that emits a scripted list of (step, src, dst) packets.
class ScriptedInjector : public sim::Injector {
 public:
  struct Item {
    std::uint64_t step;
    net::NodeId src, dst;
  };
  explicit ScriptedInjector(std::vector<Item> items)
      : items_(std::move(items)) {}

  void inject(sim::Engine& engine, std::uint64_t step) override {
    for (const auto& item : items_) {
      if (item.step != step) continue;
      results_.push_back(engine.try_inject(item.src, item.dst));
    }
  }

  const std::vector<bool>& results() const { return results_; }

 private:
  std::vector<Item> items_;
  std::vector<bool> results_;
};

TEST(Injection, MidRunPacketIsRoutedAndTimed) {
  net::Mesh mesh(2, 8);
  workload::Problem empty;
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  ScriptedInjector injector(
      {{3, mesh.node_at(xy(0, 0)), mesh.node_at(xy(4, 0))}});
  engine.set_injector(&injector);
  engine.run_for(20);
  ASSERT_EQ(injector.results().size(), 1u);
  EXPECT_TRUE(injector.results()[0]);
  const sim::Packet p =
      engine.packet(static_cast<sim::PacketId>(engine.num_packets() - 1));
  EXPECT_EQ(p.injected_at, 3u);
  EXPECT_EQ(p.arrived_at, 7u);  // distance 4, no contention
  EXPECT_EQ(engine.delivered(), 1u);
}

TEST(Injection, CapacityRuleBlocksSaturatedNode) {
  net::Mesh mesh(2, 8);
  workload::Problem empty;
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  const auto corner = mesh.node_at(xy(0, 0));  // degree 2
  ScriptedInjector injector({{0, corner, 10},
                             {0, corner, 11},
                             {0, corner, 12}});  // third must be refused
  engine.set_injector(&injector);
  engine.step();
  ASSERT_EQ(injector.results().size(), 3u);
  EXPECT_TRUE(injector.results()[0]);
  EXPECT_TRUE(injector.results()[1]);
  EXPECT_FALSE(injector.results()[2]);
  EXPECT_EQ(engine.in_flight(), 2u);
}

TEST(Injection, CountsResidentPacketsTowardCapacity) {
  // A node already holding packets from the batch can only absorb the
  // remaining slots.
  net::Mesh mesh(2, 8);
  const auto mid = mesh.node_at(xy(3, 3));  // degree 4
  auto problem = make_problem({{mid, 0}, {mid, 1}, {mid, 2}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  ScriptedInjector injector({{0, mid, 10}, {0, mid, 11}});
  engine.set_injector(&injector);
  engine.step();
  ASSERT_EQ(injector.results().size(), 2u);
  EXPECT_TRUE(injector.results()[0]);   // 4th packet fits
  EXPECT_FALSE(injector.results()[1]);  // 5th does not
}

TEST(Injection, TrivialInjectionDeliversInstantly) {
  net::Mesh mesh(2, 8);
  workload::Problem empty;
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  ScriptedInjector injector({{0, 5, 5}});
  engine.set_injector(&injector);
  engine.step();
  EXPECT_EQ(engine.delivered(), 1u);
  EXPECT_EQ(engine.in_flight(), 0u);
}

TEST(Injection, TryInjectOutsideStepThrows) {
  net::Mesh mesh(2, 8);
  workload::Problem empty;
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  EXPECT_THROW(engine.try_inject(0, 5), CheckError);
}

TEST(Injection, RunRequiresNoInjector) {
  net::Mesh mesh(2, 8);
  workload::Problem empty;
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  sim::BernoulliInjector injector(0.1, 1);
  engine.set_injector(&injector);
  EXPECT_THROW(engine.run(), CheckError);
}

TEST(Injection, ModelInvariantsHoldUnderContinuousLoad) {
  net::Mesh mesh(2, 8);
  workload::Problem empty;
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  sim::BernoulliInjector injector(0.3, 99);
  engine.set_injector(&injector);
  core::GreedyChecker greedy;
  core::RestrictedPreferenceChecker preference;
  engine.add_observer(&greedy);
  engine.add_observer(&preference);
  engine.run_for(300);
  EXPECT_TRUE(greedy.violations().empty());
  EXPECT_TRUE(preference.violations().empty());
  EXPECT_GT(engine.delivered(), 0u);
  EXPECT_GT(injector.admitted(), 0u);
  EXPECT_LE(injector.admitted(), injector.offered());
}

TEST(Bernoulli, ZeroRateInjectsNothing) {
  net::Mesh mesh(2, 8);
  workload::Problem empty;
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  sim::BernoulliInjector injector(0.0, 7);
  engine.set_injector(&injector);
  engine.run_for(50);
  EXPECT_EQ(injector.offered(), 0u);
  EXPECT_EQ(engine.num_packets(), 0u);
}

TEST(Bernoulli, OfferedCountMatchesRateApproximately) {
  net::Mesh mesh(2, 8);  // 64 nodes
  workload::Problem empty;
  routing::GreedyRandomPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  sim::BernoulliInjector injector(0.25, 13);
  engine.set_injector(&injector);
  engine.run_for(400);
  const double expected = 0.25 * 64 * 400;
  EXPECT_GT(static_cast<double>(injector.offered()), expected * 0.9);
  EXPECT_LT(static_cast<double>(injector.offered()), expected * 1.1);
}

TEST(SteadyState, LowLoadLatencyNearDistance) {
  // At light load almost nothing is deflected: mean latency ≈ the mean
  // shortest-path distance (≈ 2n/3 per axis·2 ≈ 2·side/3 on a mesh).
  net::Mesh mesh(2, 8);
  routing::RestrictedPriorityPolicy policy;
  const auto report =
      stats::measure_steady_state(mesh, policy, 0.02, 200, 800, 3);
  EXPECT_GT(report.delivered_measured, 50u);
  EXPECT_DOUBLE_EQ(report.admit_fraction, 1.0);
  EXPECT_LT(report.deflections_per_delivered, 0.2);
  EXPECT_GT(report.mean_latency, 2.0);
  EXPECT_LT(report.mean_latency, 10.0);
}

TEST(SteadyState, ThroughputMatchesAdmittedLoadBelowSaturation) {
  net::Mesh mesh(2, 8);
  routing::RestrictedPriorityPolicy policy;
  const auto report =
      stats::measure_steady_state(mesh, policy, 0.05, 300, 1500, 5);
  // Flow conservation: per-node throughput ≈ admitted per-node rate.
  EXPECT_NEAR(report.throughput, 0.05 * report.admit_fraction, 0.015);
}

TEST(SteadyState, LittlesLawHoldsBelowSaturation) {
  // L = λ·W: mean packets in flight ≈ (deliveries per step) × mean
  // latency. A fundamental consistency check tying the three measurements
  // together; holds in steady state regardless of the routing policy.
  net::Mesh mesh(2, 8);
  routing::RestrictedPriorityPolicy policy;
  const auto report =
      stats::measure_steady_state(mesh, policy, 0.08, 400, 2000, 21);
  const double lambda =
      report.throughput * static_cast<double>(mesh.num_nodes());
  const double little = lambda * report.mean_latency;
  EXPECT_NEAR(report.mean_in_flight, little, 0.15 * little);
}

TEST(Injection, ArrivalAndInjectionSameStepSameNode) {
  // A packet arriving at node v in step t frees its slot only after the
  // movement phase; an injection at v during step t sees the pre-move
  // occupancy. The injected packet must coexist with the arrival.
  net::Mesh mesh(2, 8);
  const auto src = mesh.node_at(xy(1, 0));
  const auto v = mesh.node_at(xy(0, 0));  // corner, degree 2
  auto problem = make_problem({{src, v}});  // arrives at v after step 0
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  ScriptedInjector injector({{0, v, 20}, {0, v, 21}});
  engine.set_injector(&injector);
  engine.step();
  ASSERT_EQ(injector.results().size(), 2u);
  // Step 0: v is empty pre-move, so both injections fit its degree.
  EXPECT_TRUE(injector.results()[0]);
  EXPECT_TRUE(injector.results()[1]);
  EXPECT_EQ(engine.delivered(), 1u);  // the batch packet arrived at v
  EXPECT_EQ(engine.in_flight(), 2u);
  const sim::Packet arrived = engine.packet(0);
  EXPECT_EQ(arrived.arrived_at, 1u);
}

TEST(Injection, CapacityIsReCheckedWithinOneStep) {
  // Repeated try_inject calls in the same step must see each other: the
  // occupancy a later call checks includes packets admitted moments
  // earlier, even at a node untouched by the batch problem.
  net::Mesh mesh(2, 8);
  const auto corner = mesh.node_at(xy(7, 7));  // degree 2
  workload::Problem empty;
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  ScriptedInjector injector({{0, corner, 1},
                             {0, corner, 2},
                             {0, corner, 3},
                             {1, corner, 4}});
  engine.set_injector(&injector);
  engine.step();
  ASSERT_EQ(injector.results().size(), 3u);
  EXPECT_TRUE(injector.results()[0]);
  EXPECT_TRUE(injector.results()[1]);
  EXPECT_FALSE(injector.results()[2]);  // degree 2 exhausted mid-step
  // Next step both residents move out, so the node has room again.
  engine.step();
  ASSERT_EQ(injector.results().size(), 4u);
  EXPECT_TRUE(injector.results()[3]);
}

TEST(Injection, FixedSeedInjectorRunsAreIdentical) {
  // Two engines fed by same-seed Bernoulli injectors take the same
  // trajectory: admissions depend only on (seed, occupancy), and the
  // engine is deterministic given its own seed.
  net::Mesh mesh(2, 8);
  workload::Problem empty;
  auto run_once = [&] {
    routing::RestrictedPriorityPolicy policy;
    sim::EngineConfig config;
    config.seed = 11;
    sim::Engine engine(mesh, empty, policy, config);
    sim::BernoulliInjector injector(0.25, 31);
    engine.set_injector(&injector);
    engine.run_for(250);
    struct Out {
      std::uint64_t delivered, admitted;
      sim::StateDigest digest;
    };
    return Out{engine.delivered(), injector.admitted(),
               sim::digest_state(engine.flight())};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_GT(a.delivered, 0u);
}

TEST(SteadyState, HighLoadBlocksAndDeflects) {
  net::Mesh mesh(2, 8);
  routing::RestrictedPriorityPolicy policy;
  const auto low =
      stats::measure_steady_state(mesh, policy, 0.05, 200, 600, 7);
  const auto high =
      stats::measure_steady_state(mesh, policy, 0.9, 200, 600, 7);
  EXPECT_LT(high.admit_fraction, 1.0);
  EXPECT_GT(high.mean_latency, low.mean_latency);
  EXPECT_GT(high.deflections_per_delivered, low.deflections_per_delivered);
  EXPECT_GT(high.mean_in_flight, low.mean_in_flight);
}

}  // namespace
}  // namespace hp
