// Integration sweeps: topology × workload × policy pipelines with all
// paper checkers attached — the system-level reproduction of Sections 2–4.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/bounds.hpp"
#include "core/checkers.hpp"
#include "core/potential.hpp"
#include "core/surface.hpp"
#include "routing/ddim_priority.hpp"
#include "routing/greedy_variants.hpp"
#include "routing/restricted_priority.hpp"
#include "routing/store_forward.hpp"
#include "stats/recorder.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

workload::Problem build_workload(const std::string& kind,
                                 const net::Mesh& mesh, Rng& rng) {
  if (kind == "random-k") return workload::random_many_to_many(mesh, 64, rng);
  if (kind == "permutation") return workload::random_permutation(mesh, rng);
  if (kind == "transpose") return workload::transpose(mesh);
  if (kind == "bit-reversal") return workload::bit_reversal(mesh);
  if (kind == "inversion") return workload::inversion(mesh);
  if (kind == "corner") return workload::corner_to_corner(mesh, rng);
  if (kind == "hotspot") return workload::hotspot(mesh, 48, 2, rng);
  if (kind == "single-target") {
    return workload::single_target(mesh, 48, 0, rng);
  }
  if (kind == "saturated") return workload::saturated_random(mesh, 4, rng);
  ADD_FAILURE() << "unknown workload " << kind;
  return {};
}

class FullAudit : public ::testing::TestWithParam<std::string> {};

TEST_P(FullAudit, RestrictedPriorityPassesEveryPaperCheck) {
  net::Mesh mesh(2, 8);
  Rng rng(271828);
  auto problem = build_workload(GetParam(), mesh, rng);

  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);

  core::PotentialTracker::Config potential_config;
  potential_config.c_init = 2 * mesh.side();
  potential_config.d = 2;
  core::PotentialTracker potential(mesh, engine, potential_config);
  core::SurfaceTracker surface(mesh);
  core::GreedyChecker greedy;
  core::RestrictedPreferenceChecker preference;
  stats::RunRecorder recorder;
  engine.add_observer(&potential);
  engine.add_observer(&surface);
  engine.add_observer(&greedy);
  engine.add_observer(&preference);
  engine.add_observer(&recorder);

  const auto result = engine.run();
  ASSERT_TRUE(result.completed);

  // Definition 6 and Definition 18.
  EXPECT_TRUE(greedy.violations().empty());
  EXPECT_TRUE(preference.violations().empty());
  // Property 8 / Lemma 19 at every node, every step.
  EXPECT_TRUE(potential.property8_violations().empty());
  EXPECT_TRUE(potential.structure_violations().empty());
  // Corollary 10, Lemma 12, Lemma 14.
  EXPECT_TRUE(core::check_corollary10(potential.phi_series(),
                                      surface.g_series())
                  .empty());
  EXPECT_TRUE(
      core::check_lemma12(potential.phi_series(), surface.f_series()).empty());
  EXPECT_TRUE(surface.lemma14_violations().empty());
  // Theorem 20.
  EXPECT_LE(static_cast<double>(result.steps),
            core::thm20_bound(mesh.side(),
                              static_cast<double>(problem.size())));
  // Potential drained to zero.
  EXPECT_EQ(potential.phi(), 0);
  // Conservation: every step's row counts match (advanced + deflected =
  // in-flight).
  for (const auto& row : recorder.rows()) {
    EXPECT_EQ(row.advanced + row.deflected, row.in_flight);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, FullAudit,
                         ::testing::Values("random-k", "permutation",
                                           "transpose", "bit-reversal",
                                           "inversion", "corner", "hotspot",
                                           "single-target", "saturated"));

TEST(Integration, PermutationWithinRemarkBound) {
  // The parity-split Remark: any permutation (k = n²) finishes within 8n².
  for (int n : {4, 8}) {
    net::Mesh mesh(2, n);
    Rng rng(999);
    for (int trial = 0; trial < 3; ++trial) {
      auto problem = workload::random_permutation(mesh, rng);
      routing::RestrictedPriorityPolicy policy;
      sim::Engine engine(mesh, problem, policy);
      const auto result = engine.run();
      ASSERT_TRUE(result.completed);
      EXPECT_LE(static_cast<double>(result.steps),
                core::remark_permutation_bound(n));
    }
  }
}

TEST(Integration, SaturatedWithinFourPerNodeRemarkBound) {
  net::Mesh mesh(2, 8);
  Rng rng(31337);
  auto problem = workload::saturated_random(mesh, 4, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  EXPECT_LE(static_cast<double>(result.steps),
            core::remark_four_per_node_bound(8));
}

TEST(Integration, ParityClassesNeverInteract) {
  // The Remark's key observation: packets whose origins have different
  // coordinate parities never meet (positions advance parity in lockstep).
  net::Mesh mesh(2, 8);
  Rng rng(404);
  auto problem = workload::random_permutation(mesh, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);

  // parity of (x+y) of each packet's origin
  std::vector<int> origin_parity;
  for (const auto& s : problem.packets) {
    const auto c = mesh.coords(s.src);
    origin_parity.push_back((c[0] + c[1]) & 1);
  }

  class ParityCheck : public sim::StepObserver {
   public:
    ParityCheck(const net::Mesh& mesh, std::vector<int> parity)
        : mesh_(mesh), parity_(std::move(parity)) {}
    void on_step(const sim::Engine& /*engine*/,
                 const sim::StepRecord& record) override {
      // Within one node group, all packets share their origin parity.
      std::size_t begin = 0;
      const auto& as = record.assignments;
      while (begin < as.size()) {
        std::size_t end = begin;
        while (end < as.size() && as[end].node == as[begin].node) ++end;
        for (std::size_t i = begin + 1; i < end; ++i) {
          EXPECT_EQ(parity_[static_cast<std::size_t>(as[i].pkt)],
                    parity_[static_cast<std::size_t>(as[begin].pkt)]);
        }
        begin = end;
      }
    }
   private:
    const net::Mesh& mesh_;
    std::vector<int> parity_;
  } check(mesh, origin_parity);
  engine.add_observer(&check);
  ASSERT_TRUE(engine.run().completed);
}

TEST(Integration, GreedyBeatsStructuredOnNearbyPackets) {
  // §1 motivation: a packet that starts close to its destination arrives
  // fast under greedy routing even under global load, while the
  // store-and-forward baseline can make it wait arbitrarily behind queued
  // traffic. We check the greedy side: latency ≤ distance + modest slack.
  net::Mesh mesh(2, 8);
  Rng rng(606);
  auto problem = workload::saturated_random(mesh, 3, rng);
  // Plant a probe packet with distance 1 at an interior node (degree 4,
  // so one origin slot remains after the 3 saturation packets).
  problem.packets.push_back(
      {mesh.node_at(test::xy(3, 3)), mesh.node_at(test::xy(3, 4))});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  const auto& probe = result.packets.back();
  EXPECT_LE(probe.arrived_at, 16u)
      << "greedy should deliver a distance-1 packet quickly";
}

TEST(Integration, DdimAuditOnThreeDims) {
  // Section 5 setting: d = 3 with the generalized potential (same C rules,
  // restricted = one good direction). Property 8 is checked empirically —
  // the paper omits the formal d-dim proof.
  net::Mesh mesh(3, 4);
  Rng rng(70707);
  auto problem = workload::random_many_to_many(mesh, 96, rng);
  routing::DdimPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::PotentialTracker::Config config;
  config.c_init = 2 * mesh.side();
  config.d = 3;
  core::PotentialTracker potential(mesh, engine, config);
  core::GreedyChecker greedy;
  engine.add_observer(&potential);
  engine.add_observer(&greedy);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(greedy.violations().empty());
  EXPECT_LE(static_cast<double>(result.steps), core::ddim_bound(3, 4, 96.0));
  // Report-only: the generalized potential's Property 8 status is an
  // empirical finding (see EXPERIMENTS.md); we assert the audit ran.
  EXPECT_EQ(potential.phi_series().size(), result.steps_executed + 1);
}

TEST(Integration, HotPotatoBeatsStoreForwardOnDeflectableLoad) {
  // Not a universal truth, but on a hotspot-free random load with few
  // conflicts the two should be within a small factor; mostly this guards
  // that both simulators agree on the workload scale.
  net::Mesh mesh(2, 8);
  Rng rng(808);
  auto problem = workload::random_many_to_many(mesh, 64, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  const auto hot = engine.run();
  const auto sf = routing::run_store_forward(mesh, problem);
  ASSERT_TRUE(hot.completed);
  ASSERT_TRUE(sf.completed);
  EXPECT_LT(hot.steps, sf.steps * 4 + 20);
  EXPECT_LT(sf.steps, hot.steps * 4 + 20);
}

}  // namespace
}  // namespace hp
