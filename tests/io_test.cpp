// Problem text-format round-trip and error handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "util/check.hpp"
#include "workload/io.hpp"

namespace hp::workload {
namespace {

TEST(ProblemIo, RoundTripsThroughStreams) {
  Problem p;
  p.name = "demo";
  p.packets = {{0, 5}, {3, 3}, {7, 1}};
  std::stringstream buffer;
  write_problem(buffer, p);
  const Problem q = read_problem(buffer);
  EXPECT_EQ(q.name, "demo");
  ASSERT_EQ(q.packets.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(q.packets[i].src, p.packets[i].src);
    EXPECT_EQ(q.packets[i].dst, p.packets[i].dst);
  }
}

TEST(ProblemIo, EmptyNameBecomesUnnamed) {
  Problem p;
  std::stringstream buffer;
  write_problem(buffer, p);
  EXPECT_EQ(read_problem(buffer).name, "unnamed");
}

TEST(ProblemIo, ParsesCommentsAndBlankLines) {
  std::istringstream in(
      "# a routing instance\n"
      "problem commented\n"
      "\n"
      "packet 1 2   # inline comment\n"
      "   \n"
      "packet 3 4\n");
  const Problem p = read_problem(in);
  EXPECT_EQ(p.name, "commented");
  EXPECT_EQ(p.size(), 2u);
}

TEST(ProblemIo, RejectsMalformedDocuments) {
  {
    std::istringstream in("packet 1 2\n");  // missing header
    EXPECT_THROW(read_problem(in), CheckError);
  }
  {
    std::istringstream in("problem a\nproblem b\n");  // duplicate header
    EXPECT_THROW(read_problem(in), CheckError);
  }
  {
    std::istringstream in("problem a\npacket 1\n");  // missing dst
    EXPECT_THROW(read_problem(in), CheckError);
  }
  {
    std::istringstream in("problem a\npacket 1 2 3\n");  // trailing token
    EXPECT_THROW(read_problem(in), CheckError);
  }
  {
    std::istringstream in("problem a\nfrobnicate 1 2\n");  // bad keyword
    EXPECT_THROW(read_problem(in), CheckError);
  }
}

TEST(ProblemIo, FileRoundTrip) {
  Problem p;
  p.name = "file-test";
  p.packets = {{10, 20}, {30, 40}};
  const std::string path = "/tmp/hp_io_test_problem.txt";
  save_problem(path, p);
  const Problem q = load_problem(path);
  EXPECT_EQ(q.name, "file-test");
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.packets[1].dst, 40);
  std::remove(path.c_str());
}

TEST(ProblemIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_problem("/nonexistent/dir/x.txt"), CheckError);
}

}  // namespace
}  // namespace hp::workload
