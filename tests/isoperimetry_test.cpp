// Claim 13 tests: surface(V) ≥ 2d · V^{(d−1)/d} for every volume of unit
// cubes, the projection bound (equation (1)), and the shape generators.
#include <gtest/gtest.h>

#include <cmath>

#include "core/isoperimetry.hpp"
#include "util/check.hpp"

namespace hp::core {
namespace {

net::Coord at(std::initializer_list<int> xs) {
  net::Coord c;
  for (int x : xs) c.push_back(x);
  return c;
}

TEST(CellSet, AddAndContains) {
  CellSet s(2);
  EXPECT_TRUE(s.add(at({1, 2})));
  EXPECT_FALSE(s.add(at({1, 2})));  // duplicate ignored
  EXPECT_TRUE(s.contains(at({1, 2})));
  EXPECT_FALSE(s.contains(at({2, 1})));
  EXPECT_EQ(s.volume(), 1u);
}

TEST(CellSet, SingleCubeSurface) {
  for (int d = 1; d <= 4; ++d) {
    CellSet s(d);
    net::Coord c;
    for (int a = 0; a < d; ++a) c.push_back(5);
    s.add(c);
    EXPECT_EQ(s.surface_area(), static_cast<std::size_t>(2 * d));
    EXPECT_DOUBLE_EQ(claim13_bound(d, 1.0), 2.0 * d);
  }
}

TEST(CellSet, TwoByTwoSquare) {
  auto s = make_box({2, 2});
  EXPECT_EQ(s.volume(), 4u);
  EXPECT_EQ(s.surface_area(), 8u);
  EXPECT_DOUBLE_EQ(claim13_bound(2, 4.0), 8.0);  // squares are extremal
}

TEST(Box, CubesAreExtremal) {
  // For d-cubes of side s the bound 2d·V^{(d−1)/d} is met with equality.
  for (int d = 1; d <= 3; ++d) {
    for (int side : {1, 2, 3, 4}) {
      std::vector<int> sides(static_cast<std::size_t>(d), side);
      auto box = make_box(sides);
      const double v = static_cast<double>(box.volume());
      EXPECT_DOUBLE_EQ(static_cast<double>(box.surface_area()),
                       2.0 * d * std::pow(v, (d - 1.0) / d))
          << "d=" << d << " side=" << side;
    }
  }
}

TEST(Box, RectanglePerimeter) {
  auto rect = make_box({5, 2});
  EXPECT_EQ(rect.volume(), 10u);
  EXPECT_EQ(rect.surface_area(), 14u);
  EXPECT_GE(14.0, claim13_bound(2, 10.0));
}

TEST(Line, SurfaceIsMaximal) {
  auto line = make_line(2, 0, 7);
  EXPECT_EQ(line.volume(), 7u);
  EXPECT_EQ(line.surface_area(), 2u * 7u + 2u);
}

TEST(Cross, ConnectedAndAboveBound) {
  auto cross = make_cross(2, 3);
  EXPECT_EQ(cross.volume(), 2u * (2 * 3 + 1) - 1);
  EXPECT_GE(static_cast<double>(cross.surface_area()),
            claim13_bound(2, static_cast<double>(cross.volume())));
}

TEST(Staircase, AboveBound) {
  auto stairs = make_staircase(2, 20);
  EXPECT_GE(static_cast<double>(stairs.surface_area()),
            claim13_bound(2, static_cast<double>(stairs.volume())));
}

TEST(Projection, EquationOneHolds) {
  // surface(V) ≥ 2 Σ |π_I(V)| for every shape we can build.
  Rng rng(31);
  for (int d = 2; d <= 3; ++d) {
    for (std::size_t vol : {5u, 20u, 60u}) {
      auto blob = make_random_blob(d, vol, rng);
      EXPECT_GE(blob.surface_area(), projection_surface_lower_bound(blob));
    }
  }
}

TEST(Projection, BoxProjectionsExact) {
  auto box = make_box({4, 3});
  EXPECT_EQ(box.projection_size(0), 3u);  // drop x ⇒ y extent
  EXPECT_EQ(box.projection_size(1), 4u);
  EXPECT_EQ(projection_surface_lower_bound(box), 2u * (3u + 4u));
}

class Claim13Sweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(Claim13Sweep, RandomBlobsSatisfyClaim13) {
  const auto [d, volume] = GetParam();
  Rng rng(static_cast<std::uint64_t>(d) * 1000 + volume);
  for (int trial = 0; trial < 20; ++trial) {
    auto blob = make_random_blob(d, volume, rng);
    ASSERT_EQ(blob.volume(), volume);
    EXPECT_GE(static_cast<double>(blob.surface_area()),
              claim13_bound(d, static_cast<double>(volume)) - 1e-9)
        << "d=" << d << " V=" << volume;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Blobs, Claim13Sweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{7}, std::size_t{25},
                                         std::size_t{100})));

TEST(CellSet, RejectsBadCoordinates) {
  CellSet s(2);
  EXPECT_THROW(s.add(at({-1, 0})), CheckError);
  EXPECT_THROW(s.add(at({0, 300})), CheckError);
  EXPECT_THROW(s.add(at({0})), CheckError);  // arity mismatch
}

TEST(Generators, RejectDegenerateShapes) {
  EXPECT_THROW(make_line(2, 5, 3), CheckError);
  EXPECT_THROW(make_box({0, 2}), CheckError);
  EXPECT_THROW(make_staircase(1, 5), CheckError);
}

}  // namespace
}  // namespace hp::core
