// Livelock experiments (Section 1.2): hot-potato routing without the
// greediness requirement livelocks trivially; the restricted-priority
// class never does (Theorem 20 guarantees termination); adversarially
// perverse — but still greedy — tie-breaking is probed by random search.
#include <gtest/gtest.h>

#include "routing/perverse.hpp"
#include "routing/restricted_priority.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using test::make_problem;
using test::xy;

TEST(BounceBack, SinglePacketLivelocksImmediately) {
  // A non-greedy hot-potato policy that reflects packets: a lone packet
  // ping-pongs between two nodes forever. The detector proves the cycle.
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(7, 7))}});
  routing::BounceBackPolicy policy;
  sim::EngineConfig config;
  config.max_steps = 1000;
  sim::Engine engine(mesh, problem, policy, config);
  const auto result = engine.run();
  EXPECT_TRUE(result.livelocked);
  EXPECT_FALSE(result.completed);
  // The two-node ping-pong repeats with period 2, so detection is fast.
  EXPECT_LE(result.steps_executed, 10u);
}

TEST(BounceBack, IsNotGreedy) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(7, 7))}});
  routing::BounceBackPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::GreedyChecker checker;
  engine.add_observer(&checker);
  engine.step();
  engine.step();
  EXPECT_FALSE(checker.violations().empty());
}

TEST(RestrictedPriority, NeverLivelocksInSearch) {
  // Theorem 20 implies termination for the whole class; the search must
  // come back empty-handed.
  net::Mesh mesh(2, 4);
  routing::RestrictedPriorityPolicy policy;
  const auto result =
      routing::livelock_search(mesh, policy, /*num_packets=*/6,
                               /*instances=*/200, /*max_steps=*/20'000,
                               /*seed=*/1);
  EXPECT_EQ(result.instances_tried, 200u);
  EXPECT_EQ(result.livelocks_found, 0u);
  EXPECT_FALSE(result.example.has_value());
}

TEST(PerverseGreedy, SearchRunsAndAnyHitIsReproducible) {
  // The paper cites livelock constructions for unrestricted greedy
  // routing. Our deterministic perverse-greedy policy is probed over
  // random small instances; any hit must reproduce exactly (determinism).
  net::Mesh mesh(2, 4);
  routing::PerverseGreedyPolicy policy;
  const auto result =
      routing::livelock_search(mesh, policy, /*num_packets=*/8,
                               /*instances=*/300, /*max_steps=*/20'000,
                               /*seed=*/2);
  EXPECT_EQ(result.instances_tried, 300u);
  if (result.example.has_value()) {
    routing::PerverseGreedyPolicy again;
    sim::EngineConfig config;
    config.max_steps = 20'000;
    sim::Engine engine(mesh, *result.example, again, config);
    EXPECT_TRUE(engine.run().livelocked);
  }
}

TEST(PerverseGreedy, KnownTorusInstanceLivelocks) {
  // A concrete greedy livelock, found by livelock_search on the 4×4 torus
  // (search seed 8) and frozen here as a regression case. This reproduces
  // the Section 1.2 claim: a deterministic, perfectly greedy (Definition 6)
  // policy can cycle forever. The same instance routes fine under
  // restricted-priority — Theorem 20's termination guarantee.
  net::Mesh torus(2, 4, /*wrap=*/true);
  auto node = [&](int x, int y) { return torus.node_at(xy(x, y)); };
  auto problem = make_problem({{node(2, 2), node(2, 2)},
                               {node(2, 1), node(2, 2)},
                               {node(0, 1), node(2, 1)},
                               {node(3, 2), node(3, 1)},
                               {node(3, 2), node(0, 2)},
                               {node(1, 2), node(3, 2)},
                               {node(3, 2), node(1, 2)},
                               {node(1, 2), node(2, 2)}});

  routing::PerverseGreedyPolicy perverse;
  sim::EngineConfig config;
  config.max_steps = 50'000;
  {
    sim::Engine engine(torus, problem, perverse, config);
    core::GreedyChecker greedy;
    engine.add_observer(&greedy);
    const auto result = engine.run();
    EXPECT_TRUE(result.livelocked);
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(greedy.violations().empty())
        << "the livelocking policy must still be greedy per Definition 6";
  }
  {
    routing::RestrictedPriorityPolicy restricted;
    sim::Engine engine(torus, problem, restricted, config);
    const auto result = engine.run();
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.livelocked);
  }
}

TEST(LivelockSearch, RequiresDeterministicPolicy) {
  net::Mesh mesh(2, 4);
  routing::RestrictedPriorityPolicy::Params params;
  params.tie_break = routing::RestrictedPriorityPolicy::TieBreak::kRandom;
  routing::RestrictedPriorityPolicy randomized(params);
  EXPECT_THROW(routing::livelock_search(mesh, randomized, 4, 1, 100, 3),
               CheckError);
}

TEST(LivelockSearch, FindsBounceBackCyclesEverywhere) {
  net::Mesh mesh(2, 4);
  routing::BounceBackPolicy policy;
  const auto result =
      routing::livelock_search(mesh, policy, /*num_packets=*/2,
                               /*instances=*/20, /*max_steps=*/5'000,
                               /*seed=*/4);
  // Essentially every instance with a non-colocated origin/destination
  // livelocks under bounce-back.
  EXPECT_GT(result.livelocks_found, 15u);
  ASSERT_TRUE(result.example.has_value());
}

}  // namespace
}  // namespace hp
