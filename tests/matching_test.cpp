// Per-node matching machinery: maximality (⇒ greediness), priority
// preservation, maximum-cardinality augmentation, and deflection rules.
#include <gtest/gtest.h>

#include <numeric>

#include "routing/matching.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace hp::routing {
namespace {

/// Builds a NodeContext plus PacketViews at an interior node of a 2-D (or
/// d-dim) mesh where each packet's good set is given explicitly as a list
/// of direction labels.
struct Fixture {
  explicit Fixture(int d = 2, int side = 8)
      : mesh(d, side), rng(1234), node(center()) {
    ctx = std::make_unique<sim::NodeContext>(
        sim::NodeContext{mesh, node, 0, {}, rng});
    for (net::Dir dir = 0; dir < mesh.num_dirs(); ++dir) {
      if (mesh.arc_exists(node, dir)) ctx->avail_dirs.push_back(dir);
    }
  }

  net::NodeId center() const {
    net::Coord c;
    for (int a = 0; a < mesh.dim(); ++a) c.push_back(mesh.side() / 2);
    return mesh.node_at(c);
  }

  void add_packet(std::initializer_list<int> good_dirs) {
    sim::PacketView v;
    v.id = static_cast<sim::PacketId>(views.size());
    // Destination is irrelevant for the matcher itself; the good list is
    // what drives it.
    v.dst = 0;
    for (int g : good_dirs) v.good.push_back(static_cast<net::Dir>(g));
    views.push_back(v);
  }

  std::vector<net::Dir> run(bool augmenting,
                            DeflectRule rule = DeflectRule::kFirstFree) {
    std::vector<std::size_t> order(views.size());
    std::iota(order.begin(), order.end(), 0);
    std::vector<net::Dir> out(views.size(), net::kInvalidDir);
    if (augmenting) {
      assign_augmenting(*ctx, views, order, rule, out);
    } else {
      assign_sequential(*ctx, views, order, rule, out);
    }
    return out;
  }

  static int advancing_count(const std::vector<sim::PacketView>& views,
                             const std::vector<net::Dir>& out) {
    int count = 0;
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (views[i].good.contains(out[i])) ++count;
    }
    return count;
  }

  net::Mesh mesh;
  Rng rng;
  net::NodeId node;
  std::unique_ptr<sim::NodeContext> ctx;
  std::vector<sim::PacketView> views;
};

void expect_valid(const Fixture& f, const std::vector<net::Dir>& out) {
  std::uint32_t used = 0;
  for (net::Dir d : out) {
    ASSERT_NE(d, net::kInvalidDir);
    ASSERT_TRUE(f.mesh.arc_exists(f.node, d));
    ASSERT_EQ((used >> d) & 1u, 0u) << "arc used twice";
    used |= std::uint32_t{1} << d;
  }
}

void expect_greedy(const Fixture& f, const std::vector<net::Dir>& out) {
  // Definition 6: every deflected packet's good arcs are all used by
  // advancing packets.
  for (std::size_t i = 0; i < f.views.size(); ++i) {
    if (f.views[i].good.contains(out[i])) continue;
    for (net::Dir g : f.views[i].good) {
      bool used_by_advancer = false;
      for (std::size_t j = 0; j < f.views.size(); ++j) {
        if (out[j] == g && f.views[j].good.contains(g)) {
          used_by_advancer = true;
        }
      }
      EXPECT_TRUE(used_by_advancer)
          << "good arc " << int(g) << " of deflected packet " << i
          << " not used by an advancing packet";
    }
  }
}

TEST(Sequential, SinglePacketAdvances) {
  Fixture f;
  f.add_packet({0});
  auto out = f.run(false);
  expect_valid(f, out);
  EXPECT_EQ(out[0], 0);
}

TEST(Sequential, PriorityWinsContestedArc) {
  Fixture f;
  f.add_packet({2});
  f.add_packet({2});
  auto out = f.run(false);
  expect_valid(f, out);
  EXPECT_EQ(out[0], 2);      // first in order advances
  EXPECT_NE(out[1], 2);      // second deflected
  expect_greedy(f, out);
}

TEST(Sequential, MaximalEvenWhenNotMaximum) {
  // Packet 0 can use {0,1}, packet 1 only {0}. Sequential order lets 0
  // grab arc 0, deflecting 1 — maximal (1's only arc is used by an
  // advancer) but not maximum. Greediness still holds by Definition 6.
  Fixture f;
  f.add_packet({0, 1});
  f.add_packet({0});
  auto out = f.run(false);
  expect_valid(f, out);
  expect_greedy(f, out);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(Fixture::advancing_count(f.views, out), 1);
}

TEST(Augmenting, FindsMaximumMatching) {
  // Same instance: augmentation reroutes packet 0 to arc 1 so both advance.
  Fixture f;
  f.add_packet({0, 1});
  f.add_packet({0});
  auto out = f.run(true);
  expect_valid(f, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(Fixture::advancing_count(f.views, out), 2);
}

TEST(Augmenting, ChainedAugmentation) {
  // 0:{0,1} 1:{1,2} 2:{2,3} 3:{3} — needs a length-3 alternating chain.
  Fixture f;
  f.add_packet({0, 1});
  f.add_packet({1, 2});
  f.add_packet({2, 3});
  f.add_packet({3});
  auto out = f.run(true);
  expect_valid(f, out);
  EXPECT_EQ(Fixture::advancing_count(f.views, out), 4);
}

TEST(Augmenting, EarlierPacketsNeverUnmatched) {
  // 0:{0} and 1:{0} contend; 1 cannot displace 0 no matter what comes
  // later.
  Fixture f;
  f.add_packet({0});
  f.add_packet({0});
  f.add_packet({1, 2});
  auto out = f.run(true);
  expect_valid(f, out);
  EXPECT_EQ(out[0], 0);
  EXPECT_NE(out[1], 0);
  EXPECT_EQ(Fixture::advancing_count(f.views, out), 2);
}

TEST(Deflect, FirstFreeIsLowestLabel) {
  Fixture f;
  f.add_packet({1});
  f.add_packet({1});
  auto out = f.run(false, DeflectRule::kFirstFree);
  expect_valid(f, out);
  EXPECT_EQ(out[1], 0);  // lowest free label
}

TEST(Deflect, ReverseEntrySendsPacketBack) {
  Fixture f;
  f.add_packet({1});
  f.add_packet({1});
  f.views[1].entry_dir = 2;  // moved "+y" last step; back is "−y" = 3
  auto out = f.run(false, DeflectRule::kReverseEntry);
  expect_valid(f, out);
  EXPECT_EQ(out[1], 3);
}

TEST(Deflect, StraightKeepsHeading) {
  Fixture f;
  f.add_packet({1});
  f.add_packet({1});
  f.views[1].entry_dir = 2;
  auto out = f.run(false, DeflectRule::kStraight);
  expect_valid(f, out);
  EXPECT_EQ(out[1], 2);
}

TEST(Deflect, RandomStaysOnFreeArcs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Fixture f;
    f.rng = Rng(seed);
    f.add_packet({0});
    f.add_packet({0});
    auto out = f.run(false, DeflectRule::kRandom);
    expect_valid(f, out);
    EXPECT_EQ(out[0], 0);
    EXPECT_NE(out[1], 0);
  }
}

TEST(Matching, FullNodeAllPacketsLeaveDistinctly) {
  Fixture f;
  f.add_packet({0});
  f.add_packet({0});
  f.add_packet({0});
  f.add_packet({0});
  auto out = f.run(false);
  expect_valid(f, out);
  expect_greedy(f, out);
  EXPECT_EQ(Fixture::advancing_count(f.views, out), 1);
}

TEST(Matching, RandomizedPropertySweep) {
  // Property test: for random good sets at a 3-D interior node, both
  // matchers produce valid greedy assignments and augmenting ≥ sequential
  // in advancing count.
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    Fixture f(3, 6);
    const int packets = 1 + static_cast<int>(rng.uniform(6));
    for (int i = 0; i < packets; ++i) {
      std::uint32_t mask = 0;
      const int goods = 1 + static_cast<int>(rng.uniform(5));
      sim::PacketView v;
      v.id = i;
      v.dst = 0;
      for (int g = 0; g < goods; ++g) {
        const auto dir = static_cast<net::Dir>(rng.uniform(6));
        if (((mask >> dir) & 1u) == 0) {
          mask |= std::uint32_t{1} << dir;
          v.good.push_back(dir);
        }
      }
      f.views.push_back(v);
    }
    auto seq = f.run(false);
    expect_valid(f, seq);
    expect_greedy(f, seq);
    auto aug = f.run(true);
    expect_valid(f, aug);
    expect_greedy(f, aug);
    EXPECT_GE(Fixture::advancing_count(f.views, aug),
              Fixture::advancing_count(f.views, seq));
  }
}

}  // namespace
}  // namespace hp::routing
