// Exhaustive schedule exploration of the engine's phase barrier
// (docs/STATIC_ANALYSIS.md, layer 8).
//
// The protocol under test is the production source: BasicPhaseBarrier
// instantiated with ModelSync instead of RealSync, so every atomic
// operation is a scheduler decision point and the spin windows collapse to
// immediate parking (the futex path the lost-wakeup property targets).
// The harness mirrors the engine's roles exactly — one main thread
// open/drain/close-ing epochs and participating in its own phases, workers
// looping wait_open -> next_task* -> leave — and checks, across EVERY
// schedule up to the preemption bound:
//
//   - termination: no schedule deadlocks, i.e. no lost wakeup in the
//     spin-then-wait parking of close()/wait_open(), and shutdown() wakes
//     parked workers (liveness);
//   - epoch alternation: workers observe serials advancing by exactly one
//     with the published tag;
//   - tickets: each fixed task of an epoch is claimed exactly once (the
//     claim counters double as race detectors for the slot writes);
//   - close()-return visibility: every shard write of the epoch is
//     readable by the main thread the moment close() returns, enforced by
//     vector-clock race detection (cross-checked against the committed
//     phase_effects.json write contracts below);
//   - error capture: per-task failure flags harvested after close() name
//     the first failing task in task order, independent of schedule.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "util/model_checker.hpp"
#include "util/model_sync.hpp"
#include "util/phase_barrier.hpp"

namespace {

using hp::model::check_exhaustive;
using hp::model::check_random;
using hp::model::model_assert;
using hp::model::Options;
using hp::model::replay;
using hp::model::Result;
using hp::model::spawn;

using ModelBarrier = hp::util::BasicPhaseBarrier<hp::model::ModelSync>;

constexpr std::uint32_t kMaxTasks = 4;

/// Shared world of one execution: the barrier plus per-ticket shard slots.
/// Each task writes only its own slot (the owner-computes discipline the
/// phase-effects analyzer certifies for the engine); the claim counters
/// prove exactly-once ticket ownership.
struct World {
  World(std::uint32_t workers, std::uint32_t fail_mask_bits)
      : barrier(workers), fail_mask(fail_mask_bits) {}

  ModelBarrier barrier;
  // Which tasks report a failure — a property of the task, applied by
  // whichever thread claims its ticket.
  const std::uint32_t fail_mask;
  std::array<hp::model::var<int>, kMaxTasks> payload{};
  std::array<hp::model::var<int>, kMaxTasks> claims{};
  std::array<hp::model::var<int>, kMaxTasks> failed{};
};

int expected_value(std::uint32_t epoch, std::uint32_t task) {
  return static_cast<int>(100 * (epoch + 1) + task);
}

/// One participant draining the current epoch's tickets (main or worker).
void drain(World& w, std::uint32_t tag) {
  for (;;) {
    const std::uint32_t t = w.barrier.next_task();
    if (t == ModelBarrier::kNoTask) {
      return;
    }
    w.claims[t].write(w.claims[t].read() + 1);
    w.payload[t].write(expected_value(tag, t));
    if (((w.fail_mask >> t) & 1u) != 0) {
      w.failed[t].write(1);  // the engine captures an exception_ptr here
    }
  }
}

/// Registers the full protocol: main + `workers` worker threads running
/// `epochs` epochs of `tasks` tickets each. `fail_mask` marks tasks that
/// report a failure, harvested in task order after close().
void barrier_setup(std::uint32_t workers, std::uint32_t epochs,
                   std::uint32_t tasks, std::uint32_t fail_mask) {
  auto w = std::make_shared<World>(workers, fail_mask);
  spawn([w, epochs, tasks, fail_mask] {  // main thread
    for (std::uint32_t e = 0; e < epochs; ++e) {
      for (std::uint32_t t = 0; t < tasks; ++t) {
        w->payload[t].write(-1);
        w->claims[t].write(0);
        w->failed[t].write(0);
      }
      w->barrier.open(tasks, e);
      drain(*w, e);
      w->barrier.close();
      // close() returned: every shard write of the epoch must be visible
      // (any missing happens-before edge is a data-race violation) and
      // every ticket claimed exactly once.
      std::int32_t first_failed = -1;
      for (std::uint32_t t = 0; t < tasks; ++t) {
        model_assert(w->claims[t].read() == 1,
                     "ticket not claimed exactly once");
        model_assert(w->payload[t].read() == expected_value(e, t),
                     "shard write not visible after close()");
        if (w->failed[t].read() != 0 && first_failed < 0) {
          first_failed = static_cast<std::int32_t>(t);
        }
      }
      if (fail_mask != 0 && fail_mask < (1u << tasks)) {
        // The first failing task in task order is schedule-independent:
        // exactly what "rethrow in task order" promises for exceptions.
        std::int32_t expect_first = 0;
        while (((fail_mask >> expect_first) & 1u) == 0) {
          ++expect_first;
        }
        model_assert(first_failed == expect_first,
                     "error harvest not in task order");
      }
    }
    w->barrier.shutdown();
  });
  for (std::uint32_t i = 0; i < workers; ++i) {
    spawn([w] {  // worker
      std::uint64_t seen = 0;
      for (;;) {
        const ModelBarrier::Epoch e = w->barrier.wait_open(seen);
        if (e.stop) {
          return;
        }
        model_assert(e.serial == seen + 1,
                     "epoch serial must advance by exactly one");
        model_assert(e.tag == e.serial - 1,
                     "published tag must match the open() epoch");
        seen = e.serial;
        drain(*w, e.tag);
        w->barrier.leave();
      }
    });
  }
}

// --- the acceptance configuration ------------------------------------------

TEST(ModelBarrier, ExhaustiveThreeWorkersTwoEpochs) {
  Options opts;
  opts.preemption_bound = 2;
  opts.max_executions = 1ULL << 21;
  const Result r = check_exhaustive(
      [] { barrier_setup(3, 2, 2, 0); }, opts);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_TRUE(r.complete)
      << "exploration hit the execution cap before exhausting bound 2: "
      << r.summary();
  RecordProperty("executions", static_cast<int>(r.executions));
}

TEST(ModelBarrier, ShutdownWhileParkedIsLive) {
  // Zero epochs: workers park in wait_open immediately and the main thread
  // shuts the pool down. Exhaustive absence of deadlock == every parked
  // worker is woken, the model twin of the real-thread regression in
  // tests/phase_barrier_test.cpp.
  Options opts;
  opts.preemption_bound = 3;
  const Result r = check_exhaustive(
      [] { barrier_setup(3, 0, 0, 0); }, opts);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_TRUE(r.complete) << r.summary();
}

TEST(ModelBarrier, ErrorHarvestIsInTaskOrder) {
  Options opts;
  opts.preemption_bound = 2;
  const Result r = check_exhaustive(
      [] { barrier_setup(2, 1, 3, 0b110); }, opts);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_TRUE(r.complete) << r.summary();
}

TEST(ModelBarrier, RandomWalksStayClean) {
  // Unbounded-preemption complement to the bounded exhaustive pass.
  const Result r =
      check_random([] { barrier_setup(3, 2, 3, 0); }, 0x5EED, 512);
  EXPECT_TRUE(r.ok) << r.summary();
}

// --- seeded-bug twin: the checker must see a broken barrier ----------------

/// The barrier's close()/leave() handshake with the wakeup dropped: the
/// last worker to leave does not notify the parked main thread. This is
/// the exact bug class the real protocol's leave() guards against; the
/// checker must find the schedule where close() parks first.
class SabotagedBarrier {
 public:
  explicit SabotagedBarrier(std::uint32_t workers) : active_(workers) {}

  void close() {
    std::uint32_t live = active_.load(std::memory_order_acquire);
    while (live != 0) {
      active_.wait(live, std::memory_order_acquire);
      live = active_.load(std::memory_order_acquire);
    }
  }

  void leave() {
    // BUG: `if (fetch_sub == 1) notify_one()` is missing its notify.
    active_.fetch_sub(1, std::memory_order_release);
  }

 private:
  hp::model::atomic<std::uint32_t> active_;
};

void sabotaged_setup() {
  auto b = std::make_shared<SabotagedBarrier>(2);
  spawn([b] { b->close(); });
  spawn([b] { b->leave(); });
  spawn([b] { b->leave(); });
}

TEST(ModelBarrier, LostLeaveNotifyIsCaught) {
  Options opts;
  opts.preemption_bound = 2;
  const Result r = check_exhaustive(sabotaged_setup, opts);
  ASSERT_FALSE(r.ok) << "a lost wakeup in leave() must be detected";
  EXPECT_EQ(r.violation.kind, "deadlock") << r.summary();
  ASSERT_FALSE(r.decisions.empty());
  // The reported schedule is a complete reproducer.
  const Result again = replay(sabotaged_setup, r.decisions, opts);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.violation.kind, "deadlock");
  EXPECT_FALSE(again.trace.empty());
}

// --- phase_effects.json cross-check ----------------------------------------

TEST(ModelBarrier, DrainContractMatchesPhaseEffectsArtifact) {
  // The committed artifact certifies the engine's parallel "drain" phases:
  // per-shard state is written only through annotated shared writes under
  // barrier brackets. The model harness enforces the same discipline
  // dynamically (payload[t] written only by ticket t's owner), so the two
  // proofs must talk about the same contract. If the artifact drops the
  // annotated shards_ write or the drain phase, this coupling is gone and
  // the model harness needs a matching update.
  std::ifstream in(std::string(HP_REPO_ROOT) + "/phase_effects.json");
  ASSERT_TRUE(in.good()) << "phase_effects.json missing from repo root";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string artifact = buf.str();
  EXPECT_NE(artifact.find("hp-phase-effects-v1"), std::string::npos);
  const std::size_t drain_at = artifact.find("\"drain\"");
  ASSERT_NE(drain_at, std::string::npos)
      << "drain phase vanished from phase_effects.json";
  const std::size_t writes_at = artifact.find("\"writes\"", drain_at);
  ASSERT_NE(writes_at, std::string::npos)
      << "drain entry lost its writes block";
  const std::size_t contract_at =
      artifact.find("\"shards_\": \"annotated\"", writes_at);
  EXPECT_NE(contract_at, std::string::npos)
      << "drain's shards_ write is no longer an annotated shared write";
  // The contract we matched must belong to drain's own writes block, not a
  // later phase's: no other phase key may open in between.
  EXPECT_EQ(artifact.find("},", writes_at), artifact.find("},", contract_at))
      << "annotated shards_ write found outside the drain entry";
}

}  // namespace
