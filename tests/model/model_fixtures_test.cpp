// Self-coverage for the model checker (docs/STATIC_ANALYSIS.md, layer 8):
// a corpus of tiny deliberately-buggy protocols the exhaustive explorer
// MUST flag, their corrected twins it must pass, and replay tests pinning
// that every reported decision list reproduces its violation. If the
// checker ever stops seeing these bugs, the barrier proof in
// model_barrier_test is worthless — this file is the analyzer's analogue
// of the lint fixture census.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>

#include "util/model_checker.hpp"
#include "util/model_sync.hpp"

namespace {

using hp::model::check_exhaustive;
using hp::model::check_random;
using hp::model::model_assert;
using hp::model::Options;
using hp::model::replay;
using hp::model::Result;
using hp::model::spawn;

Options small_opts() {
  Options o;
  o.preemption_bound = 2;
  return o;
}

// --- fixture: handoff with a lost wakeup -----------------------------------
// The consumer parks in wait(); the producer publishes but never notifies.
// Every schedule in which the consumer checks first must deadlock.

void lost_wakeup_buggy() {
  struct State {
    hp::model::atomic<std::uint32_t> flag{0};
    hp::model::var<int> payload{0};
  };
  auto st = std::make_shared<State>();
  spawn([st] {  // producer — BUG: publishes without waking the consumer
    st->payload.write(42);
    st->flag.store(1, std::memory_order_release);
  });
  spawn([st] {  // consumer
    std::uint32_t v = st->flag.load(std::memory_order_acquire);
    while (v == 0) {
      st->flag.wait(v, std::memory_order_acquire);
      v = st->flag.load(std::memory_order_acquire);
    }
    model_assert(st->payload.read() == 42, "payload not visible");
  });
}

void handoff_correct() {
  struct State {
    hp::model::atomic<std::uint32_t> flag{0};
    hp::model::var<int> payload{0};
  };
  auto st = std::make_shared<State>();
  spawn([st] {
    st->payload.write(42);
    st->flag.store(1, std::memory_order_release);
    st->flag.notify_all();
  });
  spawn([st] {
    std::uint32_t v = st->flag.load(std::memory_order_acquire);
    while (v == 0) {
      st->flag.wait(v, std::memory_order_acquire);
      v = st->flag.load(std::memory_order_acquire);
    }
    model_assert(st->payload.read() == 42, "payload not visible");
  });
}

TEST(ModelFixtures, LostWakeupDeadlocks) {
  const Result r = check_exhaustive(lost_wakeup_buggy, small_opts());
  ASSERT_FALSE(r.ok) << r.summary();
  EXPECT_EQ(r.violation.kind, "deadlock");
  EXPECT_FALSE(r.decisions.empty());
}

TEST(ModelFixtures, CorrectHandoffPasses) {
  const Result r = check_exhaustive(handoff_correct, small_opts());
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_TRUE(r.complete);
  EXPECT_GE(r.executions, 2u);  // both initial orders at minimum
}

TEST(ModelFixtures, LostWakeupReplays) {
  const Result r = check_exhaustive(lost_wakeup_buggy, small_opts());
  ASSERT_FALSE(r.ok);
  const Result again = replay(lost_wakeup_buggy, r.decisions, small_opts());
  ASSERT_FALSE(again.ok) << "decision list did not reproduce the bug";
  EXPECT_EQ(again.violation.kind, r.violation.kind);
  EXPECT_FALSE(again.trace.empty());
}

TEST(ModelFixtures, LostWakeupFoundByRandomWalk) {
  const Result r = check_random(lost_wakeup_buggy, 0xC0FFEE, 256);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.violation.kind, "deadlock");
  EXPECT_EQ(r.seed, 0xC0FFEEu);
  // The recorded decisions alone (no seed needed) replay the failure.
  const Result again = replay(lost_wakeup_buggy, r.decisions);
  EXPECT_FALSE(again.ok);
}

// --- fixture: ticket claiming without an RMW -------------------------------
// load-then-store instead of fetch_add: two claimers can both read cursor 0
// and claim the same ticket. Detected as a data race on the ticket's slot
// (no happens-before between the two writers) or as the count assert.

void double_claim_buggy() {
  struct State {
    hp::model::atomic<std::uint32_t> cursor{0};
    hp::model::atomic<std::uint32_t> done{2};
    hp::model::var<int> claims0{0};
    hp::model::var<int> claims1{0};
  };
  auto st = std::make_shared<State>();
  auto claimer = [st] {
    const std::uint32_t t = st->cursor.load(std::memory_order_relaxed);
    st->cursor.store(t + 1, std::memory_order_relaxed);  // BUG: not an RMW
    if (t == 0) {
      st->claims0.write(st->claims0.read() + 1);
    } else if (t == 1) {
      st->claims1.write(st->claims1.read() + 1);
    }
    if (st->done.fetch_sub(1, std::memory_order_release) == 1) {
      st->done.notify_one();
    }
  };
  spawn(claimer);
  spawn(claimer);
  spawn([st] {  // checker thread: the "main" that harvests the epoch
    std::uint32_t live = st->done.load(std::memory_order_acquire);
    while (live != 0) {
      st->done.wait(live, std::memory_order_acquire);
      live = st->done.load(std::memory_order_acquire);
    }
    model_assert(st->claims0.read() == 1, "ticket 0 not claimed exactly once");
    model_assert(st->claims1.read() == 1, "ticket 1 not claimed exactly once");
  });
}

void ticket_claim_correct() {
  struct State {
    hp::model::atomic<std::uint32_t> cursor{0};
    hp::model::atomic<std::uint32_t> done{2};
    hp::model::var<int> claims0{0};
    hp::model::var<int> claims1{0};
  };
  auto st = std::make_shared<State>();
  auto claimer = [st] {
    const std::uint32_t t =
        st->cursor.fetch_add(1, std::memory_order_relaxed);
    if (t == 0) {
      st->claims0.write(st->claims0.read() + 1);
    } else if (t == 1) {
      st->claims1.write(st->claims1.read() + 1);
    }
    if (st->done.fetch_sub(1, std::memory_order_release) == 1) {
      st->done.notify_one();
    }
  };
  spawn(claimer);
  spawn(claimer);
  spawn([st] {
    std::uint32_t live = st->done.load(std::memory_order_acquire);
    while (live != 0) {
      st->done.wait(live, std::memory_order_acquire);
      live = st->done.load(std::memory_order_acquire);
    }
    model_assert(st->claims0.read() == 1, "ticket 0 not claimed exactly once");
    model_assert(st->claims1.read() == 1, "ticket 1 not claimed exactly once");
  });
}

TEST(ModelFixtures, DoubleClaimedTicketFlagged) {
  const Result r = check_exhaustive(double_claim_buggy, small_opts());
  ASSERT_FALSE(r.ok) << r.summary();
  // Either symptom is a faithful diagnosis of the same bug.
  EXPECT_TRUE(r.violation.kind == "data-race" ||
              r.violation.kind == "assert")
      << r.summary();
}

TEST(ModelFixtures, FetchAddTicketsPass) {
  const Result r = check_exhaustive(ticket_claim_correct, small_opts());
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_TRUE(r.complete);
}

TEST(ModelFixtures, DoubleClaimReplays) {
  const Result r = check_exhaustive(double_claim_buggy, small_opts());
  ASSERT_FALSE(r.ok);
  const Result again = replay(double_claim_buggy, r.decisions, small_opts());
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.violation.kind, r.violation.kind);
}

// --- fixture: publication with a missing release fence ---------------------
// The producer stores the flag relaxed: the store breaks the release
// sequence, so the consumer's acquire load establishes no happens-before
// with the payload write. Sequentially-consistent execution cannot show a
// stale value — only the vector clocks can see this bug.

void missing_release_buggy() {
  struct State {
    hp::model::atomic<std::uint32_t> flag{0};
    hp::model::var<int> payload{0};
  };
  auto st = std::make_shared<State>();
  spawn([st] {
    st->payload.write(7);
    st->flag.store(1, std::memory_order_relaxed);  // BUG: must be release
    st->flag.notify_all();
  });
  spawn([st] {
    std::uint32_t v = st->flag.load(std::memory_order_acquire);
    while (v == 0) {
      st->flag.wait(v, std::memory_order_acquire);
      v = st->flag.load(std::memory_order_acquire);
    }
    model_assert(st->payload.read() == 7, "payload not visible");
  });
}

TEST(ModelFixtures, MissingReleaseFenceIsARace) {
  const Result r = check_exhaustive(missing_release_buggy, small_opts());
  ASSERT_FALSE(r.ok) << r.summary();
  EXPECT_EQ(r.violation.kind, "data-race") << r.summary();
}

TEST(ModelFixtures, MissingReleaseReplayCarriesTrace) {
  const Result r = check_exhaustive(missing_release_buggy, small_opts());
  ASSERT_FALSE(r.ok);
  EXPECT_FALSE(r.trace.empty()) << "failures must carry a schedule trace";
  const Result again =
      replay(missing_release_buggy, r.decisions, small_opts());
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.violation.kind, "data-race");
}

}  // namespace
