// Observability layer tests: JSON helpers, metrics registry, trace ring,
// phase profiler and the EngineMetrics observer — including the snapshot
// determinism contract the layer documents (same values => same bytes).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "obs/engine_metrics.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "test_support.hpp"
#include "topology/mesh.hpp"
#include "util/check.hpp"
#include "workload/generators.hpp"

namespace hp::obs {
namespace {

using test::make_problem;
using test::xy;

// --- JSON helpers -----------------------------------------------------------

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("\b\f")), "\\b\\f");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape(std::string("\x1f", 1)), "\\u001f");
  // Bytes >= 0x80 pass through (UTF-8 payloads stay untouched).
  EXPECT_EQ(json_escape("Φ"), "Φ");
}

TEST(JsonNumber, ShortestRoundTripAndNonFinite) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(2.0), "2");
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(-3.5), "-3.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesDistributions) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());

  Counter& c = registry.counter("events");
  c.add();
  c.add(4);
  EXPECT_EQ(registry.counter("events").value(), 5u);

  registry.gauge("level").set(2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("level").value(), 2.5);

  Distribution& d = registry.distribution("lat", 0.0, 10.0, 5);
  d.add(1.0);
  d.add(25.0);  // clamps into the last bin; stats stay exact
  EXPECT_EQ(d.stat().count(), 2u);
  EXPECT_DOUBLE_EQ(d.stat().max(), 25.0);
  EXPECT_EQ(d.histogram().bin_count(4), 1u);

  EXPECT_EQ(registry.size(), 3u);
  EXPECT_FALSE(registry.empty());
}

TEST(MetricsRegistry, FindReturnsNullForUnknownNames) {
  MetricsRegistry registry;
  registry.counter("present");
  EXPECT_NE(registry.find_counter("present"), nullptr);
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.find_gauge("present"), nullptr);
  EXPECT_EQ(registry.find_distribution("present"), nullptr);
}

TEST(MetricsRegistry, DistributionShapeIsFixedByFirstCall) {
  MetricsRegistry registry;
  registry.distribution("lat", 0.0, 10.0, 5);
  EXPECT_NO_THROW(registry.distribution("lat", 0.0, 10.0, 5));
  EXPECT_THROW(registry.distribution("lat", 0.0, 20.0, 5), CheckError);
  EXPECT_THROW(registry.distribution("lat", 0.0, 10.0, 8), CheckError);
}

TEST(MetricsRegistry, SnapshotIsIndependentOfRegistrationOrder) {
  MetricsRegistry first;
  first.counter("b").add(2);
  first.counter("a").add(1);
  first.gauge("z").set(0.5);

  MetricsRegistry second;
  second.gauge("z").set(0.5);
  second.counter("a").add(1);
  second.counter("b").add(2);

  std::ostringstream ja, jb, ca, cb;
  first.write_json(ja);
  second.write_json(jb);
  first.write_csv(ca);
  second.write_csv(cb);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_EQ(ca.str(), cb.str());
}

TEST(MetricsRegistry, EmptySnapshotsAreWellFormed) {
  MetricsRegistry registry;
  std::ostringstream json, csv;
  registry.write_json(json);
  registry.write_csv(csv);
  EXPECT_NE(json.str().find("\"schema\": \"hp-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"counters\": {}"), std::string::npos);
  EXPECT_EQ(csv.str(), "kind,name,value,count,mean,min,max,sum\n");
}

// --- TraceRing --------------------------------------------------------------

TraceEvent make_event(std::uint64_t ts) {
  TraceEvent e;
  e.name = "e" + std::to_string(ts);
  e.ts = ts;
  return e;
}

TEST(TraceRing, RejectsZeroCapacity) {
  EXPECT_THROW(TraceRing ring(0), CheckError);
}

TEST(TraceRing, KeepsNewestEventsOnOverflow) {
  TraceRing ring(4);
  EXPECT_TRUE(ring.empty());
  for (std::uint64_t t = 0; t < 10; ++t) ring.push(make_event(t));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Oldest-first iteration over the retained suffix (events 6..9).
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).ts, 6 + i);
  }
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, ChromeExportRecordsDrops) {
  TraceRing ring(2);
  for (std::uint64_t t = 0; t < 5; ++t) ring.push(make_event(t));
  std::ostringstream out;
  write_chrome_trace(out, ring);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"dropped_events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"e4\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\": \"e2\""), std::string::npos);
}

// --- PhaseProfiler ----------------------------------------------------------

TEST(PhaseProfiler, AccumulatesCallsAndSteps) {
  PhaseProfiler profiler;
  {
    PhaseScope scope(&profiler, Phase::kRoute);
  }
  {
    PhaseScope scope(&profiler, Phase::kRoute);
  }
  profiler.note_step();
  EXPECT_EQ(profiler.stat(Phase::kRoute).calls, 2u);
  EXPECT_EQ(profiler.stat(Phase::kInject).calls, 0u);
  EXPECT_EQ(profiler.steps(), 1u);
}

TEST(PhaseProfiler, NullProfilerScopesAreNoOps) {
  PhaseScope scope(nullptr, Phase::kApply);  // must not crash
  SUCCEED();
}

TEST(PhaseProfiler, ShardImbalanceIsMaxOverMean) {
  PhaseProfiler profiler;
  const std::uint64_t even[] = {100, 100};
  const std::uint64_t skewed[] = {300, 100};
  profiler.add_route_epoch(even, 2);
  EXPECT_DOUBLE_EQ(profiler.shard_imbalance(), 1.0);
  profiler.add_route_epoch(skewed, 2);
  EXPECT_DOUBLE_EQ(profiler.shard_imbalance(), (1.0 + 1.5) / 2.0);
  EXPECT_EQ(profiler.epochs(), 2u);
  EXPECT_EQ(profiler.shard_totals()[0], 400u);
  EXPECT_EQ(profiler.shard_totals()[1], 200u);
}

TEST(PhaseProfiler, ReportMentionsEveryPhase) {
  PhaseProfiler profiler;
  std::ostringstream out;
  profiler.write_report(out);
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    EXPECT_NE(out.str().find(phase_name(static_cast<Phase>(i))),
              std::string::npos);
  }
}

TEST(PhaseProfiler, TraceSinkReceivesPhaseSpans) {
  PhaseProfiler profiler;
  TraceRing ring(8);
  profiler.set_trace_sink(&ring);
  {
    PhaseScope scope(&profiler, Phase::kObserve);
  }
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.at(0).name, "observe");
  EXPECT_EQ(ring.at(0).cat, "phase");
}

// --- EngineMetrics ----------------------------------------------------------

TEST(EngineMetrics, CountersMatchTheRunResult) {
  net::Mesh mesh(2, 8);
  Rng rng(7);
  auto problem = workload::random_many_to_many(mesh, 40, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);

  MetricsRegistry registry;
  EngineMetrics metrics(registry);
  engine.add_observer(&metrics);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);

  EXPECT_EQ(registry.counter("engine.steps").value(), result.steps_executed);
  EXPECT_EQ(registry.counter("packets.advances").value(),
            result.total_advances);
  EXPECT_EQ(registry.counter("packets.deflections").value(),
            result.total_deflections);
  // Trivial src == dst packets are delivered at injection and never cross
  // an observer, so delivered counts routed packets only.
  std::uint64_t routed = 0;
  for (const auto& p : result.packets) {
    if (p.initial_distance > 0) ++routed;
  }
  EXPECT_EQ(registry.counter("packets.delivered").value(), routed);
  EXPECT_EQ(registry.distribution("packet.latency", 0.0, 4096.0, 64)
                .stat()
                .count(),
            routed);
  EXPECT_DOUBLE_EQ(registry.gauge("engine.in_flight").value(), 0.0);
}

TEST(EngineMetrics, LatencyMatchesThePacketRecords) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(5, 0))},
       {mesh.node_at(xy(2, 2)), mesh.node_at(xy(2, 6))}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  MetricsRegistry registry;
  EngineMetrics metrics(registry);
  engine.add_observer(&metrics);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);

  const Distribution* latency = registry.find_distribution("packet.latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->stat().count(), 2u);
  double sum = 0;
  for (const auto& p : result.packets) {
    sum += static_cast<double>(p.arrived_at - p.injected_at);
  }
  EXPECT_DOUBLE_EQ(latency->stat().sum(), sum);
}

TEST(EngineMetrics, EmptyRunStillSnapshotsCleanly) {
  net::Mesh mesh(2, 4);
  // Only trivial packets: the engine delivers them at injection and run()
  // executes zero steps.
  auto problem =
      make_problem({{mesh.node_at(xy(1, 1)), mesh.node_at(xy(1, 1))}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  MetricsRegistry registry;
  EngineMetrics metrics(registry);
  engine.add_observer(&metrics);
  const auto result = engine.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(registry.counter("engine.steps").value(), 0u);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_NE(out.str().find("\"packet.latency\""), std::string::npos);
}

}  // namespace
}  // namespace hp::obs
