// Parity-split tests (the Remark after Theorem 20): movement parity is
// invariant, classes never interact, and — the strong form — routing the
// classes together or separately yields bit-identical trajectories under
// a deterministic policy.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/parity.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp::core {
namespace {

using test::xy;

TEST(Parity, MovementParityAlternatesAcrossArcs) {
  net::Mesh mesh(2, 6);
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(mesh.num_nodes());
       ++v) {
    for (net::Dir d = 0; d < mesh.num_dirs(); ++d) {
      const net::NodeId nb = mesh.neighbor(v, d);
      if (nb == net::kInvalidNode) continue;
      EXPECT_NE(movement_parity(mesh, v), movement_parity(mesh, nb));
    }
  }
}

TEST(Parity, SplitPartitionsThePacketSet) {
  net::Mesh mesh(2, 8);
  Rng rng(17);
  auto problem = workload::random_permutation(mesh, rng);
  const auto classes = parity_split(mesh, problem);
  EXPECT_EQ(classes[0].size() + classes[1].size(), problem.size());
  // A permutation of the full mesh has exactly n²/2 origins per class.
  EXPECT_EQ(classes[0].size(), mesh.num_nodes() / 2);
  for (const auto& spec : classes[0].packets) {
    EXPECT_EQ(movement_parity(mesh, spec.src), 0);
  }
  for (const auto& spec : classes[1].packets) {
    EXPECT_EQ(movement_parity(mesh, spec.src), 1);
  }
}

TEST(Parity, SplitBoundForPermutationIs8nSquared) {
  net::Mesh mesh(2, 16);
  Rng rng(19);
  auto problem = workload::random_permutation(mesh, rng);
  // 8√2·n·√(n²/2) = 8n².
  EXPECT_NEAR(parity_split_bound(mesh, problem),
              remark_permutation_bound(16), 1e-6);
  EXPECT_LT(parity_split_bound(mesh, problem),
            thm20_bound(16, static_cast<double>(problem.size())));
}

TEST(Parity, CombinedRunEqualsSeparateRuns) {
  // The Remark's independence claim, in its strongest executable form:
  // with a deterministic policy, each packet's arrival time is identical
  // whether the two classes are routed together or alone.
  net::Mesh mesh(2, 8);
  Rng rng(23);
  auto problem = workload::random_permutation(mesh, rng);
  const auto classes = parity_split(mesh, problem);

  routing::RestrictedPriorityPolicy combined_policy;
  sim::Engine combined(mesh, problem, combined_policy);
  const auto combined_result = combined.run();
  ASSERT_TRUE(combined_result.completed);

  std::uint64_t max_class_steps = 0;
  for (const auto& cls : classes) {
    routing::RestrictedPriorityPolicy class_policy;
    sim::Engine engine(mesh, cls, class_policy);
    const auto result = engine.run();
    ASSERT_TRUE(result.completed);
    max_class_steps = std::max(max_class_steps, result.steps);
    // Match up arrival times by (src, dst) pair.
    for (std::size_t i = 0; i < cls.packets.size(); ++i) {
      const auto& spec = cls.packets[i];
      bool found = false;
      for (const auto& p : combined_result.packets) {
        if (p.src == spec.src && p.dst == spec.dst) {
          EXPECT_EQ(p.arrived_at, result.packets[i].arrived_at)
              << "packet " << spec.src << "→" << spec.dst
              << " routed differently with the other class present";
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
  }
  EXPECT_EQ(combined_result.steps, max_class_steps);
}

TEST(Parity, RefusesTorus) {
  net::Mesh torus(2, 8, /*wrap=*/true);
  workload::Problem p;
  EXPECT_THROW(parity_split(torus, p), CheckError);
}

TEST(Parity, PermutationsMeetTheSplitBound) {
  for (int n : {8, 16}) {
    net::Mesh mesh(2, n);
    Rng rng(29 + static_cast<std::uint64_t>(n));
    auto problem = workload::random_permutation(mesh, rng);
    routing::RestrictedPriorityPolicy policy;
    sim::Engine engine(mesh, problem, policy);
    const auto result = engine.run();
    ASSERT_TRUE(result.completed);
    EXPECT_LE(static_cast<double>(result.steps),
              parity_split_bound(mesh, problem));
  }
}

}  // namespace
}  // namespace hp::core
