// Stress tests for util::PhaseBarrier — the lock-free epoch barrier under
// the engine's phase pipeline.
//
// The barrier's correctness claims are exactly what the engine leans on:
//   * every task of an epoch is executed exactly once (ticket uniqueness),
//   * close() returns only after every worker left, with every task's
//     writes visible (the release/acquire publication edge),
//   * back-to-back epochs never bleed into each other (epoch serials),
//   * the stop bit reaches every worker (shutdown broadcast).
// The test drives the same wait_open / next_task / leave protocol as
// Engine::worker_loop, over thousands of epochs with randomized task
// counts, and runs under TSan in CI (thread-sanitize job) so the memory
// ordering is checked dynamically, not just argued in comments.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/phase_barrier.hpp"
#include "util/rng.hpp"

namespace hp::util {
namespace {

constexpr std::size_t kMaxTasks = 97;  // deliberately not a power of two

/// A worker pool mirroring Engine's: each worker loops
/// wait_open → drain tickets → leave, bumping a per-task execution counter
/// and an unsynchronized per-task payload cell (TSan would flag the payload
/// if the barrier's publication edges were wrong).
class StressPool {
 public:
  explicit StressPool(std::uint32_t workers) : barrier_(workers) {
    for (std::uint32_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this] { worker(); });
    }
  }

  ~StressPool() {
    barrier_.shutdown();
    for (std::thread& t : threads_) t.join();
  }

  /// Runs one epoch of `tasks` tickets with the main thread participating,
  /// exactly like Engine::run_sharded.
  void run_epoch(std::uint32_t tasks) {
    for (std::uint32_t t = 0; t < tasks; ++t) {
      executed_[t].store(0, std::memory_order_relaxed);
      payload_[t] = 0;
    }
    barrier_.open(tasks, /*tag=*/epoch_tag_++);
    drain();
    barrier_.close();
  }

  /// Post-close verification: exactly-once execution and visible payloads.
  void verify(std::uint32_t tasks) const {
    for (std::uint32_t t = 0; t < tasks; ++t) {
      ASSERT_EQ(executed_[t].load(std::memory_order_relaxed), 1u)
          << "task " << t << " of " << tasks;
      ASSERT_EQ(payload_[t], payload_value(t)) << "task " << t;
    }
  }

  PhaseBarrier& barrier() { return barrier_; }

 private:
  static std::uint64_t payload_value(std::uint32_t task) {
    return 0x9e3779b97f4a7c15ULL * (task + 1);
  }

  void drain() {
    for (;;) {
      const std::uint32_t t = barrier_.next_task();
      if (t == PhaseBarrier::kNoTask) return;
      executed_[t].fetch_add(1, std::memory_order_relaxed);
      payload_[t] = payload_value(t);  // plain write: barrier must publish
    }
  }

  void worker() {
    std::uint64_t seen = 0;
    for (;;) {
      const PhaseBarrier::Epoch e = barrier_.wait_open(seen);
      seen = e.serial;
      if (e.stop) return;
      drain();
      barrier_.leave();
    }
  }

  PhaseBarrier barrier_;
  std::uint32_t epoch_tag_ = 0;
  std::atomic<std::uint32_t> executed_[kMaxTasks] = {};
  std::uint64_t payload_[kMaxTasks] = {};
  std::vector<std::thread> threads_;
};

TEST(PhaseBarrier, ManyEpochsRandomTaskCountsExactlyOnce) {
  // Thousands of back-to-back epochs with random widths, including widths
  // below, equal to, and far above the worker count — the shapes the
  // engine produces across its occupancy/goodmask/route/move fan-outs.
  StressPool pool(3);
  Rng rng(1234);
  for (int epoch = 0; epoch < 2000; ++epoch) {
    const auto tasks = static_cast<std::uint32_t>(
        rng.uniform_range(1, static_cast<std::int64_t>(kMaxTasks)));
    pool.run_epoch(tasks);
    pool.verify(tasks);
  }
}

TEST(PhaseBarrier, ZeroWorkersDegeneratesToSerial) {
  // num_threads == 1 in the engine: the main thread is the only
  // participant and close() must return immediately (active_ never rises).
  StressPool pool(0);
  for (int epoch = 0; epoch < 100; ++epoch) {
    pool.run_epoch(static_cast<std::uint32_t>(epoch % kMaxTasks) + 1);
    pool.verify(static_cast<std::uint32_t>(epoch % kMaxTasks) + 1);
  }
}

TEST(PhaseBarrier, EpochTagsReachWorkers) {
  PhaseBarrier barrier(1);
  std::vector<std::uint32_t> seen_tags;
  std::thread worker([&] {
    std::uint64_t seen = 0;
    for (;;) {
      const PhaseBarrier::Epoch e = barrier.wait_open(seen);
      seen = e.serial;
      if (e.stop) return;
      seen_tags.push_back(e.tag);  // published back by close()'s acquire
      while (barrier.next_task() != PhaseBarrier::kNoTask) {
      }
      barrier.leave();
    }
  });
  const std::uint32_t tags[] = {7, 42, 1u << 20};
  for (const std::uint32_t tag : tags) {
    barrier.open(/*num_tasks=*/1, tag);
    while (barrier.next_task() != PhaseBarrier::kNoTask) {
    }
    barrier.close();
  }
  barrier.shutdown();
  worker.join();
  ASSERT_EQ(seen_tags.size(), 3u);
  EXPECT_EQ(seen_tags[0], 7u);
  EXPECT_EQ(seen_tags[1], 42u);
  EXPECT_EQ(seen_tags[2], 1u << 20);
}

TEST(PhaseBarrier, ShutdownStopsEveryWorkerPromptly) {
  // Workers parked in wait_open (no epoch ever opened) must all observe
  // the stop bit — the pool teardown path.
  PhaseBarrier barrier(4);
  std::atomic<int> stopped{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&] {
      const PhaseBarrier::Epoch e = barrier.wait_open(0);
      if (e.stop) stopped.fetch_add(1, std::memory_order_relaxed);
    });
  }
  barrier.shutdown();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(stopped.load(std::memory_order_relaxed), 4);
}

TEST(PhaseBarrier, ShutdownWakesWorkersParkedInAtomicWait) {
  // Regression for the lost-wakeup class the model checker proves absent
  // (tests/model/): shutdown() arriving while workers are parked inside
  // epoch_.wait() must wake every one of them. RealSync's long spin window
  // means the plain shutdown test above almost never reaches the futex
  // path; ParkEagerSync (spin limit zero, real std::atomic) parks on the
  // first check, so under TSan in CI this drives the actual
  // store-then-notify handoff, not the spin loop.
  using EagerBarrier = BasicPhaseBarrier<ParkEagerSync>;
  for (int round = 0; round < 64; ++round) {
    EagerBarrier barrier(4);
    std::atomic<int> stopped{0};
    std::atomic<int> parked{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
      threads.emplace_back([&] {
        parked.fetch_add(1, std::memory_order_relaxed);
        const EagerBarrier::Epoch e = barrier.wait_open(0);
        if (e.stop) stopped.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Give the workers a chance to actually reach the parked state so the
    // shutdown exercises notify-after-park, not check-before-park.
    while (parked.load(std::memory_order_relaxed) < 4) {
      std::this_thread::yield();
    }
    barrier.shutdown();
    for (std::thread& t : threads) t.join();
    ASSERT_EQ(stopped.load(std::memory_order_relaxed), 4) << "round " << round;
  }
}

TEST(PhaseBarrier, CloseParksUntilLastWorkerLeaves) {
  // The other parking path: with a zero spin window the main thread parks
  // in active_.wait() inside close() whenever workers still hold the
  // epoch; the last leave()'s fetch_sub+notify must wake it. Runs whole
  // epochs through ParkEagerSync to keep that wakeup under TSan coverage.
  using EagerBarrier = BasicPhaseBarrier<ParkEagerSync>;
  EagerBarrier barrier(3);
  std::atomic<std::uint32_t> executed[kMaxTasks] = {};
  auto drain = [&] {
    for (;;) {
      const std::uint32_t t = barrier.next_task();
      if (t == EagerBarrier::kNoTask) return;
      executed[t].fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&] {
      std::uint64_t seen = 0;
      for (;;) {
        const EagerBarrier::Epoch e = barrier.wait_open(seen);
        seen = e.serial;
        if (e.stop) return;
        drain();
        barrier.leave();
      }
    });
  }
  for (int epoch = 0; epoch < 500; ++epoch) {
    const auto tasks = static_cast<std::uint32_t>(epoch % kMaxTasks) + 1;
    for (std::uint32_t t = 0; t < tasks; ++t) {
      executed[t].store(0, std::memory_order_relaxed);
    }
    barrier.open(tasks, static_cast<std::uint32_t>(epoch));
    drain();
    barrier.close();
    for (std::uint32_t t = 0; t < tasks; ++t) {
      ASSERT_EQ(executed[t].load(std::memory_order_relaxed), 1u)
          << "task " << t << " epoch " << epoch;
    }
  }
  barrier.shutdown();
  for (std::thread& t : threads) t.join();
}

TEST(PhaseBarrier, ExceptionsPropagateViaPerTaskCapture) {
  // The engine's error contract: a task that throws captures its exception
  // into its shard slot; the main thread rethrows the first error in task
  // order after close(). Exercise the pattern through the barrier itself.
  constexpr std::uint32_t kTasks = 61;
  PhaseBarrier barrier(2);
  std::exception_ptr errors[kTasks];

  auto drain = [&] {
    for (;;) {
      const std::uint32_t t = barrier.next_task();
      if (t == PhaseBarrier::kNoTask) return;
      try {
        if (t % 10 == 3) {
          throw std::runtime_error("task " + std::to_string(t) + " failed");
        }
      } catch (...) {
        errors[t] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&] {
      std::uint64_t seen = 0;
      for (;;) {
        const PhaseBarrier::Epoch e = barrier.wait_open(seen);
        seen = e.serial;
        if (e.stop) return;
        drain();
        barrier.leave();
      }
    });
  }

  for (std::uint32_t t = 0; t < kTasks; ++t) errors[t] = nullptr;
  barrier.open(kTasks, /*tag=*/0);
  drain();
  barrier.close();

  // First failing task in task order is 3, regardless of which thread ran
  // it — same selection rule as Engine::run_sharded.
  std::string message;
  for (std::uint32_t t = 0; t < kTasks; ++t) {
    if (errors[t] != nullptr) {
      try {
        std::rethrow_exception(errors[t]);
      } catch (const std::runtime_error& e) {
        message = e.what();
      }
      break;
    }
  }
  EXPECT_EQ(message, "task 3 failed");
  int failing = 0;
  for (std::uint32_t t = 0; t < kTasks; ++t) {
    if (errors[t] != nullptr) ++failing;
  }
  EXPECT_EQ(failing, 6);  // tasks 3, 13, 23, 33, 43, 53

  barrier.shutdown();
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace hp::util
