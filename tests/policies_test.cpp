// Routing policy tests: every greedy policy terminates, stays greedy
// (Definition 6), and the class-specific behaviours hold (Definition 18
// preference, Section 5 max-advancing, baseline bounds on small cases).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/bounds.hpp"
#include "routing/brassil_cruz.hpp"
#include "routing/ddim_priority.hpp"
#include "routing/greedy_variants.hpp"
#include "routing/hajek_hypercube.hpp"
#include "routing/perverse.hpp"
#include "routing/restricted_priority.hpp"
#include "routing/single_target.hpp"
#include "test_support.hpp"
#include "topology/hypercube.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using test::make_problem;
using test::xy;

std::unique_ptr<sim::RoutingPolicy> make_policy(const std::string& kind,
                                                const net::Network& net) {
  if (kind == "restricted") {
    return std::make_unique<routing::RestrictedPriorityPolicy>();
  }
  if (kind == "restricted-random") {
    routing::RestrictedPriorityPolicy::Params params;
    params.tie_break = routing::RestrictedPriorityPolicy::TieBreak::kRandom;
    params.deflect = routing::DeflectRule::kRandom;
    return std::make_unique<routing::RestrictedPriorityPolicy>(params);
  }
  if (kind == "ddim") return std::make_unique<routing::DdimPriorityPolicy>();
  if (kind == "greedy-random") {
    return std::make_unique<routing::GreedyRandomPolicy>();
  }
  if (kind == "furthest") {
    return std::make_unique<routing::FurthestFirstPolicy>();
  }
  if (kind == "closest") return std::make_unique<routing::ClosestFirstPolicy>();
  if (kind == "id") return std::make_unique<routing::IdPriorityPolicy>();
  if (kind == "perverse") {
    return std::make_unique<routing::PerverseGreedyPolicy>();
  }
  if (kind == "brassil-cruz") {
    const auto* mesh = dynamic_cast<const net::Mesh*>(&net);
    return std::make_unique<routing::BrassilCruzPolicy>(
        routing::snake_rank(*mesh));
  }
  if (kind == "single-target") {
    return std::make_unique<routing::SingleTargetPolicy>();
  }
  ADD_FAILURE() << "unknown policy " << kind;
  return nullptr;
}

class AllPolicies : public ::testing::TestWithParam<std::string> {};

TEST_P(AllPolicies, TerminatesAndStaysGreedyOnRandomLoad) {
  net::Mesh mesh(2, 8);
  Rng rng(11);
  auto problem = workload::random_many_to_many(mesh, 96, rng);
  auto policy = make_policy(GetParam(), mesh);
  sim::EngineConfig config;
  config.max_steps = 200'000;
  auto run = test::run_checked(mesh, problem, *policy, config);
  EXPECT_TRUE(run.result.completed)
      << GetParam() << (run.result.livelocked ? " livelocked" : " timed out");
  EXPECT_TRUE(run.greedy_violations.empty())
      << GetParam() << ": " << run.greedy_violations.front();
}

TEST_P(AllPolicies, TerminatesOnPermutation) {
  net::Mesh mesh(2, 8);
  Rng rng(12);
  auto problem = workload::random_permutation(mesh, rng);
  auto policy = make_policy(GetParam(), mesh);
  sim::EngineConfig config;
  config.max_steps = 500'000;
  auto run = test::run_checked(mesh, problem, *policy, config);
  EXPECT_TRUE(run.result.completed) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllPolicies,
                         ::testing::Values("restricted", "restricted-random",
                                           "ddim", "greedy-random", "furthest",
                                           "closest", "id", "perverse",
                                           "brassil-cruz", "single-target"));

TEST(RestrictedPriority, AlwaysWithinThm20Bound) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    net::Mesh mesh(2, 8);
    Rng rng(seed);
    const std::size_t k = 8 + rng.uniform(120);
    auto problem = workload::random_many_to_many(mesh, k, rng);
    routing::RestrictedPriorityPolicy policy;
    sim::Engine engine(mesh, problem, policy);
    const auto result = engine.run();
    ASSERT_TRUE(result.completed);
    EXPECT_LE(static_cast<double>(result.steps),
              core::thm20_bound(8, static_cast<double>(k)));
  }
}

TEST(RestrictedPriority, SoloRestrictedPacketTakesShortestPath) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(1, 2)), mesh.node_at(xy(6, 2))}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  const auto result = engine.run();
  EXPECT_EQ(result.steps, 5u);
  EXPECT_EQ(result.total_deflections, 0u);
}

TEST(RestrictedPriority, NameReflectsConfiguration) {
  routing::RestrictedPriorityPolicy plain;
  EXPECT_EQ(plain.name(), "restricted-priority");
  routing::RestrictedPriorityPolicy::Params params;
  params.tie_break = routing::RestrictedPriorityPolicy::TieBreak::kTypeAFirst;
  params.maximize_advancing = true;
  routing::RestrictedPriorityPolicy fancy(params);
  EXPECT_EQ(fancy.name(), "restricted-priority/typeA-first/max-adv");
  EXPECT_TRUE(fancy.deterministic());
  EXPECT_FALSE(
      routing::GreedyRandomPolicy().deterministic());
}

TEST(DdimPriority, MaximizesAdvancingPackets) {
  // 0:{+x,+y} then 1:{+x} at one node: sequential order would starve one;
  // the max-matching policy must advance both.
  net::Mesh mesh(2, 8);
  const auto mid = mesh.node_at(xy(3, 3));
  auto problem = make_problem(
      {{mid, mesh.node_at(xy(6, 6))},    // two good dirs, id 0
       {mid, mesh.node_at(xy(6, 3))}});  // east only, id 1
  routing::DdimPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);

  class CountAdvance : public sim::StepObserver {
   public:
    int first_step_advancers = -1;
    void on_step(const sim::Engine&, const sim::StepRecord& record) override {
      if (record.step != 0) return;
      first_step_advancers = 0;
      for (const auto& a : record.assignments) {
        if (a.advances) ++first_step_advancers;
      }
    }
  } count;
  engine.add_observer(&count);
  engine.step();
  EXPECT_EQ(count.first_step_advancers, 2);
}

TEST(DdimPriority, RunsOnThreeDimensionalMesh) {
  net::Mesh mesh(3, 5);
  Rng rng(13);
  auto problem = workload::random_many_to_many(mesh, 150, rng);
  routing::DdimPriorityPolicy policy;
  auto run = test::run_checked(mesh, problem, policy);
  ASSERT_TRUE(run.result.completed);
  EXPECT_TRUE(run.greedy_violations.empty());
  EXPECT_LE(static_cast<double>(run.result.steps),
            core::ddim_bound(3, 5, 150.0));
}

TEST(BrassilCruz, WithinReferenceBoundOnSmallCases) {
  net::Mesh mesh(2, 6);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const std::size_t k = 4 + rng.uniform(30);
    auto problem = workload::random_many_to_many(mesh, k, rng);
    routing::BrassilCruzPolicy policy(routing::snake_rank(mesh));
    sim::Engine engine(mesh, problem, policy);
    const auto result = engine.run();
    ASSERT_TRUE(result.completed);
    const double walk = static_cast<double>(mesh.num_nodes()) - 1.0;
    EXPECT_LE(static_cast<double>(result.steps),
              core::brassil_cruz_bound(mesh.diameter(), walk,
                                       static_cast<double>(k)));
  }
}

TEST(BrassilCruz, SnakeRankIsHamiltonianWalk) {
  net::Mesh mesh(2, 4);
  const auto rank = routing::snake_rank(mesh);
  // Ranks are a permutation of 0..15 and consecutive ranks are adjacent.
  std::vector<net::NodeId> by_rank(mesh.num_nodes());
  std::vector<bool> seen(mesh.num_nodes(), false);
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(mesh.num_nodes());
       ++v) {
    ASSERT_GE(rank[static_cast<std::size_t>(v)], 0);
    ASSERT_LT(rank[static_cast<std::size_t>(v)],
              static_cast<int>(mesh.num_nodes()));
    seen[static_cast<std::size_t>(rank[static_cast<std::size_t>(v)])] = true;
    by_rank[static_cast<std::size_t>(rank[static_cast<std::size_t>(v)])] = v;
  }
  for (bool b : seen) EXPECT_TRUE(b);
  for (std::size_t r = 0; r + 1 < by_rank.size(); ++r) {
    EXPECT_EQ(mesh.distance(by_rank[r], by_rank[r + 1]), 1);
  }
}

TEST(Hajek, WithinTwoKPlusNOnHypercube) {
  for (int dim : {4, 6}) {
    net::Hypercube cube(dim);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      Rng rng(seed + 100);
      const std::size_t k = 2 + rng.uniform(3 * cube.num_nodes() / 2);
      auto problem = workload::random_many_to_many(cube, k, rng);
      routing::HajekHypercubePolicy policy;
      sim::Engine engine(cube, problem, policy);
      const auto result = engine.run();
      ASSERT_TRUE(result.completed);
      EXPECT_LE(static_cast<double>(result.steps),
                core::hajek_bound(static_cast<double>(k), dim))
          << "dim=" << dim << " k=" << k;
    }
  }
}

TEST(SingleTarget, WithinBtsStyleBound) {
  net::Mesh mesh(2, 8);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed + 7);
    const std::size_t k = 10 + rng.uniform(60);
    auto problem =
        workload::single_target(mesh, k, mesh.node_at(xy(4, 4)), rng);
    routing::SingleTargetPolicy policy;
    sim::Engine engine(mesh, problem, policy);
    const auto result = engine.run();
    ASSERT_TRUE(result.completed);
    const int dmax = problem.max_distance(mesh);
    // Upper bound k + d_max claimed in [BTS]; lower bound from absorption.
    EXPECT_LE(static_cast<double>(result.steps),
              static_cast<double>(k) + dmax);
    EXPECT_GE(static_cast<double>(result.steps),
              core::single_target_lower_bound(static_cast<double>(k), dmax, 4) -
                  0.0);
  }
}

TEST(Policies, RandomizedPolicyReproducesUnderSameSeed) {
  // Reproducibility contract: a randomized policy with the same engine
  // seed yields bit-identical per-packet outcomes.
  net::Mesh mesh(2, 8);
  Rng rng(77);
  auto problem = workload::random_many_to_many(mesh, 80, rng);
  sim::RunResult results[2];
  for (int i = 0; i < 2; ++i) {
    routing::GreedyRandomPolicy policy;
    sim::EngineConfig config;
    config.seed = 12345;
    sim::Engine engine(mesh, problem, policy, config);
    results[i] = engine.run();
    ASSERT_TRUE(results[i].completed);
  }
  EXPECT_EQ(results[0].steps, results[1].steps);
  EXPECT_EQ(results[0].total_deflections, results[1].total_deflections);
  for (std::size_t i = 0; i < results[0].packets.size(); ++i) {
    EXPECT_EQ(results[0].packets[i].arrived_at,
              results[1].packets[i].arrived_at);
    EXPECT_EQ(results[0].packets[i].deflections,
              results[1].packets[i].deflections);
  }
}

TEST(Policies, RandomizedPolicyVariesAcrossSeeds) {
  net::Mesh mesh(2, 8);
  Rng rng(55);
  auto problem = workload::random_many_to_many(mesh, 80, rng);
  std::set<std::uint64_t> times;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    routing::GreedyRandomPolicy policy;
    sim::EngineConfig config;
    config.seed = seed;
    sim::Engine engine(mesh, problem, policy, config);
    const auto result = engine.run();
    ASSERT_TRUE(result.completed);
    times.insert(result.steps);
  }
  EXPECT_GT(times.size(), 1u) << "random tie-breaking had no effect";
}

}  // namespace
}  // namespace hp
